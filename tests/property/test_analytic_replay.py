"""Property tests: the analytic replay is the DES, exactly.

:func:`repro.sim.analytic.analytic_replay` claims numeric *identity*
with the generator-based pipeline replay for every plan set that passes
:func:`plans_are_analytic`.  Hypothesis generates random service-time
plans over a shared stage route, random arrival gaps and small ring
capacities, and compares against the real ``Platform._spawn_pipeline``
driven on a real :class:`Engine` — field for field, float for float.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.framework import ServiceChain
from repro.nf import IPFilter
from repro.platform import BessPlatform, PlatformConfig
from repro.sim import Engine, analytic_replay, plans_are_analytic


class _ReplayHarness(BessPlatform):
    """A platform whose stage pipeline has an arbitrary stage count."""

    def __init__(self, stage_count: int, ring_capacity):
        super().__init__(
            ServiceChain([IPFilter("fw0")]),
            config=PlatformConfig(ring_capacity=ring_capacity),
        )
        self._stages = stage_count

    def _stage_count(self) -> int:
        return self._stages


def des_replay(plans, gaps, stage_count, ring_capacity):
    harness = _ReplayHarness(stage_count, ring_capacity)
    engine = Engine()
    run = harness._spawn_pipeline(engine, plans, gaps)
    engine.run()
    return run


service_times = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
gap_times = st.floats(
    min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False
)


@st.composite
def replay_cases(draw):
    """(plans, gaps, stage_count, ring_capacity) valid for the recursion.

    All plans follow prefixes of one shared stage route, which makes
    every stage single-producer by construction; service times and
    arrival gaps are arbitrary non-negative floats.
    """
    stage_count = draw(st.integers(min_value=1, max_value=4))
    route = draw(st.permutations(list(range(stage_count))))
    packet_count = draw(st.integers(min_value=1, max_value=24))
    plans = []
    for __ in range(packet_count):
        hops = draw(st.integers(min_value=1, max_value=stage_count))
        services = draw(
            st.lists(service_times, min_size=hops, max_size=hops)
        )
        plans.append(list(zip(route[:hops], services)))
    gaps = draw(
        st.lists(gap_times, min_size=packet_count, max_size=packet_count)
    )
    ring_capacity = draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=5))
    )
    return plans, gaps, stage_count, ring_capacity


class TestAnalyticMatchesDES:
    @given(case=replay_cases())
    @settings(max_examples=120, deadline=None)
    def test_exact_identity(self, case):
        plans, gaps, stage_count, ring_capacity = case
        assert plans_are_analytic(plans)

        arrival_at, completions = analytic_replay(
            plans, gaps, stage_count, ring_capacity
        )
        des = des_replay(plans, gaps, stage_count, ring_capacity)

        assert len(arrival_at) == len(des.arrival_at)
        for index in range(len(plans)):
            assert arrival_at[index] == des.arrival_at[index]

        # The DES sink records completions in finish order; on exact ties
        # the analytic replay keeps packet order (the documented, stable
        # tie-break), so compare as (finish-time-sorted) populations and
        # assert the per-packet finish times agree exactly.
        assert dict(completions) == dict(des.completions)
        assert [t for __, t in completions] == sorted(t for __, t in des.completions)


class TestValidityGate:
    def test_empty_plan_rejected(self):
        assert not plans_are_analytic([[(0, 10.0)], []])

    def test_delay_hop_rejected(self):
        assert not plans_are_analytic([[(0, 10.0), (None, 5.0)]])

    def test_self_edge_rejected(self):
        assert not plans_are_analytic([[(0, 10.0), (0, 5.0)]])

    def test_conflicting_producers_rejected(self):
        # Stage 1 fed by the source in one plan, by stage 0 in another.
        assert not plans_are_analytic([[(1, 3.0)], [(0, 2.0), (1, 3.0)]])

    def test_shared_route_prefixes_accepted(self):
        plans = [[(2, 1.0)], [(2, 1.0), (0, 2.0)], [(2, 1.0), (0, 2.0), (1, 4.0)]]
        assert plans_are_analytic(plans)
