"""Property test: policer equivalence under arbitrary burst patterns.

The policer is the most event-intensive NF in the repo — its verdict can
flip on any packet.  Fuzz random timestamp sequences and rates and
require the baseline and SpeedyBox drop patterns to be identical, packet
for packet.
"""

from hypothesis import given, settings, strategies as st

from repro.core.framework import ServiceChain, SpeedyBox
from repro.net import FiveTuple, Packet
from repro.nf.policer import TokenBucketPolicer


def build_packets(gaps_us, sport=1000):
    packets = []
    timestamp = 0.0
    for index, gap_us in enumerate(gaps_us):
        timestamp += gap_us * 1000.0
        packet = Packet.from_five_tuple(
            FiveTuple.make("10.0.0.1", "10.0.0.2", sport, 80),
            payload=b"p",
            timestamp_ns=timestamp,
        )
        packets.append(packet)
    return packets


class TestPolicerFuzz:
    @given(
        gaps_us=st.lists(st.floats(0.0, 500.0), min_size=2, max_size=40),
        rate_kpps=st.sampled_from([1.0, 10.0, 100.0]),
        burst=st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_drop_pattern_identical(self, gaps_us, rate_kpps, burst):
        packets = build_packets(gaps_us)
        baseline = ServiceChain([TokenBucketPolicer("p", rate_pps=rate_kpps * 1000, burst=burst)])
        speedybox = SpeedyBox([TokenBucketPolicer("p", rate_pps=rate_kpps * 1000, burst=burst)])

        base_pattern = []
        for packet in [p.clone() for p in packets]:
            baseline.process(packet)
            base_pattern.append(packet.dropped)
        sbox_pattern = []
        for packet in [p.clone() for p in packets]:
            speedybox.process(packet)
            sbox_pattern.append(packet.dropped)

        assert base_pattern == sbox_pattern

    @given(
        gaps_us=st.lists(st.floats(0.0, 200.0), min_size=2, max_size=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_bucket_state_converges(self, gaps_us):
        packets = build_packets(gaps_us)
        baseline = ServiceChain([TokenBucketPolicer("p", rate_pps=50_000, burst=3)])
        speedybox = SpeedyBox([TokenBucketPolicer("p", rate_pps=50_000, burst=3)])
        for packet in [p.clone() for p in packets]:
            baseline.process(packet)
        for packet in [p.clone() for p in packets]:
            speedybox.process(packet)
        key = packets[0].five_tuple()
        base_bucket = baseline.nfs[0].buckets[key]
        sbox_bucket = speedybox.nfs[0].buckets[key]
        assert abs(base_bucket.tokens - sbox_bucket.tokens) < 1e-9
        assert base_bucket.last_refill_ns == sbox_bucket.last_refill_ns
