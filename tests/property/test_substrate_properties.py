"""Property-based tests on the substrates: sim engine, packets, NAT, FIDs."""

from hypothesis import given, settings, strategies as st

from repro.core.classifier import fid_of
from repro.core.local_mat import NullInstrumentationAPI
from repro.net import FiveTuple, Packet
from repro.net.flow import PROTO_TCP, PROTO_UDP
from repro.nf.mazunat import MazuNAT
from repro.sim import Engine, Get, Put, Store, Timeout


def five_tuples():
    return st.builds(
        FiveTuple,
        src_ip=st.integers(0, 0xFFFFFFFF),
        dst_ip=st.integers(0, 0xFFFFFFFF),
        src_port=st.integers(0, 0xFFFF),
        dst_port=st.integers(0, 0xFFFF),
        protocol=st.sampled_from([PROTO_TCP, PROTO_UDP]),
    )


class TestSimProperties:
    @given(
        delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_clock_monotone(self, delays):
        engine = Engine()
        observed = []

        def proc():
            for delay in delays:
                yield Timeout(delay)
                observed.append(engine.now)

        engine.add_process(proc())
        engine.run()
        assert observed == sorted(observed)
        assert abs(observed[-1] - sum(delays)) < 1e-6

    @given(items=st.lists(st.integers(), min_size=1, max_size=30), capacity=st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_store_preserves_fifo_under_any_capacity(self, items, capacity):
        engine = Engine()
        store = Store(engine, capacity=capacity)
        received = []

        def producer():
            for item in items:
                yield Put(store, item)

        def consumer():
            for __ in items:
                value = yield Get(store)
                received.append(value)
                yield Timeout(1.0)

        engine.add_process(producer())
        engine.add_process(consumer())
        engine.run()
        assert received == items
        assert store.high_watermark <= capacity


class TestPacketProperties:
    @given(flow=five_tuples(), payload=st.binary(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_serialize_parse_roundtrip(self, flow, payload):
        packet = Packet.from_five_tuple(flow, payload=payload)
        parsed = Packet.parse(packet.serialize())
        assert parsed.five_tuple() == flow
        assert parsed.payload == payload
        assert parsed.ip.checksum_valid()

    @given(flow=five_tuples())
    @settings(max_examples=100, deadline=None)
    def test_fid_stable_and_bounded(self, flow):
        fid = fid_of(flow)
        assert fid == fid_of(flow)
        assert 0 <= fid < (1 << 20)


class TestPcapProperties:
    @given(
        records=st.lists(
            st.tuples(five_tuples(), st.binary(max_size=80), st.floats(0, 1e15, allow_nan=False)),
            max_size=12,
        ),
        nanosecond=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_pcap_roundtrip_preserves_wire_bytes(self, records, nanosecond):
        import io

        from repro.net.pcap import load_pcap, write_pcap

        packets = []
        for flow, payload, timestamp in records:
            packet = Packet.from_five_tuple(flow, payload=payload)
            packet.timestamp_ns = timestamp
            packets.append(packet)
        buffer = io.BytesIO()
        write_pcap(buffer, packets, nanosecond=nanosecond)
        buffer.seek(0)
        restored = load_pcap(buffer)
        assert len(restored) == len(packets)
        for original, loaded in zip(packets, restored):
            assert loaded.serialize() == original.serialize()
            tick = 1.0 if nanosecond else 1000.0
            assert abs(loaded.timestamp_ns - original.timestamp_ns) <= tick


class TestNatProperties:
    @given(
        flows=st.lists(
            st.tuples(st.integers(1, 250), st.integers(1, 0xFFFF), st.integers(1, 0xFFFF)),
            min_size=1,
            max_size=20,
            unique=True,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_translation_is_injective_and_invertible(self, flows):
        nat = MazuNAT("nat", external_ip="203.0.113.77", internal_prefix="10.0.0.0/8")
        api = NullInstrumentationAPI()
        seen_external = set()
        for host, sport, dport in flows:
            packet = Packet.from_five_tuple(
                FiveTuple.make(f"10.0.0.{host % 250 + 1}", "99.0.0.1", sport, dport % 65535 + 0)
            )
            original = packet.five_tuple()
            nat.process(packet, api)
            translated = packet.five_tuple()
            key = (translated.src_ip, translated.src_port)
            # Injective: no two internal flows share an external endpoint...
            if original not in nat.mappings:
                continue
            assert key not in seen_external or nat.mappings[original] == key
            seen_external.add(key)
            # ...and the reverse table inverts the mapping.
            assert nat.reverse[(translated.src_ip, translated.src_port, original.protocol)] == original

    @given(count=st.integers(1, 30))
    @settings(max_examples=20, deadline=None)
    def test_release_then_reallocate_never_double_books(self, count):
        nat = MazuNAT("nat", port_range=(10000, 10000 + count))
        api = NullInstrumentationAPI()
        flows = []
        for index in range(count):
            packet = Packet.from_five_tuple(FiveTuple.make("10.0.0.1", "99.0.0.1", 100 + index, 80))
            flows.append(packet.five_tuple())
            nat.process(packet, api)
        # Release every other mapping, then allocate fresh flows.
        for flow in flows[::2]:
            nat.release_mapping(flow)
        allocated = set()
        for index in range(len(flows[::2])):
            packet = Packet.from_five_tuple(FiveTuple.make("10.0.0.2", "99.0.0.1", 500 + index, 80))
            nat.process(packet, api)
            port = packet.l4.src_port
            assert port not in allocated
            allocated.add(port)
        live_ports = {port for __, port in nat.mappings.values()}
        assert len(live_ports) == len(nat.mappings)
