"""Property tests: checkpoint/restore round-trips are invisible.

Two claims, over Hypothesis-chosen workloads:

1. :func:`~repro.ft.checkpoint.capture_flow` followed by
   :func:`~repro.ft.checkpoint.restore_flow` onto a fresh runtime yields
   a chain whose per-flow state and continued output match a runtime
   that was never interrupted, at *any* capture point.
2. The whole failover protocol (checkpoint cadence + log replay +
   buffered delivery) stays loss-free, duplicate-free and
   state-identical for arbitrary kill positions, checkpoint intervals
   and replica counts — :func:`verify_equivalence_failover` is the
   oracle.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.framework import SpeedyBox
from repro.ft import (
    SharedPortPool,
    TransactionalStore,
    capture_flow,
    restore_flow,
    verify_equivalence_failover,
)
from repro.nf import IPFilter, MazuNAT, Monitor
from repro.scale import chain_state_snapshot
from repro.traffic import FlowSpec, TrafficGenerator

PORTS = (25000, 60000)


def build_chain():
    return [
        MazuNAT("nat", external_ip="203.0.113.66", port_range=PORTS),
        Monitor("mon"),
        IPFilter("fw"),
    ]


def pooled_chain_factory():
    """Replica chains drawing ports from one shared pool, so the cluster
    allocates in global arrival order exactly like the single-box
    reference's private allocator."""
    pool = SharedPortPool(TransactionalStore(), port_range=PORTS)

    def chain():
        return [
            MazuNAT("nat", external_ip="203.0.113.66", port_range=PORTS, port_pool=pool),
            Monitor("mon"),
            IPFilter("fw"),
        ]

    return chain


@st.composite
def workloads(draw):
    """(packets, flow keys) for a small TCP mix with optional teardown."""
    flow_count = draw(st.integers(min_value=1, max_value=5))
    specs = []
    for i in range(flow_count):
        specs.append(
            FlowSpec.tcp(
                f"10.7.{i}.9",
                f"99.4.0.{i + 1}",
                7000 + i,
                draw(st.sampled_from([80, 443, 8080])),
                packets=draw(st.integers(min_value=2, max_value=8)),
                handshake=draw(st.booleans()),
                fin=draw(st.booleans()),
            )
        )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    packets = TrafficGenerator(specs, interleave="round_robin", seed=seed).packets()
    return packets, sorted({p.five_tuple().canonical() for p in packets})


@settings(max_examples=40, deadline=None)
@given(data=st.data(), case=workloads())
def test_capture_restore_roundtrip_matches_uninterrupted_run(data, case):
    packets, flows = case
    cut = data.draw(
        st.integers(min_value=1, max_value=len(packets) - 1), label="cut"
    )

    source = SpeedyBox(build_chain())
    reference = SpeedyBox(build_chain())
    for packet in packets[:cut]:
        source.process(packet.clone())
        reference.process(packet.clone())

    target = SpeedyBox(build_chain())
    restored_any = False
    for flow in flows:
        checkpoint = capture_flow(source, flow)
        if checkpoint is not None:
            restore_flow(checkpoint, target, list(source.nfs))
            restored_any = True

    runtime = target if restored_any else reference
    tgt_stream = [p.clone() for p in packets[cut:]]
    ref_stream = [p.clone() for p in packets[cut:]]
    for tgt_pkt, ref_pkt in zip(tgt_stream, ref_stream):
        if restored_any:
            target.process(tgt_pkt)
        reference.process(ref_pkt)
    if restored_any:
        for tgt_pkt, ref_pkt in zip(tgt_stream, ref_stream):
            assert tgt_pkt.dropped == ref_pkt.dropped
            if not tgt_pkt.dropped:
                assert tgt_pkt.serialize() == ref_pkt.serialize()
        for flow in flows:
            assert chain_state_snapshot(runtime.nfs, flow) == chain_state_snapshot(
                reference.nfs, flow
            )


@settings(max_examples=15, deadline=None)
@given(data=st.data(), case=workloads())
def test_failover_is_equivalent_for_arbitrary_schedules(data, case):
    packets, flows = case
    # Byte-identity is promised for flows established before the kill
    # (see verify_equivalence_failover); with round-robin interleave
    # every flow has sent its first packet after len(flows) arrivals.
    kill_at = data.draw(
        st.integers(min_value=len(flows), max_value=len(packets) - 1),
        label="kill_at",
    )
    interval = data.draw(
        st.sampled_from([1, 3, 8, 64, 10 * len(packets)]), label="interval"
    )
    replicas = data.draw(st.integers(min_value=2, max_value=4), label="replicas")
    recover_after = data.draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=len(packets))),
        label="recover_after",
    )
    report = verify_equivalence_failover(
        build_chain,
        packets,
        kill_at=kill_at,
        cluster_chain_factory=pooled_chain_factory(),
        replicas=replicas,
        checkpoint_interval=interval,
        recover_after=recover_after,
    )
    assert report.equivalent, report.summary()
    assert report.buffered_packets == report.delivered_packets
