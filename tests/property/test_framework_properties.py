"""The crown-jewel property: end-to-end equivalence for random chains.

Generates random service chains from the NF building blocks and random
multi-flow traffic (with handshakes, FINs, varying payloads), then runs
the original chain and SpeedyBox in lockstep and asserts packet-exact
equivalence — the §VII-C oracle, fuzzed.
"""

from hypothesis import given, settings, strategies as st

from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import DosPrevention, IPFilter, MazuNAT, Monitor, SnortIDS, SyntheticNF, VpnDecap, VpnEncap
from repro.nf.ipfilter import AclRule, Verdict
from repro.core.state_function import PayloadClass
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets

RULES_TEXT = 'alert tcp any any -> any any (msg:"fuzz"; content:"needle"; sid:1;)'


def nf_factories():
    """Each entry builds a fresh NF instance (index-named for uniqueness)."""
    return [
        lambda i: Monitor(f"mon{i}"),
        lambda i: IPFilter(f"fw{i}"),
        lambda i: IPFilter(
            f"fwdrop{i}", rules=[AclRule.make(dst_ports=(9999, 9999), verdict=Verdict.DROP)]
        ),
        lambda i: IPFilter(f"fwmark{i}", mark_dscp=(i * 7) % 64),
        lambda i: MazuNAT(f"nat{i}", external_ip=f"203.0.{i + 1}.1"),
        lambda i: SnortIDS(f"ids{i}", RULES_TEXT),
        lambda i: DosPrevention(f"dos{i}", threshold=4, mode="packets"),
        lambda i: SyntheticNF(f"rd{i}", sf_payload_class=PayloadClass.READ, sf_work_cycles=10),
        lambda i: SyntheticNF(f"wr{i}", sf_payload_class=PayloadClass.WRITE, sf_work_cycles=10),
    ]


def chain_strategy():
    factories = nf_factories()
    return st.lists(st.integers(0, len(factories) - 1), min_size=1, max_size=4)


def flows_strategy():
    payloads = st.sampled_from([b"", b"hello", b"needle in here", b"x" * 40])
    return st.lists(
        st.tuples(
            st.integers(1, 8),      # data packets
            st.booleans(),          # handshake
            st.booleans(),          # fin
            payloads,
            st.sampled_from([80, 443, 9999]),  # dst port (9999 = blacklisted)
        ),
        min_size=1,
        max_size=4,
    )


def build_chain(indices):
    factories = nf_factories()
    return [factories[index](position) for position, index in enumerate(indices)]


def build_packets(flow_params, interleave):
    specs = []
    for flow_index, (count, handshake, fin, payload, dport) in enumerate(flow_params):
        specs.append(
            FlowSpec.tcp(
                f"10.0.{flow_index}.1",
                "20.0.0.1",
                1000 + flow_index,
                dport,
                packets=count,
                payload=payload,
                handshake=handshake,
                fin=fin,
            )
        )
    return TrafficGenerator(specs, interleave=interleave).packets()


class TestRandomChainEquivalence:
    @given(
        indices=chain_strategy(),
        flow_params=flows_strategy(),
        interleave=st.sampled_from(["sequential", "round_robin"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_outputs_identical(self, indices, flow_params, interleave):
        packets = build_packets(flow_params, interleave)
        baseline = ServiceChain(build_chain(indices))
        speedybox = SpeedyBox(build_chain(indices))

        base_packets = clone_packets(packets)
        sbox_packets = clone_packets(packets)
        for packet in base_packets:
            baseline.process(packet)
        for packet in sbox_packets:
            speedybox.process(packet)

        for index, (base_pkt, sbox_pkt) in enumerate(zip(base_packets, sbox_packets)):
            assert base_pkt.dropped == sbox_pkt.dropped, f"packet {index} drop mismatch"
            if not base_pkt.dropped:
                assert base_pkt.serialize() == sbox_pkt.serialize(), f"packet {index} bytes differ"

    @given(
        indices=chain_strategy(),
        flow_params=flows_strategy(),
    )
    @settings(max_examples=30, deadline=None)
    def test_monitor_state_identical(self, indices, flow_params):
        # Append a Monitor at the end of every random chain: its counters
        # aggregate everything the chain let through.
        packets = build_packets(flow_params, "round_robin")

        def with_tail_monitor():
            return build_chain(indices) + [Monitor("tailmon")]

        baseline = ServiceChain(with_tail_monitor())
        speedybox = SpeedyBox(with_tail_monitor())
        for packet in clone_packets(packets):
            baseline.process(packet)
        for packet in clone_packets(packets):
            speedybox.process(packet)

        base_monitor = baseline.nfs[-1]
        sbox_monitor = speedybox.nfs[-1]
        assert base_monitor.counters == sbox_monitor.counters

    @given(indices=chain_strategy(), flow_params=flows_strategy())
    @settings(max_examples=30, deadline=None)
    def test_parallelism_flag_does_not_change_semantics(self, indices, flow_params):
        packets = build_packets(flow_params, "sequential")
        parallel = SpeedyBox(build_chain(indices), enable_parallelism=True)
        sequential = SpeedyBox(build_chain(indices), enable_parallelism=False)
        p_packets = clone_packets(packets)
        s_packets = clone_packets(packets)
        for packet in p_packets:
            parallel.process(packet)
        for packet in s_packets:
            sequential.process(packet)
        for p_pkt, s_pkt in zip(p_packets, s_packets):
            assert p_pkt.dropped == s_pkt.dropped
            if not p_pkt.dropped:
                assert p_pkt.serialize() == s_pkt.serialize()
