"""Property-based tests for Maglev consistent hashing (repro.nf.maglev)."""

from hypothesis import given, settings, strategies as st

from repro.net.flow import FiveTuple
from repro.nf.maglev import Backend, MaglevTable

PRIMES = [131, 257, 521, 1031]


def backends_strategy(min_size=2, max_size=8):
    return st.integers(min_size, max_size).map(
        lambda n: [Backend.make(f"b{i}", f"192.168.7.{i + 1}", 8000 + i) for i in range(n)]
    )


def flow_strategy():
    return st.builds(
        FiveTuple,
        src_ip=st.integers(0, 0xFFFFFFFF),
        dst_ip=st.integers(0, 0xFFFFFFFF),
        src_port=st.integers(0, 0xFFFF),
        dst_port=st.integers(0, 0xFFFF),
        protocol=st.just(6),
    )


class TestMaglevTableProperties:
    @given(backends=backends_strategy(), prime=st.sampled_from(PRIMES))
    @settings(max_examples=25, deadline=None)
    def test_table_fully_populated(self, backends, prime):
        table = MaglevTable(backends, table_size=prime)
        assert all(entry is not None for entry in table.entries_snapshot())

    @given(backends=backends_strategy(), prime=st.sampled_from(PRIMES[:2]))
    @settings(max_examples=25, deadline=None)
    def test_all_backends_own_slots(self, backends, prime):
        table = MaglevTable(backends, table_size=prime)
        share = table.slot_share()
        assert set(share) == {backend.name for backend in backends}
        assert sum(share.values()) == prime

    @given(backends=backends_strategy(3, 6), flow=flow_strategy())
    @settings(max_examples=50, deadline=None)
    def test_lookup_stable_across_rebuilds_without_changes(self, backends, flow):
        table = MaglevTable(backends, table_size=131)
        before = table.lookup(flow).name
        table.rebuild()
        assert table.lookup(flow).name == before

    @given(backends=backends_strategy(3, 6), flows=st.lists(flow_strategy(), min_size=30, max_size=30))
    @settings(max_examples=20, deadline=None)
    def test_failure_only_remaps_failed_backends_flows_mostly(self, backends, flows):
        """Consistent hashing: flows on surviving backends mostly stay put."""
        table = MaglevTable(backends, table_size=521)
        before = {flow: table.lookup(flow).name for flow in flows}
        victim = backends[0].name
        backends[0].healthy = False
        table.rebuild()
        after = {flow: table.lookup(flow).name for flow in flows}

        for flow in flows:
            if before[flow] == victim:
                assert after[flow] != victim  # failed backend never chosen
        survivors = [flow for flow in flows if before[flow] != victim]
        if survivors:
            moved = sum(1 for flow in survivors if after[flow] != before[flow])
            assert moved <= max(2, len(survivors) // 2)

    @given(backends=backends_strategy(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_recovery_restores_original_mapping(self, backends):
        table = MaglevTable(backends, table_size=257)
        snapshot = table.entries_snapshot()
        backends[0].healthy = False
        table.rebuild()
        backends[0].healthy = True
        table.rebuild()
        assert table.entries_snapshot() == snapshot
