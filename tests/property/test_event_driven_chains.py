"""Fuzz the event machinery: chains whose rules mutate mid-stream.

Random compositions of the three event-registering NFs (DoS threshold,
token-bucket policer, Maglev with injected backend failures) driven by
random burst traffic — baseline and SpeedyBox must stay packet-exact
through every reconsolidation.
"""

from hypothesis import given, settings, strategies as st

from repro.core.framework import ServiceChain, SpeedyBox
from repro.net import FiveTuple, Packet
from repro.nf import DosPrevention, MaglevLoadBalancer, Monitor, TokenBucketPolicer
from repro.nf.maglev import Backend


def build_chain(kinds):
    # Composition constraint (see docs/writing_nfs.md): NFs that bind
    # their flow key at record time (DoS, policer — and Maglev's own
    # conntrack) must sit upstream of rewriters whose output can mutate
    # mid-flow (a Maglev under failures), while the live-key Monitor
    # sits downstream of all rewriters.  That also caps mutable
    # rewriters at one per chain.
    kinds = sorted(kinds, key=lambda kind: {0: 0, 1: 0, 2: 1, 3: 2}[kind])
    seen_maglev = False
    deduped = []
    for kind in kinds:
        if kind == 2:
            if seen_maglev:
                continue
            seen_maglev = True
        deduped.append(kind)
    kinds = deduped
    nfs = []
    for index, kind in enumerate(kinds):
        if kind == 0:
            nfs.append(DosPrevention(f"dos{index}", threshold=5, mode="packets"))
        elif kind == 1:
            nfs.append(TokenBucketPolicer(f"pol{index}", rate_pps=100_000.0, burst=3))
        elif kind == 2:
            backends = [Backend.make(f"b{index}-{i}", f"192.168.{index + 1}.{i + 1}", 8080) for i in range(3)]
            nfs.append(MaglevLoadBalancer(f"lb{index}", backends=backends, table_size=131))
        else:
            nfs.append(Monitor(f"mon{index}"))
    return nfs


def build_packets(flow_gaps):
    packets = []
    for flow_index, gaps_us in enumerate(flow_gaps):
        timestamp = 0.0
        for gap_us in gaps_us:
            timestamp += gap_us * 1000.0
            packets.append(
                Packet.from_five_tuple(
                    FiveTuple.make(f"10.0.{flow_index}.1", "100.0.0.1", 2000 + flow_index, 80),
                    payload=b"e",
                    timestamp_ns=timestamp,
                )
            )
    packets.sort(key=lambda p: p.timestamp_ns)
    return packets


class TestEventDrivenEquivalence:
    @given(
        kinds=st.lists(st.integers(0, 3), min_size=1, max_size=3),
        flow_gaps=st.lists(
            st.lists(st.floats(1.0, 100.0), min_size=3, max_size=15),
            min_size=1,
            max_size=3,
        ),
        failure_at=st.integers(0, 20),
    )
    @settings(max_examples=50, deadline=None)
    def test_packet_exact_through_reconsolidations(self, kinds, flow_gaps, failure_at):
        packets = build_packets(flow_gaps)
        baseline = ServiceChain(build_chain(kinds))
        speedybox = SpeedyBox(build_chain(kinds))

        maglev_names = [nf.name for nf in baseline.nfs if isinstance(nf, MaglevLoadBalancer)]

        def maybe_fail(runtime, index):
            if index != failure_at or not maglev_names:
                return
            for name in maglev_names:
                maglev = next(nf for nf in runtime.nfs if nf.name == name)
                healthy = [b for b in maglev.backends if b.healthy]
                if len(healthy) > 1:
                    maglev.fail_backend(healthy[0].name)

        base_pattern = []
        for index, packet in enumerate([p.clone() for p in packets]):
            maybe_fail(baseline, index)
            baseline.process(packet)
            base_pattern.append((packet.dropped, packet.serialize() if not packet.dropped else b""))

        sbox_pattern = []
        for index, packet in enumerate([p.clone() for p in packets]):
            maybe_fail(speedybox, index)
            speedybox.process(packet)
            sbox_pattern.append((packet.dropped, packet.serialize() if not packet.dropped else b""))

        assert base_pattern == sbox_pattern

    @given(
        kinds=st.lists(st.integers(0, 3), min_size=1, max_size=3),
        gaps_us=st.lists(st.floats(1.0, 50.0), min_size=8, max_size=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_event_counts_are_consistent(self, kinds, gaps_us):
        packets = build_packets([gaps_us])
        speedybox = SpeedyBox(build_chain(kinds))
        for packet in [p.clone() for p in packets]:
            speedybox.process(packet)
        stats = speedybox.stats()
        # Reconsolidations only ever come from event triggers.
        assert stats["reconsolidations"] <= stats["events_triggered"]
        # Rule versions are bounded by 1 + triggers for the single flow.
        for fid in speedybox.global_mat.flows():
            rule = speedybox.global_mat.peek(fid)
            assert rule.version <= 1 + stats["events_triggered"]
