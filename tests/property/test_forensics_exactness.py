"""Property test: forensic decomposition is exact on every lane.

For every packet the :class:`~repro.obs.forensics.ForensicsEngine`
observes — whatever the execution lane (Lindley analytic replay, the
generator DES, the vectorized whole-batch lane) — the four components
must reproduce the packet's reported latency under IEEE float equality
in the canonical order ``((service + transfer) + stall) + queue``.
Hypothesis draws random flow populations, arrival gaps and chain
shapes; the engine runs in ``record_all`` mode so the claim is checked
for *every* packet, not a sampled stride.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.actions import Modify
from repro.core.framework import SpeedyBox
from repro.nf import IPFilter, Monitor, SyntheticNF
from repro.obs.forensics import ForensicsEngine, components_sum
from repro.platform import BessPlatform, OpenNetVMPlatform, PlatformConfig
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.columnar import uniform_batch


def assert_exact(engine: ForensicsEngine, expected_lane: str) -> None:
    assert engine.records, "record_all engine observed no packets"
    for record in engine.records:
        assert record.lane == expected_lane
        assert components_sum(
            record.queue_ns, record.service_ns, record.transfer_ns, record.stall_ns
        ) == record.latency_ns, (
            f"lane={record.lane} pkt={record.index}: "
            f"{record.queue_ns} + {record.service_ns} + "
            f"{record.transfer_ns} + {record.stall_ns} != {record.latency_ns}"
        )


def chain_for(shape: int):
    if shape == 0:
        return [IPFilter("fw0")]
    if shape == 1:
        return [IPFilter("fw0"), Monitor("mon0")]
    return [IPFilter("fw0"), Monitor("mon0"), IPFilter("fw1")]


def packet_stream(flows: int, per_flow: int):
    return TrafficGenerator(
        [FlowSpec.tcp(f"10.0.{i // 200}.{i % 200 + 1}", "10.9.0.1",
                      1024 + i, 80, packets=per_flow)
         for i in range(flows)],
        interleave="round_robin",
    ).packets()


scalar_cases = st.tuples(
    st.integers(min_value=1, max_value=10),   # flows
    st.integers(min_value=1, max_value=8),    # packets per flow
    st.integers(min_value=0, max_value=2),    # chain shape
    st.sampled_from([0.0, 50.0, 1000.0]),     # inter-arrival gap ns
    st.booleans(),                            # bess vs onvm
)


@settings(max_examples=25, deadline=None)
@given(scalar_cases)
def test_analytic_lane_components_sum_exactly(case):
    flows, per_flow, shape, gap, bess = case
    engine = ForensicsEngine(record_all=True, sample_every=1)
    platform_cls = BessPlatform if bess else OpenNetVMPlatform
    platform = platform_cls(SpeedyBox(chain_for(shape)), forensics=engine)
    platform.run_load(packet_stream(flows, per_flow), inter_arrival_ns=gap)
    assert_exact(engine, "analytic")


@settings(max_examples=25, deadline=None)
@given(scalar_cases)
def test_des_lane_components_sum_exactly(case):
    flows, per_flow, shape, gap, bess = case
    engine = ForensicsEngine(record_all=True, sample_every=1)
    platform_cls = BessPlatform if bess else OpenNetVMPlatform
    platform = platform_cls(
        SpeedyBox(chain_for(shape)),
        # Disabling the closed-form replay forces the generator DES.
        config=PlatformConfig(analytic_replay=False),
        forensics=engine,
    )
    platform.run_load(packet_stream(flows, per_flow), inter_arrival_ns=gap)
    assert_exact(engine, "des")


batch_cases = st.tuples(
    st.integers(min_value=2, max_value=40),   # flows
    st.integers(min_value=1, max_value=6),    # packets per flow
    st.integers(min_value=2, max_value=16),   # admission block
)


@settings(max_examples=15, deadline=None)
@given(batch_cases)
def test_batch_lane_components_sum_exactly(case):
    from repro.vector import HAVE_NUMPY

    flows, per_flow, block = case
    engine = ForensicsEngine(record_all=True, sample_every=1)
    chain = [
        SyntheticNF("fw", action=Modify.ttl_dec(), sf_payload_class=None),
        SyntheticNF("mon", sf_payload_class=None),
    ]
    platform = BessPlatform(
        SpeedyBox(chain),
        config=PlatformConfig(batch_lane=True),
        forensics=engine,
    )
    batch = uniform_batch(flows, per_flow, interleave="round_robin", block=block)
    platform.run_load(batch)
    # Without numpy the lane falls back to expanded per-packet plans,
    # which the engine observes through the scalar analytic path — the
    # exactness claim must hold either way.
    assert_exact(engine, "batch" if HAVE_NUMPY else "analytic")
