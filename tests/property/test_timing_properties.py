"""Property tests on the timing model: invariants that must hold for any
chain composition and any traffic."""

from hypothesis import given, settings, strategies as st

from repro.core.framework import ServiceChain, SpeedyBox
from repro.core.state_function import PayloadClass
from repro.nf import IPFilter, Monitor, SyntheticNF
from repro.platform import BessPlatform, OpenNetVMPlatform, PlatformConfig
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets


def chain_strategy():
    """Random chains of up to 5 NFs mixing payload classes and costs."""

    def build(params):
        nfs = []
        for index, (kind, cycles) in enumerate(params):
            if kind == 0:
                nfs.append(Monitor(f"mon{index}"))
            elif kind == 1:
                nfs.append(IPFilter(f"fw{index}"))
            else:
                payload_class = [PayloadClass.IGNORE, PayloadClass.READ, PayloadClass.WRITE][kind - 2]
                nfs.append(
                    SyntheticNF(f"syn{index}", sf_payload_class=payload_class, sf_work_cycles=cycles)
                )
        return nfs

    return st.lists(
        st.tuples(st.integers(0, 4), st.floats(10.0, 3000.0)),
        min_size=1,
        max_size=5,
    ).map(build)


def run_packets(platform, count=4):
    spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000, 80, packets=count, payload=b"pp")
    return platform.process_all(
        clone_packets(TrafficGenerator([spec]).packets())
    )


class TestTimingInvariants:
    @given(nfs=chain_strategy(), workers=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_work_dominates_latency_dominates_main_core(self, nfs, workers):
        platform = BessPlatform(SpeedyBox(nfs), PlatformConfig(worker_cores=workers))
        for outcome in run_packets(platform):
            assert outcome.work_cycles >= outcome.latency_cycles - 1e-9
            assert outcome.latency_cycles >= outcome.main_core_cycles - 1e-9
            assert outcome.latency_cycles > 0

    @given(nfs=chain_strategy())
    @settings(max_examples=40, deadline=None)
    def test_onvm_never_cheaper_than_bess_on_slow_path(self, nfs):
        # Ring hops cost at least as much as in-process dispatch under
        # the default model; the slow path must reflect that.
        def rebuild():
            import copy

            return copy.deepcopy(nfs)

        bess = BessPlatform(ServiceChain(rebuild()))
        onvm = OpenNetVMPlatform(ServiceChain(rebuild()))
        bess_first = run_packets(bess, count=1)[0]
        onvm_first = run_packets(onvm, count=1)[0]
        assert onvm_first.latency_cycles >= bess_first.latency_cycles - 1e-9

    @given(nfs=chain_strategy())
    @settings(max_examples=40, deadline=None)
    def test_more_workers_never_hurt_latency(self, nfs):
        import copy

        few = BessPlatform(SpeedyBox(copy.deepcopy(nfs)), PlatformConfig(worker_cores=1))
        many = BessPlatform(SpeedyBox(copy.deepcopy(nfs)), PlatformConfig(worker_cores=8))
        few_last = run_packets(few)[-1]
        many_last = run_packets(many)[-1]
        assert many_last.latency_cycles <= few_last.latency_cycles + 1e-9

    @given(nfs=chain_strategy(), batch=st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_batching_only_reduces_nic_share(self, nfs, batch):
        import copy

        unbatched = BessPlatform(ServiceChain(copy.deepcopy(nfs)))
        batched = BessPlatform(ServiceChain(copy.deepcopy(nfs)), PlatformConfig(batch_size=batch))
        u = run_packets(unbatched, count=1)[0]
        b = run_packets(batched, count=1)[0]
        model = unbatched.costs
        expected_saving = (model.nic_rx + model.nic_tx) * (1.0 - 1.0 / batch)
        assert u.work_cycles - b.work_cycles == __import__("pytest").approx(expected_saving)
