"""Property tests: schedule hazard-freedom, trace-format fuzz, events."""

from hypothesis import given, settings, strategies as st

from repro.core.actions import Drop
from repro.core.event_table import Event, EventTable
from repro.core.parallel import batches_parallelizable, build_schedule
from repro.core.state_function import PayloadClass, StateFunction, StateFunctionBatch
from repro.net import FiveTuple, Packet
from repro.net.trace import roundtrip_bytes

PAYLOAD_CLASSES = [PayloadClass.IGNORE, PayloadClass.READ, PayloadClass.WRITE]


def make_batch(index, payload_class):
    batch = StateFunctionBatch(f"nf{index}")
    batch.add(StateFunction(lambda pkt: None, payload_class, name=f"fn{index}"))
    return batch


class TestScheduleProperties:
    @given(classes=st.lists(st.sampled_from(PAYLOAD_CLASSES), min_size=0, max_size=10))
    @settings(max_examples=200, deadline=None)
    def test_no_wave_contains_a_hazard_pair(self, classes):
        batches = [make_batch(i, cls) for i, cls in enumerate(classes)]
        schedule = build_schedule(batches)
        for wave in schedule.waves:
            for i, first in enumerate(wave):
                for second in wave[i + 1 :]:
                    assert batches_parallelizable(first, second)

    @given(classes=st.lists(st.sampled_from(PAYLOAD_CLASSES), min_size=0, max_size=10))
    @settings(max_examples=200, deadline=None)
    def test_all_batches_scheduled_in_chain_order(self, classes):
        batches = [make_batch(i, cls) for i, cls in enumerate(classes)]
        schedule = build_schedule(batches)
        names = [batch.nf_name for batch in schedule.all_batches()]
        assert names == [f"nf{i}" for i in range(len(classes))]

    @given(classes=st.lists(st.sampled_from(PAYLOAD_CLASSES), min_size=1, max_size=10))
    @settings(max_examples=200, deadline=None)
    def test_waves_are_maximal_greedy(self, classes):
        # Greedy invariant: the first batch of wave k+1 conflicts with at
        # least one member of wave k (else it would have joined wave k).
        batches = [make_batch(i, cls) for i, cls in enumerate(classes)]
        schedule = build_schedule(batches)
        for previous, current in zip(schedule.waves, schedule.waves[1:]):
            head = current[0]
            assert any(not batches_parallelizable(head, member) for member in previous)

    @given(classes=st.lists(st.sampled_from(PAYLOAD_CLASSES), min_size=0, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_all_write_chain_fully_serial(self, classes):
        writers = [make_batch(i, PayloadClass.WRITE) for i in range(len(classes))]
        schedule = build_schedule(writers)
        assert schedule.max_wave_width <= 1


class TestTraceFuzz:
    @given(
        flows=st.lists(
            st.tuples(
                st.integers(0, 0xFFFFFFFF),
                st.integers(0, 0xFFFFFFFF),
                st.integers(0, 0xFFFF),
                st.integers(0, 0xFFFF),
                st.binary(max_size=100),
                st.floats(0, 1e12, allow_nan=False),
            ),
            min_size=0,
            max_size=15,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_any_packet_list_roundtrips(self, flows):
        packets = []
        for src, dst, sport, dport, payload, ts in flows:
            packet = Packet.from_five_tuple(
                FiveTuple(src, dst, sport, dport, 6), payload=payload
            )
            packet.timestamp_ns = ts
            packets.append(packet)
        restored = roundtrip_bytes(packets)
        assert len(restored) == len(packets)
        for original, loaded in zip(packets, restored):
            assert loaded.serialize() == original.serialize()
            assert loaded.timestamp_ns == original.timestamp_ns


class TestEventTableProperties:
    @given(
        fids=st.lists(st.integers(0, 50), min_size=1, max_size=40),
        checks=st.lists(st.integers(0, 50), min_size=1, max_size=40),
    )
    @settings(max_examples=100, deadline=None)
    def test_one_shot_events_fire_at_most_once(self, fids, checks):
        table = EventTable()
        for fid in fids:
            table.register(Event(fid, "nf", condition=lambda: True, update_action=Drop()))
        fired_total = 0
        for fid in checks:
            fired_total += len(table.check_fid(fid))
        # No event can fire more than once; the total is bounded by the
        # number of registered events whose fid was ever checked.
        checkable = sum(1 for fid in fids if fid in set(checks))
        assert fired_total == checkable

    @given(fids=st.lists(st.integers(0, 20), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_clear_flow_removes_everything(self, fids):
        table = EventTable()
        for fid in fids:
            table.register(Event(fid, "nf", condition=lambda: True, update_action=Drop()))
        for fid in set(fids):
            table.clear_flow(fid)
        assert len(table) == 0
        for fid in set(fids):
            assert table.check_fid(fid) == []
