"""Property tests for multi-chain steering (repro.core.director)."""

from hypothesis import given, settings, strategies as st

from repro.core.director import ServiceDirector, SteeringRule
from repro.nf import Monitor
from repro.nf.ipfilter import AclRule
from repro.traffic import FlowSpec, TrafficGenerator

CHAIN_NAMES = ["alpha", "beta", "gamma"]


def build_director(rule_ports):
    chains = {name: [Monitor(f"{name}-mon")] for name in CHAIN_NAMES}
    rules = [
        SteeringRule(AclRule.make(dst_ports=(port, port)), CHAIN_NAMES[i % len(CHAIN_NAMES)])
        for i, port in enumerate(rule_ports)
    ]
    return ServiceDirector(chains, rules, default_chain="alpha")


@st.composite
def traffic_strategy(draw):
    flow_count = draw(st.integers(1, 6))
    flows = []
    for index in range(flow_count):
        port = draw(st.sampled_from([80, 443, 53, 8080, 9999]))
        flows.append(
            FlowSpec.tcp(f"10.0.{index}.1", "20.0.0.1", 1000 + index, port,
                         packets=draw(st.integers(1, 5)), payload=b"d")
        )
    return flows


class TestDirectorProperties:
    @given(
        rule_ports=st.lists(st.sampled_from([80, 443, 53, 8080]), min_size=0, max_size=4, unique=True),
        flows=traffic_strategy(),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_packet_lands_on_exactly_one_chain(self, rule_ports, flows):
        director = build_director(rule_ports)
        packets = TrafficGenerator(flows, interleave="round_robin").packets()
        for packet in packets:
            director.process(packet)
        assert sum(director.per_chain_packets.values()) == len(packets)
        # Conservation at the monitor level too: every chain counted
        # exactly the packets steered to it.
        for name in CHAIN_NAMES:
            monitor = director.runtime(name).nfs[0]
            assert monitor.total_packets() == director.per_chain_packets[name]

    @given(
        rule_ports=st.lists(st.sampled_from([80, 443, 53]), min_size=1, max_size=3, unique=True),
        flows=traffic_strategy(),
    )
    @settings(max_examples=40, deadline=None)
    def test_flow_never_splits_across_chains(self, rule_ports, flows):
        director = build_director(rule_ports)
        packets = TrafficGenerator(flows, interleave="round_robin").packets()
        chain_of_flow = {}
        for packet in packets:
            flow = packet.five_tuple()
            result = director.process(packet)
            if flow in chain_of_flow:
                assert result.chain == chain_of_flow[flow]
            chain_of_flow[flow] = result.chain

    @given(flows=traffic_strategy())
    @settings(max_examples=30, deadline=None)
    def test_no_rules_everything_defaults(self, flows):
        director = build_director([])
        packets = TrafficGenerator(flows).packets()
        for packet in packets:
            assert director.process(packet).chain == "alpha"
