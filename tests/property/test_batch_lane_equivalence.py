"""Fuzzed batch-lane equivalence (the §VII-C oracle, columnar edition).

Random chains (header-action, stateful and dropping NFs), random flow
populations (TCP lifecycle flags, payload mixes), random interleaves,
table capacities and admission-block sizes — the whole-batch lane's
result must be numerically identical to the legacy per-packet oracle on
every draw: LoadResult (latency list element for element), runtime
stats, and the audit stream sans timestamps.
"""

from hypothesis import given, settings, strategies as st

from repro.core.actions import Modify
from repro.core.framework import SpeedyBox
from repro.core.state_function import PayloadClass
from repro.nf import IPFilter, Monitor, SyntheticNF
from repro.nf.ipfilter import AclRule, Verdict
from repro.obs.audit import AuditLog
from repro.platform import BessPlatform, OpenNetVMPlatform, PlatformConfig
from repro.traffic.columnar import batch_from_specs
from repro.traffic.generator import FlowSpec

PLATFORMS = {"bess": BessPlatform, "onvm": OpenNetVMPlatform}


def nf_factories():
    return [
        lambda i: SyntheticNF(f"ttl{i}", action=Modify.ttl_dec(), sf_payload_class=None),
        lambda i: SyntheticNF(
            f"mark{i}", action=Modify.set(dst_port=8080), sf_payload_class=None
        ),
        lambda i: SyntheticNF(f"fwd{i}", sf_payload_class=None),
        lambda i: SyntheticNF(f"rd{i}", sf_payload_class=PayloadClass.READ, sf_work_cycles=5),
        lambda i: Monitor(f"mon{i}"),
        lambda i: IPFilter(f"fw{i}"),
        lambda i: IPFilter(
            f"drop{i}",
            rules=[AclRule.make(dst_ports=(9999, 9999), verdict=Verdict.DROP)],
        ),
    ]


def build_chain(indices):
    factories = nf_factories()
    return [factories[index](position) for position, index in enumerate(indices)]


def build_batch(flow_params, interleave, seed):
    specs = []
    for flow_index, (count, tcp, handshake, fin, payload, dport) in enumerate(flow_params):
        if tcp:
            specs.append(
                FlowSpec.tcp(
                    f"10.0.{flow_index % 200}.{flow_index % 250 + 1}",
                    "20.0.0.1",
                    1000 + flow_index,
                    dport,
                    packets=count,
                    payload=payload,
                    handshake=handshake,
                    fin=fin,
                )
            )
        else:
            specs.append(
                FlowSpec.udp(
                    f"10.0.{flow_index % 200}.{flow_index % 250 + 1}",
                    "20.0.0.1",
                    1000 + flow_index,
                    dport,
                    packets=count,
                    payload=payload,
                )
            )
    return batch_from_specs(specs, interleave=interleave, seed=seed)


def run_leg(platform_cls, indices, batch, capacity, batch_lane):
    audit = AuditLog()
    kwargs = {}
    if capacity is not None:
        kwargs = dict(max_tracked_flows=capacity, max_flows=capacity)
    runtime = SpeedyBox(build_chain(indices), audit=audit, **kwargs)
    platform = platform_cls(runtime, config=PlatformConfig(batch_lane=batch_lane))
    result = platform.run_load(batch)
    events = [{k: v for k, v in e.items() if k != "ts"} for e in audit.events()]
    return result, runtime, events


flow_strategy = st.lists(
    st.tuples(
        st.integers(0, 6),                     # data packets (0 = lifecycle only)
        st.booleans(),                         # tcp?
        st.booleans(),                         # handshake (tcp only)
        st.booleans(),                         # fin (tcp only)
        st.sampled_from([b"", b"hello", b"x" * 33]),
        st.sampled_from([80, 443, 9999]),      # 9999 = dropped by `drop` NFs
    ),
    min_size=1,
    max_size=12,
)


@given(
    indices=st.lists(st.integers(0, len(nf_factories()) - 1), min_size=1, max_size=4),
    flow_params=flow_strategy,
    interleave=st.sampled_from(["sequential", "round_robin", "shuffled"]),
    seed=st.integers(0, 2**16),
    capacity=st.sampled_from([None, 4, 16]),
    platform_name=st.sampled_from(["bess", "onvm"]),
)
@settings(max_examples=50, deadline=None)
def test_batch_lane_equals_legacy(indices, flow_params, interleave, seed, capacity, platform_name):
    flow_params = [
        (count, tcp, handshake and tcp, fin and tcp, payload, dport)
        for (count, tcp, handshake, fin, payload, dport) in flow_params
    ]
    if all(
        count + (1 if hs else 0) + (1 if fin else 0) == 0
        for (count, __, hs, fin, ___, ____) in flow_params
    ):
        return  # zero packets: nothing to compare
    batch = build_batch(flow_params, interleave, seed)
    platform_cls = PLATFORMS[platform_name]

    fast, fast_rt, fast_audit = run_leg(platform_cls, indices, batch, capacity, True)
    slow, slow_rt, slow_audit = run_leg(platform_cls, indices, batch, capacity, False)

    assert fast.offered == slow.offered
    assert fast.delivered == slow.delivered
    assert fast.dropped == slow.dropped
    assert fast.makespan_ns == slow.makespan_ns
    assert list(fast.latencies_ns) == list(slow.latencies_ns)
    assert fast_rt.stats() == slow_rt.stats()
    assert fast_audit == slow_audit
