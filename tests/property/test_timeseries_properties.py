"""Property: ring-buffer eviction is forgetful, never lossy-in-place.

Windows are evicted whole — eviction must never change any retained
window's totals, percentiles, or identity, and the run totals must be
independent of the ring capacity.  We check this by replaying one
random dispatch stream into an effectively-unbounded ring and a tiny
ring and comparing the tiny ring's retained suffix window-by-window.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import TimeSeries


records = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0),  # arrival gap (ns)
        st.one_of(st.none(), st.floats(min_value=1.0, max_value=1e6)),  # latency
        st.sampled_from(["ok", "drop", "buffer"]),
        st.integers(min_value=0, max_value=3),  # replica
    ),
    min_size=1,
    max_size=200,
)


def replay(ts, stream):
    clock = 0.0
    for gap, latency, outcome, replica in stream:
        clock += gap
        ts.record(
            clock,
            latency_ns=latency,
            replica=replica,
            dropped=(outcome == "drop"),
            buffered=(outcome == "buffer"),
        )
    ts.finish()


def window_key(window):
    return (
        window.index,
        window.start_ns,
        window.end_ns,
        window.packets,
        window.drops,
        window.buffered,
        tuple(window.latencies),
        tuple(
            (str(rid), rw.packets, rw.drops, rw.buffered, tuple(rw.latencies))
            for rid, rw in sorted(window.replicas.items(), key=lambda kv: str(kv[0]))
        ),
    )


@settings(max_examples=60, deadline=None)
@given(stream=records, capacity=st.integers(min_value=1, max_value=8),
       window=st.sampled_from([("ns", 25.0), ("ns", 100.0), ("pkt", 3), ("pkt", 7)]))
def test_eviction_never_changes_retained_windows(stream, capacity, window):
    kind, size = window
    kwargs = {"window_ns": size} if kind == "ns" else {"window_packets": size}
    full = TimeSeries(capacity=10_000, **kwargs)
    ring = TimeSeries(capacity=capacity, **kwargs)
    replay(full, stream)
    replay(ring, stream)

    # Same windows closed, same totals, regardless of ring size.
    assert ring.windows_closed == full.windows_closed
    assert ring.total_packets == full.total_packets == len(stream)
    assert ring.total_drops == full.total_drops
    assert ring.total_buffered == full.total_buffered

    # The ring retains exactly the newest suffix, bit-for-bit.
    assert len(ring.windows) == min(capacity, full.windows_closed)
    assert ring.evicted == full.windows_closed - len(ring.windows)
    suffix = list(full.windows)[-len(ring.windows):]
    assert [window_key(w) for w in ring.windows] == [window_key(w) for w in suffix]
