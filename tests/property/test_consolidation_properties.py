"""Property-based tests: consolidation correctness (repro.core.consolidation).

The central invariant of §V-B: for ANY list of header actions, applying
the consolidated action to a packet produces exactly the same packet (or
the same drop decision) as applying the actions sequentially.
"""

from hypothesis import given, settings, strategies as st

from repro.core.actions import Decap, Drop, Encap, FieldOp, Forward, Modify, apply_sequentially
from repro.core.consolidation import consolidate_header_actions, xor_merge_bytes
from repro.net import AuthenticationHeader, FiveTuple, Packet, PacketField, VxlanHeader

# -- strategies ---------------------------------------------------------------

_SETTABLE_FIELDS = {
    PacketField.SRC_IP: st.integers(0, 0xFFFFFFFF),
    PacketField.DST_IP: st.integers(0, 0xFFFFFFFF),
    PacketField.SRC_PORT: st.integers(0, 0xFFFF),
    PacketField.DST_PORT: st.integers(0, 0xFFFF),
    PacketField.DSCP: st.integers(0, 63),
    PacketField.SRC_MAC: st.integers(0, 0xFFFFFFFFFFFF),
    PacketField.DST_MAC: st.integers(0, 0xFFFFFFFFFFFF),
}


def modify_strategy():
    def build(entries):
        return Modify({field: FieldOp.set(value) for field, value in entries.items()})

    return st.dictionaries(
        st.sampled_from(sorted(_SETTABLE_FIELDS, key=lambda f: f.value)),
        st.integers(0, 0xFFFF),
        min_size=1,
        max_size=3,
    ).map(
        lambda d: Modify(
            {field: FieldOp.set(value if field is not PacketField.DSCP else value % 64) for field, value in d.items()}
        )
    )


def ttl_dec_strategy():
    return st.integers(1, 3).map(Modify.ttl_dec)


def encap_strategy():
    return st.one_of(
        st.integers(0, 0xFFFF).map(lambda spi: Encap(AuthenticationHeader(spi=spi))),
        st.integers(0, 0xFFFFFF).map(lambda vni: Encap(VxlanHeader(vni=vni))),
    )


def action_lists(allow_drop=True):
    base = [
        st.just(Forward()),
        modify_strategy(),
        ttl_dec_strategy(),
        encap_strategy(),
        st.just(Decap()),
    ]
    if allow_drop:
        base.append(st.just(Drop()))
    return st.lists(st.one_of(*base), min_size=0, max_size=8)


def make_packet(initial_encaps=0):
    packet = Packet.from_five_tuple(
        FiveTuple.make("10.0.0.1", "10.0.0.2", 1234, 80), payload=b"prop"
    )
    packet.ip.ttl = 64
    for index in range(initial_encaps):
        packet.push_encap(AuthenticationHeader(spi=1000 + index))
    return packet


def sanitize(actions, initial_encaps):
    """Keep only action prefixes that never decap below the arrival depth
    plus pushed headers — mirrors what a real chain could legally do."""
    depth = initial_encaps
    legal = []
    for action in actions:
        if isinstance(action, Decap):
            if depth == 0:
                continue  # an NF cannot decap a header that is not there
            depth -= 1
        elif isinstance(action, Encap):
            depth += 1
        legal.append(action)
    return legal


# -- properties ----------------------------------------------------------------


class TestConsolidationEquivalence:
    @given(actions=action_lists(), initial_encaps=st.integers(0, 2))
    @settings(max_examples=300, deadline=None)
    def test_consolidated_equals_sequential(self, actions, initial_encaps):
        actions = sanitize(actions, initial_encaps)

        sequential = make_packet(initial_encaps)
        apply_sequentially(sequential, actions)

        consolidated_packet = make_packet(initial_encaps)
        consolidated = consolidate_header_actions(actions)
        consolidated.apply(consolidated_packet)

        assert consolidated_packet.dropped == sequential.dropped
        if not sequential.dropped:
            sequential.finalize()
            assert consolidated_packet.serialize() == sequential.serialize()

    @given(actions=action_lists(allow_drop=False))
    @settings(max_examples=200, deadline=None)
    def test_consolidation_is_idempotent_summary(self, actions):
        actions = sanitize(actions, 0)
        first = consolidate_header_actions(actions)
        # Re-consolidating the consolidation's own pieces changes nothing.
        again = consolidate_header_actions(actions)
        assert first.drop == again.drop
        assert first.field_ops == again.field_ops
        assert len(first.net_encaps) == len(again.net_encaps)
        assert len(first.leading_decaps) == len(again.leading_decaps)

    @given(actions=action_lists())
    @settings(max_examples=200, deadline=None)
    def test_drop_dominance(self, actions):
        consolidated = consolidate_header_actions(actions)
        has_drop = any(isinstance(a, Drop) for a in actions)
        if consolidated.drop:
            assert has_drop
        # A drop anywhere always wins: sequential semantics stop there.
        if has_drop:
            packet = make_packet(2)
            legal = sanitize(actions, 2)
            apply_sequentially(packet, legal)
            consolidated_legal = consolidate_header_actions(legal)
            assert consolidated_legal.drop == packet.dropped

    @given(
        hops=st.lists(st.integers(1, 3), min_size=0, max_size=5),
        start_ttl=st.integers(16, 255),
    )
    @settings(max_examples=100, deadline=None)
    def test_ttl_adjustments_sum(self, hops, start_ttl):
        actions = [Modify.ttl_dec(hop) for hop in hops]
        packet = make_packet()
        packet.ip.ttl = start_ttl
        total = sum(hops)
        if total > start_ttl:
            return  # would underflow the field; not a legal chain
        consolidate_header_actions(actions).apply(packet)
        assert packet.ip.ttl == start_ttl - total


class TestFieldOpAlgebra:
    op_strategy = st.one_of(
        st.integers(0, 1000).map(FieldOp.set),
        st.integers(-50, 50).map(FieldOp.adjust),
    )

    @given(ops=st.lists(op_strategy, min_size=1, max_size=6), start=st.integers(0, 1000))
    @settings(max_examples=200, deadline=None)
    def test_composition_associates_with_application(self, ops, start):
        composed = ops[0]
        for op in ops[1:]:
            composed = composed.then(op)
        sequential = start
        for op in ops:
            sequential = op.apply(sequential)
        assert composed.apply(start) == sequential

    @given(a=op_strategy, b=op_strategy, c=op_strategy, start=st.integers(0, 1000))
    @settings(max_examples=200, deadline=None)
    def test_then_is_associative(self, a, b, c, start):
        left = a.then(b).then(c)
        right = a.then(b.then(c))
        assert left.apply(start) == right.apply(start)


class TestXorMergeProperties:
    @given(
        original=st.binary(min_size=8, max_size=8),
        values=st.lists(st.binary(min_size=2, max_size=2), min_size=1, max_size=3),
    )
    @settings(max_examples=200, deadline=None)
    def test_merge_on_disjoint_ranges_equals_patchwork(self, original, values):
        # Each output rewrites a distinct 2-byte window of the original.
        outputs = []
        expected = bytearray(original)
        for index, value in enumerate(values[:3]):
            out = bytearray(original)
            out[index * 2 : index * 2 + 2] = value
            outputs.append(bytes(out))
            expected[index * 2 : index * 2 + 2] = value
        merged = xor_merge_bytes(original, outputs)
        assert merged == bytes(expected)
