"""Unit tests for the packet-path tracer (repro.obs.trace)."""

import json

import pytest

from repro.obs import NULL_TRACER, PacketTracer
from repro.obs.trace import Span


class TestSpan:
    def test_end_ns(self):
        span = Span("nf:fw", "core0", start_ns=100, dur_ns=50)
        assert span.end_ns == 150

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Span("bad", "core0", start_ns=100, dur_ns=-1)


class TestRecording:
    def test_one_shot_span(self):
        tracer = PacketTracer()
        span = tracer.span("classify", "bess:main", 0, 120, packet=0, cycles=240)
        assert span.depth == 0
        assert span.args == {"packet": 0, "cycles": 240}
        assert len(tracer) == 1

    def test_begin_end_nesting_depth(self):
        tracer = PacketTracer()
        tracer.begin("outer", "core0", 0)
        tracer.begin("inner", "core0", 10)
        inner = tracer.end("core0", 30)
        outer = tracer.end("core0", 100)
        assert inner.name == "inner"
        assert inner.depth == 1
        assert inner.start_ns == 10 and inner.dur_ns == 20
        assert outer.name == "outer"
        assert outer.depth == 0
        assert outer.dur_ns == 100
        assert tracer.open_depth == 0

    def test_nesting_is_per_track(self):
        tracer = PacketTracer()
        tracer.begin("a", "core0", 0)
        tracer.begin("b", "core1", 5)
        # Closing core1 pops its own stack, not core0's.
        assert tracer.end("core1", 15).name == "b"
        assert tracer.open_depth == 1
        assert tracer.end("core0", 20).name == "a"

    def test_one_shot_span_inside_open_span_nests(self):
        tracer = PacketTracer()
        tracer.begin("hop", "core0", 0)
        child = tracer.span("transport", "core0", 2, 3)
        tracer.end("core0", 10)
        assert child.depth == 1

    def test_end_without_begin_raises(self):
        tracer = PacketTracer()
        with pytest.raises(ValueError):
            tracer.end("core0", 10)

    def test_end_merges_extra_args(self):
        tracer = PacketTracer()
        tracer.begin("hop", "core0", 0, packet=3)
        span = tracer.end("core0", 10, verdict="drop")
        assert span.args == {"packet": 3, "verdict": "drop"}

    def test_tracks_in_first_use_order(self):
        tracer = PacketTracer()
        tracer.span("a", "t2", 0, 1)
        tracer.instant("m", "t0", 2)
        tracer.counter("occupancy", "t1", 3, 4)
        tracer.span("b", "t2", 5, 1)
        assert tracer.tracks() == ["t2", "t0", "t1"]

    def test_reset(self):
        tracer = PacketTracer()
        tracer.span("a", "t", 0, 1)
        tracer.begin("open", "t", 2)
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.open_depth == 0
        assert tracer.tracks() == []


class TestDisabledMode:
    def test_null_tracer_records_nothing(self):
        NULL_TRACER.span("a", "t", 0, 1)
        NULL_TRACER.begin("b", "t", 0)
        assert NULL_TRACER.end("t", 5) is None  # no stack, no error
        NULL_TRACER.instant("i", "t", 0)
        NULL_TRACER.counter("c", "t", 0, 1)
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.tracks() == []


class TestJsonlExport:
    def test_jsonl_lines_parse_and_cover_all_record_types(self):
        tracer = PacketTracer()
        tracer.span("hop", "core0", 0, 10, packet=1)
        tracer.instant("drop", "core0", 4)
        tracer.counter("occupancy", "ring0", 5, 3)
        lines = tracer.to_jsonl().splitlines()
        records = [json.loads(line) for line in lines]
        assert {record["type"] for record in records} == {"span", "instant", "counter"}
        span = next(r for r in records if r["type"] == "span")
        assert span["name"] == "hop" and span["dur_ns"] == 10.0

    def test_write_jsonl(self, tmp_path):
        tracer = PacketTracer()
        tracer.span("hop", "core0", 0, 10)
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(path) == 1
        assert json.loads(path.read_text().strip())["type"] == "span"


class TestChromeExport:
    def make_tracer(self):
        tracer = PacketTracer()
        tracer.span("classify", "bess:main", 1000, 500, packet=0)
        tracer.span("nf:fw", "bess:main", 1500, 2000, packet=0)
        tracer.instant("event_fired", "bess:main", 3000)
        tracer.counter("occupancy", "ring:tx", 2000, 2)
        return tracer

    def test_round_trip_is_valid_json(self, tmp_path):
        tracer = self.make_tracer()
        path = tmp_path / "trace.json"
        count = tracer.write_chrome(path)
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count
        assert loaded["displayTimeUnit"] == "ns"

    def test_timed_events_have_monotonic_ts(self):
        trace = self.make_tracer().to_chrome()
        timed = [event for event in trace["traceEvents"] if event["ph"] != "M"]
        timestamps = [event["ts"] for event in timed]
        assert timestamps == sorted(timestamps)

    def test_metadata_names_every_track(self):
        tracer = self.make_tracer()
        trace = tracer.to_chrome()
        metadata = [event for event in trace["traceEvents"] if event["ph"] == "M"]
        assert {event["args"]["name"] for event in metadata} == set(tracer.tracks())
        assert all(event["name"] == "thread_name" for event in metadata)
        # Distinct tid per track, shared pid.
        assert len({event["tid"] for event in metadata}) == len(metadata)
        assert {event["pid"] for event in metadata} == {0}

    def test_units_are_microseconds(self):
        trace = self.make_tracer().to_chrome()
        classify = next(e for e in trace["traceEvents"] if e.get("name") == "classify")
        assert classify["ph"] == "X"
        assert classify["ts"] == 1.0  # 1000 ns
        assert classify["dur"] == 0.5  # 500 ns

    def test_event_phases(self):
        trace = self.make_tracer().to_chrome()
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert phases == {"M", "X", "i", "C"}
        counter = next(e for e in trace["traceEvents"] if e["ph"] == "C")
        assert counter["args"] == {"occupancy": 2.0}
