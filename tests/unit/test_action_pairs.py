"""Systematic pairwise consolidation: every ordered pair of header-action
kinds must consolidate equivalently to sequential application."""

import itertools

import pytest

from repro.core.actions import Decap, Drop, Encap, Forward, Modify, apply_sequentially
from repro.core.consolidation import ConsolidationError, consolidate_header_actions
from repro.net import AuthenticationHeader, FiveTuple, Packet, VxlanHeader
from repro.net.addresses import ip_to_int

ACTION_FACTORIES = {
    "forward": lambda: Forward(),
    "drop": lambda: Drop(),
    "modify_ip": lambda: Modify.set(dst_ip=ip_to_int("9.9.9.9")),
    "modify_port": lambda: Modify.set(dst_port=4242),
    "modify_same_field": lambda: Modify.set(dst_ip=ip_to_int("8.8.8.8")),
    "ttl_dec": lambda: Modify.ttl_dec(),
    "encap_ah": lambda: Encap(AuthenticationHeader(spi=5)),
    "encap_vxlan": lambda: Encap(VxlanHeader(vni=7)),
    "decap": lambda: Decap(),
}

PAIRS = list(itertools.product(sorted(ACTION_FACTORIES), repeat=2))


def make_packet(with_encap=False):
    packet = Packet.from_five_tuple(
        FiveTuple.make("10.0.0.1", "10.0.0.2", 1234, 80), payload=b"pair"
    )
    if with_encap:
        packet.push_encap(AuthenticationHeader(spi=99))
    return packet


def legal(actions, initial_depth):
    depth = initial_depth
    filtered = []
    for action in actions:
        if isinstance(action, Decap):
            if depth == 0:
                continue
            depth -= 1
        elif isinstance(action, Encap):
            depth += 1
        filtered.append(action)
    return filtered


@pytest.mark.parametrize("first,second", PAIRS, ids=[f"{a}->{b}" for a, b in PAIRS])
@pytest.mark.parametrize("initial_encap", [False, True], ids=["bare", "pre-encapped"])
def test_pair_consolidates_equivalently(first, second, initial_encap):
    actions = legal(
        [ACTION_FACTORIES[first](), ACTION_FACTORIES[second]()],
        1 if initial_encap else 0,
    )

    sequential = make_packet(initial_encap)
    apply_sequentially(sequential, actions)

    consolidated_packet = make_packet(initial_encap)
    try:
        consolidated = consolidate_header_actions(actions)
    except ConsolidationError:
        # Only typed-decap mismatches may raise; the generic Decap here
        # never should.
        pytest.fail(f"unexpected ConsolidationError for {first} -> {second}")
    consolidated.apply(consolidated_packet)

    assert consolidated_packet.dropped == sequential.dropped
    if not sequential.dropped:
        sequential.finalize()
        assert consolidated_packet.serialize() == sequential.serialize()
