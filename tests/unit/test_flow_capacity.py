"""Unit tests for Global MAT capacity management (LRU eviction)."""

import pytest

from repro.core.actions import Forward
from repro.core.framework import PathTaken, SpeedyBox
from repro.core.global_mat import GlobalMAT
from repro.core.local_mat import LocalMAT
from repro.nf import Monitor
from repro.traffic import FlowSpec, TrafficGenerator


def local_rule(nf_name, fid):
    mat = LocalMAT(nf_name)
    mat.add_header_action(fid, Forward())
    return mat.rule_for(fid)


def install(gmat, fid):
    gmat.build_rule(fid, [("nf", local_rule("nf", fid))])


class TestGlobalMATCapacity:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            GlobalMAT(capacity=0)

    def test_unbounded_by_default(self):
        gmat = GlobalMAT()
        for fid in range(100):
            install(gmat, fid)
        assert len(gmat) == 100

    def test_lru_eviction_order(self):
        gmat = GlobalMAT(capacity=3)
        for fid in (1, 2, 3):
            install(gmat, fid)
        gmat.lookup(1)  # refresh flow 1
        install(gmat, 4)  # evicts flow 2, the least recently used
        assert set(gmat.flows()) == {1, 3, 4}
        assert gmat.evictions == 1

    def test_newly_installed_rule_never_evicted(self):
        gmat = GlobalMAT(capacity=1)
        install(gmat, 1)
        install(gmat, 2)
        assert set(gmat.flows()) == {2}

    def test_on_evict_callback(self):
        evicted = []
        gmat = GlobalMAT(capacity=2, on_evict=evicted.append)
        for fid in (1, 2, 3, 4):
            install(gmat, fid)
        assert evicted == [1, 2]

    def test_reinstall_does_not_grow(self):
        gmat = GlobalMAT(capacity=2)
        install(gmat, 1)
        install(gmat, 1)
        install(gmat, 1)
        assert len(gmat) == 1
        assert gmat.evictions == 0


class TestSpeedyBoxMaxFlows:
    def flow_packets(self, sport, n=3):
        spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", sport, 80, packets=n, payload=b"x")
        return TrafficGenerator([spec]).packets()

    def test_evicted_flow_falls_back_and_reconsolidates(self):
        sbox = SpeedyBox([Monitor("m")], max_flows=2)
        # Establish three flows: the first flow's rule gets evicted.
        for sport in (1000, 2000, 3000):
            for packet in self.flow_packets(sport):
                sbox.process(packet)
        assert len(sbox.global_mat) == 2
        assert sbox.global_mat.evictions >= 1

        # The evicted flow's next packet takes the original path, then
        # the one after is fast again.
        paths = [sbox.process(p).path for p in self.flow_packets(1000, n=2)]
        assert paths[0] is PathTaken.ORIGINAL
        assert paths[1] is PathTaken.FAST

    def test_eviction_clears_local_records(self):
        sbox = SpeedyBox([Monitor("m")], max_flows=1)
        first = self.flow_packets(1000)
        second = self.flow_packets(2000)
        fid_first = None
        for packet in first:
            fid_first = sbox.process(packet).fid
        for packet in second:
            sbox.process(packet)
        assert fid_first not in sbox.local_mats["m"]
        assert sbox.event_table.events_for(fid_first) == []

    def test_monitor_counters_still_exact_under_pressure(self):
        # Equivalence survives thrashing: counters match a baseline even
        # when every flow keeps evicting the others.
        from repro.core.framework import ServiceChain
        from repro.traffic.generator import clone_packets

        flows = [
            FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000 + i, 80, packets=4, payload=b"y")
            for i in range(5)
        ]
        packets = TrafficGenerator(flows, interleave="round_robin").packets()
        baseline = ServiceChain([Monitor("m")])
        sbox = SpeedyBox([Monitor("m")], max_flows=2)
        for packet in clone_packets(packets):
            baseline.process(packet)
        for packet in clone_packets(packets):
            sbox.process(packet)
        assert baseline.nfs[0].counters == sbox.nfs[0].counters

    def test_reset_preserves_max_flows(self):
        sbox = SpeedyBox([Monitor("m")], max_flows=2)
        sbox.reset()
        assert sbox.global_mat.capacity == 2
