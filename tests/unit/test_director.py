"""Unit tests for multi-chain service direction (repro.core.director)."""

import pytest

from repro.core.director import ServiceDirector, SteeringRule
from repro.core.framework import PathTaken, ServiceChain, SpeedyBox
from repro.nf import IPFilter, Monitor, SnortIDS
from repro.nf.ipfilter import AclRule
from repro.traffic import FlowSpec, TrafficGenerator


def chains():
    return {
        "web": [Monitor("web-mon"), IPFilter("web-fw")],
        "dns": [Monitor("dns-mon")],
    }


def rules():
    return [
        SteeringRule(AclRule.make(dst_ports=(80, 443)), "web"),
        SteeringRule(AclRule.make(dst_ports=(53, 53)), "dns"),
    ]


def flow_packets(dport, packets=3, sport=1000):
    spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", sport, dport, packets=packets, payload=b"x")
    return TrafficGenerator([spec]).packets()


class TestConstruction:
    def test_needs_chains(self):
        with pytest.raises(ValueError):
            ServiceDirector({}, [])

    def test_rule_must_target_known_chain(self):
        with pytest.raises(ValueError):
            ServiceDirector(chains(), [SteeringRule(AclRule.make(), "nope")])

    def test_default_chain_validated(self):
        with pytest.raises(ValueError):
            ServiceDirector(chains(), [], default_chain="nope")

    def test_speedybox_per_chain(self):
        director = ServiceDirector(chains(), rules())
        assert isinstance(director.runtime("web"), SpeedyBox)

    def test_baseline_mode(self):
        director = ServiceDirector(chains(), rules(), enable_speedybox=False)
        assert isinstance(director.runtime("web"), ServiceChain)


class TestSteering:
    def test_rules_route_by_port(self):
        director = ServiceDirector(chains(), rules())
        web = director.process(flow_packets(80)[0])
        dns = director.process(flow_packets(53, sport=2000)[0])
        assert web.chain == "web"
        assert dns.chain == "dns"

    def test_unmatched_goes_to_default(self):
        director = ServiceDirector(chains(), rules(), default_chain="web")
        other = director.process(flow_packets(9999)[0])
        assert other.chain == "web"

    def test_first_rule_wins(self):
        overlapping = [
            SteeringRule(AclRule.make(dst_ports=(0, 65535)), "dns"),
            SteeringRule(AclRule.make(dst_ports=(80, 80)), "web"),
        ]
        director = ServiceDirector(chains(), overlapping)
        assert director.process(flow_packets(80)[0]).chain == "dns"

    def test_flow_pinned_across_rule_edits(self):
        director = ServiceDirector(chains(), rules())
        packets = flow_packets(80, packets=4)
        first = director.process(packets[0])
        assert first.chain == "web"
        # Re-steer port 80 to the dns chain mid-flow: the live flow must
        # stay pinned to its original chain.
        director.add_rule(SteeringRule(AclRule.make(dst_ports=(80, 80)), "dns"), position=0)
        for packet in packets[1:]:
            assert director.process(packet).chain == "web"
        # A brand new flow follows the new rule.
        assert director.process(flow_packets(80, sport=7000)[0]).chain == "dns"

    def test_fin_unpins(self):
        director = ServiceDirector(chains(), rules())
        packets = flow_packets(80, packets=2) + TrafficGenerator(
            [FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000, 80, packets=0, fin=True)]
        ).packets()
        for packet in packets:
            director.process(packet)
        assert not director._pins


class TestIsolation:
    def test_chains_consolidate_independently(self):
        director = ServiceDirector(chains(), rules())
        for packet in flow_packets(80, packets=3):
            director.process(packet)
        for packet in flow_packets(53, packets=3, sport=2000):
            director.process(packet)
        web_runtime = director.runtime("web")
        dns_runtime = director.runtime("dns")
        assert len(web_runtime.global_mat) == 1
        assert len(dns_runtime.global_mat) == 1
        # MATs are per-chain: the web chain never saw the dns flow.
        assert web_runtime.classifier.packets_classified == 3
        assert dns_runtime.classifier.packets_classified == 3

    def test_per_chain_fast_paths(self):
        director = ServiceDirector(chains(), rules())
        web_reports = [director.process(p).report for p in flow_packets(80, packets=3)]
        assert [r.path for r in web_reports] == [
            PathTaken.ORIGINAL, PathTaken.FAST, PathTaken.FAST,
        ]

    def test_stats_per_chain(self):
        director = ServiceDirector(chains(), rules())
        for packet in flow_packets(80, packets=2):
            director.process(packet)
        stats = director.stats()
        assert stats["web"]["packets"] == 2
        assert stats["dns"]["packets"] == 0

    def test_reset(self):
        director = ServiceDirector(chains(), rules())
        for packet in flow_packets(80, packets=2):
            director.process(packet)
        director.reset()
        assert director.per_chain_packets == {"web": 0, "dns": 0}
        assert len(director.runtime("web").global_mat) == 0
