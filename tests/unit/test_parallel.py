"""Unit tests for state-function parallelism (repro.core.parallel, Table I)."""

from repro.core.parallel import (
    batches_parallelizable,
    build_schedule,
    payload_classes_parallelizable,
)
from repro.core.state_function import PayloadClass, StateFunction, StateFunctionBatch
from repro.net import FiveTuple, Packet

W, R, I = PayloadClass.WRITE, PayloadClass.READ, PayloadClass.IGNORE


def make_batch(nf_name, payload_class):
    batch = StateFunctionBatch(nf_name)
    batch.add(StateFunction(lambda pkt: None, payload_class, name=nf_name))
    return batch


class TestTableIRule:
    def test_write_write_conflicts(self):
        assert not payload_classes_parallelizable(W, W)

    def test_write_read_conflicts_both_directions(self):
        # "if batch1 writes the payload, they cannot be parallelized
        # unless batch2 ignores the payload" — and symmetrically.
        assert not payload_classes_parallelizable(W, R)
        assert not payload_classes_parallelizable(R, W)

    def test_write_ignore_parallelizable(self):
        assert payload_classes_parallelizable(W, I)
        assert payload_classes_parallelizable(I, W)

    def test_read_read_parallelizable(self):
        assert payload_classes_parallelizable(R, R)

    def test_read_ignore_parallelizable(self):
        assert payload_classes_parallelizable(R, I)
        assert payload_classes_parallelizable(I, R)

    def test_ignore_ignore_parallelizable(self):
        assert payload_classes_parallelizable(I, I)

    def test_batch_level_uses_highest_priority(self):
        mixed = StateFunctionBatch("mixed")
        mixed.add(StateFunction(lambda pkt: None, R))
        mixed.add(StateFunction(lambda pkt: None, W))  # promotes batch to WRITE
        reader = make_batch("reader", R)
        assert not batches_parallelizable(mixed, reader)


class TestScheduleConstruction:
    def wave_shape(self, schedule):
        return [tuple(batch.nf_name for batch in wave) for wave in schedule.waves]

    def test_all_readers_one_wave(self):
        batches = [make_batch(f"r{i}", R) for i in range(3)]
        schedule = build_schedule(batches)
        assert schedule.wave_count == 1
        assert schedule.max_wave_width == 3

    def test_writers_serialise(self):
        batches = [make_batch(f"w{i}", W) for i in range(3)]
        schedule = build_schedule(batches)
        assert schedule.wave_count == 3
        assert schedule.max_wave_width == 1

    def test_writer_between_readers_splits(self):
        batches = [make_batch("r1", R), make_batch("w", W), make_batch("r2", R)]
        schedule = build_schedule(batches)
        assert self.wave_shape(schedule) == [("r1",), ("w",), ("r2",)]

    def test_writer_groups_with_ignores(self):
        batches = [make_batch("w", W), make_batch("i1", I), make_batch("i2", I)]
        schedule = build_schedule(batches)
        assert self.wave_shape(schedule) == [("w", "i1", "i2")]

    def test_empty_batches_skipped(self):
        batches = [make_batch("a", R), StateFunctionBatch("empty"), make_batch("b", R)]
        schedule = build_schedule(batches)
        assert schedule.batch_count == 2
        assert self.wave_shape(schedule) == [("a", "b")]

    def test_no_batches(self):
        schedule = build_schedule([])
        assert schedule.wave_count == 0
        assert schedule.max_wave_width == 0

    def test_chain_order_preserved_across_waves(self):
        batches = [make_batch("w1", W), make_batch("r", R), make_batch("w2", W)]
        schedule = build_schedule(batches)
        flattened = [batch.nf_name for batch in schedule.all_batches()]
        assert flattened == ["w1", "r", "w2"]

    def test_execute_runs_everything_in_wave_order(self):
        log = []

        def tagged(tag, payload_class):
            batch = StateFunctionBatch(tag)
            batch.add(StateFunction(lambda pkt, t=tag: log.append(t), payload_class, name=tag))
            return batch

        schedule = build_schedule([tagged("r1", R), tagged("w", W), tagged("r2", R)])
        packet = Packet.from_five_tuple(FiveTuple.make("10.0.0.1", "10.0.0.2", 1, 2))
        schedule.execute(packet)
        assert log == ["r1", "w", "r2"]


class TestScheduleSemanticEquivalence:
    def test_parallel_schedule_matches_sequential_for_hazard_free_batches(self):
        # Readers never mutate, so any wave grouping must produce the same
        # final state as strict sequential execution.
        log_parallel = []
        log_sequential = []

        def reader_batch(log, tag):
            batch = StateFunctionBatch(tag)
            batch.add(StateFunction(lambda pkt, t=tag: log.append(t), R, name=tag))
            return batch

        packet = Packet.from_five_tuple(FiveTuple.make("10.0.0.1", "10.0.0.2", 1, 2))
        schedule = build_schedule([reader_batch(log_parallel, f"b{i}") for i in range(4)])
        schedule.execute(packet)

        for i in range(4):
            reader_batch(log_sequential, f"b{i}").execute(packet)
        assert sorted(log_parallel) == sorted(log_sequential)
