"""Unit tests for the IPFilter firewall (repro.nf.ipfilter)."""

from repro.core.local_mat import NullInstrumentationAPI
from repro.net import FiveTuple, Packet
from repro.nf.ipfilter import AclRule, IPFilter, Verdict
from repro.platform.costs import CostModel, CycleMeter, Operation


def make_packet(src="10.0.0.1", dst="10.0.0.2", sport=1000, dport=80, fid=1):
    packet = Packet.from_five_tuple(FiveTuple.make(src, dst, sport, dport))
    packet.metadata["fid"] = fid
    return packet


class TestAclRule:
    def test_wildcard_matches_everything(self):
        rule = AclRule.make()
        assert rule.matches(FiveTuple.make("1.2.3.4", "5.6.7.8", 1, 2))

    def test_prefix_match(self):
        rule = AclRule.make(src="10.0.0.0/8")
        assert rule.matches(FiveTuple.make("10.200.3.4", "5.6.7.8", 1, 2))
        assert not rule.matches(FiveTuple.make("11.0.0.1", "5.6.7.8", 1, 2))

    def test_host_match(self):
        rule = AclRule.make(dst="5.6.7.8")
        assert rule.matches(FiveTuple.make("1.1.1.1", "5.6.7.8", 1, 2))
        assert not rule.matches(FiveTuple.make("1.1.1.1", "5.6.7.9", 1, 2))

    def test_zero_length_prefix_matches_all(self):
        rule = AclRule.make(src="0.0.0.0/0")
        assert rule.matches(FiveTuple.make("255.255.255.255", "1.1.1.1", 1, 2))

    def test_port_range(self):
        rule = AclRule.make(dst_ports=(80, 443))
        assert rule.matches(FiveTuple.make("1.1.1.1", "2.2.2.2", 5, 80))
        assert rule.matches(FiveTuple.make("1.1.1.1", "2.2.2.2", 5, 443))
        assert not rule.matches(FiveTuple.make("1.1.1.1", "2.2.2.2", 5, 444))

    def test_protocol_match(self):
        rule = AclRule.make(protocol=17)
        assert not rule.matches(FiveTuple.make("1.1.1.1", "2.2.2.2", 5, 80))  # TCP


class TestIPFilterVerdicts:
    def test_blacklisted_flow_dropped(self):
        fw = IPFilter("fw", rules=[AclRule.make(src="10.0.0.0/8", verdict=Verdict.DROP)])
        packet = make_packet()
        fw.process(packet, NullInstrumentationAPI())
        assert packet.dropped
        assert fw.dropped == 1

    def test_unmatched_flow_forwarded(self):
        fw = IPFilter("fw", rules=[AclRule.make(src="192.168.0.0/16", verdict=Verdict.DROP)])
        packet = make_packet()
        fw.process(packet, NullInstrumentationAPI())
        assert not packet.dropped
        assert fw.forwarded == 1

    def test_first_matching_rule_wins(self):
        fw = IPFilter(
            "fw",
            rules=[
                AclRule.make(src="10.0.0.1", verdict=Verdict.FORWARD),
                AclRule.make(src="10.0.0.0/8", verdict=Verdict.DROP),
            ],
        )
        packet = make_packet()
        fw.process(packet, NullInstrumentationAPI())
        assert not packet.dropped

    def test_default_verdict_configurable(self):
        fw = IPFilter("fw", default_verdict=Verdict.DROP)
        packet = make_packet()
        fw.process(packet, NullInstrumentationAPI())
        assert packet.dropped

    def test_dscp_marking(self):
        fw = IPFilter("fw", mark_dscp=46)
        packet = make_packet()
        fw.process(packet, NullInstrumentationAPI())
        assert packet.ip.dscp == 46


class TestIPFilterCostStructure:
    def test_initial_packet_pays_linear_scan(self):
        rules = [AclRule.make(src=f"192.168.{i}.0/24", verdict=Verdict.DROP) for i in range(50)]
        fw = IPFilter("fw", rules=rules)
        model = CostModel()

        initial_meter = CycleMeter()
        fw.meter = initial_meter
        fw.process(make_packet(), NullInstrumentationAPI())

        cached_meter = CycleMeter()
        fw.meter = cached_meter
        fw.process(make_packet(), NullInstrumentationAPI())

        assert initial_meter.count(Operation.ACL_RULE_SCAN) == 50
        assert cached_meter.count(Operation.ACL_RULE_SCAN) == 0
        assert initial_meter.cycles(model) > cached_meter.cycles(model)

    def test_verdict_cache_evicted_on_close(self):
        fw = IPFilter("fw")
        packet = make_packet()
        fw.process(packet, NullInstrumentationAPI())
        assert packet.five_tuple() in fw._verdict_cache
        fw.handle_flow_close(packet)
        assert packet.five_tuple() not in fw._verdict_cache

    def test_reset_clears_state(self):
        fw = IPFilter("fw")
        fw.process(make_packet(), NullInstrumentationAPI())
        fw.reset()
        assert fw.forwarded == 0
        assert not fw._verdict_cache
