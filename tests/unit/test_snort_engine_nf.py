"""Unit tests for the Snort detection engine and NF (repro.nf.snort)."""

from repro.core.local_mat import NullInstrumentationAPI
from repro.net import FiveTuple, Packet
from repro.nf.snort import DetectionEngine, SnortIDS, parse_rules

RULES = """
alert tcp any any -> any 80 (msg:"evil payload"; content:"evil"; sid:100;)
alert tcp any any -> any 80 (msg:"shell"; content:"/bin/sh"; sid:101;)
log tcp any any -> any 80 (msg:"curl agent"; content:"curl/"; nocase; sid:200;)
pass tcp 10.0.0.5 any -> any 80 (msg:"trusted host"; sid:300;)
alert udp any any -> any 53 (msg:"dns tunnel"; content:"tunnel"; sid:400;)
"""


def make_packet(src="10.0.0.1", dport=80, payload=b"", sport=1000, fid=1):
    proto_port = dport
    packet = Packet.from_five_tuple(
        FiveTuple.make(src, "20.0.0.1", sport, proto_port), payload=payload
    )
    packet.metadata["fid"] = fid
    return packet


class TestDetectionEngine:
    def setup_method(self):
        self.engine = DetectionEngine(parse_rules(RULES))

    def test_flow_matcher_filters_by_header(self):
        web_flow = FiveTuple.make("10.0.0.1", "20.0.0.1", 1000, 80)
        matcher = self.engine.assign_flow_matcher(web_flow)
        sids = {rule.sid for rule in matcher.candidates}
        assert sids == {100, 101, 200}  # dns rule and pass rule excluded

    def test_pass_rule_header_scoped(self):
        trusted_flow = FiveTuple.make("10.0.0.5", "20.0.0.1", 1000, 80)
        matcher = self.engine.assign_flow_matcher(trusted_flow)
        assert 300 in {rule.sid for rule in matcher.candidates}

    def test_inspect_alert(self):
        matcher = self.engine.assign_flow_matcher(FiveTuple.make("10.0.0.1", "20.0.0.1", 1, 80))
        result = matcher.inspect(b"an evil thing")
        assert result.verdict == "alert"
        assert [rule.sid for rule in result.alerts] == [100]

    def test_inspect_log(self):
        matcher = self.engine.assign_flow_matcher(FiveTuple.make("10.0.0.1", "20.0.0.1", 1, 80))
        result = matcher.inspect(b"User-Agent: CURL/7.1")
        assert result.verdict == "log"

    def test_inspect_clean(self):
        matcher = self.engine.assign_flow_matcher(FiveTuple.make("10.0.0.1", "20.0.0.1", 1, 80))
        assert matcher.inspect(b"nothing to see").verdict == "clean"

    def test_pass_suppresses_alert(self):
        matcher = self.engine.assign_flow_matcher(FiveTuple.make("10.0.0.5", "20.0.0.1", 1, 80))
        result = matcher.inspect(b"truly evil")
        assert result.passed
        assert result.verdict == "pass"
        assert not result.alerts

    def test_multiple_rules_can_fire(self):
        matcher = self.engine.assign_flow_matcher(FiveTuple.make("10.0.0.1", "20.0.0.1", 1, 80))
        result = matcher.inspect(b"evil /bin/sh combo")
        assert {rule.sid for rule in result.alerts} == {100, 101}


class TestSnortIDS:
    def test_accepts_rule_text(self):
        snort = SnortIDS("snort", RULES)
        assert len(snort.rules) == 5

    def test_alert_recorded(self):
        snort = SnortIDS("snort", RULES)
        snort.process(make_packet(payload=b"pure evil"), NullInstrumentationAPI())
        assert len(snort.alerts) == 1
        assert snort.alerts[0].sid == 100
        assert snort.alerts[0].action == "alert"

    def test_log_recorded(self):
        snort = SnortIDS("snort", RULES)
        snort.process(make_packet(payload=b"curl/8.0"), NullInstrumentationAPI())
        assert len(snort.logs) == 1
        assert not snort.alerts

    def test_pass_counted(self):
        snort = SnortIDS("snort", RULES)
        snort.process(make_packet(src="10.0.0.5", payload=b"evil"), NullInstrumentationAPI())
        assert snort.passed_packets == 1
        assert not snort.alerts

    def test_never_modifies_packet(self):
        snort = SnortIDS("snort", RULES)
        packet = make_packet(payload=b"evil")
        before = packet.serialize()
        snort.process(packet, NullInstrumentationAPI())
        assert packet.serialize() == before
        assert not packet.dropped

    def test_flow_matcher_reused_across_packets(self):
        snort = SnortIDS("snort", RULES)
        snort.process(make_packet(payload=b"a"), NullInstrumentationAPI())
        matcher_before = snort.flow_matchers[make_packet().five_tuple()]
        snort.process(make_packet(payload=b"b"), NullInstrumentationAPI())
        assert snort.flow_matchers[make_packet().five_tuple()] is matcher_before

    def test_alert_per_matching_packet(self):
        snort = SnortIDS("snort", RULES)
        for __ in range(3):
            snort.process(make_packet(payload=b"evil"), NullInstrumentationAPI())
        assert len(snort.alerts) == 3

    def test_flow_close_evicts_matcher(self):
        snort = SnortIDS("snort", RULES)
        packet = make_packet()
        snort.process(packet, NullInstrumentationAPI())
        snort.handle_flow_close(packet)
        assert packet.five_tuple() not in snort.flow_matchers

    def test_reset(self):
        snort = SnortIDS("snort", RULES)
        snort.process(make_packet(payload=b"evil"), NullInstrumentationAPI())
        snort.reset()
        assert not snort.alerts
        assert not snort.flow_matchers
        assert snort.inspected_packets == 0

    def test_empty_rule_set(self):
        snort = SnortIDS("snort")
        snort.process(make_packet(payload=b"anything"), NullInstrumentationAPI())
        assert not snort.alerts
