"""Unit tests for platform timing internals (repro.platform.base/bess/onvm)."""

import pytest

from repro.core.framework import ServiceChain, SpeedyBox
from repro.core.state_function import PayloadClass
from repro.nf import Monitor, SyntheticNF
from repro.platform import BessPlatform, CostModel, OpenNetVMPlatform, PlatformConfig
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets


def packets(n=4):
    spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000, 80, packets=n, payload=b"x" * 16)
    return TrafficGenerator([spec]).packets()


def parallel_chain(width=3, cycles=1000.0):
    return [
        SyntheticNF(f"s{i}", sf_payload_class=PayloadClass.READ, sf_work_cycles=cycles)
        for i in range(width)
    ]


class TestCycleAccountingInvariants:
    def fast_outcome(self, platform):
        return platform.process_all(clone_packets(packets()))[-1]

    def test_bess_fast_path_work_vs_latency_vs_main(self):
        platform = BessPlatform(SpeedyBox(parallel_chain()))
        outcome = self.fast_outcome(platform)
        # With a parallel wave: total work > wall latency > main-core work.
        assert outcome.work_cycles > outcome.latency_cycles > outcome.main_core_cycles

    def test_slow_path_all_three_equal(self):
        platform = BessPlatform(ServiceChain(parallel_chain()))
        outcome = self.fast_outcome(platform)
        assert outcome.work_cycles == outcome.latency_cycles == outcome.main_core_cycles

    def test_single_batch_wave_runs_inline(self):
        platform = BessPlatform(SpeedyBox([SyntheticNF("only", sf_work_cycles=1000)]))
        outcome = self.fast_outcome(platform)
        # One batch: no fork/join, all three metrics coincide.
        assert outcome.work_cycles == outcome.latency_cycles == outcome.main_core_cycles

    def test_latency_ns_matches_cycles(self):
        platform = BessPlatform(ServiceChain([Monitor("m")]))
        outcome = platform.process(packets(1)[0])
        assert outcome.latency_ns == pytest.approx(
            platform.costs.cycles_to_ns(outcome.latency_cycles)
        )


class TestStagePlans:
    def test_bess_single_stage(self):
        platform = BessPlatform(SpeedyBox(parallel_chain()))
        outcome = platform.process(packets(1)[0])
        plan = platform._stage_plan(outcome.report)
        assert len(plan) == 1
        assert plan[0][0] == 0

    def test_onvm_slow_path_visits_every_nf_stage(self):
        platform = OpenNetVMPlatform(ServiceChain(parallel_chain(3)))
        outcome = platform.process(packets(1)[0])
        plan = platform._stage_plan(outcome.report)
        assert [stage for stage, __ in plan] == [0, 1, 2, 3]

    def test_onvm_fast_path_manager_plus_worker_delay(self):
        platform = OpenNetVMPlatform(SpeedyBox(parallel_chain(3)))
        outcomes = platform.process_all(clone_packets(packets()))
        plan = platform._stage_plan(outcomes[-1].report)
        assert plan[0][0] == 0  # manager
        assert plan[1][0] == 1 + 3  # the worker stage after the NF stages
        assert plan[1][1] > 0

    def test_onvm_fast_path_without_parallel_wave_is_manager_only(self):
        platform = OpenNetVMPlatform(SpeedyBox([Monitor("m")]))
        outcomes = platform.process_all(clone_packets(packets()))
        plan = platform._stage_plan(outcomes[-1].report)
        assert [stage for stage, __ in plan] == [0]

    def test_onvm_drop_truncates_plan(self):
        from repro.nf.ipfilter import AclRule, IPFilter, Verdict

        chain = [IPFilter("fw", rules=[AclRule.make(verdict=Verdict.DROP)]), Monitor("m")]
        platform = OpenNetVMPlatform(ServiceChain(chain))
        outcome = platform.process(packets(1)[0])
        plan = platform._stage_plan(outcome.report)
        assert [stage for stage, __ in plan] == [0, 1]  # monitor never ran


class TestFastPathExtra:
    def test_onvm_charges_tx_ring(self):
        model = CostModel()
        bess = BessPlatform(SpeedyBox([Monitor("m")]))
        onvm = OpenNetVMPlatform(SpeedyBox([Monitor("m")]))
        bess_out = bess.process_all(clone_packets(packets()))[-1]
        onvm_out = onvm.process_all(clone_packets(packets()))[-1]
        assert onvm_out.work_cycles - bess_out.work_cycles == pytest.approx(
            model.ring_enqueue + model.ring_dequeue
        )


class TestDelayStageReplay:
    def test_onvm_fast_rate_not_limited_by_offloaded_waves_alone(self):
        # The manager pipelines while workers run waves: the achieved rate
        # must exceed 1/(manager + wave) even though latency includes both.
        platform = OpenNetVMPlatform(SpeedyBox(parallel_chain(3, cycles=3000)))
        stream = clone_packets(packets(40))
        result = platform.run_load(stream)
        outcome_latency_ns = platform.process_all(clone_packets(packets()))[-1].latency_ns
        rate_bound_by_latency = 1000.0 / outcome_latency_ns  # Mpps if serialised
        assert result.throughput_mpps > rate_bound_by_latency

    def test_run_load_conserves_packets(self):
        platform = OpenNetVMPlatform(SpeedyBox(parallel_chain(2)))
        result = platform.run_load(clone_packets(packets(25)))
        assert result.offered == 25
        assert len(result.latencies_ns) == 25
        assert all(latency > 0 for latency in result.latencies_ns)
