"""Additional discrete-event engine coverage (repro.sim)."""

import pytest

from repro.sim import Engine, Event, Get, Interrupt, Put, Request, Resource, SimulationError, Store, Timeout
from repro.sim.engine import drain


class TestScheduleApi:
    def test_callbacks_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(5.0, lambda: order.append("late"))
        engine.schedule(1.0, lambda: order.append("early"))
        engine.run()
        assert order == ["early", "late"]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_callback_may_schedule_more(self):
        engine = Engine()
        seen = []

        def chain(depth):
            seen.append(engine.now)
            if depth:
                engine.schedule(2.0, lambda: chain(depth - 1))

        engine.schedule(1.0, lambda: chain(2))
        engine.run()
        assert seen == [1.0, 3.0, 5.0]

    def test_run_with_empty_queue_returns_now(self):
        engine = Engine()
        assert engine.run() == 0.0
        assert engine.run(until=50.0) == 50.0


class TestEventValues:
    def test_waiting_after_trigger_gets_value_immediately(self):
        engine = Engine()
        event = engine.event()
        event.trigger({"answer": 42})
        received = []

        def waiter():
            value = yield event
            received.append(value)

        engine.add_process(waiter())
        engine.run()
        assert received == [{"answer": 42}]

    def test_event_default_value_none(self):
        engine = Engine()
        event = engine.event()
        received = []

        def waiter():
            received.append((yield event))

        engine.add_process(waiter())
        engine.schedule(1.0, event.trigger)
        engine.run()
        assert received == [None]


class TestProcessLifecycle:
    def test_join_chain(self):
        engine = Engine()
        results = []

        def leaf():
            yield Timeout(2.0)
            return "leaf-done"

        def middle(leaf_process):
            value = yield leaf_process
            yield Timeout(1.0)
            return f"middle({value})"

        def root(middle_process):
            value = yield middle_process
            results.append((engine.now, value))

        leaf_process = engine.add_process(leaf())
        middle_process = engine.add_process(middle(leaf_process))
        engine.add_process(root(middle_process))
        engine.run()
        assert results == [(3.0, "middle(leaf-done)")]

    def test_uncaught_interrupt_finishes_process(self):
        engine = Engine()

        def stubborn():
            yield Timeout(100.0)

        process = engine.add_process(stubborn())
        engine.schedule(1.0, lambda: process.interrupt("die"))
        engine.run()
        assert process.finished
        assert process.result is None

    def test_interrupt_finished_process_is_noop(self):
        engine = Engine()

        def quick():
            yield Timeout(1.0)

        process = engine.add_process(quick())
        engine.run()
        process.interrupt("too late")
        engine.run()
        assert process.finished

    def test_repr_states(self):
        engine = Engine()

        def named():
            yield Timeout(1.0)

        process = engine.add_process(named(), name="my-proc")
        assert "my-proc" in repr(process)
        assert "running" in repr(process)
        engine.run()
        assert "finished" in repr(process)


class TestStoreResourceExtra:
    def test_items_snapshot_is_a_copy(self):
        engine = Engine()
        store = Store(engine)

        def producer():
            yield Put(store, 1)
            yield Put(store, 2)

        engine.add_process(producer())
        engine.run()
        snapshot = store.items_snapshot()
        snapshot.append(99)
        assert len(store) == 2

    def test_resource_grant_counter(self):
        engine = Engine()
        pool = Resource(engine, capacity=2)

        def worker():
            yield Request(pool)
            yield Timeout(1.0)
            yield pool.release()

        for __ in range(5):
            engine.add_process(worker())
        engine.run()
        assert pool.total_grants == 5
        assert pool.in_use == 0
        assert pool.available == 2

    def test_drain_helper(self):
        drain(iter(range(100)))  # must simply not raise
