"""Unit tests for measurement utilities (repro.stats)."""

import pytest

from repro.stats import (
    Distribution,
    cdf_points,
    count_instrumentation,
    format_series,
    format_table,
    integration_table,
    percentile,
)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 0.5) == 2

    def test_p0_and_p100(self):
        assert percentile([5, 1, 9], 0.0) == 1
        assert percentile([5, 1, 9], 1.0) == 9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)


class TestCdf:
    def test_steps(self):
        points = cdf_points([1, 2, 2, 4])
        assert points == [(1, 0.25), (2, 0.75), (4, 1.0)]

    def test_empty(self):
        assert cdf_points([]) == []

    def test_monotone(self):
        points = cdf_points([3, 1, 4, 1, 5, 9, 2, 6])
        values = [v for v, __ in points]
        fractions = [f for __, f in points]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0


class TestDistribution:
    def test_summary(self):
        dist = Distribution([1, 2, 3, 4, 5])
        assert dist.mean == 3
        assert dist.p50 == 3
        assert dist.minimum == 1
        assert dist.maximum == 5
        assert len(dist) == 5

    def test_add_extend(self):
        dist = Distribution()
        dist.add(1)
        dist.extend([2, 3])
        assert len(dist) == 3

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            Distribution().mean

    def test_stdev(self):
        dist = Distribution([2, 4, 4, 4, 5, 5, 7, 9])
        assert dist.stdev() == pytest.approx(2.138, rel=0.01)

    def test_stdev_single_value_zero(self):
        assert Distribution([5]).stdev() == 0.0


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"], [["a", 1], ["bbbb", 22.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "----" in lines[1]
        assert "bbbb" in lines[2] or "bbbb" in lines[3]

    def test_title_included(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_rendering(self):
        text = format_table(["v"], [[1234.5], [0.333333]])
        assert "1,234" in text or "1,235" in text
        assert "0.333" in text

    def test_format_series(self):
        text = format_series("fig", [(1, 2.0), (2, 4.0)], x_label="n", y_label="us")
        assert "series: fig" in text
        assert "n" in text


class TestInstrumentationLoc:
    def test_counts_api_lines(self):
        source = '''
def process(self, packet, api):
    fid = api.nf_extract_fid(packet)
    self.count(packet)
    api.add_header_action(fid, Forward())
    api.add_state_function(
        fid,
        self.count,
        PayloadClass.IGNORE,
    )
'''
        report = count_instrumentation(source, name="test")
        assert report.added_loc == 7  # 1 + 1 + 5 multi-line call
        assert report.core_loc == 2  # def + self.count line

    def test_docstrings_and_comments_excluded(self):
        source = '''
def f(api):
    """Docstring
    spanning lines."""
    # a comment
    api.register_event(1, cond, update_action=None)
'''
        report = count_instrumentation(source)
        assert report.added_loc == 1
        assert report.core_loc == 1

    def test_non_api_attribute_calls_are_core(self):
        source = "def f(x):\n    x.add_header_action(1, 2)\n"
        report = count_instrumentation(source)
        assert report.added_loc == 0
        assert report.core_loc == 2

    def test_integration_table_has_five_nfs(self):
        rows = integration_table()
        names = [report.name for report in rows]
        assert names == ["Snort", "Maglev", "IPFilter", "Monitor", "MazuNAT"]
        for report in rows:
            # Every paper NF records behaviour through the API...
            assert report.added_loc > 0
            # ...and the integration is small relative to the NF itself
            # (Table II's point: a few dozen lines, single-digit to low
            # double-digit percent overhead).
            assert report.added_loc < 40
            assert report.core_loc > report.added_loc

    def test_overhead_percent(self):
        from repro.stats.loc import InstrumentationReport

        report = InstrumentationReport("x", core_loc=100, added_loc=20)
        assert report.overhead_percent == 20.0
        assert "20" in report.as_row()[2]
