"""Tests for Distribution.histogram, near-miss payloads, and event
update_state_functions replacement."""

import pytest

from repro.nf.snort.rules import parse_rules
from repro.stats import Distribution
from repro.traffic import PayloadSynthesizer

RULES = parse_rules(
    """
    alert tcp any any -> any any (msg:"two part"; content:"alpha"; content:"bravo"; sid:1;)
    alert tcp any any -> any any (msg:"short"; content:"x"; sid:2;)
    """
)


class TestHistogram:
    def test_counts_sum_to_samples(self):
        dist = Distribution(range(100))
        histogram = dist.histogram(bins=7)
        assert sum(count for __, __, count in histogram) == 100
        assert len(histogram) == 7

    def test_uniform_data_roughly_even(self):
        dist = Distribution(range(100))
        histogram = dist.histogram(bins=10)
        for __, __, count in histogram:
            assert count == 10

    def test_max_lands_in_last_bin(self):
        dist = Distribution([0.0, 1.0, 2.0, 10.0])
        histogram = dist.histogram(bins=5)
        assert histogram[-1][2] >= 1

    def test_constant_data_single_bin(self):
        dist = Distribution([5.0] * 8)
        histogram = dist.histogram(bins=4)
        assert histogram == [(5.0, 5.0, 8)]

    def test_empty(self):
        assert Distribution().histogram() == []

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            Distribution([1.0]).histogram(bins=0)

    def test_edges_are_contiguous(self):
        dist = Distribution([1.0, 2.0, 3.0, 9.0])
        histogram = dist.histogram(bins=4)
        for (lo_a, hi_a, __), (lo_b, __, __) in zip(histogram, histogram[1:]):
            assert hi_a == pytest.approx(lo_b)


class TestNearMiss:
    def test_near_miss_does_not_match(self):
        synth = PayloadSynthesizer(RULES)
        payload = synth.near_miss(RULES[0])
        assert not RULES[0].payload_matches(payload)

    def test_near_miss_contains_all_but_last_content(self):
        synth = PayloadSynthesizer(RULES)
        payload = synth.near_miss(RULES[0])
        assert b"alpha" in payload
        assert b"bravo" not in payload

    def test_single_byte_content_rejected(self):
        synth = PayloadSynthesizer(RULES)
        with pytest.raises(ValueError):
            synth.near_miss(RULES[1])

    def test_near_miss_through_detection_engine(self):
        from repro.net.flow import FiveTuple
        from repro.nf.snort import DetectionEngine

        synth = PayloadSynthesizer(RULES)
        engine = DetectionEngine(RULES)
        matcher = engine.assign_flow_matcher(FiveTuple.make("1.1.1.1", "2.2.2.2", 1, 2))
        near = matcher.inspect(synth.near_miss(RULES[0]))
        assert all(rule.sid != 1 for rule in near.alerts)
        hit = matcher.inspect(synth.matching(RULES[0]))
        assert any(rule.sid == 1 for rule in hit.alerts)


class TestEventStateFunctionReplacement:
    def test_update_state_functions_swaps_the_batch(self):
        from repro.core.actions import Drop, Forward
        from repro.core.event_table import Event, EventTable
        from repro.core.local_mat import InstrumentationAPI, LocalMAT
        from repro.core.state_function import PayloadClass, StateFunction

        events = EventTable()
        mat = LocalMAT("nf", events)
        api = InstrumentationAPI(mat, events)
        calls = []

        api.add_header_action(1, Forward())
        api.add_state_function(1, lambda p: calls.append("old"), PayloadClass.IGNORE, name="old")
        replacement = StateFunction(lambda p: calls.append("new"), PayloadClass.IGNORE, name="new")
        api.register_event(
            1,
            lambda: True,
            update_action=Drop(),
            update_state_functions=[replacement],
        )

        fired = events.check_fid(1)
        assert len(fired) == 1
        event, action = fired[0]
        assert event.update_state_functions == [replacement]
        mat.replace_state_functions(1, event.update_state_functions)
        batch = mat.rule_for(1).sf_batch
        assert [fn.name for fn in batch] == ["new"]
