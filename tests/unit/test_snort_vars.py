"""Unit tests for Snort rule-file variables (var / $NAME)."""

import pytest

from repro.net.addresses import ip_to_int
from repro.net.flow import FiveTuple
from repro.nf.snort.rules import RuleParseError, parse_rules


class TestVariables:
    def test_home_net_pattern(self):
        rules = parse_rules(
            """
            var HOME_NET 10.0.0.0/8
            alert tcp $HOME_NET any -> any 80 (msg:"outbound"; sid:1;)
            """
        )
        assert rules[0].header_matches(FiveTuple.make("10.9.9.9", "1.2.3.4", 5, 80))
        assert not rules[0].header_matches(FiveTuple.make("11.0.0.1", "1.2.3.4", 5, 80))

    def test_variable_in_destination_and_port(self):
        rules = parse_rules(
            """
            var DNS_SERVER 192.0.2.53
            var DNS_PORT 53
            alert udp any any -> $DNS_SERVER $DNS_PORT (msg:"dns"; sid:2;)
            """
        )
        from repro.net.flow import PROTO_UDP

        assert rules[0].header_matches(
            FiveTuple.make("1.1.1.1", "192.0.2.53", 5, 53, protocol=PROTO_UDP)
        )

    def test_variables_compose(self):
        rules = parse_rules(
            """
            var NETA 10.1.0.0/16
            var WATCHED $NETA
            alert tcp $WATCHED any -> any any (sid:3;)
            """
        )
        assert rules[0].src.base == ip_to_int("10.1.0.0")

    def test_undefined_variable_rejected_with_line(self):
        with pytest.raises(RuleParseError, match="line 2.*undefined variable"):
            parse_rules("# comment\nalert tcp $NOPE any -> any any (sid:1;)")

    def test_redefinition_last_wins(self):
        rules = parse_rules(
            """
            var NET 10.0.0.0/8
            var NET 172.16.0.0/12
            alert tcp $NET any -> any any (sid:4;)
            """
        )
        assert rules[0].src.base == ip_to_int("172.16.0.0")

    def test_vars_do_not_leak_into_contents(self):
        # $ in quoted content strings is literal, not a variable... our
        # substitution is line-wide, so document the constraint: rule
        # authors escape by defining the variable.  Contents without $
        # are unaffected either way.
        rules = parse_rules(
            """
            var P 80
            alert tcp any any -> any $P (content:"plain"; sid:5;)
            """
        )
        assert rules[0].contents[0].pattern == b"plain"
