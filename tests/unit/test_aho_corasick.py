"""Unit tests for the Aho-Corasick engine (repro.nf.snort.aho_corasick)."""

import pytest

from repro.nf.snort.aho_corasick import AhoCorasick, MultiPatternIndex


class TestAhoCorasick:
    def test_single_pattern(self):
        ac = AhoCorasick()
        pid = ac.add(b"abc")
        assert ac.search(b"xxabcxx") == [(pid, 5)]

    def test_multiple_matches_of_same_pattern(self):
        ac = AhoCorasick()
        pid = ac.add(b"ab")
        assert ac.search(b"abab") == [(pid, 2), (pid, 4)]

    def test_overlapping_patterns(self):
        ac = AhoCorasick()
        he = ac.add(b"he")
        she = ac.add(b"she")
        hers = ac.add(b"hers")
        matches = ac.search(b"ushers")
        found = {pid for pid, __ in matches}
        assert found == {he, she, hers}

    def test_pattern_is_prefix_of_another(self):
        ac = AhoCorasick()
        a = ac.add(b"abc")
        b = ac.add(b"abcdef")
        assert ac.matched_ids(b"abcdef") == {a, b}
        assert ac.matched_ids(b"abc") == {a}

    def test_no_match(self):
        ac = AhoCorasick()
        ac.add(b"needle")
        assert ac.search(b"haystack") == []

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasick().add(b"")

    def test_add_after_build_rejected(self):
        ac = AhoCorasick()
        ac.add(b"x")
        ac.build()
        with pytest.raises(RuntimeError):
            ac.add(b"y")

    def test_empty_automaton_matches_nothing(self):
        ac = AhoCorasick()
        assert ac.search(b"anything") == []

    def test_case_insensitive_mode(self):
        ac = AhoCorasick(case_sensitive=False)
        pid = ac.add(b"EvIl")
        assert ac.contains(b"pure eViL payload", pid)

    def test_case_sensitive_mode_respects_case(self):
        ac = AhoCorasick(case_sensitive=True)
        pid = ac.add(b"Evil")
        assert not ac.contains(b"evil", pid)
        assert ac.contains(b"Evil", pid)

    def test_binary_patterns(self):
        ac = AhoCorasick()
        pid = ac.add(bytes([0x00, 0xFF, 0x7F]))
        text = bytes([1, 2, 0x00, 0xFF, 0x7F, 3])
        assert ac.contains(text, pid)

    def test_matches_reference_implementation(self):
        # Brute-force cross-check over a pseudo-random corpus.
        import random

        rng = random.Random(42)
        patterns = [bytes(rng.randrange(97, 100) for __ in range(rng.randrange(1, 4))) for __ in range(8)]
        patterns = list(dict.fromkeys(patterns))
        ac = AhoCorasick()
        ids = {ac.add(p): p for p in patterns}
        text = bytes(rng.randrange(97, 100) for __ in range(200))
        expected = {pid for pid, pattern in ids.items() if pattern in text}
        assert ac.matched_ids(text) == expected


class TestMultiPatternIndex:
    def test_mixed_case_sensitivity(self):
        index = MultiPatternIndex()
        strict = index.add(b"Root", nocase=False)
        loose = index.add(b"Admin", nocase=True)
        matched = index.matched_keys(b"root admin")
        assert strict not in matched
        assert loose in matched

    def test_keys_are_stable(self):
        index = MultiPatternIndex()
        keys = [index.add(bytes([65 + i])) for i in range(5)]
        assert keys == list(range(5))
        assert len(index) == 5

    def test_all_match(self):
        index = MultiPatternIndex()
        a = index.add(b"aa")
        b = index.add(b"BB", nocase=True)
        assert index.matched_keys(b"xxaaxxbbxx") == {a, b}
