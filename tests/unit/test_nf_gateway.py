"""Unit tests for the VXLAN gateway NFs (repro.nf.gateway)."""

import pytest

from repro.core.local_mat import NullInstrumentationAPI
from repro.net import FiveTuple, Packet, VxlanHeader
from repro.nf.gateway import VniMap, VxlanGateway, VxlanTerminator


def make_packet(dst="172.16.5.9", fid=1):
    packet = Packet.from_five_tuple(FiveTuple.make("10.0.0.1", dst, 1000, 80))
    packet.metadata["fid"] = fid
    return packet


class TestVniMap:
    def test_exact_host(self):
        table = VniMap([("172.16.5.9", 100)])
        from repro.net.addresses import ip_to_int

        assert table.lookup(ip_to_int("172.16.5.9")) == 100
        assert table.lookup(ip_to_int("172.16.5.10")) is None

    def test_prefix(self):
        table = VniMap([("172.16.0.0/16", 200)])
        from repro.net.addresses import ip_to_int

        assert table.lookup(ip_to_int("172.16.99.1")) == 200
        assert table.lookup(ip_to_int("172.17.0.1")) is None

    def test_longest_prefix_wins(self):
        table = VniMap([("172.16.0.0/16", 200), ("172.16.5.0/24", 300)])
        from repro.net.addresses import ip_to_int

        assert table.lookup(ip_to_int("172.16.5.1")) == 300
        assert table.lookup(ip_to_int("172.16.6.1")) == 200

    def test_default_route(self):
        table = VniMap([("0.0.0.0/0", 1)])
        assert table.lookup(0x01020304) == 1

    def test_vni_range_checked(self):
        with pytest.raises(ValueError):
            VniMap([("10.0.0.0/8", 1 << 24)])

    def test_bad_prefix_length(self):
        with pytest.raises(ValueError):
            VniMap([("10.0.0.0/40", 1)])


class TestVxlanGateway:
    def test_mapped_traffic_encapsulated_and_marked(self):
        gateway = VxlanGateway("gw", VniMap([("172.16.0.0/16", 42)]), underlay_dscp=26)
        packet = make_packet()
        gateway.process(packet, NullInstrumentationAPI())
        assert isinstance(packet.peek_encap(), VxlanHeader)
        assert packet.peek_encap().vni == 42
        assert packet.ip.dscp == 26
        assert gateway.encapsulated == 1

    def test_unmapped_traffic_passes_through(self):
        gateway = VxlanGateway("gw", VniMap([("192.168.0.0/16", 42)]))
        packet = make_packet()
        gateway.process(packet, NullInstrumentationAPI())
        assert not packet.encaps
        assert gateway.passed_through == 1

    def test_no_dscp_marking_when_disabled(self):
        gateway = VxlanGateway("gw", VniMap([("172.16.0.0/16", 42)]), underlay_dscp=None)
        packet = make_packet()
        original_dscp = packet.ip.dscp
        gateway.process(packet, NullInstrumentationAPI())
        assert packet.ip.dscp == original_dscp


class TestVxlanTerminator:
    def test_strips_vxlan(self):
        gateway = VxlanGateway("gw", VniMap([("172.16.0.0/16", 42)]))
        terminator = VxlanTerminator("term")
        packet = make_packet()
        gateway.process(packet, NullInstrumentationAPI())
        terminator.process(packet, NullInstrumentationAPI())
        assert not packet.encaps
        assert terminator.decapsulated == 1

    def test_plain_traffic_untouched(self):
        terminator = VxlanTerminator("term")
        packet = make_packet()
        before = packet.serialize()
        terminator.process(packet, NullInstrumentationAPI())
        assert packet.serialize() == before
        assert terminator.passed_through == 1


class TestGatewayChainEquivalence:
    def test_gateway_terminator_pair_consolidates_to_noop(self):
        from repro.core.framework import SpeedyBox
        from repro.traffic import FlowSpec, TrafficGenerator

        def chain():
            return [
                VxlanGateway("gw", VniMap([("172.16.0.0/16", 9)])),
                VxlanTerminator("term"),
            ]

        sbox = SpeedyBox(chain())
        spec = FlowSpec.tcp("10.0.0.1", "172.16.5.9", 1000, 80, packets=4, payload=b"x")
        reports = [sbox.process(p) for p in TrafficGenerator([spec]).packets()]
        rule = sbox.global_mat.peek(reports[0].fid)
        # The encap cancels against the decap; only the DSCP mark remains.
        assert not rule.consolidated.net_encaps
        assert not rule.consolidated.leading_decaps

    def test_lockstep_equivalence(self):
        from tests.integration.helpers import run_lockstep
        from repro.traffic import FlowSpec, TrafficGenerator

        def chain():
            return [
                VxlanGateway("gw", VniMap([("172.16.0.0/16", 9), ("192.0.2.0/24", 10)])),
            ]

        flows = [
            FlowSpec.tcp("10.0.0.1", "172.16.5.9", 1000, 80, packets=5, payload=b"a"),
            FlowSpec.tcp("10.0.0.2", "8.8.8.8", 2000, 80, packets=5, payload=b"b"),
        ]
        packets = TrafficGenerator(flows, interleave="round_robin").packets()
        run_lockstep(chain, packets)
