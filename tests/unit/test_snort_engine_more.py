"""Deeper detection-engine coverage: prescan/verification interplay."""

from repro.net.flow import FiveTuple, PROTO_UDP
from repro.nf.snort import DetectionEngine, parse_rules


def flow(dport=80, proto=6):
    if proto == PROTO_UDP:
        return FiveTuple.make("10.0.0.1", "20.0.0.1", 1000, dport, protocol=PROTO_UDP)
    return FiveTuple.make("10.0.0.1", "20.0.0.1", 1000, dport)


class TestPrescanVerificationInterplay:
    def test_header_only_rule_matches_everything_on_flow(self):
        engine = DetectionEngine(parse_rules("alert tcp any any -> any 80 (msg:\"any\"; sid:1;)"))
        matcher = engine.assign_flow_matcher(flow())
        assert matcher.inspect(b"").verdict == "alert"
        assert matcher.inspect(b"whatever").verdict == "alert"

    def test_empty_payload_never_matches_content_rules(self):
        engine = DetectionEngine(parse_rules('alert tcp any any -> any any (content:"x"; sid:1;)'))
        matcher = engine.assign_flow_matcher(flow())
        assert matcher.inspect(b"").verdict == "clean"

    def test_pcre_only_rule(self):
        engine = DetectionEngine(
            parse_rules(r'alert tcp any any -> any any (pcre:"/a{3}b/"; sid:9;)')
        )
        matcher = engine.assign_flow_matcher(flow())
        assert matcher.inspect(b"xxaaab").verdict == "alert"
        assert matcher.inspect(b"aab").verdict == "clean"

    def test_content_plus_pcre_both_required(self):
        engine = DetectionEngine(
            parse_rules(r'alert tcp any any -> any any (content:"cmd="; pcre:"/cmd=\d+/"; sid:2;)')
        )
        matcher = engine.assign_flow_matcher(flow())
        assert matcher.inspect(b"cmd=42").verdict == "alert"
        assert matcher.inspect(b"cmd=abc").verdict == "clean"  # content hits, pcre misses

    def test_shared_pattern_between_rules(self):
        rules = parse_rules(
            """
            alert tcp any any -> any 80 (content:"token"; sid:1;)
            log tcp any any -> any 443 (content:"token"; sid:2;)
            """
        )
        engine = DetectionEngine(rules)
        port80 = engine.assign_flow_matcher(flow(80))
        port443 = engine.assign_flow_matcher(flow(443))
        assert port80.inspect(b"token").verdict == "alert"
        assert port443.inspect(b"token").verdict == "log"

    def test_matcher_for_unmatched_flow_is_empty(self):
        engine = DetectionEngine(parse_rules('alert udp any any -> any 53 (content:"q"; sid:1;)'))
        matcher = engine.assign_flow_matcher(flow(80))  # tcp flow
        assert len(matcher) == 0
        assert matcher.inspect(b"q").verdict == "clean"

    def test_udp_rule_matches_udp_flow(self):
        engine = DetectionEngine(parse_rules('alert udp any any -> any 53 (content:"q"; sid:1;)'))
        matcher = engine.assign_flow_matcher(flow(53, proto=PROTO_UDP))
        assert matcher.inspect(b"a q here").verdict == "alert"

    def test_bidirectional_rule_builds_one_matcher_per_direction(self):
        engine = DetectionEngine(
            parse_rules('alert tcp 10.0.0.1 any <> 20.0.0.1 80 (content:"z"; sid:1;)')
        )
        forward = engine.assign_flow_matcher(flow())
        backward = engine.assign_flow_matcher(flow().reversed())
        assert len(forward) == 1
        assert len(backward) == 1

    def test_duplicate_patterns_across_rules_fire_independently(self):
        rules = parse_rules(
            """
            alert tcp any any -> any any (content:"dup"; sid:1;)
            alert tcp any any -> any any (content:"dup"; content:"extra"; sid:2;)
            """
        )
        engine = DetectionEngine(rules)
        matcher = engine.assign_flow_matcher(flow())
        only_dup = matcher.inspect(b"dup only")
        assert [rule.sid for rule in only_dup.alerts] == [1]
        both = matcher.inspect(b"dup plus extra")
        assert {rule.sid for rule in both.alerts} == {1, 2}

    def test_pass_with_content_scopes_suppression_per_packet(self):
        rules = parse_rules(
            """
            pass tcp any any -> any any (content:"trusted-token"; sid:1;)
            alert tcp any any -> any any (content:"evil"; sid:2;)
            """
        )
        engine = DetectionEngine(rules)
        matcher = engine.assign_flow_matcher(flow())
        assert matcher.inspect(b"evil with trusted-token").verdict == "pass"
        assert matcher.inspect(b"plain evil").verdict == "alert"
