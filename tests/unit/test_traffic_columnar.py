"""Columnar traffic (repro.traffic.columnar) vs the per-packet generator.

The batch lane's correctness story starts here: a PacketBatch must
materialize to exactly the packet stream TrafficGenerator would emit for
the same flow specs, in every interleave mode, or every downstream
equivalence claim is meaningless.  The suite also pins the vectorized
FID column against the scalar hash and exercises the REPRO_NO_NUMPY
import guard in a subprocess (the pure-Python fallback must behave
identically).
"""

import os
import subprocess
import sys

import pytest

from repro import vector as vec
from repro.core.classifier import fid_column, fid_of
from repro.traffic.columnar import (
    PacketBatch,
    batch_from_specs,
    uniform_batch,
)
from repro.traffic.generator import FlowSpec, TrafficGenerator


def mixed_specs():
    return [
        FlowSpec.udp("10.0.0.1", "20.0.0.1", 1111, 80, packets=3, payload=b"aa"),
        FlowSpec.tcp(
            "10.0.0.2", "20.0.0.1", 2222, 443, packets=2, handshake=True, fin=True
        ),
        FlowSpec.udp("10.0.0.3", "20.0.0.2", 3333, 53, packets=1),
        FlowSpec.tcp(
            "10.0.0.4",
            "20.0.0.1",
            4444,
            8080,
            packets=4,
            payload=lambda i: bytes([i]) * (i + 1),
            handshake=True,
        ),
    ]


def wire(packets):
    return [p.serialize() for p in packets]


@pytest.mark.parametrize("interleave", ["sequential", "round_robin", "shuffled"])
def test_batch_from_specs_matches_generator(interleave):
    specs = mixed_specs()
    batch = batch_from_specs(specs, interleave=interleave, seed=7)
    expected = TrafficGenerator(specs, interleave=interleave, seed=7).packets()
    assert len(batch) == len(expected)
    assert wire(batch.to_packets()) == wire(expected)


def test_packet_view_is_lazy_and_identical():
    specs = mixed_specs()
    batch = batch_from_specs(specs, interleave="round_robin")
    view = batch.packet_view()
    assert len(view) == len(batch)
    assert wire(list(view)) == wire(batch.to_packets())
    # Indexed access materializes the same packet as iteration.
    assert view[3].serialize() == batch.materialize(3).serialize()


def test_uniform_batch_matches_equivalent_specs():
    batch = uniform_batch(
        6, 3, payload=b"xy", interleave="round_robin", block=3, dst_port=81
    )
    specs = [
        FlowSpec.udp(
            f"10.0.0.{f + 1}", "20.0.0.1", 1024 + f, 81, packets=3, payload=b"xy"
        )
        for f in range(6)
    ]
    # block=3: flows [0,1,2] round-robin to completion, then [3,4,5].
    first = TrafficGenerator(specs[:3], interleave="round_robin").packets()
    second = TrafficGenerator(specs[3:], interleave="round_robin").packets()
    assert wire(batch.to_packets()) == wire(first + second)


def test_uniform_batch_tcp_lifecycle():
    batch = uniform_batch(
        2, 2, protocol="tcp", handshake=True, fin=True, interleave="sequential"
    )
    packets = batch.to_packets()
    specs = [
        FlowSpec.tcp(
            f"10.0.0.{f + 1}", "20.0.0.1", 1024 + f, 80,
            packets=2, handshake=True, fin=True,
        )
        for f in range(2)
    ]
    expected = TrafficGenerator(specs, interleave="sequential").packets()
    assert wire(packets) == wire(expected)


def test_select_flows_is_self_contained():
    specs = mixed_specs()
    batch = batch_from_specs(specs, interleave="round_robin")
    sub = batch.select_flows([1, 3])
    assert sub.flow_count == 2
    # The sub-batch preserves packet order and is internally remapped.
    kept = [
        p for p in batch.to_packets()
        if p.serialize() in set(wire(sub.to_packets()))
    ]
    assert wire(sub.to_packets()) == wire(kept)
    assert max(int(f) for f in sub.flow_index) <= 1


def test_fid_column_matches_scalar_fid():
    batch = uniform_batch(257, 1, interleave="sequential")
    column = fid_column(
        batch.flow_src_ip,
        batch.flow_dst_ip,
        batch.flow_src_port,
        batch.flow_dst_port,
        batch.flow_proto,
    )
    for flow in range(batch.flow_count):
        assert int(column[flow]) == fid_of(batch.five_tuple_of(flow))


def test_rejects_bad_arguments():
    with pytest.raises(ValueError):
        uniform_batch(2, 1, handshake=True)  # handshake requires TCP
    with pytest.raises(ValueError):
        uniform_batch(2, 1, interleave="zigzag")
    with pytest.raises(ValueError):
        batch_from_specs(mixed_specs(), interleave="zigzag")


def test_no_numpy_import_guard_subprocess():
    """REPRO_NO_NUMPY=1 forces the array-module fallback (satellite a).

    Run in a subprocess so the parent's cached ``repro.vector`` module is
    untouched; the fallback must produce the same wire bytes.
    """
    probe = (
        "from repro import vector as vec\n"
        "assert not vec.HAVE_NUMPY, 'guard did not disable numpy'\n"
        "assert vec.np is None\n"
        "from repro.traffic.columnar import uniform_batch\n"
        "batch = uniform_batch(4, 2, payload=b'z', interleave='round_robin')\n"
        "import sys\n"
        "sys.stdout.buffer.write(b''.join(p.serialize() for p in batch.to_packets()))\n"
    )
    env = dict(os.environ, REPRO_NO_NUMPY="1")
    env.setdefault("PYTHONPATH", "")
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in (env["PYTHONPATH"],) if p] + sys.path
    )
    result = subprocess.run(
        [sys.executable, "-c", probe], env=env, capture_output=True
    )
    assert result.returncode == 0, result.stderr.decode()
    here = uniform_batch(4, 2, payload=b"z", interleave="round_robin")
    assert result.stdout == b"".join(p.serialize() for p in here.to_packets())


def test_vector_module_columns_roundtrip():
    ints = vec.int_column([5, 6, 7])
    assert list(ints) == [5, 6, 7]
    assert list(vec.byte_column([1, 0, 255])) == [1, 0, 255]
    zeros = vec.int_zeros(3)
    assert list(zeros) == [0, 0, 0]


def test_batch_is_packetbatch_instance():
    assert isinstance(uniform_batch(1, 1), PacketBatch)
