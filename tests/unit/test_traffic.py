"""Unit tests for traffic generation (repro.traffic)."""

import pytest

from repro.net.headers import TCP_ACK, TCP_FIN, TCP_SYN
from repro.nf.snort.rules import RuleAction, parse_rules
from repro.traffic import (
    DatacenterTraceConfig,
    DatacenterTraceGenerator,
    FlowSpec,
    PayloadSynthesizer,
    TrafficGenerator,
    packets_for_flow,
)

RULES = parse_rules(
    """
alert tcp any any -> any 80 (msg:"evil"; content:"evil"; sid:1;)
log tcp any any -> any 80 (msg:"spam"; content:"spam"; sid:2;)
pass tcp any any -> any 80 (msg:"ok"; sid:3;)
"""
)


class TestFlowSpec:
    def test_tcp_constructor(self):
        spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2, packets=5)
        assert spec.total_packets == 5

    def test_handshake_and_fin_add_packets(self):
        spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2, packets=5, handshake=True, fin=True)
        assert spec.total_packets == 7

    def test_payload_policy_fixed(self):
        spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2, payload=b"abc")
        assert spec.payload_for(0) == b"abc"
        assert spec.payload_for(9) == b"abc"

    def test_payload_policy_callable(self):
        spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2, payload=lambda i: bytes([i]))
        assert spec.payload_for(3) == b"\x03"


class TestPacketsForFlow:
    def test_handshake_first_fin_last(self):
        spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2, packets=2, handshake=True, fin=True)
        pkts = packets_for_flow(spec)
        assert pkts[0].l4.has_flag(TCP_SYN)
        assert pkts[-1].l4.has_flag(TCP_FIN)
        assert all(p.l4.has_flag(TCP_ACK) for p in pkts[1:-1])

    def test_sequence_numbers_advance(self):
        spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2, packets=3, payload=b"xyz")
        pkts = packets_for_flow(spec)
        seqs = [p.l4.seq for p in pkts]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 3

    def test_handshake_on_udp_rejected(self):
        spec = FlowSpec.udp("10.0.0.1", "10.0.0.2", 1, 2)
        spec.handshake = True
        with pytest.raises(ValueError):
            packets_for_flow(spec)

    def test_negative_count_rejected(self):
        spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2, packets=1)
        spec.packets = -1
        with pytest.raises(ValueError):
            packets_for_flow(spec)


class TestTrafficGenerator:
    def make_specs(self):
        return [
            FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000, 80, packets=2),
            FlowSpec.tcp("10.0.0.3", "10.0.0.4", 2000, 80, packets=2),
        ]

    def test_sequential_ordering(self):
        generator = TrafficGenerator(self.make_specs(), interleave="sequential")
        sports = [p.l4.src_port for p in generator]
        assert sports == [1000, 1000, 2000, 2000]

    def test_round_robin_ordering(self):
        generator = TrafficGenerator(self.make_specs(), interleave="round_robin")
        sports = [p.l4.src_port for p in generator]
        assert sports == [1000, 2000, 1000, 2000]

    def test_total_packets(self):
        generator = TrafficGenerator(self.make_specs())
        assert generator.total_packets == 4
        assert len(generator.packets()) == 4

    def test_unknown_interleave_rejected(self):
        with pytest.raises(ValueError):
            TrafficGenerator([], interleave="zigzag")


class TestPayloadSynthesizer:
    def test_benign_payload_matches_nothing(self):
        synth = PayloadSynthesizer(RULES)
        payload = synth.benign(64)
        assert len(payload) == 64
        for rule in RULES:
            if rule.contents:
                assert not rule.payload_matches(payload)

    def test_matching_payload_hits_the_rule(self):
        synth = PayloadSynthesizer(RULES)
        rule = RULES[0]
        payload = synth.matching(rule, 64)
        assert rule.payload_matches(payload)
        assert len(payload) >= 64

    def test_matching_action_lookup(self):
        synth = PayloadSynthesizer(RULES)
        payload = synth.matching_action(RuleAction.LOG)
        assert RULES[1].payload_matches(payload)

    def test_missing_action_raises(self):
        synth = PayloadSynthesizer(RULES[:1])
        with pytest.raises(LookupError):
            synth.rule_with_action(RuleAction.LOG)

    def test_mixed_stream_fraction(self):
        synth = PayloadSynthesizer(RULES, seed=3)
        payloads = synth.mixed_stream(200, malicious_fraction=0.3, length=32)
        hits = sum(1 for p in payloads if RULES[0].payload_matches(p))
        assert 35 <= hits <= 85  # ~30% of 200, with sampling slack

    def test_deterministic_with_seed(self):
        a = PayloadSynthesizer(RULES, seed=5).benign(32)
        b = PayloadSynthesizer(RULES, seed=5).benign(32)
        assert a == b


class TestDatacenterTrace:
    def test_flow_count(self):
        config = DatacenterTraceConfig(flows=50, seed=1)
        flows = DatacenterTraceGenerator(config, RULES).generate_flows()
        assert len(flows) == 50

    def test_deterministic(self):
        config = DatacenterTraceConfig(flows=20, seed=9)
        a = DatacenterTraceGenerator(config, RULES).generate_flows()
        b = DatacenterTraceGenerator(config, RULES).generate_flows()
        assert [f.five_tuple for f in a] == [f.five_tuple for f in b]
        assert [f.packets for f in a] == [f.packets for f in b]

    def test_unique_five_tuples(self):
        config = DatacenterTraceConfig(flows=100, seed=2)
        flows = DatacenterTraceGenerator(config, RULES).generate_flows()
        tuples = [f.five_tuple for f in flows]
        assert len(set(tuples)) == len(tuples)

    def test_heavy_tail_shape(self):
        config = DatacenterTraceConfig(flows=400, seed=3)
        generator = DatacenterTraceGenerator(config, RULES)
        flows = generator.generate_flows()
        histogram = generator.flow_size_histogram(flows)
        mice = histogram["1-2"] + histogram["3-9"]
        elephants = histogram["100+"]
        assert mice > 0.5 * len(flows)  # mostly mice
        assert elephants < 0.15 * len(flows)  # few elephants

    def test_sizes_clipped(self):
        config = DatacenterTraceConfig(flows=300, seed=4, max_packets_per_flow=50)
        flows = DatacenterTraceGenerator(config, RULES).generate_flows()
        assert max(f.packets for f in flows) <= 50

    def test_malicious_fraction_zero_without_rules(self):
        config = DatacenterTraceConfig(flows=10, seed=5)
        flows = DatacenterTraceGenerator(config, rules=()).generate_flows()
        # No rules: all payloads synthesised benign, nothing to match.
        assert all(f.packets >= 1 for f in flows)

    def test_handshake_and_fin_present(self):
        config = DatacenterTraceConfig(flows=5, seed=6)
        flows = DatacenterTraceGenerator(config, RULES).generate_flows()
        assert all(f.handshake and f.fin for f in flows)
