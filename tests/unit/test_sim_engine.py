"""Unit tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.sim import Engine, Get, Put, Request, SimulationError, Store, Resource, Timeout


def test_clock_starts_at_zero():
    engine = Engine()
    assert engine.now == 0.0


def test_timeout_advances_clock():
    engine = Engine()
    times = []

    def proc():
        yield Timeout(5.0)
        times.append(engine.now)
        yield Timeout(2.5)
        times.append(engine.now)

    engine.add_process(proc())
    engine.run()
    assert times == [5.0, 7.5]


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_zero_timeout_allowed():
    engine = Engine()
    seen = []

    def proc():
        yield Timeout(0.0)
        seen.append(engine.now)

    engine.add_process(proc())
    engine.run()
    assert seen == [0.0]


def test_run_until_stops_early():
    engine = Engine()
    seen = []

    def proc():
        for __ in range(10):
            yield Timeout(1.0)
            seen.append(engine.now)

    engine.add_process(proc())
    final = engine.run(until=3.5)
    assert final == 3.5
    assert seen == [1.0, 2.0, 3.0]


def test_ties_broken_by_insertion_order():
    engine = Engine()
    order = []

    def proc(tag):
        yield Timeout(1.0)
        order.append(tag)

    engine.add_process(proc("a"))
    engine.add_process(proc("b"))
    engine.add_process(proc("c"))
    engine.run()
    assert order == ["a", "b", "c"]


def test_process_result_and_join():
    engine = Engine()
    results = []

    def worker():
        yield Timeout(3.0)
        return 42

    def waiter(process):
        value = yield process
        results.append((engine.now, value))

    process = engine.add_process(worker())
    engine.add_process(waiter(process))
    engine.run()
    assert results == [(3.0, 42)]
    assert process.finished
    assert process.result == 42


def test_join_on_finished_process_returns_immediately():
    engine = Engine()
    results = []

    def worker():
        yield Timeout(1.0)
        return "done"

    process = engine.add_process(worker())
    engine.run()

    def late_waiter():
        value = yield process
        results.append(value)

    engine.add_process(late_waiter())
    engine.run()
    assert results == ["done"]


def test_event_wakes_all_waiters():
    engine = Engine()
    event = engine.event()
    woken = []

    def waiter(tag):
        value = yield event
        woken.append((tag, value, engine.now))

    def trigger():
        yield Timeout(4.0)
        event.trigger("fired")

    engine.add_process(waiter("x"))
    engine.add_process(waiter("y"))
    engine.add_process(trigger())
    engine.run()
    assert woken == [("x", "fired", 4.0), ("y", "fired", 4.0)]


def test_event_double_trigger_rejected():
    engine = Engine()
    event = engine.event()
    event.trigger()
    with pytest.raises(SimulationError):
        event.trigger()


def test_interrupt_raises_in_process():
    engine = Engine()
    from repro.sim import Interrupt

    caught = []

    def sleeper():
        try:
            yield Timeout(100.0)
        except Interrupt as interrupt:
            caught.append((engine.now, interrupt.cause))

    def interrupter(target):
        yield Timeout(2.0)
        target.interrupt("wake up")

    target = engine.add_process(sleeper())
    engine.add_process(interrupter(target))
    engine.run()
    assert caught == [(2.0, "wake up")]


def test_unsupported_yield_raises():
    engine = Engine()

    def bad():
        yield "not a command"

    engine.add_process(bad())
    with pytest.raises(SimulationError):
        engine.run()


def test_store_put_get_fifo():
    engine = Engine()
    store = Store(engine)
    got = []

    def producer():
        for i in range(3):
            yield Put(store, i)
            yield Timeout(1.0)

    def consumer():
        for __ in range(3):
            item = yield Get(store)
            got.append(item)

    engine.add_process(producer())
    engine.add_process(consumer())
    engine.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    engine = Engine()
    store = Store(engine)
    got = []

    def consumer():
        item = yield Get(store)
        got.append((engine.now, item))

    def producer():
        yield Timeout(7.0)
        yield Put(store, "pkt")

    engine.add_process(consumer())
    engine.add_process(producer())
    engine.run()
    assert got == [(7.0, "pkt")]


def test_store_capacity_blocks_producer():
    engine = Engine()
    store = Store(engine, capacity=1)
    timeline = []

    def producer():
        yield Put(store, "a")
        timeline.append(("put-a", engine.now))
        yield Put(store, "b")
        timeline.append(("put-b", engine.now))

    def consumer():
        yield Timeout(10.0)
        item = yield Get(store)
        timeline.append(("got-" + item, engine.now))

    engine.add_process(producer())
    engine.add_process(consumer())
    engine.run()
    # The second put can only complete once the consumer drains one slot.
    assert ("put-a", 0.0) in timeline
    assert ("put-b", 10.0) in timeline


def test_store_invalid_capacity():
    engine = Engine()
    with pytest.raises(SimulationError):
        Store(engine, capacity=0)


def test_store_watermark_and_counters():
    engine = Engine()
    store = Store(engine)

    def producer():
        for i in range(5):
            yield Put(store, i)

    def consumer():
        yield Timeout(1.0)
        for __ in range(5):
            yield Get(store)

    engine.add_process(producer())
    engine.add_process(consumer())
    engine.run()
    assert store.total_put == 5
    assert store.total_got == 5
    assert store.high_watermark == 5
    assert len(store) == 0


def test_resource_serialises_access():
    engine = Engine()
    core = Resource(engine, capacity=1)
    spans = []

    def worker(tag, hold):
        yield Request(core)
        start = engine.now
        yield Timeout(hold)
        spans.append((tag, start, engine.now))
        yield core.release()

    engine.add_process(worker("a", 5.0))
    engine.add_process(worker("b", 3.0))
    engine.run()
    assert spans == [("a", 0.0, 5.0), ("b", 5.0, 8.0)]


def test_resource_parallel_capacity():
    engine = Engine()
    pool = Resource(engine, capacity=2)
    done = []

    def worker(tag):
        yield Request(pool)
        yield Timeout(4.0)
        done.append((tag, engine.now))
        yield pool.release()

    for tag in ("a", "b", "c"):
        engine.add_process(worker(tag))
    engine.run()
    # Two run together, the third waits for a slot.
    assert done == [("a", 4.0), ("b", 4.0), ("c", 8.0)]


def test_resource_release_when_idle_raises():
    engine = Engine()
    pool = Resource(engine, capacity=1)

    def bad():
        yield pool.release()

    engine.add_process(bad())
    with pytest.raises(SimulationError):
        engine.run()


def test_resource_invalid_capacity():
    engine = Engine()
    with pytest.raises(SimulationError):
        Resource(engine, capacity=0)


def test_determinism_two_runs_identical():
    def build_and_run():
        engine = Engine()
        store = Store(engine, capacity=4)
        trace = []

        def producer():
            for i in range(20):
                yield Put(store, i)
                yield Timeout(1.5)

        def consumer():
            for __ in range(20):
                item = yield Get(store)
                trace.append((engine.now, item))
                yield Timeout(2.0)

        engine.add_process(producer())
        engine.add_process(consumer())
        engine.run()
        return trace

    assert build_and_run() == build_and_run()
