"""Unit tests for flow-close hook wiring (handle_flow_close on FIN/RST)."""

from repro.core.framework import ServiceChain, SpeedyBox
from repro.net.headers import TCP_RST
from repro.nf import IPFilter, MazuNAT, SnortIDS
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets

RULES = 'alert tcp any any -> any any (content:"x"; sid:1;)'


def fin_flow(sport=1000, packets=3):
    spec = FlowSpec.tcp("10.0.0.1", "20.0.0.1", sport, 80, packets=packets,
                        payload=b"x", fin=True)
    return TrafficGenerator([spec]).packets()


class TestHooksFireOnBothRuntimes:
    def test_nat_mapping_released_baseline(self):
        nat = MazuNAT("nat")
        chain = ServiceChain([nat])
        for packet in fin_flow():
            chain.process(packet)
        assert not nat.mappings

    def test_nat_mapping_released_speedybox(self):
        nat = MazuNAT("nat")
        sbox = SpeedyBox([nat])
        for packet in fin_flow():
            sbox.process(packet)
        assert not nat.mappings

    def test_nat_port_reused_across_flow_generations(self):
        nat = MazuNAT("nat", port_range=(10000, 10000))  # a single port
        sbox = SpeedyBox([nat])
        for packet in fin_flow(sport=1000):
            sbox.process(packet)
        # Same single external port must be reusable by the next flow.
        for packet in fin_flow(sport=2000):
            sbox.process(packet)
        assert nat.translations == 2

    def test_firewall_cache_and_snort_matchers_evicted(self):
        fw = IPFilter("fw")
        ids = SnortIDS("ids", RULES)
        sbox = SpeedyBox([fw, ids])
        for packet in fin_flow():
            sbox.process(packet)
        assert not fw._verdict_cache
        assert not ids.flow_matchers

    def test_rst_also_triggers_hooks(self):
        from repro.net import Packet, FiveTuple

        nat = MazuNAT("nat")
        sbox = SpeedyBox([nat])
        packets = fin_flow(packets=2)[:-1]  # drop the FIN
        for packet in packets:
            sbox.process(packet)
        assert nat.mappings
        rst = Packet.from_five_tuple(
            FiveTuple.make("10.0.0.1", "20.0.0.1", 1000, 80), tcp_flags=TCP_RST
        )
        sbox.process(rst)
        assert not nat.mappings

    def test_hooks_do_not_fire_mid_flow(self):
        nat = MazuNAT("nat")
        sbox = SpeedyBox([nat])
        for packet in fin_flow(packets=3)[:-1]:  # no FIN yet
            sbox.process(packet)
        assert nat.mappings

    def test_hooks_fire_even_for_unestablished_flows(self):
        # A lone RST (no flow state anywhere) must not crash the hooks.
        from repro.net import Packet, FiveTuple

        sbox = SpeedyBox([MazuNAT("nat"), IPFilter("fw")])
        rst = Packet.from_five_tuple(
            FiveTuple.make("10.0.0.9", "20.0.0.1", 4444, 80), tcp_flags=TCP_RST
        )
        report = sbox.process(rst)
        assert report.closing
