"""Unit tests for Monitor and MazuNAT (repro.nf.monitor, repro.nf.mazunat)."""

import pytest

from repro.core.local_mat import NullInstrumentationAPI
from repro.net import FiveTuple, Packet
from repro.net.addresses import ip_to_int, ip_to_str
from repro.nf.mazunat import MazuNAT, NatPortExhausted
from repro.nf.monitor import Monitor


def make_packet(src="10.0.0.1", dst="172.16.0.9", sport=1000, dport=80, payload=b"", fid=1):
    packet = Packet.from_five_tuple(FiveTuple.make(src, dst, sport, dport), payload=payload)
    packet.metadata["fid"] = fid
    return packet


class TestMonitor:
    def test_counts_packets_and_bytes(self):
        monitor = Monitor("m")
        packet = make_packet(payload=b"x" * 10)
        key = packet.five_tuple()
        monitor.process(packet, NullInstrumentationAPI())
        monitor.process(make_packet(payload=b"x" * 10), NullInstrumentationAPI())
        counters = monitor.flow_counters(key)
        assert counters.packets == 2
        assert counters.bytes == 2 * packet.byte_length()

    def test_flows_tracked_separately(self):
        monitor = Monitor("m")
        monitor.process(make_packet(sport=1000), NullInstrumentationAPI())
        monitor.process(make_packet(sport=2000), NullInstrumentationAPI())
        assert len(monitor.counters) == 2
        assert monitor.total_packets() == 2

    def test_unseen_flow_reads_zero(self):
        monitor = Monitor("m")
        counters = monitor.flow_counters(FiveTuple.make("9.9.9.9", "8.8.8.8", 1, 2))
        assert counters.packets == 0

    def test_reset(self):
        monitor = Monitor("m")
        monitor.process(make_packet(), NullInstrumentationAPI())
        monitor.reset()
        assert monitor.total_packets() == 0


class TestMazuNATOutbound:
    def test_rewrites_source(self):
        nat = MazuNAT("nat", external_ip="203.0.113.1", internal_prefix="10.0.0.0/8")
        packet = make_packet()
        nat.process(packet, NullInstrumentationAPI())
        assert ip_to_str(packet.ip.src_ip) == "203.0.113.1"
        assert packet.l4.src_port >= nat.port_lo
        assert nat.translations == 1

    def test_mapping_is_stable_per_flow(self):
        nat = MazuNAT("nat")
        first = make_packet()
        nat.process(first, NullInstrumentationAPI())
        second = make_packet()
        nat.process(second, NullInstrumentationAPI())
        assert first.l4.src_port == second.l4.src_port

    def test_different_flows_get_different_ports(self):
        nat = MazuNAT("nat")
        a = make_packet(sport=1000)
        b = make_packet(sport=2000)
        nat.process(a, NullInstrumentationAPI())
        nat.process(b, NullInstrumentationAPI())
        assert a.l4.src_port != b.l4.src_port

    def test_port_exhaustion_raises(self):
        nat = MazuNAT("nat", port_range=(10000, 10001))
        nat.process(make_packet(sport=1), NullInstrumentationAPI())
        nat.process(make_packet(sport=2), NullInstrumentationAPI())
        with pytest.raises(NatPortExhausted):
            nat.process(make_packet(sport=3), NullInstrumentationAPI())

    def test_released_port_is_reused(self):
        nat = MazuNAT("nat", port_range=(10000, 10001))
        packet = make_packet(sport=1)
        nat.process(packet, NullInstrumentationAPI())
        original_flow = FiveTuple.make("10.0.0.1", "172.16.0.9", 1, 80)
        assert nat.release_mapping(original_flow)
        nat.process(make_packet(sport=2), NullInstrumentationAPI())
        nat.process(make_packet(sport=3), NullInstrumentationAPI())  # reuses freed port


class TestMazuNATInbound:
    def test_reverse_translation(self):
        nat = MazuNAT("nat", external_ip="203.0.113.1")
        outbound = make_packet()
        nat.process(outbound, NullInstrumentationAPI())
        ext_port = outbound.l4.src_port

        inbound = Packet.from_five_tuple(
            FiveTuple.make("172.16.0.9", "203.0.113.1", 80, ext_port)
        )
        inbound.metadata["fid"] = 2
        nat.process(inbound, NullInstrumentationAPI())
        assert ip_to_str(inbound.ip.dst_ip) == "10.0.0.1"
        assert inbound.l4.dst_port == 1000

    def test_unknown_inbound_forwarded_untranslated(self):
        nat = MazuNAT("nat")
        inbound = Packet.from_five_tuple(FiveTuple.make("172.16.0.9", "203.0.113.1", 80, 5555))
        inbound.metadata["fid"] = 3
        before = inbound.serialize()
        nat.process(inbound, NullInstrumentationAPI())
        assert inbound.serialize() == before

    def test_is_internal(self):
        nat = MazuNAT("nat", internal_prefix="10.0.0.0/8")
        assert nat.is_internal(ip_to_int("10.255.0.1"))
        assert not nat.is_internal(ip_to_int("11.0.0.1"))

    def test_invalid_port_range_rejected(self):
        with pytest.raises(ValueError):
            MazuNAT("nat", port_range=(200, 100))

    def test_reset_clears_mappings(self):
        nat = MazuNAT("nat")
        nat.process(make_packet(), NullInstrumentationAPI())
        nat.reset()
        assert not nat.mappings
        assert not nat.reverse
        assert nat.translations == 0
