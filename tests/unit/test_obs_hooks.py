"""Engine-hook firing tests: observers on the sim engine and on run_load."""

from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import IPFilter
from repro.obs import (
    CountingObserver,
    EngineObserver,
    FanoutObserver,
    MetricsRegistry,
    PacketTracer,
    TracingObserver,
)
from repro.platform import BessPlatform, OpenNetVMPlatform
from repro.sim.engine import Engine, Get, Put, Timeout
from repro.sim.resources import Store
from repro.traffic import FlowSpec, TrafficGenerator


def make_packets(n=12):
    spec = FlowSpec.tcp("10.0.0.1", "20.0.0.1", 1000, 80, packets=n)
    return TrafficGenerator([spec]).packets()


class TestEngineHooks:
    def run_producer_consumer(self, observer, items=5, capacity=2):
        """A tiny pipeline that forces both put- and get-blocking."""
        engine = Engine()
        engine.observer = observer
        store = Store(engine, capacity=capacity, name="ring0")

        def producer():
            for index in range(items):
                yield Put(store, index)

        def consumer():
            for _ in range(items):
                yield Get(store)
                yield Timeout(10.0)

        engine.add_process(producer(), name="producer")
        engine.add_process(consumer(), name="consumer")
        engine.run()
        return engine

    def test_counting_observer_firing_counts(self):
        observer = CountingObserver()
        self.run_producer_consumer(observer, items=5, capacity=2)
        assert observer.scheduled == 2
        assert observer.finished == 2
        assert observer.puts == 5
        assert observer.gets == 5
        assert observer.per_store_puts == {"ring0": 5}
        assert observer.per_store_gets == {"ring0": 5}
        # Capacity 2 with a slow consumer: the producer must block.
        assert observer.blocked["put"] > 0
        # Every process resumption goes through the hook; at minimum each
        # process resumes once per yield it completes.
        assert observer.resumed >= 10

    def test_counting_observer_publishes_metrics(self):
        registry = MetricsRegistry()
        observer = CountingObserver(metrics=registry)
        self.run_producer_consumer(observer)
        snapshot = registry.snapshot()
        assert snapshot["sim_process_resumes_total"] == observer.resumed
        assert snapshot["sim_store_blocked_total{kind=put}"] == observer.blocked["put"]

    def test_tracing_observer_streams_occupancy(self):
        tracer = PacketTracer()
        self.run_producer_consumer(TracingObserver(tracer))
        assert "ring:ring0" in tracer.tracks()
        records = tracer.to_chrome()["traceEvents"]
        counters = [event for event in records if event["ph"] == "C"]
        # One occupancy sample per put and per get.
        assert len(counters) == 10
        instants = [event for event in records if event["ph"] == "i"]
        assert any(event["name"] == "blocked_put" for event in instants)

    def test_fanout_forwards_to_all(self):
        a, b = CountingObserver(), CountingObserver()
        self.run_producer_consumer(FanoutObserver(a, b, None))
        assert a.puts == b.puts == 5
        assert a.resumed == b.resumed

    def test_no_observer_is_the_default(self):
        engine = Engine()
        assert engine.observer is None

        def ticker():
            yield Timeout(1.0)

        # ...and the run completes without one.
        engine.add_process(ticker(), name="t")
        engine.run()

    def test_base_observer_is_noop(self):
        self.run_producer_consumer(EngineObserver())  # must not raise


class TestRunLoadHooks:
    def test_bess_run_load_fires_hooks(self):
        metrics = MetricsRegistry()
        platform = BessPlatform(SpeedyBox([IPFilter("fw")]), metrics=metrics)
        packets = make_packets(12)
        platform.run_load(packets)
        snapshot = metrics.snapshot()
        # One enqueue+dequeue per packet through the single chain-core
        # ring, plus the shutdown poison pill.
        assert snapshot["ring_enqueue_total{ring=bess:chain-core}"] == 12 + 1
        assert snapshot["ring_dequeue_total{ring=bess:chain-core}"] == 12 + 1
        assert snapshot["ring_high_watermark{ring=bess:chain-core}"] >= 1
        assert snapshot["load_runs_total{platform=bess}"] == 1
        # The engine observer saw every resumption.
        assert snapshot["sim_process_resumes_total"] > 12

    def test_onvm_run_load_names_every_stage_ring(self):
        metrics = MetricsRegistry()
        chain = [IPFilter("fw0"), IPFilter("fw1")]
        platform = OpenNetVMPlatform(ServiceChain(chain), metrics=metrics)
        platform.run_load(make_packets(8))
        snapshot = metrics.snapshot()
        for ring in ("onvm:manager", "onvm:nf:fw0", "onvm:nf:fw1"):
            # 8 packets + the shutdown poison pill.
            assert snapshot[f"ring_enqueue_total{{ring={ring}}}"] == 8 + 1

    def test_run_load_traces_ring_occupancy(self):
        tracer = PacketTracer()
        platform = BessPlatform(SpeedyBox([IPFilter("fw")]), tracer=tracer)
        platform.run_load(make_packets(6))
        tracks = tracer.tracks()
        assert any(track.startswith("ring:bess:") for track in tracks)
        assert any(track == "bess:chain-core" for track in tracks)
        # Per-packet stage spans made it in: at least one per packet.
        stage_spans = [s for s in tracer.spans if s.track == "bess:chain-core"]
        assert len(stage_spans) >= 6

    def test_run_load_without_observability_attaches_no_observer(self):
        platform = BessPlatform(SpeedyBox([IPFilter("fw")]))
        result = platform.run_load(make_packets(4))
        assert result.delivered == 4
