"""Unit tests for the Maglev load balancer (repro.nf.maglev)."""

import pytest

from repro.core.local_mat import NullInstrumentationAPI
from repro.net import FiveTuple, Packet
from repro.net.addresses import ip_to_str
from repro.nf.maglev import Backend, MaglevLoadBalancer, MaglevTable


def backends(n=3):
    return [Backend.make(f"b{i}", f"192.168.1.{i + 1}", 8080) for i in range(n)]


def make_packet(sport=1000, fid=1):
    packet = Packet.from_five_tuple(FiveTuple.make("10.0.0.1", "100.0.0.1", sport, 80))
    packet.metadata["fid"] = fid
    return packet


class TestMaglevTable:
    def test_table_size_must_be_prime(self):
        with pytest.raises(ValueError):
            MaglevTable(backends(), table_size=100)

    def test_every_slot_filled(self):
        table = MaglevTable(backends(), table_size=131)
        assert all(entry is not None for entry in table.entries_snapshot())

    def test_balance_within_maglev_bound(self):
        # Maglev §3.4: with M >> N the slot share is near-uniform.
        table = MaglevTable(backends(5), table_size=1031)
        share = table.slot_share()
        expected = 1031 / 5
        for count in share.values():
            assert abs(count - expected) / expected < 0.12

    def test_lookup_deterministic(self):
        table = MaglevTable(backends(), table_size=131)
        flow = FiveTuple.make("10.0.0.1", "100.0.0.1", 1000, 80)
        assert table.lookup(flow) is table.lookup(flow)

    def test_lookup_spreads_flows(self):
        table = MaglevTable(backends(), table_size=131)
        hit = {
            table.lookup(FiveTuple.make("10.0.0.1", "100.0.0.1", 1000 + i, 80)).name
            for i in range(60)
        }
        assert len(hit) == 3

    def test_minimal_disruption_on_failure(self):
        # Consistent hashing: removing one of N backends should remap
        # roughly 1/N of flows, not reshuffle everything.
        table = MaglevTable(backends(4), table_size=1031)
        flows = [FiveTuple.make("10.0.0.1", "100.0.0.1", 1000 + i, 80) for i in range(400)]
        before = {flow: table.lookup(flow).name for flow in flows}
        failed = before[flows[0]]
        for backend in table.backends:
            if backend.name == failed:
                backend.healthy = False
        table.rebuild()
        moved_but_alive = sum(
            1
            for flow in flows
            if before[flow] != failed and table.lookup(flow).name != before[flow]
        )
        alive_total = sum(1 for flow in flows if before[flow] != failed)
        # Well under half of the surviving flows should move.
        assert moved_but_alive / alive_total < 0.35

    def test_no_healthy_backends_returns_none(self):
        table = MaglevTable(backends(1), table_size=13)
        table.backends[0].healthy = False
        table.rebuild()
        assert table.lookup(FiveTuple.make("1.1.1.1", "2.2.2.2", 1, 2)) is None


class TestMaglevNF:
    def test_rewrites_destination(self):
        maglev = MaglevLoadBalancer("lb", backends=backends(), table_size=131)
        packet = make_packet()
        maglev.process(packet, NullInstrumentationAPI())
        assert ip_to_str(packet.ip.dst_ip).startswith("192.168.1.")
        assert packet.l4.dst_port == 8080

    def test_connection_stickiness(self):
        maglev = MaglevLoadBalancer("lb", backends=backends(), table_size=131)
        first = make_packet()
        maglev.process(first, NullInstrumentationAPI())
        second = make_packet()
        maglev.process(second, NullInstrumentationAPI())
        assert first.ip.dst_ip == second.ip.dst_ip

    def test_failover_selects_new_backend(self):
        maglev = MaglevLoadBalancer("lb", backends=backends(), table_size=131)
        packet = make_packet()
        maglev.process(packet, NullInstrumentationAPI())
        original = ip_to_str(packet.ip.dst_ip)
        failed_name = next(
            backend.name for backend in maglev.backends if ip_to_str(backend.ip) == original
        )
        maglev.fail_backend(failed_name)

        flow = FiveTuple.make("10.0.0.1", "100.0.0.1", 1000, 80)
        assert maglev.backend_failed(flow)
        replacement = maglev.reroute_flow(flow)
        packet2 = make_packet()
        replacement.apply(packet2)
        assert ip_to_str(packet2.ip.dst_ip) != original
        assert maglev.reroutes == 1
        assert not maglev.backend_failed(flow)  # condition clears after reroute

    def test_recover_backend(self):
        maglev = MaglevLoadBalancer("lb", backends=backends(), table_size=131)
        maglev.fail_backend("b0")
        maglev.recover_backend("b0")
        assert maglev.backend_by_name("b0").healthy

    def test_unknown_backend_name(self):
        maglev = MaglevLoadBalancer("lb", backends=backends(), table_size=131)
        with pytest.raises(KeyError):
            maglev.fail_backend("nope")

    def test_no_healthy_backends_raises(self):
        maglev = MaglevLoadBalancer("lb", backends=backends(1), table_size=13)
        maglev.fail_backend("b0")
        with pytest.raises(RuntimeError):
            maglev.process(make_packet(), NullInstrumentationAPI())

    def test_default_backends_provided(self):
        maglev = MaglevLoadBalancer("lb", table_size=131)
        assert len(maglev.backends) == 3

    def test_reset_restores_health(self):
        maglev = MaglevLoadBalancer("lb", backends=backends(), table_size=131)
        maglev.fail_backend("b1")
        maglev.reset()
        assert all(backend.healthy for backend in maglev.backends)
        assert not maglev.conntrack
