"""Unit tests for header actions (repro.core.actions)."""

import pytest

from repro.core.actions import (
    Decap,
    Drop,
    Encap,
    FieldOp,
    Forward,
    HeaderActionKind,
    Modify,
    apply_sequentially,
)
from repro.net import AuthenticationHeader, FiveTuple, Packet, PacketField, VxlanHeader
from repro.net.addresses import ip_to_int, ip_to_str


def make_packet(**kwargs):
    ft = FiveTuple.make("10.0.0.1", "10.0.0.2", 1234, 80)
    return Packet.from_five_tuple(ft, **kwargs)


class TestFieldOp:
    def test_set_applies(self):
        assert FieldOp.set(7).apply(100) == 7

    def test_adjust_applies(self):
        assert FieldOp.adjust(-3).apply(100) == 97

    def test_set_then_set_latter_wins(self):
        composed = FieldOp.set(1).then(FieldOp.set(2))
        assert composed.apply(99) == 2

    def test_set_then_adjust(self):
        composed = FieldOp.set(10).then(FieldOp.adjust(-2))
        assert composed.apply(99) == 8

    def test_adjust_then_adjust_sums(self):
        composed = FieldOp.adjust(-1).then(FieldOp.adjust(-2))
        assert composed.apply(64) == 61

    def test_adjust_then_set(self):
        composed = FieldOp.adjust(-5).then(FieldOp.set(40))
        assert composed.apply(64) == 40

    def test_composition_equals_sequential_application(self):
        ops = [FieldOp.adjust(-1), FieldOp.set(50), FieldOp.adjust(3), FieldOp.adjust(-2)]
        composed = ops[0]
        for op in ops[1:]:
            composed = composed.then(op)
        sequential = 64
        for op in ops:
            sequential = op.apply(sequential)
        assert composed.apply(64) == sequential

    def test_equality_and_hash(self):
        assert FieldOp.set(5) == FieldOp.set(5)
        assert FieldOp.set(5) != FieldOp.adjust(5)
        assert hash(FieldOp.adjust(2)) == hash(FieldOp.adjust(2))


class TestBasicActions:
    def test_forward_is_identity(self):
        packet = make_packet()
        before = packet.serialize()
        Forward().apply(packet)
        assert packet.serialize() == before

    def test_drop_marks_descriptor(self):
        packet = make_packet()
        Drop().apply(packet)
        assert packet.dropped

    def test_kinds(self):
        assert Forward().kind is HeaderActionKind.FORWARD
        assert Drop().kind is HeaderActionKind.DROP
        assert Modify.set(ttl=9).kind is HeaderActionKind.MODIFY

    def test_forward_drop_equality(self):
        assert Forward() == Forward()
        assert Drop() == Drop()
        assert Forward() != Drop()


class TestModify:
    def test_set_fields(self):
        packet = make_packet()
        Modify.set(dst_ip=ip_to_int("9.9.9.9"), dst_port=8080).apply(packet)
        assert ip_to_str(packet.ip.dst_ip) == "9.9.9.9"
        assert packet.l4.dst_port == 8080

    def test_ttl_dec(self):
        packet = make_packet()
        original_ttl = packet.ip.ttl
        Modify.ttl_dec().apply(packet)
        assert packet.ip.ttl == original_ttl - 1

    def test_empty_modify_rejected(self):
        with pytest.raises(ValueError):
            Modify({})

    def test_touched_fields(self):
        action = Modify.set(dst_ip=1, src_port=2)
        assert set(action.touched_fields()) == {PacketField.DST_IP, PacketField.SRC_PORT}

    def test_equality(self):
        assert Modify.set(ttl=3) == Modify.set(ttl=3)
        assert Modify.set(ttl=3) != Modify.set(ttl=4)


class TestEncapDecap:
    def test_encap_pushes_clone(self):
        template = AuthenticationHeader(spi=42)
        packet = make_packet()
        Encap(template).apply(packet)
        assert len(packet.encaps) == 1
        assert packet.encaps[0] is not template
        assert packet.encaps[0].spi == 42

    def test_decap_pops(self):
        packet = make_packet()
        packet.push_encap(AuthenticationHeader(spi=1))
        Decap().apply(packet)
        assert not packet.encaps

    def test_typed_decap_validates(self):
        packet = make_packet()
        packet.push_encap(VxlanHeader(vni=1))
        with pytest.raises(ValueError):
            Decap(AuthenticationHeader).apply(packet)

    def test_decap_matches_encap(self):
        encap = Encap(AuthenticationHeader(spi=1))
        assert Decap(AuthenticationHeader).matches(encap)
        assert Decap().matches(encap)
        assert not Decap(VxlanHeader).matches(encap)

    def test_decap_on_bare_packet_raises(self):
        with pytest.raises(ValueError):
            Decap().apply(make_packet())


class TestApplySequentially:
    def test_stops_at_drop(self):
        packet = make_packet()
        actions = [Modify.set(ttl=10), Drop(), Modify.set(ttl=50)]
        apply_sequentially(packet, actions)
        assert packet.dropped
        assert packet.ip.ttl == 10  # action after the drop never ran

    def test_order_matters_same_field(self):
        packet = make_packet()
        apply_sequentially(packet, [Modify.set(dst_port=1), Modify.set(dst_port=2)])
        assert packet.l4.dst_port == 2
