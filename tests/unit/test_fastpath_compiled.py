"""Unit tests for the compiled fast lane: caching, gating, invalidation.

:mod:`repro.core.fastpath` promises the compiled closure is observably
identical to the interpreted fast path and that it *never* serves a
packet after its assumptions break — these tests pin the cache
lifecycle rather than end-to-end equality (the integration suite owns
that).
"""

from __future__ import annotations

from repro.core.event_table import Event
from repro.core.framework import PathTaken, SpeedyBox
from repro.nf import IPFilter, Monitor
from repro.platform import BessPlatform, PlatformConfig
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets


def flow_packets(count=6, sport=4100):
    spec = FlowSpec.tcp("10.0.0.1", "20.0.0.1", sport, 80, packets=count, payload=b"q" * 8)
    return TrafficGenerator([spec]).packets()


def fin_packet(sport=4100):
    spec = FlowSpec.tcp("10.0.0.1", "20.0.0.1", sport, 80, packets=0, fin=True)
    return TrafficGenerator([spec]).packets()[0]


class TestCompilation:
    def test_first_packet_compiles_the_flow(self):
        runtime = SpeedyBox([IPFilter("fw0")])
        packets = flow_packets(3)
        runtime.process(packets[0])
        # Recording installs the rule and compiles in the same traversal,
        # so the flow's *second* packet already takes the compiled lane.
        assert len(runtime._compiled) == 1
        report = runtime.process(packets[1])
        assert report.steady
        assert len(runtime._compiled_fids) == 1
        (key,) = runtime._compiled
        assert runtime._compiled_fids[next(iter(runtime._compiled_fids))] == key

    def test_steady_packets_share_one_report(self):
        runtime = SpeedyBox([IPFilter("fw0")])
        packets = flow_packets(5)
        reports = [runtime.process(p) for p in packets]
        steady = [r for r in reports if r.steady]
        assert steady, "no-wave chain should reach the steady singleton"
        assert all(r is steady[0] for r in steady)
        assert all(r.path is PathTaken.FAST for r in steady)

    def test_sf_chain_compiles_without_steady_singleton(self):
        runtime = SpeedyBox([IPFilter("fw0"), Monitor("mon0")])
        packets = flow_packets(4)
        reports = [runtime.process(p) for p in packets]
        assert runtime._compiled
        # Monitor's SF schedule makes per-packet meters: fresh reports.
        assert not any(r.steady for r in reports)
        assert reports[-1] is not reports[-2]

    def test_compile_fast_path_flag_disables_compilation(self):
        runtime = SpeedyBox([IPFilter("fw0")], compile_fast_path=False)
        for packet in flow_packets(4):
            runtime.process(packet)
        assert not runtime._compiled
        assert not runtime._compiled_fids

    def test_platform_config_disables_compilation(self):
        runtime = SpeedyBox([IPFilter("fw0")])
        BessPlatform(runtime, config=PlatformConfig(compiled_flows=False))
        for packet in flow_packets(4):
            runtime.process(packet)
        assert runtime.compile_fast_path is False
        assert not runtime._compiled


class TestInvalidation:
    def _established(self):
        runtime = SpeedyBox([IPFilter("fw0")])
        for packet in flow_packets(3):
            runtime.process(packet)
        assert runtime._compiled
        (fid,) = runtime._compiled_fids
        return runtime, fid

    def test_delete_flow_drops_the_closure(self):
        runtime, fid = self._established()
        runtime.delete_flow(fid)
        assert not runtime._compiled
        assert not runtime._compiled_fids

    def test_fin_falls_back_and_tears_down(self):
        runtime, fid = self._established()
        report = runtime.process(fin_packet())
        assert not report.steady  # teardown ran interpreted
        assert not runtime._compiled
        assert fid not in runtime._compiled_fids

    def test_invalidate_compiled_is_idempotent(self):
        runtime, fid = self._established()
        runtime._invalidate_compiled(fid)
        assert not runtime._compiled
        runtime._invalidate_compiled(fid)  # second call is a no-op
        assert not runtime._compiled_fids

    def test_active_event_bypasses_the_closure(self):
        runtime, fid = self._established()
        runtime.event_table.register(
            Event(fid, "fw0", condition=lambda: False, update_action=None,
                  update_function=lambda: None)
        )
        packets = flow_packets(2)
        report = runtime.process(packets[0])
        # The closure must decline (active event) and the interpreted
        # fast path must serve the packet instead.
        assert report.path is PathTaken.FAST
        assert not report.steady

    def test_export_flow_drops_the_closure(self):
        runtime, fid = self._established()
        record = runtime.export_flow(fid)
        assert record is not None
        assert not runtime._compiled
        assert not runtime._compiled_fids

    def test_reset_clears_the_cache(self):
        runtime, __ = self._established()
        runtime.reset()
        assert not runtime._compiled
        assert not runtime._compiled_fids


class TestConfigGating:
    def test_analytic_only_config_keeps_interpreted_processing(self):
        packets = flow_packets(40)
        mixed = BessPlatform(
            SpeedyBox([IPFilter("fw0")]),
            config=PlatformConfig(compiled_flows=False, analytic_replay=True),
        )
        legacy = BessPlatform(
            SpeedyBox([IPFilter("fw0")]),
            config=PlatformConfig(compiled_flows=False, analytic_replay=False),
        )
        a = mixed.run_load(clone_packets(packets))
        b = legacy.run_load(clone_packets(packets))
        assert a.latencies_ns == b.latencies_ns
        assert a.makespan_ns == b.makespan_ns
        assert not mixed.runtime._compiled

    def test_compiled_only_config_uses_the_des(self):
        packets = flow_packets(40)
        platform = BessPlatform(
            SpeedyBox([IPFilter("fw0")]),
            config=PlatformConfig(compiled_flows=True, analytic_replay=False),
        )
        assert platform._analytic_valid([[(0, 100.0)]]) is False
        legacy = BessPlatform(
            SpeedyBox([IPFilter("fw0")]),
            config=PlatformConfig(compiled_flows=False, analytic_replay=False),
        )
        a = platform.run_load(clone_packets(packets))
        b = legacy.run_load(clone_packets(packets))
        assert a.latencies_ns == b.latencies_ns
