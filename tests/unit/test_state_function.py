"""Unit tests for state functions and batches (repro.core.state_function)."""

import pytest

from repro.core.state_function import PayloadClass, StateFunction, StateFunctionBatch
from repro.net import FiveTuple, Packet


def make_packet():
    return Packet.from_five_tuple(FiveTuple.make("10.0.0.1", "10.0.0.2", 1, 2), payload=b"x")


class TestStateFunction:
    def test_invoke_passes_packet_and_args(self):
        seen = []
        fn = StateFunction(lambda pkt, a, b: seen.append((pkt, a, b)), PayloadClass.IGNORE, args=(1, 2))
        packet = make_packet()
        fn.invoke(packet)
        assert seen == [(packet, 1, 2)]
        assert fn.invocations == 1

    def test_returns_handler_result(self):
        fn = StateFunction(lambda pkt: 42, PayloadClass.READ)
        assert fn.invoke(make_packet()) == 42

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            StateFunction("not callable", PayloadClass.READ)  # type: ignore[arg-type]

    def test_name_defaults_to_handler_name(self):
        def my_handler(pkt):
            return None

        fn = StateFunction(my_handler, PayloadClass.IGNORE)
        assert fn.name == "my_handler"

    def test_payload_class_priority_order(self):
        assert PayloadClass.WRITE > PayloadClass.READ > PayloadClass.IGNORE


class TestStateFunctionBatch:
    def make_fn(self, log, tag, payload_class=PayloadClass.IGNORE):
        return StateFunction(lambda pkt: log.append(tag), payload_class, name=tag)

    def test_execution_preserves_order(self):
        log = []
        batch = StateFunctionBatch("nf")
        for tag in ("a", "b", "c"):
            batch.add(self.make_fn(log, tag))
        batch.execute(make_packet())
        assert log == ["a", "b", "c"]

    def test_empty_batch_is_falsy(self):
        batch = StateFunctionBatch("nf")
        assert not batch
        assert batch.payload_class is PayloadClass.IGNORE

    def test_payload_class_is_highest_priority(self):
        log = []
        batch = StateFunctionBatch("nf")
        batch.add(self.make_fn(log, "r1", PayloadClass.READ))
        batch.add(self.make_fn(log, "r2", PayloadClass.READ))
        batch.add(self.make_fn(log, "w", PayloadClass.WRITE))
        assert batch.payload_class is PayloadClass.WRITE

    def test_read_dominates_ignore(self):
        log = []
        batch = StateFunctionBatch("nf")
        batch.add(self.make_fn(log, "i", PayloadClass.IGNORE))
        batch.add(self.make_fn(log, "r", PayloadClass.READ))
        assert batch.payload_class is PayloadClass.READ

    def test_execute_collects_results(self):
        batch = StateFunctionBatch("nf")
        batch.add(StateFunction(lambda pkt: 1, PayloadClass.IGNORE))
        batch.add(StateFunction(lambda pkt: 2, PayloadClass.IGNORE))
        assert batch.execute(make_packet()) == [1, 2]

    def test_clone_with_replaces_functions(self):
        batch = StateFunctionBatch("nf")
        batch.add(StateFunction(lambda pkt: 1, PayloadClass.IGNORE))
        replacement = StateFunction(lambda pkt: 9, PayloadClass.READ)
        cloned = batch.clone_with([replacement])
        assert cloned.nf_name == "nf"
        assert len(cloned) == 1
        assert cloned.payload_class is PayloadClass.READ
        assert len(batch) == 1  # original untouched
