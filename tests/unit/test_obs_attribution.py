"""Cycle attribution: stage mapping and the exactness contract."""

from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import IPFilter, MazuNAT, Monitor
from repro.obs import CycleAttribution, STAGE_ORDER, stage_of
from repro.platform.costs import CostModel, Operation
from repro.traffic import FlowSpec, TrafficGenerator


def make_packets(n=8, sport=1000):
    spec = FlowSpec.tcp("10.0.0.1", "20.0.0.1", sport, 80, packets=n)
    return TrafficGenerator([spec]).packets()


def run_reports(runtime, packets):
    return [runtime.process(packet) for packet in packets]


class TestStageMapping:
    def test_every_operation_maps_to_a_known_stage(self):
        for operation in Operation:
            assert stage_of(operation) in STAGE_ORDER

    def test_representative_mappings(self):
        assert stage_of(Operation.PARSE) == "classify"
        assert stage_of(Operation.GLOBAL_MAT_LOOKUP) == "mat_lookup"
        assert stage_of(Operation.FAST_PATH_DISPATCH) == "dispatch"
        assert stage_of(Operation.MERGED_FIELD_WRITE) == "header_action"
        assert stage_of(Operation.CONSOLIDATE_ACTION) == "consolidate"
        assert stage_of(Operation.FLOW_DELETE) == "teardown"
        assert stage_of(Operation.NIC_RX) == "transport"


class TestExactness:
    def test_total_equals_summed_meters_exactly(self):
        """The tentpole contract: bucket totals == summed total_meter()."""
        model = CostModel()
        attribution = CycleAttribution(model)
        runtime = SpeedyBox([MazuNAT("nat"), Monitor("mon"), IPFilter("fw")])
        reports = run_reports(runtime, make_packets(20))
        attribution.ingest_all(reports)
        expected = sum(r.total_meter().cycles(model) for r in reports)
        assert attribution.total_cycles() == expected  # exact, not approx
        assert attribution.chain_cycles() == {"default": expected}

    def test_slow_path_chain_matches_too(self):
        model = CostModel()
        attribution = CycleAttribution(model)
        runtime = ServiceChain([IPFilter("fw0"), IPFilter("fw1")])
        reports = run_reports(runtime, make_packets(10))
        attribution.ingest_all(reports)
        expected = sum(r.total_meter().cycles(model) for r in reports)
        assert attribution.total_cycles() == expected


class TestBreakdowns:
    def make_attribution(self, packets=12):
        attribution = CycleAttribution()
        runtime = SpeedyBox([MazuNAT("nat"), Monitor("mon")])
        attribution.ingest_all(run_reports(runtime, make_packets(packets)))
        return attribution

    def test_stage_cycles_follow_canonical_order(self):
        stages = list(self.make_attribution().stage_cycles())
        ranks = [STAGE_ORDER.index(stage) for stage in stages]
        assert ranks == sorted(ranks)
        assert "classify" in stages and "mat_lookup" in stages

    def test_nf_buckets_cover_both_paths(self):
        # Original-path hops and fast-path SF batches land on the same NF.
        nfs = self.make_attribution().nf_cycles()
        assert set(nfs) == {"nat", "mon"}
        assert all(cycles > 0 for cycles in nfs.values())

    def test_paths_and_packets_counted(self):
        attribution = self.make_attribution(12)
        assert attribution.packets == 12
        assert sum(attribution.paths.values()) == 12
        assert attribution.paths.get("fast", 0) > 0

    def test_per_chain_labels_stay_separate(self):
        attribution = CycleAttribution()
        short = SpeedyBox([IPFilter("fw")])
        long = SpeedyBox([IPFilter(f"fw{i}") for i in range(4)])
        attribution.ingest_all(run_reports(short, make_packets(5)), chain="len1")
        attribution.ingest_all(run_reports(long, make_packets(5)), chain="len4")
        chains = attribution.chain_cycles()
        assert set(chains) == {"len1", "len4"}
        assert chains["len4"] > chains["len1"]
        assert attribution.chain_packets() == {"len1": 5, "len4": 5}

    def test_breakdown_is_json_serialisable(self):
        import json

        payload = json.loads(json.dumps(self.make_attribution().breakdown()))
        assert payload["packets"] == 12
        assert payload["total_cycles"] > 0

    def test_render_shows_every_section(self):
        attribution = CycleAttribution()
        runtime = SpeedyBox([Monitor("mon")])
        attribution.ingest_all(run_reports(runtime, make_packets(6)), chain="a")
        attribution.ingest_all(run_reports(runtime, make_packets(6)), chain="b")
        text = attribution.render(title="t")
        assert "t — per stage" in text
        assert "t — per NF" in text
        assert "t — per chain" in text

    def test_reset_clears_everything(self):
        attribution = self.make_attribution()
        attribution.reset()
        assert attribution.packets == 0
        assert attribution.total_cycles() == 0.0
        assert attribution.stage_cycles() == {}
        assert attribution.nf_cycles() == {}

    def test_empty_attribution_renders(self):
        text = CycleAttribution().render()
        assert "0 packets" in text
