"""Metric parity: the compiled fast lane increments identical counters.

The compiled lane (``SpeedyBox(compile_fast_path=True)``, the default)
is a pure execution-strategy change; ``repro.core.fastpath`` documents
the contract that a run with it enabled produces *exactly* the registry
snapshot of the interpreted fast path — same counters, same values,
same label sets.  Per-lane signals (compiles, invalidations) belong in
the AuditLog instead.  These tests pin that contract over chains that
exercise the interesting report shapes: steady singletons, SF schedules,
registered events, drops, and FIN teardown.
"""

import pytest

from repro.core.framework import SpeedyBox
from repro.nf import (
    DosPrevention,
    IPFilter,
    MaglevLoadBalancer,
    MazuNAT,
    Monitor,
    TokenBucketPolicer,
)
from repro.obs import MetricsRegistry
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets

CHAINS = {
    "filters": lambda: [IPFilter(f"fw{i}") for i in range(3)],
    "stateful": lambda: [MazuNAT("nat"), Monitor("mon"), IPFilter("fw")],
    "events": lambda: [DosPrevention("dos", threshold=20, mode="packets"),
                       Monitor("mon")],
    "drops": lambda: [TokenBucketPolicer("pol", rate_pps=1e6, burst=4),
                      IPFilter("fw")],
    "rewrite": lambda: [MaglevLoadBalancer("lb", table_size=131),
                        MazuNAT("nat")],
}


def make_packets(flows=3, per_flow=40, fin=True):
    specs = [
        FlowSpec.tcp(f"10.0.{i}.1", "20.0.0.1", 4000 + i, 80,
                     packets=per_flow, fin=fin)
        for i in range(flows)
    ]
    return TrafficGenerator(specs, interleave="round_robin").packets()


def snapshot_for(chain_factory, packets, compiled):
    registry = MetricsRegistry()
    runtime = SpeedyBox(chain_factory(), metrics=registry,
                        compile_fast_path=compiled)
    for packet in clone_packets(packets):
        runtime.process(packet)
    return registry.snapshot()


@pytest.mark.parametrize("chain_name", sorted(CHAINS))
def test_compiled_lane_metric_parity(chain_name):
    chain_factory = CHAINS[chain_name]
    packets = make_packets()
    interpreted = snapshot_for(chain_factory, packets, compiled=False)
    compiled = snapshot_for(chain_factory, packets, compiled=True)
    assert compiled == interpreted
    # The run actually took the fast path, so parity is non-vacuous.
    assert compiled.get("path_packets_total{path=fast}", 0) > 0


def test_parity_survives_fin_teardown_and_reuse():
    """Flows that close and re-open recompile; counters must not notice."""
    chain_factory = CHAINS["stateful"]
    # Two generations of the same five-tuples: FIN closes each flow,
    # the second generation re-records and re-compiles it.
    packets = make_packets(flows=2, per_flow=20, fin=True)
    packets = packets + clone_packets(packets)
    interpreted = snapshot_for(chain_factory, packets, compiled=False)
    compiled = snapshot_for(chain_factory, packets, compiled=True)
    assert compiled == interpreted
    assert compiled["flow_deletes_total"] == 4


def test_parity_includes_label_sets_not_just_totals():
    packets = make_packets()
    interpreted = snapshot_for(CHAINS["filters"], packets, compiled=False)
    compiled = snapshot_for(CHAINS["filters"], packets, compiled=True)
    assert set(compiled) == set(interpreted)
    labelled = [name for name in compiled if "{" in name]
    assert labelled, "snapshot contains labelled series"
