"""analytic_replay_vector vs the scalar recursion — exact equality.

The vector path re-brackets the saturation recursion into cumulative
array passes; ``np.add.accumulate`` / ``np.maximum.accumulate`` are
sequential left folds over float64, so every intermediate must be
bit-identical to the scalar loop's.  These tests pin that, plus the
eligibility gate (anything outside the single-stage saturation shape
must return None rather than approximate).
"""

import pytest

from repro import vector as vec
from repro.sim.analytic import analytic_replay, analytic_replay_vector

numpy_only = pytest.mark.skipif(not vec.HAVE_NUMPY, reason="requires numpy")


def scalar_latencies(table, plan_ids, cap):
    plans = [table[pid] for pid in plan_ids]
    gaps = [0.0] * len(plans)
    arrival_at, completions = analytic_replay(plans, gaps, stage_count=1, ring_capacity=cap)
    latencies = [0.0] * len(plans)
    for index, finish in completions:
        latencies[index] = finish - arrival_at[index]
    return latencies


@numpy_only
@pytest.mark.parametrize("cap", [None, 2, 7, 64])
def test_vector_matches_scalar_exactly(cap):
    table = [[(0, 137.25)], [(0, 64.5)], [(0, 512.0)]]
    plan_ids = [(i * 7 + i % 3) % 3 for i in range(200)]
    got = analytic_replay_vector(table, plan_ids, cap)
    assert got is not None
    latencies, makespan = got
    expected = scalar_latencies(table, plan_ids, cap)
    assert list(latencies) == expected  # exact float equality, element-wise
    assert makespan == max(
        finish
        for __, finish in analytic_replay(
            [table[p] for p in plan_ids], [0.0] * len(plan_ids), 1, cap
        )[1]
    )


@numpy_only
def test_vector_backpressure_beyond_capacity():
    """n >> ring capacity: the enqueue clamp must match the scalar ring."""
    table = [[(0, 100.0)]]
    plan_ids = [0] * 50
    got = analytic_replay_vector(table, plan_ids, 4)
    assert got is not None
    assert list(got[0]) == scalar_latencies(table, plan_ids, 4)


@numpy_only
def test_vector_empty_batch():
    assert analytic_replay_vector([], [], None) == ([], 0.0)
    assert analytic_replay_vector([[(0, 10.0)]], [], None) == ([], 0.0)


@numpy_only
def test_vector_declines_ineligible_shapes():
    # Multi-hop plan.
    assert analytic_replay_vector([[(0, 1.0), (1, 2.0)]], [0], None) is None
    # Pure-delay hop (stage None).
    assert analytic_replay_vector([[(None, 1.0)]], [0], None) is None
    # Two distinct target stages.
    assert analytic_replay_vector([[(0, 1.0)], [(1, 1.0)]], [0, 1], None) is None
    # Negative service time.
    assert analytic_replay_vector([[(0, -1.0)]], [0], None) is None


def test_vector_declines_without_numpy_fallback():
    """Without numpy the vector path must bow out, never approximate."""
    if vec.HAVE_NUMPY:
        pytest.skip("covered by the REPRO_NO_NUMPY test-suite pass")
    assert analytic_replay_vector([[(0, 1.0)]], [0], None) is None
