"""Unit tests for the Packet Classifier (repro.core.classifier)."""

from repro.core.classifier import FID_BITS, FID_SPACE, PacketClassifier, fid_of
from repro.net import FiveTuple, Packet, PROTO_UDP
from repro.net.headers import TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN


def tcp_packet(src="10.0.0.1", dst="10.0.0.2", sport=1000, dport=80, flags=TCP_ACK):
    return Packet.from_five_tuple(FiveTuple.make(src, dst, sport, dport), tcp_flags=flags)


class TestFidHash:
    def test_fid_fits_20_bits(self):
        ft = FiveTuple.make("10.0.0.1", "10.0.0.2", 1000, 80)
        assert 0 <= fid_of(ft) < FID_SPACE
        assert FID_BITS == 20

    def test_fid_deterministic(self):
        ft = FiveTuple.make("10.0.0.1", "10.0.0.2", 1000, 80)
        assert fid_of(ft) == fid_of(FiveTuple.make("10.0.0.1", "10.0.0.2", 1000, 80))

    def test_different_flows_usually_differ(self):
        fids = {
            fid_of(FiveTuple.make("10.0.0.1", "10.0.0.2", 1000 + i, 80)) for i in range(200)
        }
        # 200 flows in a 1M-slot space: collisions are possible but the
        # hash must not degenerate.
        assert len(fids) >= 195

    def test_direction_sensitive(self):
        ft = FiveTuple.make("10.0.0.1", "10.0.0.2", 1000, 80)
        assert fid_of(ft) != fid_of(ft.reversed())


class TestClassification:
    def test_attaches_fid_metadata(self):
        classifier = PacketClassifier()
        packet = tcp_packet()
        decision = classifier.classify(packet)
        assert packet.metadata["fid"] == decision.fid

    def test_detach_removes_metadata(self):
        classifier = PacketClassifier()
        packet = tcp_packet()
        classifier.classify(packet)
        classifier.detach(packet)
        assert "fid" not in packet.metadata

    def test_syn_is_handshake_until_established(self):
        classifier = PacketClassifier()
        syn = classifier.classify(tcp_packet(flags=TCP_SYN))
        assert syn.is_handshake
        assert not syn.fast_path_eligible
        data = classifier.classify(tcp_packet(flags=TCP_ACK))
        assert not data.is_handshake
        assert data.fast_path_eligible

    def test_syn_after_establishment_not_handshake(self):
        # Retransmitted SYN on an established flow stays on normal rules.
        classifier = PacketClassifier()
        classifier.classify(tcp_packet(flags=TCP_ACK))
        retrans = classifier.classify(tcp_packet(flags=TCP_SYN))
        assert not retrans.is_handshake

    def test_udp_established_immediately(self):
        classifier = PacketClassifier()
        packet = Packet.from_five_tuple(
            FiveTuple.make("10.0.0.1", "10.0.0.2", 53, 5353, protocol=PROTO_UDP)
        )
        decision = classifier.classify(packet)
        assert not decision.is_handshake
        assert decision.fast_path_eligible

    def test_fin_marks_closing(self):
        classifier = PacketClassifier()
        classifier.classify(tcp_packet())
        fin = classifier.classify(tcp_packet(flags=TCP_FIN | TCP_ACK))
        assert fin.is_closing

    def test_rst_marks_closing(self):
        classifier = PacketClassifier()
        classifier.classify(tcp_packet())
        rst = classifier.classify(tcp_packet(flags=TCP_RST))
        assert rst.is_closing

    def test_flow_entry_counts_packets(self):
        classifier = PacketClassifier()
        first = classifier.classify(tcp_packet())
        classifier.classify(tcp_packet())
        assert classifier.flow(first.fid).packets == 2

    def test_remove_flow(self):
        classifier = PacketClassifier()
        decision = classifier.classify(tcp_packet())
        assert classifier.remove_flow(decision.fid)
        assert classifier.flow(decision.fid) is None
        assert not classifier.remove_flow(decision.fid)


class TestCollisions:
    def test_collision_detected_and_pinned_slow(self):
        classifier = PacketClassifier()
        packet = tcp_packet()
        decision = classifier.classify(packet)
        # Forge a second flow owning the same FID.
        other = tcp_packet(src="10.9.9.9", sport=4321)
        classifier._flows[decision.fid].five_tuple = other.five_tuple().reversed()
        redecision = classifier.classify(packet)
        assert redecision.collided
        assert not redecision.fast_path_eligible
        assert not redecision.may_record
        assert classifier.collisions == 1
        assert packet.metadata.get("fid_collision")
