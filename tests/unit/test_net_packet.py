"""Unit tests for the packet substrate (repro.net)."""

import pytest

from repro.net import (
    AuthenticationHeader,
    EthernetHeader,
    FiveTuple,
    IPv4Header,
    MACAddress,
    Packet,
    PacketField,
    PROTO_TCP,
    PROTO_UDP,
    TCP_FIN,
    TCP_SYN,
    TCPHeader,
    UDPHeader,
    VxlanHeader,
    internet_checksum,
    ip_to_int,
    ip_to_str,
)


class TestAddresses:
    def test_ip_roundtrip(self):
        assert ip_to_str(ip_to_int("192.168.1.7")) == "192.168.1.7"

    def test_ip_int_passthrough(self):
        assert ip_to_int(0x0A000001) == 0x0A000001

    def test_ip_invalid_string(self):
        with pytest.raises(ValueError):
            ip_to_int("256.0.0.1")
        with pytest.raises(ValueError):
            ip_to_int("10.0.0")

    def test_ip_int_out_of_range(self):
        with pytest.raises(ValueError):
            ip_to_int(2**32)
        with pytest.raises(ValueError):
            ip_to_str(-1)

    def test_mac_roundtrip(self):
        mac = MACAddress("de:ad:be:ef:00:01")
        assert str(mac) == "de:ad:be:ef:00:01"
        assert MACAddress.from_bytes(mac.to_bytes()) == mac

    def test_mac_invalid(self):
        with pytest.raises(ValueError):
            MACAddress("de:ad:be:ef:00")
        with pytest.raises(ValueError):
            MACAddress(2**48)


class TestFiveTuple:
    def test_make_and_str(self):
        ft = FiveTuple.make("10.0.0.1", "10.0.0.2", 1234, 80)
        assert ft.protocol == PROTO_TCP
        assert "10.0.0.1:1234" in str(ft)

    def test_reversed_is_involution(self):
        ft = FiveTuple.make("10.0.0.1", "10.0.0.2", 1234, 80)
        assert ft.reversed().reversed() == ft

    def test_canonical_direction_independent(self):
        ft = FiveTuple.make("10.0.0.9", "10.0.0.2", 1234, 80)
        assert ft.canonical() == ft.reversed().canonical()

    def test_port_validation(self):
        with pytest.raises(ValueError):
            FiveTuple.make("10.0.0.1", "10.0.0.2", 70000, 80)


class TestHeaders:
    def test_internet_checksum_verifies(self):
        header = IPv4Header("10.1.2.3", "10.4.5.6", total_length=40)
        header.refresh_checksum()
        assert header.checksum_valid()

    def test_checksum_detects_corruption(self):
        header = IPv4Header("10.1.2.3", "10.4.5.6", total_length=40)
        header.refresh_checksum()
        header.dst_ip = ip_to_int("10.4.5.7")
        assert not header.checksum_valid()

    def test_ipv4_pack_unpack_roundtrip(self):
        header = IPv4Header("172.16.0.1", "172.16.0.2", protocol=17, ttl=33, dscp=10, identification=77)
        header.total_length = 60
        header.refresh_checksum()
        parsed = IPv4Header.unpack(header.pack())
        assert parsed == header

    def test_tcp_pack_unpack_roundtrip(self):
        header = TCPHeader(4321, 443, seq=100, ack=200, flags=TCP_SYN, window=1024)
        assert TCPHeader.unpack(header.pack()) == header

    def test_tcp_flags(self):
        header = TCPHeader(1, 2, flags=TCP_SYN | TCP_FIN)
        assert header.has_flag(TCP_SYN)
        assert header.has_flag(TCP_FIN)
        assert not header.has_flag(0x10)

    def test_udp_roundtrip(self):
        header = UDPHeader(53, 5353, length=28)
        assert UDPHeader.unpack(header.pack()) == header

    def test_eth_roundtrip(self):
        header = EthernetHeader(MACAddress("02:00:00:00:00:02"), MACAddress("02:00:00:00:00:01"))
        assert EthernetHeader.unpack(header.pack()) == header

    def test_ah_roundtrip(self):
        header = AuthenticationHeader(next_header=6, spi=0xDEADBEEF, sequence=9, icv=123456)
        assert AuthenticationHeader.unpack(header.pack()) == header

    def test_vxlan_roundtrip(self):
        header = VxlanHeader(vni=0xABCDE)
        assert VxlanHeader.unpack(header.pack()) == header

    def test_vxlan_vni_range(self):
        with pytest.raises(ValueError):
            VxlanHeader(vni=1 << 24)

    def test_truncated_headers_rejected(self):
        with pytest.raises(ValueError):
            IPv4Header.unpack(b"\x45\x00")
        with pytest.raises(ValueError):
            TCPHeader.unpack(b"\x00" * 10)


class TestPacket:
    def make_packet(self, payload=b"hello"):
        ft = FiveTuple.make("10.0.0.1", "10.0.0.2", 1234, 80)
        return Packet.from_five_tuple(ft, payload=payload)

    def test_five_tuple_reflects_headers(self):
        packet = self.make_packet()
        ft = packet.five_tuple()
        assert ip_to_str(ft.src_ip) == "10.0.0.1"
        assert ft.dst_port == 80

    def test_udp_packet_synthesis(self):
        ft = FiveTuple.make("10.0.0.1", "10.0.0.2", 53, 5353, protocol=PROTO_UDP)
        packet = Packet.from_five_tuple(ft, payload=b"x" * 10)
        assert isinstance(packet.l4, UDPHeader)
        assert packet.l4.length == 18

    def test_byte_length_accounts_everything(self):
        packet = self.make_packet(payload=b"x" * 26)
        assert packet.byte_length() == 14 + 20 + 20 + 26

    def test_field_read_write(self):
        packet = self.make_packet()
        PacketField.DST_IP.write(packet, ip_to_int("9.9.9.9"))
        assert ip_to_str(PacketField.DST_IP.read(packet)) == "9.9.9.9"
        PacketField.DST_PORT.write(packet, 8080)
        assert packet.l4.dst_port == 8080

    def test_field_validation(self):
        packet = self.make_packet()
        with pytest.raises(ValueError):
            PacketField.TTL.write(packet, 300)
        with pytest.raises(ValueError):
            PacketField.DSCP.write(packet, 64)

    def test_finalisation_fields_flagged(self):
        assert PacketField.TTL.is_finalisation_field
        assert PacketField.SRC_MAC.is_finalisation_field
        assert not PacketField.DST_IP.is_finalisation_field
        assert not PacketField.DST_PORT.is_finalisation_field

    def test_encap_stack_lifo(self):
        packet = self.make_packet()
        ah = AuthenticationHeader(spi=1)
        vxlan = VxlanHeader(vni=5)
        packet.push_encap(ah)
        packet.push_encap(vxlan)
        assert packet.pop_encap() is vxlan
        assert packet.pop_encap() is ah
        with pytest.raises(ValueError):
            packet.pop_encap()

    def test_drop_sets_flag(self):
        packet = self.make_packet()
        packet.drop()
        assert packet.dropped

    def test_clone_is_independent(self):
        packet = self.make_packet()
        packet.metadata["fid"] = 7
        copy = packet.clone()
        PacketField.DST_IP.write(copy, ip_to_int("1.1.1.1"))
        copy.metadata["fid"] = 9
        assert ip_to_str(packet.ip.dst_ip) == "10.0.0.2"
        assert packet.metadata["fid"] == 7

    def test_serialize_parse_roundtrip(self):
        packet = self.make_packet(payload=b"payload-bytes")
        parsed = Packet.parse(packet.serialize())
        assert parsed.five_tuple() == packet.five_tuple()
        assert parsed.payload == packet.payload
        assert parsed.ip.checksum_valid()

    def test_serialize_parse_roundtrip_with_ah(self):
        packet = self.make_packet(payload=b"secret")
        packet.push_encap(AuthenticationHeader(next_header=PROTO_TCP, spi=0x10, sequence=3))
        parsed = Packet.parse(packet.serialize())
        assert len(parsed.encaps) == 1
        assert parsed.encaps[0].spi == 0x10
        assert parsed.five_tuple() == packet.five_tuple()

    def test_serialize_sets_total_length(self):
        packet = self.make_packet(payload=b"x" * 100)
        packet.serialize()
        assert packet.ip.total_length == 20 + 20 + 100

    def test_repr_mentions_drop(self):
        packet = self.make_packet()
        packet.drop()
        assert "DROPPED" in repr(packet)

    def test_internet_checksum_known_vector(self):
        # Classic RFC 1071 example.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D
