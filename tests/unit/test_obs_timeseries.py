"""Windowed telemetry: clocks, ring eviction, registry deltas, export.

Includes the gen-3 oracle test: a platform run that fits in a single
window with ``sample_every=1`` must reproduce the end-of-run
``LoadResult.latency_percentile`` values *bit-for-bit* — the window's
sample channel is the same population.
"""

import math

import pytest

from repro.core.framework import SpeedyBox
from repro.nf import IPFilter
from repro.obs import TimeSeries
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import (
    load_timeseries_jsonl,
    percentile_from_deltas,
    render_windows,
)
from repro.platform import BessPlatform
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets


def make_packets(flows=4, per_flow=8):
    specs = [
        FlowSpec.tcp(f"10.0.{i}.1", "20.0.0.1", 2000 + i, 80, packets=per_flow)
        for i in range(flows)
    ]
    return TrafficGenerator(specs, interleave="round_robin").packets()


class TestConstruction:
    def test_both_clocks_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(window_ns=1000.0, window_packets=10)

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(window_ns=0.0)
        with pytest.raises(ValueError):
            TimeSeries(window_packets=0)
        with pytest.raises(ValueError):
            TimeSeries(capacity=0)
        with pytest.raises(ValueError):
            TimeSeries(sample_every=0)

    def test_default_is_sim_time_clock(self):
        ts = TimeSeries()
        assert ts.window_ns == 1_000_000.0
        assert ts.window_packets is None


class TestPacketClock:
    def test_windows_close_every_n_records(self):
        ts = TimeSeries(window_packets=4)
        for i in range(10):
            ts.record(float(i), latency_ns=100.0 + i)
        assert ts.windows_closed == 2
        assert all(w.packets == 4 for w in ts.windows)
        # two records still pending in the open window
        ts.finish()
        assert ts.windows_closed == 3
        assert ts.windows[-1].packets == 2

    def test_counts_split_drops_and_buffered(self):
        ts = TimeSeries(window_packets=8)
        ts.record(0.0, dropped=True)
        ts.record(1.0, buffered=True)
        ts.record(2.0, latency_ns=50.0)
        window = ts.finish()
        assert window.packets == 3
        assert window.drops == 1
        assert window.buffered == 1
        assert ts.total_packets == 3
        assert ts.total_drops == 1
        assert ts.total_buffered == 1


class TestSimTimeClock:
    def test_windows_align_to_the_grid(self):
        ts = TimeSeries(window_ns=100.0)
        ts.record(50.0, latency_ns=10.0)
        ts.record(250.0, latency_ns=20.0)   # crosses two boundaries
        assert ts.windows_closed == 1
        first = ts.windows[0]
        assert (first.start_ns, first.end_ns) == (0.0, 100.0)
        assert first.packets == 1
        last = ts.finish()
        assert (last.start_ns, last.end_ns) == (200.0, 300.0)

    def test_rate_is_packets_over_duration(self):
        ts = TimeSeries(window_ns=1000.0)
        for i in range(10):
            ts.record(float(i * 10))
        window = ts.finish()
        assert window.rate_pps == pytest.approx(10 / (1000.0 / 1e9))


class TestSampling:
    def test_sample_every_strides_the_latency_channel(self):
        ts = TimeSeries(window_packets=100, sample_every=3)
        for i in range(9):
            ts.record(float(i), latency_ns=float(i))
        window = ts.finish()
        assert window.packets == 9
        assert len(window.latencies) == 3  # every 3rd sample kept

    def test_replica_subwindows_partition_the_window(self):
        ts = TimeSeries(window_packets=100)
        for i in range(6):
            ts.record(float(i), latency_ns=10.0, replica=i % 2, fast_hit=(i % 2 == 0))
        window = ts.finish()
        assert set(window.replicas) == {0, 1}
        assert window.replicas[0].packets == 3
        assert window.replicas[0].fast_hits == 3
        assert window.replicas[1].fast_hits == 0
        assert sum(rw.packets for rw in window.replicas.values()) == window.packets


class TestRegistryDeltas:
    def test_counters_difference_per_window(self):
        registry = MetricsRegistry()
        counter = registry.counter("work_total", "")
        ts = TimeSeries(window_packets=2, registry=registry)
        counter.inc(5)
        ts.record(0.0)
        ts.record(1.0)  # closes window 0
        counter.inc(3)
        ts.record(2.0)
        ts.record(3.0)  # closes window 1
        deltas = [w.metric_deltas.get("work_total") for w in ts.windows]
        assert deltas == [5.0, 3.0]

    def test_histogram_deltas_yield_window_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_ns", "", buckets=(100.0, 200.0, 400.0))
        ts = TimeSeries(window_packets=1, registry=registry)
        for __ in range(99):
            hist.observe(50.0)
        hist.observe(399.0)
        ts.record(0.0)  # closes a window; snapshot runs
        window = ts.windows[-1]
        pcts = window.hist_percentiles["lat_ns"]
        # Prometheus-style estimate: linear interpolation inside the
        # winning bucket, so p50 lands at rank 50/99 of [0, 100].
        assert pcts["p50"] == pytest.approx(100.0 * 50 / 99)
        assert 0.0 < pcts["p50"] <= 100.0
        assert 0.0 < pcts["p99"] <= 400.0


class TestRing:
    def test_eviction_is_bounded_and_keeps_totals(self):
        ts = TimeSeries(window_packets=1, capacity=2)
        for i in range(5):
            ts.record(float(i), latency_ns=1.0)
        assert ts.windows_closed == 5
        assert len(ts.windows) == 2
        assert ts.evicted == 3
        # run totals are tracked outside the ring
        assert ts.total_packets == 5
        # retained windows keep their own totals untouched
        assert [w.index for w in ts.windows] == [3, 4]
        assert all(w.packets == 1 for w in ts.windows)

    def test_on_close_fires_in_order(self):
        seen = []
        ts = TimeSeries(window_packets=1)
        ts.on_close(lambda w: seen.append(w.index))
        for i in range(3):
            ts.record(float(i))
        assert seen == [0, 1, 2]


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        ts = TimeSeries(window_packets=2)
        for i in range(4):
            ts.record(float(i), latency_ns=100.0 * (i + 1), replica="r0")
        path = tmp_path / "windows.jsonl"
        assert ts.write_jsonl(path) == 2
        rows = load_timeseries_jsonl(path)
        assert [row["index"] for row in rows] == [0, 1]
        assert rows[0]["packets"] == 2
        assert rows[0]["replicas"]["r0"]["packets"] == 2
        assert rows[0]["p99_ns"] == ts.windows[0].p99_ns

    def test_render_windows_tables_live_and_loaded_rows(self, tmp_path):
        ts = TimeSeries(window_packets=2)
        for i in range(4):
            ts.record(float(i), latency_ns=100.0)
        text = render_windows([w.summary() for w in ts.windows])
        assert "p99_us" in text and "win" in text

    def test_summary_and_reset(self):
        ts = TimeSeries(window_packets=1)
        ts.record(0.0, dropped=True)
        summary = ts.summary()
        assert summary["windows_closed"] == 1
        assert summary["total_drops"] == 1
        ts.reset()
        assert len(ts.windows) == 0
        assert ts.total_packets == 0


class TestPercentileFromDeltas:
    def test_interpolates_inside_the_winning_bucket(self):
        bounds = (100.0, 200.0, math.inf)
        # 50 obs <= 100, 50 in (100, 200]
        assert percentile_from_deltas(bounds, (50, 50, 0), 0.50) == pytest.approx(100.0)
        assert percentile_from_deltas(bounds, (50, 50, 0), 0.75) == pytest.approx(150.0)

    def test_empty_and_overflow(self):
        bounds = (100.0, math.inf)
        assert percentile_from_deltas(bounds, (0, 0), 0.5) is None
        # all mass in the +Inf bucket clamps to the last finite bound
        assert percentile_from_deltas(bounds, (0, 10), 0.5) == pytest.approx(100.0)


class TestOracle:
    """Satellite: single-window run must match the end-of-run summary."""

    def test_single_window_percentiles_match_latency_percentile_exactly(self):
        packets = make_packets(flows=8, per_flow=16)
        ts = TimeSeries(window_packets=10 * len(packets), sample_every=1)
        platform = BessPlatform(
            SpeedyBox([IPFilter(f"f{i}") for i in range(3)]), timeseries=ts
        )
        result = platform.run_load(clone_packets(packets))
        assert result.delivered == len(packets)
        assert len(ts.windows) == 1
        window = ts.windows[0]
        assert window.packets == len(packets)
        # Exact equality, not approx: same samples, same estimator.
        for fraction in (0.50, 0.90, 0.99):
            assert window.percentile(fraction) == result.latency_percentile(fraction)

    def test_spaced_run_splits_into_sim_time_windows(self):
        packets = make_packets(flows=4, per_flow=16)
        ts = TimeSeries(window_ns=16_000.0, sample_every=1)
        platform = BessPlatform(SpeedyBox([IPFilter("fw")]), timeseries=ts)
        result = platform.run_load(clone_packets(packets), inter_arrival_ns=1000.0)
        assert result.delivered == len(packets)
        assert ts.windows_closed >= 2
        assert sum(w.packets for w in ts.windows) == len(packets)
        # windows sit on the 16us grid
        for window in ts.windows:
            assert window.start_ns % 16_000.0 == 0.0
