"""Unit tests for the BESS and OpenNetVM platform models (repro.platform)."""

import pytest

from repro.core.framework import PathTaken, ServiceChain, SpeedyBox
from repro.nf import IPFilter, Monitor, SyntheticNF
from repro.platform import BessPlatform, CostModel, OpenNetVMPlatform, PlatformConfig
from repro.platform.base import makespan_with_workers
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets


def packets(count=4, sport=1000):
    spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", sport, 80, packets=count, payload=b"abcdef")
    return TrafficGenerator([spec]).packets()


class TestMakespanWithWorkers:
    def test_single_worker_is_sum(self):
        assert makespan_with_workers([3, 2, 1], workers=1) == 6

    def test_enough_workers_is_max(self):
        assert makespan_with_workers([3, 2, 1], workers=3) == 3

    def test_two_workers_balances(self):
        # LPT: [4] vs [3, 2] -> makespan 5
        assert makespan_with_workers([4, 3, 2], workers=2) == 5

    def test_empty(self):
        assert makespan_with_workers([], workers=4) == 0.0


class TestBessTiming:
    def test_chain_latency_scales_with_length(self):
        def latency(n):
            chain = ServiceChain([IPFilter(f"fw{i}") for i in range(n)])
            platform = BessPlatform(chain)
            return platform.process(packets(1)[0]).latency_cycles

        assert latency(1) < latency(2) < latency(3)

    def test_per_nf_increment_is_constant(self):
        def latency(n):
            chain = ServiceChain([IPFilter(f"fw{i}") for i in range(n)])
            platform = BessPlatform(chain)
            outcomes = platform.process_all(packets(2))
            return outcomes[1].latency_cycles  # subsequent packet (cached verdicts)

        delta21 = latency(2) - latency(1)
        delta32 = latency(3) - latency(2)
        assert delta21 == pytest.approx(delta32)

    def test_fast_path_latency_flat_vs_chain_length(self):
        def fast_latency(n):
            sbox = SpeedyBox([IPFilter(f"fw{i}") for i in range(n)])
            platform = BessPlatform(sbox)
            outcomes = platform.process_all(packets(3))
            assert outcomes[-1].path is PathTaken.FAST
            return outcomes[-1].latency_cycles

        assert fast_latency(4) == pytest.approx(fast_latency(2), rel=0.01)

    def test_parallel_waves_cheaper_than_sequential(self):
        def chain():
            return [SyntheticNF(f"s{i}", sf_work_cycles=2000) for i in range(3)]

        parallel = BessPlatform(SpeedyBox(chain(), enable_parallelism=True))
        sequential = BessPlatform(SpeedyBox(chain(), enable_parallelism=False))
        p_out = parallel.process_all(packets(2))
        s_out = sequential.process_all(clone_packets(packets(2)))
        assert p_out[1].latency_cycles < s_out[1].latency_cycles
        # Work (total CPU) is *higher* with parallelism (fork/join overhead).
        assert p_out[1].work_cycles >= s_out[1].work_cycles

    def test_work_equals_latency_without_parallel_waves(self):
        platform = BessPlatform(ServiceChain([Monitor("m")]))
        outcome = platform.process(packets(1)[0])
        assert outcome.work_cycles == pytest.approx(outcome.latency_cycles)


class TestOnvmTiming:
    def test_hop_cost_exceeds_bess(self):
        bess = BessPlatform(ServiceChain([IPFilter("a"), IPFilter("b")]))
        onvm = OpenNetVMPlatform(ServiceChain([IPFilter("a"), IPFilter("b")]))
        bess_latency = bess.process(packets(1)[0]).latency_cycles
        onvm_latency = onvm.process(packets(1)[0]).latency_cycles
        # Default costs: ring enq+deq+cache sync > in-process dispatch.
        model = CostModel()
        assert (
            model.ring_enqueue + model.ring_dequeue + model.cross_core_sync
            <= onvm_latency - bess_latency + model.nf_dispatch * 2
        )

    def test_core_limit_enforced(self):
        nfs = [IPFilter(f"fw{i}") for i in range(6)]
        with pytest.raises(ValueError):
            OpenNetVMPlatform(ServiceChain(nfs))

    def test_core_limit_liftable(self):
        nfs = [IPFilter(f"fw{i}") for i in range(6)]
        platform = OpenNetVMPlatform(ServiceChain(nfs), enforce_core_limit=False)
        assert platform.process(packets(1)[0]).latency_cycles > 0


class TestThroughput:
    def test_bess_rate_drops_with_chain_length(self):
        def rate(n):
            chain = ServiceChain([SyntheticNF(f"s{i}", sf_work_cycles=1500) for i in range(n)])
            platform = BessPlatform(chain)
            return platform.run_load(packets(30)).throughput_mpps

        assert rate(1) > rate(2) > rate(3)

    def test_onvm_rate_stays_flat_with_chain_length(self):
        def rate(n):
            chain = ServiceChain([SyntheticNF(f"s{i}", sf_work_cycles=1500) for i in range(n)])
            platform = OpenNetVMPlatform(chain)
            return platform.run_load(packets(30)).throughput_mpps

        r1, r3 = rate(1), rate(3)
        assert r3 > 0.7 * r1  # pipelining: no 1/N collapse

    def test_speedybox_improves_bess_rate(self):
        def rate(runtime):
            return BessPlatform(runtime).run_load(packets(40)).throughput_mpps

        def chain():
            return [SyntheticNF(f"s{i}", sf_work_cycles=1800) for i in range(3)]

        assert rate(SpeedyBox(chain())) > 1.3 * rate(ServiceChain(chain()))

    def test_load_result_accounting(self):
        platform = BessPlatform(ServiceChain([Monitor("m")]))
        result = platform.run_load(packets(10))
        assert result.offered == 10
        assert result.delivered == 10
        assert result.dropped == 0
        assert len(result.latencies_ns) == 10
        assert result.makespan_ns > 0
        assert result.latency_percentile(0.5) > 0

    def test_paced_arrivals_reduce_queueing(self):
        def p99(inter_arrival):
            platform = BessPlatform(ServiceChain([SyntheticNF("s", sf_work_cycles=2000)]))
            result = platform.run_load(packets(30), inter_arrival_ns=inter_arrival)
            return result.latency_percentile(0.99)

        assert p99(10000.0) < p99(0.0)

    def test_drops_counted(self):
        from repro.nf.ipfilter import AclRule, Verdict

        fw = IPFilter("fw", rules=[AclRule.make(verdict=Verdict.DROP)])
        platform = BessPlatform(ServiceChain([fw]))
        result = platform.run_load(packets(5))
        assert result.dropped == 5
        assert result.delivered == 0


class TestPlatformLifecycle:
    def test_reset_resets_runtime(self):
        platform = BessPlatform(SpeedyBox([Monitor("m")]))
        platform.process_all(packets(3))
        platform.reset()
        assert platform.packets == 0
        assert platform.runtime.fast_packets == 0

    def test_config_cost_model_override(self):
        config = PlatformConfig(cost_model=CostModel().with_overrides(parse=10000.0))
        cheap = BessPlatform(ServiceChain([Monitor("m")]))
        pricey = BessPlatform(ServiceChain([Monitor("m")]), config)
        assert pricey.process(packets(1)[0]).latency_cycles > cheap.process(packets(1)[0]).latency_cycles
