"""Unit tests for the metrics registry (repro.obs.registry)."""

import json

import pytest

from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.obs.registry import Counter, Gauge, Histogram


class TestCounter:
    def test_unlabeled_inc(self):
        counter = Counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labeled_series_are_independent(self):
        counter = Counter("path_total")
        counter.labels(path="fast").inc(3)
        counter.labels(path="slow").inc()
        assert counter.value(path="fast") == 3
        assert counter.value(path="slow") == 1
        assert counter.value(path="never") == 0

    def test_label_order_does_not_matter(self):
        counter = Counter("c")
        counter.labels(a="1", b="2").inc()
        counter.labels(b="2", a="1").inc()
        assert counter.value(a="1", b="2") == 2

    def test_counters_cannot_decrease(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)
        with pytest.raises(ValueError):
            counter.labels(x="y").inc(-1)

    def test_series_rendering(self):
        counter = Counter("hits_total")
        counter.labels(result="hit").inc(7)
        assert counter.series() == {"hits_total{result=hit}": 7.0}


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("occupancy")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_labeled_gauge(self):
        gauge = Gauge("ring_depth")
        gauge.labels(ring="ring0").set(4)
        gauge.labels(ring="ring1").set(9)
        assert gauge.value(ring="ring0") == 4
        assert gauge.value(ring="ring1") == 9


class TestHistogram:
    def test_observe_counts_and_sum(self):
        histogram = Histogram("latency", buckets=(10, 100, 1000))
        for value in (5, 50, 500, 5000):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.total() == 5555

    def test_cumulative_bucket_semantics(self):
        histogram = Histogram("latency", buckets=(10, 100, 1000))
        for value in (5, 50, 500, 5000):
            histogram.observe(value)
        series = histogram.series()
        assert series["latency_bucket{le=10}"] == 1
        assert series["latency_bucket{le=100}"] == 2
        assert series["latency_bucket{le=1000}"] == 3
        assert series["latency_bucket{le=+Inf}"] == 4
        # The cumulative counts never exceed the total observation count.
        assert max(v for k, v in series.items() if "_bucket" in k) == 4

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(100, 10))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total")
        b = registry.counter("x_total")
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_merges_all_series(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.gauge("b").labels(ring="r0").set(3)
        snapshot = registry.snapshot()
        assert snapshot == {"a_total": 1.0, "b{ring=r0}": 3.0}

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        counter = registry.counter("a_total")
        counter.inc(5)
        registry.gauge("g").set(7)
        registry.reset()
        assert registry.snapshot() == {}
        counter.inc()  # instruments stay usable after reset
        assert registry.snapshot() == {"a_total": 1.0}

    def test_to_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("a_total").labels(path="fast").inc(2)
        assert json.loads(registry.to_json()) == {"a_total{path=fast}": 2.0}

    def test_render_is_a_text_table(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(3)
        rendered = registry.render()
        assert "a_total" in rendered
        assert "metric" in rendered


class TestDisabledMode:
    def test_null_registry_is_disabled(self):
        assert NULL_REGISTRY.enabled is False

    def test_disabled_instruments_are_shared_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("a_total")
        gauge = registry.gauge("b")
        histogram = registry.histogram("c")
        assert counter is gauge is histogram  # the single null singleton
        counter.inc()
        counter.labels(path="fast").inc(100)
        gauge.set(5)
        histogram.observe(123)
        assert registry.snapshot() == {}
        assert len(registry) == 0

    def test_disabled_registry_registers_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("x_total").inc()
        assert "x_total" not in registry
