"""Unit + integration tests for Snort flowbits (cross-packet state)."""

import pytest

from repro.core.local_mat import NullInstrumentationAPI
from repro.net import FiveTuple, Packet
from repro.nf.snort import DetectionEngine, SnortIDS, parse_rules
from repro.nf.snort.rules import FlowbitOp, RuleParseError, parse_rule

TWO_STAGE_RULES = """
alert tcp any any -> any 21 (msg:"login seen"; content:"USER root"; flowbits:set,logged_in; flowbits:noalert; sid:1;)
alert tcp any any -> any 21 (msg:"root deletes"; content:"DELE"; flowbits:isset,logged_in; sid:2;)
alert tcp any any -> any 21 (msg:"anon delete"; content:"DELE"; flowbits:isnotset,logged_in; sid:3;)
"""


def flow():
    return FiveTuple.make("10.0.0.1", "20.0.0.1", 5000, 21)


class TestFlowbitParsing:
    def test_set_and_isset(self):
        rule = parse_rule('alert tcp any any -> any any (flowbits:set,seen; sid:1;)')
        assert rule.flowbits == [FlowbitOp("set", "seen")]

    def test_noalert(self):
        rule = parse_rule('alert tcp any any -> any any (flowbits:noalert; sid:1;)')
        assert rule.suppresses_output

    def test_unknown_verb_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any -> any any (flowbits:frobnicate,x; sid:1;)')

    def test_missing_name_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any -> any any (flowbits:set; sid:1;)')


class TestFlowbitSemantics:
    def test_two_stage_detection(self):
        engine = DetectionEngine(parse_rules(TWO_STAGE_RULES))
        matcher = engine.assign_flow_matcher(flow())

        # Before login: a DELE triggers the anonymous-delete rule.
        first = matcher.inspect(b"DELE file.txt")
        assert [rule.sid for rule in first.alerts] == [3]

        # The login packet sets the bit silently (noalert).
        login = matcher.inspect(b"USER root\r\n")
        assert login.alerts == []
        assert "logged_in" in matcher.flowbits

        # After login: the same payload now triggers the root-delete rule.
        second = matcher.inspect(b"DELE file.txt")
        assert [rule.sid for rule in second.alerts] == [2]

    def test_bits_are_per_flow(self):
        engine = DetectionEngine(parse_rules(TWO_STAGE_RULES))
        matcher_a = engine.assign_flow_matcher(flow())
        matcher_b = engine.assign_flow_matcher(
            FiveTuple.make("10.0.0.2", "20.0.0.1", 5001, 21)
        )
        matcher_a.inspect(b"USER root")
        assert "logged_in" in matcher_a.flowbits
        assert "logged_in" not in matcher_b.flowbits

    def test_unset_clears_bit(self):
        rules = parse_rules(
            """
            alert tcp any any -> any any (content:"on"; flowbits:set,armed; flowbits:noalert; sid:1;)
            alert tcp any any -> any any (content:"off"; flowbits:unset,armed; flowbits:noalert; sid:2;)
            alert tcp any any -> any any (content:"fire"; flowbits:isset,armed; sid:3;)
            """
        )
        engine = DetectionEngine(rules)
        matcher = engine.assign_flow_matcher(flow())
        matcher.inspect(b"on")
        matcher.inspect(b"off")
        assert matcher.inspect(b"fire").alerts == []

    def test_same_packet_sees_bits_set_earlier_in_rule_order(self):
        rules = parse_rules(
            """
            alert tcp any any -> any any (content:"x"; flowbits:set,hot; flowbits:noalert; sid:1;)
            alert tcp any any -> any any (content:"x"; flowbits:isset,hot; sid:2;)
            """
        )
        engine = DetectionEngine(rules)
        matcher = engine.assign_flow_matcher(flow())
        result = matcher.inspect(b"x")
        assert [rule.sid for rule in result.alerts] == [2]


class TestFlowbitsThroughSpeedyBox:
    def test_fast_path_carries_flowbit_state(self):
        """The §VII-C oracle on a stateful matcher: the fast path's
        recorded state function shares the matcher (and its bits), so
        two-stage detection works identically with and without SpeedyBox."""
        from repro.core.framework import ServiceChain, SpeedyBox
        from repro.traffic import FlowSpec, TrafficGenerator
        from repro.traffic.generator import clone_packets

        payloads = [b"DELE a", b"USER root", b"DELE b", b"DELE c"]
        spec = FlowSpec.tcp(
            "10.0.0.1", "20.0.0.1", 5000, 21,
            packets=len(payloads), payload=lambda i: payloads[i],
        )
        packets = TrafficGenerator([spec]).packets()

        baseline = ServiceChain([SnortIDS("snort", TWO_STAGE_RULES)])
        speedybox = SpeedyBox([SnortIDS("snort", TWO_STAGE_RULES)])
        for packet in clone_packets(packets):
            baseline.process(packet)
        for packet in clone_packets(packets):
            speedybox.process(packet)

        base_alerts = [(r.sid, r.action) for r in baseline.nfs[0].alerts]
        sbox_alerts = [(r.sid, r.action) for r in speedybox.nfs[0].alerts]
        assert base_alerts == sbox_alerts
        # The detection sequence itself: anon-delete, then two root-deletes.
        assert [sid for sid, __ in sbox_alerts] == [3, 2, 2]

    def test_matcher_state_evicted_on_flow_close(self):
        snort = SnortIDS("snort", TWO_STAGE_RULES)
        packet = Packet.from_five_tuple(flow(), payload=b"USER root")
        packet.metadata["fid"] = 1
        snort.process(packet, NullInstrumentationAPI())
        assert snort.flow_matchers[flow()].flowbits == {"logged_in"}
        snort.handle_flow_close(packet)
        assert flow() not in snort.flow_matchers
