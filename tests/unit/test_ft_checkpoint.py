"""Checkpoint capture/restore, the packet log, and the fault injector.

Capture must be invisible (the flow keeps running, identical to a twin
runtime that was never captured); restore must install the full snapshot
onto a fresh runtime with handlers rebound; the log must stay bounded
and the injector deterministic on the packet-index clock.
"""

import pytest

from repro.core.framework import SpeedyBox
from repro.ft import FaultInjector, PacketLog, capture_flow, restore_flow
from repro.net.flow import FiveTuple
from repro.nf import IPFilter, MazuNAT, Monitor
from repro.scale import chain_state_snapshot
from repro.traffic import FlowSpec, TrafficGenerator


def build_chain():
    return [
        MazuNAT("nat", external_ip="203.0.113.50", port_range=(30000, 60000)),
        Monitor("mon"),
        IPFilter("fw"),
    ]


def trace(flows=4, packets=6, seed=5):
    specs = [
        FlowSpec.tcp(
            f"10.9.{i}.4", f"99.1.0.{i + 1}", 5000 + i, 443, packets=packets
        )
        for i in range(flows)
    ]
    return TrafficGenerator(specs, interleave="round_robin", seed=seed).packets()


class TestCaptureFlow:
    def test_capture_is_invisible_to_the_flow(self):
        """A captured runtime and a never-captured twin stay identical."""
        captured = SpeedyBox(build_chain())
        twin = SpeedyBox(build_chain())
        packets = trace()
        half = len(packets) // 2
        for packet in packets[:half]:
            captured.process(packet.clone())
            twin.process(packet.clone())

        flows = sorted({p.five_tuple().canonical() for p in packets})
        checkpoints = [capture_flow(captured, flow) for flow in flows]
        assert any(cp is not None for cp in checkpoints)

        cap_stream = [p.clone() for p in packets[half:]]
        twin_stream = [p.clone() for p in packets[half:]]
        for cap_pkt, twin_pkt in zip(cap_stream, twin_stream):
            captured.process(cap_pkt)
            twin.process(twin_pkt)
        for cap_pkt, twin_pkt in zip(cap_stream, twin_stream):
            assert cap_pkt.dropped == twin_pkt.dropped
            if not cap_pkt.dropped:
                assert cap_pkt.serialize() == twin_pkt.serialize()
        for flow in flows:
            assert chain_state_snapshot(captured.nfs, flow) == chain_state_snapshot(
                twin.nfs, flow
            )

    def test_capture_returns_none_for_unknown_flow(self):
        runtime = SpeedyBox(build_chain())
        ghost = FiveTuple(1, 2, 3, 4, 6)
        assert capture_flow(runtime, ghost) is None

    def test_checkpoint_is_detached_from_the_source(self):
        """Mutating the source after capture does not touch the snapshot."""
        runtime = SpeedyBox(build_chain())
        packets = trace(flows=1)
        for packet in packets[:4]:
            runtime.process(packet)
        flow = packets[0].five_tuple().canonical()
        checkpoint = capture_flow(runtime, flow)
        before = [state for __, __, state in checkpoint.nf_states]
        for packet in packets[4:]:
            runtime.process(packet)  # moves monitor counters on the source
        assert [state for __, __, state in checkpoint.nf_states] == before


class TestRestoreFlow:
    def test_restore_onto_fresh_runtime_reproduces_state_and_output(self):
        source = SpeedyBox(build_chain())
        reference = SpeedyBox(build_chain())
        packets = trace(flows=1, packets=8)
        half = len(packets) // 2
        for packet in packets[:half]:
            source.process(packet.clone())
            reference.process(packet.clone())
        flow = packets[0].five_tuple().canonical()
        checkpoint = capture_flow(source, flow)

        target = SpeedyBox(build_chain())
        rebound = restore_flow(checkpoint, target, list(source.nfs))
        assert rebound > 0  # monitor's count_packet handler at minimum
        assert chain_state_snapshot(target.nfs, flow) == chain_state_snapshot(
            reference.nfs, flow
        )

        # the restored flow continues exactly like the uninterrupted one
        tgt_stream = [p.clone() for p in packets[half:]]
        ref_stream = [p.clone() for p in packets[half:]]
        for tgt_pkt, ref_pkt in zip(tgt_stream, ref_stream):
            target.process(tgt_pkt)
            reference.process(ref_pkt)
            assert tgt_pkt.dropped == ref_pkt.dropped
            if not tgt_pkt.dropped:
                assert tgt_pkt.serialize() == ref_pkt.serialize()
        assert chain_state_snapshot(target.nfs, flow) == chain_state_snapshot(
            reference.nfs, flow
        )

    def test_restored_handlers_bind_to_target_nfs(self):
        """Replayed packets on the target must update the *target's*
        monitor, not reach back into the source chain."""
        source = SpeedyBox(build_chain())
        packets = trace(flows=1, packets=6)
        for packet in packets[:4]:
            source.process(packet.clone())
        flow = packets[0].five_tuple().canonical()
        checkpoint = capture_flow(source, flow)
        target = SpeedyBox(build_chain())
        restore_flow(checkpoint, target, list(source.nfs))

        source_total = source.nfs[1].total_packets()
        target.process(packets[4].clone())
        assert source.nfs[1].total_packets() == source_total
        assert target.nfs[1].total_packets() > 0

    def test_checkpoint_is_reusable_after_restore(self):
        source = SpeedyBox(build_chain())
        packets = trace(flows=1)
        for packet in packets[:4]:
            source.process(packet.clone())
        flow = packets[0].five_tuple().canonical()
        checkpoint = capture_flow(source, flow)
        first = SpeedyBox(build_chain())
        second = SpeedyBox(build_chain())
        restore_flow(checkpoint, first, list(source.nfs))
        restore_flow(checkpoint, second, list(source.nfs))
        assert chain_state_snapshot(first.nfs, flow) == chain_state_snapshot(
            second.nfs, flow
        )


class TestPacketLog:
    def test_appends_clone_and_sequence(self):
        log = PacketLog(capacity=8)
        packets = trace(flows=1, packets=3)
        seqs = [log.append(packet) for packet in packets[:3]]
        assert seqs == [1, 2, 3]
        assert log.last_seq == 3
        # the log holds clones: mutating the original leaves them alone
        entry = log.entries()[0]
        assert entry.packet is not packets[0]
        assert entry.key == packets[0].five_tuple().canonical()

    def test_trim_drops_only_older_entries(self):
        log = PacketLog(capacity=8)
        for packet in trace(flows=1, packets=5)[:5]:
            log.append(packet)
        assert log.trim(3) == 3
        assert [entry.seq for entry in log.entries()] == [4, 5]
        assert [entry.seq for entry in log.entries_after(4)] == [5]
        assert log.trimmed == 3

    def test_pressure_hook_fires_before_overflow(self):
        calls = []
        log = PacketLog(capacity=3, on_full=lambda: calls.append(log.last_seq))
        packets = trace(flows=1, packets=6)
        for packet in packets[:3]:
            log.append(packet)
        assert not calls
        log.append(packets[3])  # would overflow: hook fires first
        assert calls == [3]

    def test_overflow_without_hook_drops_oldest(self):
        log = PacketLog(capacity=2)
        for packet in trace(flows=1, packets=4)[:3]:
            log.append(packet)
        assert [entry.seq for entry in log.entries()] == [2, 3]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PacketLog(capacity=0)


class TestFaultInjector:
    def test_kill_fires_once_at_index(self):
        injector = FaultInjector(kill_at=2)
        assert [injector.tick() for __ in range(5)] == [
            None, None, "kill", None, None,
        ]
        assert injector.kill_index == 2

    def test_recover_after_fires_once(self):
        injector = FaultInjector(kill_at=1, recover_after=2)
        assert [injector.tick() for __ in range(6)] == [
            None, "kill", None, "recover", None, None,
        ]

    def test_unarmed_injector_never_fires(self):
        injector = FaultInjector()
        assert all(injector.tick() is None for __ in range(10))
        assert injector.packet_index == 10

    def test_rejects_negative_schedule(self):
        with pytest.raises(ValueError):
            FaultInjector(kill_at=-1)
        with pytest.raises(ValueError):
            FaultInjector(kill_at=1, recover_after=-2)
