"""Miscellaneous NF coverage: base-class contract, resets, edge paths."""

import pytest

from repro.core.local_mat import NullInstrumentationAPI
from repro.net import FiveTuple, Packet
from repro.nf.base import NetworkFunction
from repro.platform.costs import CostModel, CycleMeter, NULL_METER, Operation


def make_packet(fid=1):
    packet = Packet.from_five_tuple(FiveTuple.make("10.0.0.1", "10.0.0.2", 1, 2), payload=b"m")
    packet.metadata["fid"] = fid
    return packet


class TestNetworkFunctionBase:
    def test_process_is_abstract(self):
        nf = NetworkFunction("abstract")
        with pytest.raises(NotImplementedError):
            nf.process(make_packet(), NullInstrumentationAPI())

    def test_default_meter_is_null(self):
        nf = NetworkFunction("n")
        assert nf.meter is NULL_METER
        nf.charge(Operation.PARSE, 100)  # must be a no-op, not a crash

    def test_ingress_counts_and_charges(self):
        nf = NetworkFunction("n")
        meter = CycleMeter()
        nf.meter = meter
        nf.ingress(make_packet())
        assert nf.packets_processed == 1
        assert meter.count(Operation.PARSE) == 1

    def test_handle_flow_close_default_noop(self):
        NetworkFunction("n").handle_flow_close(make_packet())

    def test_reset_clears_packet_count(self):
        nf = NetworkFunction("n")
        nf.ingress(make_packet())
        nf.reset()
        assert nf.packets_processed == 0

    def test_repr(self):
        assert "NetworkFunction" in repr(NetworkFunction("me"))
        assert "me" in repr(NetworkFunction("me"))


class TestResets:
    def test_vpn_encap_reset(self):
        from repro.nf import VpnEncap

        nf = VpnEncap("e")
        nf.process(make_packet(), NullInstrumentationAPI())
        assert nf.encapsulated == 1
        nf.reset()
        assert nf.encapsulated == 0
        assert nf.packets_processed == 0

    def test_gateway_reset(self):
        from repro.nf import VniMap, VxlanGateway

        nf = VxlanGateway("g", VniMap([("0.0.0.0/0", 1)]))
        nf.process(make_packet(), NullInstrumentationAPI())
        nf.reset()
        assert nf.encapsulated == 0
        assert nf.passed_through == 0

    def test_terminator_reset(self):
        from repro.nf import VxlanTerminator

        nf = VxlanTerminator("t")
        nf.process(make_packet(), NullInstrumentationAPI())
        nf.reset()
        assert nf.passed_through == 0

    def test_dos_reset_via_framework_reset(self):
        from repro.core.framework import SpeedyBox
        from repro.nf import DosPrevention

        sbox = SpeedyBox([DosPrevention("d", threshold=1, mode="packets")])
        for __ in range(3):
            packet = make_packet()
            packet.metadata.pop("fid")
            sbox.process(packet)
        sbox.reset()
        assert not sbox.nfs[0].counters
        assert not sbox.nfs[0].blocked_flows


class TestSyntheticDropAction:
    def test_drop_action_short_circuits_sf_recording(self):
        from repro.core.actions import Drop
        from repro.core.framework import SpeedyBox
        from repro.nf import SyntheticNF
        from repro.traffic import FlowSpec, TrafficGenerator

        nf = SyntheticNF("dropper", action=Drop())
        sbox = SpeedyBox([nf])
        packets = TrafficGenerator(
            [FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2, packets=3, payload=b"x")]
        ).packets()
        reports = [sbox.process(p) for p in packets]
        assert all(r.dropped for r in reports)
        # The SF is never recorded for a flow the NF itself drops.
        fid = reports[0].fid
        rule = sbox.global_mat.peek(fid)
        assert rule.consolidated.drop
        assert rule.schedule.batch_count == 0
        assert nf.sf_invocations == 0


class TestMeterEdge:
    def test_meter_fractional_charges(self):
        meter = CycleMeter()
        meter.charge(Operation.PAYLOAD_BYTE_SCAN, 0.5)
        meter.charge(Operation.PAYLOAD_BYTE_SCAN, 0.5)
        model = CostModel()
        assert meter.cycles(model) == pytest.approx(model.payload_byte_scan)

    def test_negative_direct_cycles_allowed_for_corrections(self):
        meter = CycleMeter()
        meter.charge_cycles(100)
        meter.charge_cycles(-40)
        assert meter.cycles(CostModel()) == 60
