"""Unit tests for Snort relative content modifiers (distance/within)."""

import pytest

from repro.net.flow import FiveTuple
from repro.nf.snort import DetectionEngine
from repro.nf.snort.rules import RuleParseError, parse_rule


class TestDistance:
    def test_distance_requires_gap(self):
        rule = parse_rule(
            'alert tcp any any -> any any (content:"ab"; content:"cd"; distance:3; sid:1;)'
        )
        # "ab" ends at 2; "cd" must start at >= 5.
        assert rule.payload_matches(b"abxxxcd")
        assert not rule.payload_matches(b"abxcd")

    def test_distance_zero_means_after(self):
        rule = parse_rule(
            'alert tcp any any -> any any (content:"ab"; content:"cd"; distance:0; sid:1;)'
        )
        assert rule.payload_matches(b"abcd")
        assert not rule.payload_matches(b"cdab")  # cd before ab

    def test_ordering_enforced_by_relativity(self):
        rule = parse_rule(
            'alert tcp any any -> any any (content:"one"; content:"two"; distance:0; sid:1;)'
        )
        assert rule.payload_matches(b"one then two")
        assert not rule.payload_matches(b"two then one")


class TestWithin:
    def test_within_bounds_the_gap(self):
        rule = parse_rule(
            'alert tcp any any -> any any (content:"ab"; content:"cd"; distance:0; within:3; sid:1;)'
        )
        assert rule.payload_matches(b"abxcd")     # cd starts 1 after
        assert rule.payload_matches(b"abxxxcd")   # cd starts 3 after (== within)
        assert not rule.payload_matches(b"abxxxxcd")  # 4 after, too far

    def test_within_without_distance(self):
        rule = parse_rule(
            'alert tcp any any -> any any (content:"GET"; content:"HTTP"; within:10; sid:1;)'
        )
        assert rule.payload_matches(b"GET /idx HTTP/1.1")
        assert not rule.payload_matches(b"GET /a/very/long/path/here HTTP/1.1")

    def test_negative_within_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any -> any any (content:"a"; content:"b"; within:-1; sid:1;)')


class TestChains:
    def test_three_stage_relative_chain(self):
        rule = parse_rule(
            'alert tcp any any -> any any '
            '(content:"a1"; content:"b2"; distance:1; content:"c3"; distance:1; sid:1;)'
        )
        assert rule.payload_matches(b"a1_b2_c3")
        assert not rule.payload_matches(b"a1b2_c3")  # b2 too close to a1

    def test_absolute_anchor_then_relative(self):
        rule = parse_rule(
            'alert tcp any any -> any any '
            '(content:"HDR"; offset:0; depth:3; content:"VAL"; distance:0; within:4; sid:1;)'
        )
        assert rule.payload_matches(b"HDR:VAL....")
        assert not rule.payload_matches(b"xHDR:VAL")      # HDR not at start
        assert not rule.payload_matches(b"HDR......VAL")  # VAL too far

    def test_relative_through_engine(self):
        engine = DetectionEngine(
            [
                parse_rule(
                    'alert tcp any any -> any any '
                    '(content:"user="; content:"admin"; distance:0; within:2; sid:9;)'
                )
            ]
        )
        matcher = engine.assign_flow_matcher(FiveTuple.make("1.1.1.1", "2.2.2.2", 1, 2))
        assert matcher.inspect(b"user=admin").verdict == "alert"
        # Both patterns present but not adjacent: prescan hits, positional
        # verification must reject.
        assert matcher.inspect(b"user=nobody ... admin").verdict == "clean"

    def test_nocase_composes_with_relative(self):
        rule = parse_rule(
            'alert tcp any any -> any any '
            '(content:"Host:"; nocase; content:"EVIL"; nocase; distance:1; sid:1;)'
        )
        assert rule.payload_matches(b"host: evil.example")
        assert not rule.payload_matches(b"host:evil")  # distance 1 unmet
