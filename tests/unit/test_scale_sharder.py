"""Property tests for the RSS-style flow sharder.

The sharder's contract is what makes migration tractable: mappings are
deterministic, direction-independent, near-uniform, and repartitioning
moves the minimum number of buckets.  Hypothesis hunts the corners.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.flow import FiveTuple
from repro.scale import FlowSharder, IndirectionTable, shard_hash

five_tuples = st.builds(
    FiveTuple,
    src_ip=st.integers(0, 2**32 - 1),
    dst_ip=st.integers(0, 2**32 - 1),
    src_port=st.integers(0, 65535),
    dst_port=st.integers(0, 65535),
    protocol=st.sampled_from([6, 17]),
)


def random_flows(count, seed=11):
    rng = random.Random(seed)
    return [
        FiveTuple(
            rng.randrange(2**32),
            rng.randrange(2**32),
            rng.randrange(65536),
            rng.randrange(65536),
            6,
        )
        for __ in range(count)
    ]


class TestShardHashProperties:
    @given(five_tuples)
    def test_deterministic(self, flow):
        assert shard_hash(flow) == shard_hash(flow)

    @given(five_tuples)
    def test_direction_independent(self, flow):
        assert shard_hash(flow) == shard_hash(flow.reversed())

    @given(five_tuples, st.integers(1, 8))
    def test_same_replica_both_directions(self, flow, replicas):
        sharder = FlowSharder(replicas)
        assert sharder.replica_for(flow) == sharder.replica_for(flow.reversed())

    @given(five_tuples, st.integers(1, 8), st.integers(16, 256))
    def test_mapping_reproducible_across_instances(self, flow, replicas, buckets):
        a = FlowSharder(replicas, buckets=buckets)
        b = FlowSharder(replicas, buckets=buckets)
        assert a.replica_for(flow) == b.replica_for(flow)

    @given(st.integers(2, 8))
    @settings(max_examples=20)
    def test_near_uniform_balance(self, replicas):
        sharder = FlowSharder(replicas, buckets=256)
        counts = {rid: 0 for rid in sharder.replica_ids}
        flows = random_flows(4000, seed=replicas)
        for flow in flows:
            counts[sharder.replica_for(flow)] += 1
        fair = len(flows) / replicas
        for rid, count in counts.items():
            assert 0.5 * fair <= count <= 1.5 * fair, (rid, counts)

    @given(st.integers(1, 7), st.integers(32, 256))
    @settings(max_examples=40)
    def test_minimal_remap_on_grow(self, replicas, buckets):
        """Adding a replica moves only the new replica's quota of buckets
        — and every moved bucket moves *to* the new replica."""
        sharder = FlowSharder(replicas, buckets=buckets)
        before = sharder.table.buckets_snapshot()
        new_rid = max(sharder.replica_ids) + 1
        moved = sharder.add_replica(new_rid)
        assert all(new == new_rid for __, new in moved.values())
        expected = buckets // (replicas + 1)
        assert expected <= len(moved) <= expected + 1
        after = sharder.table.buckets_snapshot()
        for bucket, owner in enumerate(before):
            if bucket not in moved:
                assert after[bucket] == owner

    @given(st.integers(2, 8))
    @settings(max_examples=20)
    def test_remapped_flow_fraction_is_about_one_over_n(self, replicas):
        sharder = FlowSharder(replicas, buckets=256)
        flows = random_flows(2000, seed=replicas * 7)
        before = {flow: sharder.replica_for(flow) for flow in flows}
        sharder.add_replica(replicas)
        remapped = sum(1 for flow in flows if sharder.replica_for(flow) != before[flow])
        fraction = remapped / len(flows)
        assert fraction <= 2.0 / (replicas + 1), fraction


class TestIndirectionTable:
    def test_weighted_quotas(self):
        table = IndirectionTable(size=128)
        table.rebalance({0: 3.0, 1: 1.0})
        owners = table.buckets_snapshot()
        assert owners.count(0) == 96
        assert owners.count(1) == 32

    def test_rebalance_reports_every_move(self):
        table = IndirectionTable(size=64)
        moved = table.rebalance({0: 1.0})
        assert len(moved) == 64
        assert all(old is None and new == 0 for old, new in moved.values())
        moved = table.rebalance({0: 1.0, 1: 1.0})
        assert len(moved) == 32
        assert all(old == 0 and new == 1 for old, new in moved.values())

    def test_generation_bumps_only_on_change(self):
        table = IndirectionTable(size=16)
        table.rebalance({0: 1.0})
        generation = table.generation
        assert table.rebalance({0: 1.0}) == {}
        assert table.generation == generation

    def test_unpopulated_lookup_raises(self):
        with pytest.raises(RuntimeError):
            IndirectionTable(size=4).replica_of(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            IndirectionTable(size=0)
        with pytest.raises(ValueError):
            IndirectionTable(size=8).rebalance({})
        with pytest.raises(ValueError):
            IndirectionTable(size=8).rebalance({0: -1.0})


class TestPins:
    def test_pin_overrides_table_and_unpin_restores(self):
        sharder = FlowSharder(4, buckets=64)
        flow = random_flows(1)[0]
        natural = sharder.replica_for(flow)
        target = (natural + 1) % 4
        sharder.pin(flow, target)
        assert sharder.replica_for(flow) == target
        assert sharder.replica_for(flow.reversed()) == target
        assert sharder.unpin(flow)
        assert sharder.replica_for(flow) == natural
        assert not sharder.unpin(flow)

    def test_pins_to_removed_replicas_are_dropped(self):
        sharder = FlowSharder(3, buckets=64)
        flow = random_flows(1)[0]
        sharder.pin(flow, 2)
        sharder.remove_replica(2)
        assert flow.canonical() not in sharder.pinned_flows()
        assert sharder.replica_for(flow) in (0, 1)

    def test_pin_to_unknown_replica_raises(self):
        sharder = FlowSharder(2)
        with pytest.raises(KeyError):
            sharder.pin(random_flows(1)[0], 9)


class TestSharderLifecycle:
    def test_add_without_rebalance_gets_no_buckets(self):
        sharder = FlowSharder(2, buckets=64)
        before = sharder.table.buckets_snapshot()
        assert sharder.add_replica(2, rebalance=False) == {}
        assert sharder.table.buckets_snapshot() == before
        assert 2 in sharder.replica_ids

    def test_cannot_remove_last_replica(self):
        sharder = FlowSharder(1)
        with pytest.raises(ValueError):
            sharder.remove_replica(0)

    def test_duplicate_add_rejected(self):
        sharder = FlowSharder(2)
        with pytest.raises(ValueError):
            sharder.add_replica(1)
