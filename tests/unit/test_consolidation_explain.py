"""Unit tests for the consolidation explainer (explain_consolidation)."""

import pytest

from repro.core.actions import Decap, Drop, Encap, Forward, Modify
from repro.core.consolidation import (
    ConsolidationError,
    consolidate_header_actions,
    explain_consolidation,
)
from repro.net import AuthenticationHeader, VxlanHeader
from repro.net.addresses import ip_to_int


class TestExplain:
    def test_forward_elided(self):
        lines = explain_consolidation([Forward()])
        assert "identity, elided" in lines[0]
        assert lines[-1].startswith("result:")

    def test_drop_short_circuits_narration(self):
        lines = explain_consolidation([Forward(), Drop(), Modify.set(ttl=1)])
        assert any("DROP dominates" in line for line in lines)
        assert lines[-1] == "result: drop"
        # Nothing narrated after the drop.
        assert not any("[2]" in line for line in lines)

    def test_modify_records_then_composes(self):
        lines = explain_consolidation(
            [Modify.set(dst_port=1), Modify.set(dst_port=2)]
        )
        assert any("records dst_port" in line for line in lines)
        assert any("composes onto dst_port" in line for line in lines)

    def test_encap_decap_cancellation_narrated(self):
        lines = explain_consolidation(
            [Encap(AuthenticationHeader(spi=1)), Decap(AuthenticationHeader)]
        )
        assert any("pushed (stack depth 1)" in line for line in lines)
        assert any("cancels" in line for line in lines)
        assert "0 net encap(s)" in lines[-1]

    def test_underflow_narrated(self):
        lines = explain_consolidation([Decap()])
        assert any("underflows" in line for line in lines)
        assert "1 leading decap(s)" in lines[-1]

    def test_mismatched_decap_raises(self):
        with pytest.raises(ConsolidationError):
            explain_consolidation([Encap(AuthenticationHeader(spi=1)), Decap(VxlanHeader)])

    def test_summary_counts_match_consolidator(self):
        actions = [
            Modify.set(dst_ip=ip_to_int("9.9.9.9")),
            Encap(VxlanHeader(vni=3)),
            Modify.ttl_dec(),
            Forward(),
        ]
        lines = explain_consolidation(actions)
        result = consolidate_header_actions(actions)
        summary = lines[-1]
        assert f"{len(result.leading_decaps)} leading decap(s)" in summary
        assert f"{result.merged_modify_count} merged field op(s)" in summary
        assert f"{len(result.net_encaps)} net encap(s)" in summary

    def test_zero_net_adjust_excluded_from_live_count(self):
        lines = explain_consolidation([Modify.adjust(ttl=-2), Modify.adjust(ttl=2)])
        assert "0 merged field op(s)" in lines[-1]

    def test_every_action_is_narrated(self):
        actions = [Forward(), Modify.set(dscp=5), Encap(VxlanHeader(vni=1))]
        lines = explain_consolidation(actions)
        for index in range(len(actions)):
            assert any(line.startswith(f"[{index}]") for line in lines)
