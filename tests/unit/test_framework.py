"""Unit tests for the SpeedyBox runtime and baseline chain (repro.core.framework)."""

import pytest

from repro.core.actions import Drop, Modify
from repro.core.framework import PathTaken, ServiceChain, SpeedyBox
from repro.nf import DosPrevention, IPFilter, Monitor, SyntheticNF
from repro.nf.ipfilter import AclRule, Verdict
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets


def flow_packets(packets=5, handshake=False, fin=False, sport=1000, payload=b"data"):
    spec = FlowSpec.tcp(
        "10.0.0.1", "10.0.0.2", sport, 80,
        packets=packets, payload=payload, handshake=handshake, fin=fin,
    )
    return TrafficGenerator([spec]).packets()


class TestServiceChain:
    def test_requires_nfs(self):
        with pytest.raises(ValueError):
            ServiceChain([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            ServiceChain([Monitor("m"), Monitor("m")])

    def test_runs_all_nfs(self):
        chain = ServiceChain([Monitor("m1"), Monitor("m2")])
        report = chain.process(flow_packets(1)[0])
        assert [name for name, __ in report.nf_meters] == ["m1", "m2"]
        assert report.path is PathTaken.ORIGINAL

    def test_stops_at_drop(self):
        fw = IPFilter("fw", rules=[AclRule.make(verdict=Verdict.DROP)])
        chain = ServiceChain([fw, Monitor("m")])
        report = chain.process(flow_packets(1)[0])
        assert report.dropped
        assert [name for name, __ in report.nf_meters] == ["fw"]
        assert chain.nfs[1].total_packets() == 0


class TestSpeedyBoxPaths:
    def test_first_data_packet_is_original_then_fast(self):
        sbox = SpeedyBox([Monitor("m")])
        packets = flow_packets(3)
        paths = [sbox.process(p).path for p in packets]
        assert paths == [PathTaken.ORIGINAL, PathTaken.FAST, PathTaken.FAST]
        assert sbox.slow_packets == 1
        assert sbox.fast_packets == 2

    def test_handshake_packets_stay_slow_and_do_not_arm(self):
        sbox = SpeedyBox([Monitor("m")])
        packets = flow_packets(2, handshake=True)
        paths = [sbox.process(p).path for p in packets]
        assert paths == [PathTaken.ORIGINAL_HANDSHAKE, PathTaken.ORIGINAL, PathTaken.FAST]

    def test_fin_deletes_rules(self):
        sbox = SpeedyBox([Monitor("m")])
        packets = flow_packets(2, fin=True)
        reports = [sbox.process(p) for p in packets]
        assert reports[-1].closing
        fid = reports[0].fid
        assert sbox.global_mat.peek(fid) is None
        assert fid not in sbox.local_mats["m"]
        assert sbox.classifier.flow(fid) is None

    def test_new_flow_after_fin_rebuilds(self):
        sbox = SpeedyBox([Monitor("m")])
        for packet in flow_packets(2, fin=True):
            sbox.process(packet)
        paths = [sbox.process(p).path for p in flow_packets(2)]
        assert paths == [PathTaken.ORIGINAL, PathTaken.FAST]

    def test_distinct_flows_get_distinct_rules(self):
        sbox = SpeedyBox([Monitor("m")])
        for sport in (1000, 1001, 1002):
            for packet in flow_packets(1, sport=sport):
                sbox.process(packet)
        assert len(sbox.global_mat) == 3


class TestSpeedyBoxFastPath:
    def test_fast_path_applies_consolidated_modify(self):
        nf = SyntheticNF("mod", action=Modify.set(dst_port=9999), sf_payload_class=None)
        sbox = SpeedyBox([nf])
        packets = flow_packets(2)
        first = sbox.process(packets[0])
        second = sbox.process(packets[1])
        assert second.path is PathTaken.FAST
        assert packets[1].l4.dst_port == 9999

    def test_fast_path_drop(self):
        fw = IPFilter("fw", rules=[AclRule.make(verdict=Verdict.DROP)])
        sbox = SpeedyBox([fw, Monitor("m")])
        packets = flow_packets(2)
        sbox.process(packets[0])
        report = sbox.process(packets[1])
        assert report.path is PathTaken.FAST
        assert report.dropped
        assert packets[1].dropped

    def test_fast_path_runs_state_functions(self):
        sbox = SpeedyBox([Monitor("m")])
        packets = flow_packets(3)
        for packet in packets:
            sbox.process(packet)
        monitor = sbox.nfs[0]
        assert monitor.total_packets() == 3

    def test_sf_waves_reported(self):
        chain = [SyntheticNF("s1"), SyntheticNF("s2")]  # both READ -> one wave
        sbox = SpeedyBox(chain)
        packets = flow_packets(2)
        sbox.process(packets[0])
        report = sbox.process(packets[1])
        assert len(report.sf_waves) == 1
        assert len(report.sf_waves[0]) == 2

    def test_parallelism_flag_serialises_waves(self):
        chain = [SyntheticNF("s1"), SyntheticNF("s2")]
        sbox = SpeedyBox(chain, enable_parallelism=False)
        packets = flow_packets(2)
        sbox.process(packets[0])
        report = sbox.process(packets[1])
        assert len(report.sf_waves) == 2

    def test_consolidation_ablation_applies_raw_actions(self):
        chain = [
            SyntheticNF("m1", action=Modify.set(dst_port=1111), sf_payload_class=None),
            SyntheticNF("m2", action=Modify.set(dst_port=2222), sf_payload_class=None),
        ]
        sbox = SpeedyBox(chain, enable_consolidation=False)
        packets = flow_packets(2)
        sbox.process(packets[0])
        report = sbox.process(packets[1])
        assert report.path is PathTaken.FAST
        assert packets[1].l4.dst_port == 2222


class TestSpeedyBoxEvents:
    def test_event_flips_flow_to_drop(self):
        dos = DosPrevention("dos", threshold=3, mode="packets")
        sbox = SpeedyBox([dos])
        packets = flow_packets(8)
        dropped = [sbox.process(p).dropped for p in packets]
        # Packets 1-3 pass (counter 1..3); the post-SF check after packet 4
        # (counter 4 > 3) fires the event; packet 5 onward drop on the
        # fast path.
        assert dropped[0] is False
        assert any(dropped)
        first_drop = dropped.index(True)
        assert all(dropped[first_drop:])
        assert sbox.event_table.total_triggered >= 1

    def test_event_reconsolidates_rule(self):
        dos = DosPrevention("dos", threshold=2, mode="packets")
        sbox = SpeedyBox([dos])
        packets = flow_packets(6)
        fid = None
        for packet in packets:
            report = sbox.process(packet)
            fid = report.fid
        assert sbox.global_mat.peek(fid).version >= 2


class TestSpeedyBoxReset:
    def test_reset_clears_everything(self):
        sbox = SpeedyBox([Monitor("m")])
        for packet in flow_packets(3):
            sbox.process(packet)
        sbox.reset()
        assert sbox.slow_packets == 0
        assert sbox.fast_packets == 0
        assert len(sbox.global_mat) == 0
        assert sbox.nfs[0].total_packets() == 0
        paths = [sbox.process(p).path for p in flow_packets(2)]
        assert paths == [PathTaken.ORIGINAL, PathTaken.FAST]


class TestEquivalenceSmoke:
    def test_total_meter_merges_everything(self):
        sbox = SpeedyBox([Monitor("m")])
        packets = flow_packets(2)
        sbox.process(packets[0])
        report = sbox.process(packets[1])
        total = report.total_meter()
        assert total.cycles(__import__("repro.platform.costs", fromlist=["CostModel"]).CostModel()) > 0

    def test_baseline_and_speedybox_same_outputs(self):
        def build():
            return [Monitor("m"), IPFilter("fw")]

        base = ServiceChain(build())
        sbox = SpeedyBox(build())
        packets = flow_packets(5, handshake=True, fin=True)
        base_packets = clone_packets(packets)
        sbox_packets = clone_packets(packets)
        for packet in base_packets:
            base.process(packet)
        for packet in sbox_packets:
            sbox.process(packet)
        for base_pkt, sbox_pkt in zip(base_packets, sbox_packets):
            assert base_pkt.serialize() == sbox_pkt.serialize()
            assert base_pkt.dropped == sbox_pkt.dropped
