"""SLO engine: spec parsing, budget accounting, burn-rate alerts."""

import pytest

from repro.obs import AuditLog, SLOEngine, TimeSeries
from repro.obs.slo import SLObjective


class TestParsing:
    def test_latency_spec(self):
        obj = SLObjective.parse("p99<250us")
        assert obj.kind == "latency"
        assert obj.threshold_ns == 250_000.0
        assert obj.fraction == 0.99
        assert obj.target == 0.999

    def test_latency_spec_with_target_and_units(self):
        obj = SLObjective.parse("p50 < 40 ms @0.99")
        assert obj.threshold_ns == 40e6
        assert obj.fraction == 0.50
        assert obj.target == 0.99

    def test_loss_specs(self):
        assert SLObjective.parse("loss<0.001").loss_budget == 0.001
        assert SLObjective.parse("loss<0.1%").loss_budget == pytest.approx(0.001)
        obj = SLObjective.parse("loss<0.1%")
        assert obj.kind == "loss"
        assert obj.target == pytest.approx(0.999)

    def test_bad_specs_rejected(self):
        for spec in ("p0<1us", "p99<", "drops<5", "loss<2", "loss<150%"):
            with pytest.raises(ValueError):
                SLObjective.parse(spec)

    def test_engine_needs_objectives(self):
        with pytest.raises(ValueError):
            SLOEngine([])


def run_windows(engine_specs, windows, alert_burn_rate=2.0):
    """Feed synthetic windows; each window is (latencies, drops)."""
    ts = TimeSeries(window_packets=10_000)
    audit = AuditLog()
    engine = SLOEngine.from_specs(
        engine_specs, timeseries=ts, audit=audit, alert_burn_rate=alert_burn_rate
    )
    clock = 0.0
    for latencies, drops in windows:
        for latency in latencies:
            ts.record(clock, latency_ns=latency)
            clock += 1.0
        for __ in range(drops):
            ts.record(clock, dropped=True)
            clock += 1.0
        ts.finish()
    return engine, audit


class TestAccounting:
    def test_compliant_windows_leave_budget_untouched(self):
        engine, audit = run_windows(
            ["p99<250us"], [([100.0] * 100, 0), ([200.0] * 100, 0)]
        )
        summary = engine.summary()["p99<250us"]
        assert summary["events"] == 200
        assert summary["bad"] == 0
        assert summary["compliance"] == 1.0
        assert audit.events("slo_burn_alert") == []

    def test_latency_samples_over_threshold_are_bad_events(self):
        engine, __ = run_windows(
            ["p99<250us"], [([100.0] * 99 + [400_000.0], 0)]
        )
        summary = engine.summary()["p99<250us"]
        assert summary["bad"] == 1
        assert summary["compliance"] == pytest.approx(0.99)

    def test_loss_counts_drops_and_buffered(self):
        engine, __ = run_windows(["loss<0.1%"], [([100.0] * 98, 2)])
        summary = engine.summary()["loss<0.1%"]
        assert summary["events"] == 100
        assert summary["bad"] == 2

    def test_burn_alert_fires_and_audits_once_per_window(self):
        # 1% bad vs 0.1% budget = burn 10 >= 2 -> alert
        engine, audit = run_windows(
            ["loss<0.1%"], [([100.0] * 99, 1), ([100.0] * 100, 0)]
        )
        alerts = engine.alerts("loss<0.1%")
        assert len(alerts) == 1
        assert alerts[0]["burn_rate"] == pytest.approx(10.0)
        events = audit.events("slo_burn_alert")
        assert len(events) == 1
        assert events[0]["objective"] == "loss<0.1%"

    def test_burn_below_alert_rate_is_silent(self):
        # 0.15% bad vs 0.1% budget = burn 1.5 < 2
        engine, audit = run_windows(
            ["loss<0.1%"], [([100.0] * 1997, 3)]
        )
        assert engine.alerts() == []
        assert audit.events("slo_burn_alert") == []
        state = engine.summary()["loss<0.1%"]
        assert state["worst_burn"] == pytest.approx(1.5, rel=1e-3)

    def test_budget_remaining_goes_negative_when_overspent(self):
        engine, __ = run_windows(["loss<0.1%"], [([100.0] * 90, 10)])
        assert engine.budget_remaining("loss<0.1%") < 0
        assert engine.compliance("loss<0.1%") == pytest.approx(0.9)

    def test_render_tables_every_objective(self):
        engine, __ = run_windows(
            ["p99<250us", "loss<0.1%"], [([100.0] * 100, 0)]
        )
        text = engine.render()
        assert "p99<250us" in text and "loss<0.1%" in text
        assert "burn_max" in text
