"""Calibration pins: exact cycle counts for the canonical paths.

These numbers ARE the calibration (docs/cost_model.md): the benchmarks
assert shapes, this suite pins the absolute anchor values so that a cost
constant can only move together with a conscious update here and in the
docs.  If you changed CostModel on purpose, update these pins and the
calibration table in docs/cost_model.md in the same commit.
"""

import pytest

from benchmarks.harness import chain_cycles
from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import IPFilter
from repro.nf.ipfilter import AclRule, Verdict
from repro.platform import BessPlatform, OpenNetVMPlatform
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets


def packets(n=4):
    spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000, 80, packets=n, payload=b"x" * 26)
    return TrafficGenerator([spec]).packets()


def sub_outcome(platform):
    return platform.process_all(clone_packets(packets()))[-1]


class TestBessPins:
    def test_single_ipfilter_hop_is_530(self):
        """The Table III anchor: dispatch(270)+parse(180)+lookup(80)."""
        outcome = sub_outcome(BessPlatform(ServiceChain([IPFilter("fw")])))
        assert chain_cycles(outcome) == pytest.approx(530.0)

    def test_fast_path_forward_rule_is_600(self):
        """parse(180)+fid(45)+attach(15)+lookup(150)+dispatch(200)+detach(10)."""
        outcome = sub_outcome(BessPlatform(SpeedyBox([IPFilter("fw")])))
        assert chain_cycles(outcome) == pytest.approx(600.0)

    def test_fast_path_one_modify_rule_is_750(self):
        """forward rule + field_write(60) + checksum(90)."""
        outcome = sub_outcome(BessPlatform(SpeedyBox([IPFilter("fw", mark_dscp=9)])))
        assert chain_cycles(outcome) == pytest.approx(750.0)

    def test_fast_path_extra_merged_field_is_35(self):
        two = sub_outcome(
            BessPlatform(SpeedyBox([IPFilter("a", mark_dscp=9), IPFilter("b", mark_dscp=9)]))
        )
        # Same field twice merges to ONE op: still 750.
        assert chain_cycles(two) == pytest.approx(750.0)
        from repro.nf import MazuNAT

        nat_fw = sub_outcome(
            BessPlatform(SpeedyBox([MazuNAT("nat"), IPFilter("fw", mark_dscp=9)]))
        )
        # src_ip+src_port+dscp = 1 field_write + 2 merged (35 each).
        assert chain_cycles(nat_fw) == pytest.approx(750.0 + 2 * 35.0)

    def test_fast_drop_rule_is_660(self):
        """forward rule + drop_free(60)."""
        fw = IPFilter("fw", rules=[AclRule.make(verdict=Verdict.DROP)])
        outcome = sub_outcome(BessPlatform(SpeedyBox([fw])))
        assert chain_cycles(outcome) == pytest.approx(660.0)


class TestOnvmPins:
    def test_single_ipfilter_hop_is_700(self):
        """BESS hop minus dispatch(270) plus ring(70+70)+sync(300)."""
        outcome = sub_outcome(OpenNetVMPlatform(ServiceChain([IPFilter("fw")])))
        assert chain_cycles(outcome) == pytest.approx(700.0)

    def test_fast_path_tx_ring_premium_is_140(self):
        bess = sub_outcome(BessPlatform(SpeedyBox([IPFilter("a")])))
        onvm = sub_outcome(OpenNetVMPlatform(SpeedyBox([IPFilter("b")])))
        assert chain_cycles(onvm) - chain_cycles(bess) == pytest.approx(140.0)


class TestClockPin:
    def test_two_gigahertz(self):
        outcome = sub_outcome(BessPlatform(ServiceChain([IPFilter("fw")])))
        assert outcome.latency_ns == pytest.approx(outcome.latency_cycles / 2.0)
