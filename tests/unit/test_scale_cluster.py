"""Unit tests for the scale layer: merge semantics, the cluster's
dispatch/freeze/elasticity mechanics, and the autoscaler's watermarks."""

import pytest

from repro.nf import IPFilter, MazuNAT, Monitor
from repro.obs.registry import MetricsRegistry
from repro.obs.signals import ClusterSignals, SignalSample
from repro.platform.base import LoadResult
from repro.scale import Autoscaler, AutoscalerConfig, MigrationError, ScaleCluster
from repro.stats.summary import percentile
from repro.traffic import FlowSpec, TrafficGenerator


def build_chain():
    return [
        MazuNAT("nat", external_ip="203.0.113.50", port_range=(30000, 60000)),
        Monitor("mon"),
        IPFilter("fw"),
    ]


def trace(flows=16, packets=6, seed=5):
    specs = [
        FlowSpec.tcp(
            f"10.9.{i}.4", f"99.1.0.{i + 1}", 5000 + i, 443, packets=packets
        )
        for i in range(flows)
    ]
    return TrafficGenerator(specs, interleave="round_robin", seed=seed).packets()


class TestLoadResultMerge:
    def test_counts_add_and_samples_concatenate(self):
        a = LoadResult(offered=4, delivered=3, dropped=1, makespan_ns=100.0,
                       latencies_ns=[10.0, 20.0, 30.0])
        b = LoadResult(offered=2, delivered=2, dropped=0, makespan_ns=250.0,
                       latencies_ns=[500.0, 600.0])
        total = a.merge(b)
        assert total.offered == 6
        assert total.delivered == 5
        assert total.dropped == 1
        assert total.makespan_ns == 250.0
        assert total.latencies_ns == [10.0, 20.0, 30.0, 500.0, 600.0]

    def test_percentiles_come_from_the_merged_population(self):
        """The merged p99 is computed over the concatenated samples — it
        is *not* any combination of the parts' own percentiles."""
        fast = LoadResult(1, 1, 0, 100.0, [1.0] * 99)
        slow = LoadResult(1, 1, 0, 100.0, [1000.0])
        total = fast.merge(slow)
        assert total.latency_percentile(0.99) == percentile([1.0] * 99 + [1000.0], 0.99)
        # Averaging the parts' p99s (500.5) would be wrong; the merged
        # population's p99 is still a fast sample.
        assert total.latency_percentile(0.99) == 1.0

    def test_merged_folds_many(self):
        parts = [LoadResult(1, 1, 0, float(i), [float(i)]) for i in range(1, 5)]
        total = LoadResult.merged(parts)
        assert total.offered == 4
        assert total.makespan_ns == 4.0
        assert sorted(total.latencies_ns) == [1.0, 2.0, 3.0, 4.0]

    def test_merge_matches_concatenated_run(self):
        """Sharding a stream over two replicas and merging equals one
        run over the same packets, sample-for-sample (same functional
        work, populations equal as multisets)."""
        packets = trace(flows=8)
        single = ScaleCluster(build_chain, platform="onvm", replicas=1)
        sharded = ScaleCluster(build_chain, platform="onvm", replicas=2)
        one = single.run_load(packets_clone(packets), inter_arrival_ns=500.0)
        two = sharded.run_load(packets_clone(packets), inter_arrival_ns=500.0)
        assert two.total.offered == one.total.offered == len(packets)
        assert two.total.delivered + two.total.dropped == len(packets)
        assert len(two.total.latencies_ns) == len(one.total.latencies_ns)
        assert two.total.offered == sum(r.offered for r in two.per_replica.values())


def packets_clone(packets):
    return [packet.clone() for packet in packets]


class TestScaleCluster:
    def test_flows_spread_across_replicas(self):
        cluster = ScaleCluster(build_chain, replicas=4, buckets=128)
        for packet in trace(flows=32):
            cluster.process(packet)
        homes = set(cluster.flow_homes().values())
        assert len(homes) >= 3  # 32 flows over 4 replicas: all but luck

    def test_same_flow_always_same_replica(self):
        cluster = ScaleCluster(build_chain, replicas=3)
        packets = trace(flows=6)
        first = {}
        for packet in packets:
            key = packet.five_tuple().canonical()
            cluster.process(packet)
            home = cluster.flow_homes()[key]
            assert first.setdefault(key, home) == home

    def test_freeze_buffers_and_replay_loses_nothing(self):
        cluster = ScaleCluster(build_chain, replicas=2)
        packets = trace(flows=4, packets=8)
        frozen_flow = packets[0].five_tuple()
        outcomes = [cluster.process(p) for p in packets[:8]]
        assert all(o is not None for o in outcomes)
        cluster.begin_migration(frozen_flow)
        frozen_key = frozen_flow.canonical()
        buffered_now = 0
        for packet in packets[8:24]:
            outcome = cluster.process(packet)
            if packet.five_tuple().canonical() == frozen_key:
                assert outcome is None
                buffered_now += 1
            else:
                assert outcome is not None
        assert buffered_now > 0
        assert cluster.packets_buffered == buffered_now
        dst = 1 - cluster.home_of(frozen_flow)
        report, replayed = cluster.complete_migration(frozen_flow, dst)
        assert len(replayed) == buffered_now
        assert all(outcome is not None for outcome in replayed)
        assert cluster.home_of(frozen_flow) == dst

    def test_run_load_refuses_while_frozen(self):
        cluster = ScaleCluster(build_chain, replicas=2)
        packets = trace(flows=2)
        cluster.process(packets[0])
        cluster.begin_migration(packets[0].five_tuple())
        with pytest.raises(MigrationError):
            cluster.run_load(packets[1:])

    def test_double_freeze_rejected(self):
        cluster = ScaleCluster(build_chain, replicas=2)
        flow = trace(flows=1)[0].five_tuple()
        cluster.begin_migration(flow)
        with pytest.raises(MigrationError):
            cluster.begin_migration(flow.reversed())

    def test_scale_out_rehomes_to_match_table(self):
        cluster = ScaleCluster(build_chain, replicas=2, buckets=64)
        for packet in trace(flows=24):
            cluster.process(packet)
        rid = cluster.scale_out()
        assert cluster.replica_count == 3
        for key, home in cluster.flow_homes().items():
            assert cluster.sharder.replica_for(key) == home
        assert any(home == rid for home in cluster.flow_homes().values())

    def test_scale_in_drains_the_retired_replica(self):
        cluster = ScaleCluster(build_chain, replicas=3, buckets=64)
        for packet in trace(flows=24):
            cluster.process(packet)
        retired = cluster.scale_in()
        assert retired == 2
        assert cluster.replica_count == 2
        assert all(home != retired for home in cluster.flow_homes().values())

    def test_scale_in_below_one_rejected(self):
        cluster = ScaleCluster(build_chain, replicas=1)
        with pytest.raises(MigrationError):
            cluster.scale_in()

    def test_migration_preserves_functional_results(self):
        """Post-migration packets through the cluster match a never-
        migrated cluster byte for byte."""
        packets = trace(flows=6, packets=10)
        plain = ScaleCluster(build_chain, replicas=2)
        churned = ScaleCluster(build_chain, replicas=2)
        plain_stream = packets_clone(packets)
        churn_stream = packets_clone(packets)
        half = len(packets) // 2
        for packet in plain_stream:
            plain.process(packet)
        for packet in churn_stream[:half]:
            churned.process(packet)
        reports = churned.churn_flows(4, seed=3)
        assert reports, "churn should have migrated at least one flow"
        for packet in churn_stream[half:]:
            churned.process(packet)
        for index, (a, b) in enumerate(zip(plain_stream, churn_stream)):
            assert a.dropped == b.dropped, index
            if not a.dropped:
                assert a.serialize() == b.serialize(), index

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ScaleCluster(build_chain, platform="dpdk")
        with pytest.raises(ValueError):
            ScaleCluster(build_chain, replicas=0)


def sample(ring=0.0, cores=0.0, p99=0.0, mpps=1.0, replicas=2):
    return SignalSample(
        ring_occupancy=ring,
        core_utilisation=cores,
        p99_latency_ns=p99,
        throughput_mpps=mpps,
        replicas=replicas,
    )


class TestAutoscalerDecisions:
    def make(self, replicas=2, **cfg):
        cluster = ScaleCluster(lambda: [Monitor("mon")], replicas=replicas)
        return Autoscaler(cluster, AutoscalerConfig(**cfg))

    def test_high_ring_occupancy_scales_out(self):
        scaler = self.make()
        decision = scaler.evaluate(sample(ring=0.9))
        assert decision.action == +1
        assert "ring occupancy" in decision.reason

    def test_high_core_utilisation_scales_out(self):
        decision = self.make().evaluate(sample(cores=0.95))
        assert decision.action == +1
        assert "core utilisation" in decision.reason

    def test_p99_slo_trigger_only_when_configured(self):
        assert self.make().evaluate(sample(ring=0.3, cores=0.5, p99=9e9)).action == 0
        decision = self.make(high_p99_ns=1e6).evaluate(
            sample(ring=0.3, cores=0.5, p99=2e6)
        )
        assert decision.action == +1
        assert "p99" in decision.reason

    def test_idle_scales_in_only_when_all_signals_low(self):
        scaler = self.make()
        assert scaler.evaluate(sample(ring=0.05, cores=0.05)).action == -1
        # One low signal alone is not idleness.
        assert scaler.evaluate(sample(ring=0.05, cores=0.5)).action == 0

    def test_bounds_respected(self):
        at_max = self.make(replicas=2, max_replicas=2)
        decision = at_max.evaluate(sample(ring=0.9))
        assert decision.action == 0
        assert "at max_replicas" in decision.reason
        at_min = self.make(replicas=1, min_replicas=1)
        assert at_min.evaluate(sample(ring=0.0, cores=0.0)).action == 0

    def test_cooldown_suppresses_action(self):
        scaler = self.make(cooldown_windows=2)
        scaler._windows_since_action = 0
        decision = scaler.evaluate(sample(ring=0.9))
        assert decision.action == 0
        assert decision.reason == "cooldown"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=3, max_replicas=2)


class TestAutoscalerLoop:
    def test_step_scales_out_under_pressure_then_cools_down(self):
        metrics = MetricsRegistry()
        cluster = ScaleCluster(
            build_chain, platform="onvm", replicas=1, metrics=metrics
        )
        scaler = Autoscaler(
            cluster,
            AutoscalerConfig(high_core_utilisation=0.0, cooldown_windows=1),
        )
        packets = trace(flows=8)
        first = scaler.step(packets_clone(packets), inter_arrival_ns=10.0)
        assert first.action == +1
        assert cluster.replica_count == 2
        second = scaler.step(packets_clone(packets), inter_arrival_ns=10.0)
        assert second.action == 0
        assert second.reason == "cooldown"
        third = scaler.step(packets_clone(packets), inter_arrival_ns=10.0)
        assert third.action == +1
        assert cluster.replica_count == 3
        assert [d.replicas_after for d in scaler.decisions] == [2, 2, 3]

    def test_step_scales_in_when_idle(self):
        cluster = ScaleCluster(build_chain, platform="bess", replicas=3)
        scaler = Autoscaler(
            cluster,
            AutoscalerConfig(
                low_ring_occupancy=1.0,
                low_core_utilisation=1.0,
                high_ring_occupancy=1.1,
                high_core_utilisation=1.1,
                cooldown_windows=0,
            ),
        )
        packets = trace(flows=4, packets=2)
        scaler.step(packets_clone(packets), inter_arrival_ns=1e6)
        assert cluster.replica_count == 2
        scaler.step(packets_clone(packets), inter_arrival_ns=1e6)
        assert cluster.replica_count == 1

    def test_signal_sample_describe(self):
        text = sample(ring=0.5, cores=0.25, p99=1500.0).describe()
        assert "50%" in text and "25%" in text and "1.5us" in text

    def test_cluster_signals_validation(self):
        with pytest.raises(ValueError):
            ClusterSignals(MetricsRegistry(), ring_capacity=0)


class TestAutoscalerHealth:
    """Health-aware decisions: critical pressure and the scale-in veto."""

    def feed(self, ts, replica=0, drops=0):
        for i in range(16):
            ts.record(
                float(i),
                latency_ns=None if i < drops else 100.0,
                replica=replica,
                dropped=(i < drops),
            )

    def make(self, replicas=3, drops_by_replica=(), **cfg):
        from repro.obs import HealthModel, TimeSeries

        ts = TimeSeries(window_packets=16)
        health = HealthModel(timeseries=ts)
        for replica, drops in enumerate(drops_by_replica):
            self.feed(ts, replica=replica, drops=drops)
        cluster = ScaleCluster(lambda: [Monitor("mon")], replicas=replicas)
        return Autoscaler(cluster, AutoscalerConfig(**cfg), health=health)

    def test_critical_replica_is_scale_out_pressure(self):
        scaler = self.make(drops_by_replica=(0, 4))  # 25% drops -> CRITICAL
        decision = scaler.evaluate(sample(ring=0.3, cores=0.5, replicas=3))
        assert decision.action == +1
        assert "critical replicas: 1" in decision.reason

    def test_degraded_replica_vetoes_scale_in_without_pressure(self):
        scaler = self.make(drops_by_replica=(0, 1))  # 6% drops -> DEGRADED
        decision = scaler.evaluate(sample(ring=0.05, cores=0.05, replicas=3))
        assert decision.action == 0
        assert "scale-in vetoed: unhealthy replicas 1" in decision.reason

    def test_healthy_cluster_scales_in_normally(self):
        scaler = self.make(drops_by_replica=(0, 0))
        decision = scaler.evaluate(sample(ring=0.05, cores=0.05, replicas=3))
        assert decision.action == -1

    def test_step_audits_cluster_health(self):
        from repro.obs import HealthModel, TimeSeries
        from repro.obs.health import DEGRADED

        ts = TimeSeries(window_packets=16)
        health = HealthModel(timeseries=ts)
        from repro.obs.audit import AuditLog

        self.feed(ts, replica=0, drops=1)  # DEGRADED before the window runs
        cluster = ScaleCluster(build_chain, replicas=2, audit=AuditLog())
        scaler = Autoscaler(
            cluster,
            AutoscalerConfig(
                low_ring_occupancy=0.0, low_core_utilisation=0.0, cooldown_windows=0
            ),
            health=health,
        )
        scaler.step(packets_clone(trace(flows=4, packets=2)), inter_arrival_ns=1e6)
        events = cluster.audit.events("autoscale_decision")
        assert len(events) == 1
        assert events[0]["cluster_health"] == DEGRADED
