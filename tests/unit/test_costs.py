"""Unit tests for the cost model (repro.platform.costs)."""

import pytest

from repro.platform.costs import CostModel, CycleMeter, NULL_METER, NullMeter, Operation


class TestCostModel:
    def test_every_operation_has_a_cost(self):
        model = CostModel()
        for operation in Operation:
            assert model.cycles_for(operation) >= 0

    def test_clock_conversion(self):
        model = CostModel(clock_ghz=2.0)
        assert model.cycles_to_ns(2000) == pytest.approx(1000.0)
        assert model.cycles_to_us(2000) == pytest.approx(1.0)

    def test_with_overrides(self):
        model = CostModel().with_overrides(parse=999.0)
        assert model.parse == 999.0
        assert CostModel().parse != 999.0  # original untouched (frozen)

    def test_frozen(self):
        model = CostModel()
        with pytest.raises(Exception):
            model.parse = 1.0  # type: ignore[misc]

    def test_operation_names_cover_fields(self):
        names = CostModel.operation_names()
        for operation in Operation:
            assert operation.value in names

    def test_calibration_anchor_single_nf_hop(self):
        # DESIGN.md anchor: an IPFilter hop on BESS ~= 530 cycles
        # (dispatch + parse + flow lookup + verdict-ish work).
        model = CostModel()
        hop = model.nf_dispatch + model.parse + model.exact_match_lookup
        assert 300 <= hop <= 700


class TestCycleMeter:
    def test_charges_accumulate(self):
        meter = CycleMeter()
        meter.charge(Operation.PARSE)
        meter.charge(Operation.PARSE, 2)
        assert meter.count(Operation.PARSE) == 3

    def test_cycles_conversion(self):
        model = CostModel()
        meter = CycleMeter()
        meter.charge(Operation.PARSE, 2)
        meter.charge_cycles(100)
        assert meter.cycles(model) == pytest.approx(2 * model.parse + 100)

    def test_zero_charge_ignored(self):
        meter = CycleMeter()
        meter.charge(Operation.PARSE, 0)
        assert Operation.PARSE not in meter.counts

    def test_merge(self):
        a = CycleMeter()
        a.charge(Operation.PARSE)
        a.charge_cycles(10)
        b = CycleMeter()
        b.charge(Operation.PARSE, 2)
        b.charge(Operation.NIC_RX)
        b.charge_cycles(5)
        a.merge(b)
        assert a.count(Operation.PARSE) == 3
        assert a.count(Operation.NIC_RX) == 1
        assert a.direct_cycles == 15

    def test_copy_is_independent(self):
        meter = CycleMeter()
        meter.charge(Operation.PARSE)
        copy = meter.copy()
        copy.charge(Operation.PARSE)
        assert meter.count(Operation.PARSE) == 1
        assert copy.count(Operation.PARSE) == 2

    def test_reset(self):
        meter = CycleMeter()
        meter.charge(Operation.PARSE)
        meter.charge_cycles(5)
        meter.reset()
        assert meter.cycles(CostModel()) == 0

    def test_null_meter_records_nothing(self):
        NULL_METER.charge(Operation.PARSE, 100)
        NULL_METER.charge_cycles(1e9)
        assert NULL_METER.cycles(CostModel()) == 0
        assert isinstance(NULL_METER, NullMeter)
