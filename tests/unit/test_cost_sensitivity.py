"""Robustness: the paper's directional claims must survive cost-model
perturbation.

The reproduction's absolute numbers depend on calibrated constants; its
*claims* must not.  Each headline claim is re-checked with every relevant
constant halved and doubled — if a claim only holds at the calibrated
point, it is an artifact, not a result.
"""

import pytest

from repro.core.framework import ServiceChain, SpeedyBox
from repro.core.state_function import PayloadClass
from repro.nf import IPFilter, SyntheticNF
from repro.platform import BessPlatform, CostModel, PlatformConfig
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets

PERTURBED = ["parse", "nf_dispatch", "exact_match_lookup", "fast_path_dispatch",
             "global_mat_lookup", "field_write", "checksum_update"]
FACTORS = [0.5, 2.0]


def packets(n=6):
    spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000, 80, packets=n, payload=b"x" * 26)
    return TrafficGenerator([spec]).packets()


def sub_latency(runtime, model):
    platform = BessPlatform(runtime, PlatformConfig(cost_model=model))
    return platform.process_all(clone_packets(packets()))[-1].latency_cycles


def perturbations():
    for name in PERTURBED:
        for factor in FACTORS:
            base = getattr(CostModel(), name)
            yield name, factor, CostModel().with_overrides(**{name: base * factor})


@pytest.mark.parametrize(
    "name,factor,model",
    list(perturbations()),
    ids=[f"{n}x{f}" for n, f, __ in perturbations()],
)
class TestDirectionalClaims:
    def test_consolidation_wins_on_3nf_chains(self, name, factor, model):
        """Fig. 4's core claim: at three header actions SpeedyBox wins."""
        def chain():
            return [IPFilter(f"fw{i}", mark_dscp=10 + i) for i in range(3)]

        original = sub_latency(ServiceChain(chain()), model)
        speedybox = sub_latency(SpeedyBox(chain()), model)
        assert speedybox < original, f"claim inverted under {name} x{factor}"

    def test_parallelism_beats_sequential_sfs(self, name, factor, model):
        """Fig. 5's core claim: three parallel READ SFs beat sequential."""
        def chain():
            return [
                SyntheticNF(f"s{i}", sf_payload_class=PayloadClass.READ, sf_work_cycles=1600)
                for i in range(3)
            ]

        parallel = sub_latency(SpeedyBox(chain()), model)
        sequential = sub_latency(SpeedyBox(chain(), enable_parallelism=False), model)
        assert parallel < sequential, f"claim inverted under {name} x{factor}"


class TestCalibrationPointClaims:
    def test_single_nf_loss_is_calibration_dependent(self):
        """Fig. 4's one-header-action loss IS calibration-sensitive: it
        holds at the calibrated point (documented), and flips when the
        fast path is made artificially cheap — demonstrating it is a
        genuine trade-off, not a structural constant."""
        def chain():
            return [IPFilter("fw", mark_dscp=10)]

        default = CostModel()
        assert sub_latency(SpeedyBox(chain()), default) > sub_latency(
            ServiceChain(chain()), default
        )
        cheap_fast_path = default.with_overrides(fast_path_dispatch=0.0, global_mat_lookup=10.0)
        assert sub_latency(SpeedyBox(chain()), cheap_fast_path) < sub_latency(
            ServiceChain(chain()), cheap_fast_path
        )
