"""Shuffled interleave + header boundary-value tests."""

import pytest

from repro.net import FiveTuple, IPv4Header, Packet, TCPHeader, UDPHeader
from repro.net.flow import PROTO_UDP
from repro.traffic import FlowSpec, TrafficGenerator


def specs(n=3, packets=4):
    return [
        FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000 + i, 80, packets=packets, payload=bytes([i]))
        for i in range(n)
    ]


class TestShuffledInterleave:
    def test_per_flow_order_preserved(self):
        packets = TrafficGenerator(specs(), interleave="shuffled", seed=7).packets()
        seqs = {}
        for packet in packets:
            seqs.setdefault(packet.l4.src_port, []).append(packet.l4.seq)
        for port, sequence in seqs.items():
            assert sequence == sorted(sequence), f"flow {port} reordered"

    def test_deterministic_per_seed(self):
        a = TrafficGenerator(specs(), interleave="shuffled", seed=7).packets()
        b = TrafficGenerator(specs(), interleave="shuffled", seed=7).packets()
        assert [p.l4.src_port for p in a] == [p.l4.src_port for p in b]

    def test_different_seeds_differ(self):
        a = TrafficGenerator(specs(5, 6), interleave="shuffled", seed=1).packets()
        b = TrafficGenerator(specs(5, 6), interleave="shuffled", seed=2).packets()
        assert [p.l4.src_port for p in a] != [p.l4.src_port for p in b]

    def test_all_packets_emitted(self):
        generator = TrafficGenerator(specs(4, 5), interleave="shuffled")
        assert len(generator.packets()) == generator.total_packets

    def test_equivalence_holds_under_shuffled_order(self):
        from repro.core.framework import ServiceChain, SpeedyBox
        from repro.nf import MazuNAT, Monitor
        from repro.traffic.generator import clone_packets

        packets = TrafficGenerator(specs(4, 5), interleave="shuffled", seed=11).packets()
        baseline = ServiceChain([MazuNAT("nat"), Monitor("mon")])
        speedybox = SpeedyBox([MazuNAT("nat"), Monitor("mon")])
        base_stream = clone_packets(packets)
        sbox_stream = clone_packets(packets)
        for packet in base_stream:
            baseline.process(packet)
        for packet in sbox_stream:
            speedybox.process(packet)
        for a, b in zip(base_stream, sbox_stream):
            assert a.serialize() == b.serialize()


class TestHeaderBoundaries:
    def test_port_zero_and_max(self):
        ft = FiveTuple.make("0.0.0.0", "255.255.255.255", 0, 65535)
        packet = Packet.from_five_tuple(ft, payload=b"")
        parsed = Packet.parse(packet.serialize())
        assert parsed.five_tuple() == ft

    def test_ttl_boundaries(self):
        header = IPv4Header("1.1.1.1", "2.2.2.2", ttl=0)
        assert IPv4Header.unpack(header.pack()).ttl == 0
        header.ttl = 255
        assert IPv4Header.unpack(header.pack()).ttl == 255

    def test_max_dscp(self):
        header = IPv4Header("1.1.1.1", "2.2.2.2", dscp=63)
        assert IPv4Header.unpack(header.pack()).dscp == 63

    def test_mtu_sized_payload_roundtrip(self):
        ft = FiveTuple.make("10.0.0.1", "10.0.0.2", 1, 2)
        packet = Packet.from_five_tuple(ft, payload=b"\xab" * 1460)
        parsed = Packet.parse(packet.serialize())
        assert parsed.payload == packet.payload
        assert parsed.ip.total_length == 20 + 20 + 1460

    def test_empty_payload_udp_length(self):
        ft = FiveTuple.make("10.0.0.1", "10.0.0.2", 53, 53, protocol=PROTO_UDP)
        packet = Packet.from_five_tuple(ft)
        assert isinstance(packet.l4, UDPHeader)
        assert packet.l4.length == 8

    def test_tcp_seq_ack_wraparound_values(self):
        header = TCPHeader(1, 2, seq=0xFFFFFFFF, ack=0xFFFFFFFF)
        parsed = TCPHeader.unpack(header.pack())
        assert parsed.seq == 0xFFFFFFFF
        assert parsed.ack == 0xFFFFFFFF

    def test_checksum_odd_length_stability(self):
        from repro.net import internet_checksum

        data = b"\x01\x02\x03"  # odd length pads with zero
        assert internet_checksum(data) == internet_checksum(data + b"\x00")
