"""Unit tests for the MAT inspector (repro.core.inspector)."""

from repro.core.framework import SpeedyBox
from repro.core.inspector import (
    describe_action,
    describe_rule,
    dump_global_mat,
    lookup_flow_rule,
)
from repro.core.consolidation import consolidate_header_actions
from repro.core.actions import Decap, Drop, Encap, Forward, Modify
from repro.net import AuthenticationHeader, FiveTuple
from repro.net.addresses import ip_to_int
from repro.nf import DosPrevention, IPFilter, MaglevLoadBalancer, Monitor
from repro.traffic import FlowSpec, TrafficGenerator


def run_flow(sbox, packets=3, sport=1000):
    spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", sport, 80, packets=packets, payload=b"x")
    fid = None
    for packet in TrafficGenerator([spec]).packets():
        fid = sbox.process(packet).fid
    return fid


class TestDescribeAction:
    def test_forward(self):
        assert describe_action(consolidate_header_actions([Forward()])) == "forward"

    def test_drop(self):
        assert describe_action(consolidate_header_actions([Drop()])) == "drop"

    def test_modify_renders_ips(self):
        action = consolidate_header_actions([Modify.set(dst_ip=ip_to_int("9.9.9.9"))])
        assert "set dst_ip=9.9.9.9" in describe_action(action)

    def test_modify_renders_ports_and_adjusts(self):
        action = consolidate_header_actions([Modify.set(dst_port=8080), Modify.ttl_dec(2)])
        text = describe_action(action)
        assert "set dst_port=8080" in text
        assert "adjust ttl-2" in text

    def test_encap_decap(self):
        action = consolidate_header_actions([Decap(AuthenticationHeader)])
        assert "decap x1" in describe_action(action)
        action = consolidate_header_actions([Encap(AuthenticationHeader(spi=1))])
        assert "encap AuthenticationHeader" in describe_action(action)


class TestDescribeRule:
    def test_unknown_fid(self):
        sbox = SpeedyBox([Monitor("m")])
        assert "no consolidated rule" in describe_rule(sbox, 12345)

    def test_rule_block_contains_flow_action_schedule(self):
        sbox = SpeedyBox([Monitor("m"), IPFilter("fw")])
        fid = run_flow(sbox)
        text = describe_rule(sbox, fid)
        assert f"fid={fid}" in text
        assert "action  : forward" in text
        assert "m.count_packet" in text

    def test_events_listed(self):
        sbox = SpeedyBox([DosPrevention("dos", threshold=100, mode="packets")])
        fid = run_flow(sbox)
        text = describe_rule(sbox, fid)
        assert "event   : dos/exceeded (armed)" in text

    def test_fired_event_shown(self):
        sbox = SpeedyBox([DosPrevention("dos", threshold=2, mode="packets")])
        fid = run_flow(sbox, packets=6)
        text = describe_rule(sbox, fid)
        assert "fired x1" in text
        assert "action  : drop" in text


class TestDump:
    def test_empty(self):
        sbox = SpeedyBox([Monitor("m")])
        assert "empty" in dump_global_mat(sbox)

    def test_dump_lists_all_flows(self):
        sbox = SpeedyBox([Monitor("m")])
        for sport in (1000, 2000, 3000):
            run_flow(sbox, sport=sport)
        text = dump_global_mat(sbox)
        assert text.count("fid=") == 3
        assert "3 rules shown" in text
        assert "fast-path rate" in text

    def test_limit(self):
        sbox = SpeedyBox([Monitor("m")])
        for sport in (1000, 2000, 3000):
            run_flow(sbox, sport=sport)
        text = dump_global_mat(sbox, limit=1)
        assert text.count("fid=") == 1

    def test_verbose_includes_consolidation_trace(self):
        from repro.nf import MazuNAT

        sbox = SpeedyBox([MazuNAT("nat"), Monitor("m")])
        fid = run_flow(sbox)
        text = describe_rule(sbox, fid, verbose=True)
        assert "consolidation trace:" in text
        assert "records src_ip" in text
        assert any("result:" in line for line in text.splitlines())

    def test_lookup_flow_rule(self):
        sbox = SpeedyBox([MaglevLoadBalancer("lb", table_size=131)])
        run_flow(sbox)
        five_tuple = FiveTuple.make("10.0.0.1", "10.0.0.2", 1000, 80)
        text = lookup_flow_rule(sbox, five_tuple)
        assert "set dst_ip=" in text
