"""Unit tests for distribution comparison (repro.stats.comparison)."""

import pytest

from repro.stats import Comparison, Distribution, compare, comparison_rows


class TestCompare:
    def test_uniform_improvement(self):
        baseline = Distribution([10.0, 20.0, 30.0, 40.0])
        variant = Distribution([5.0, 10.0, 15.0, 20.0])
        result = compare(baseline, variant)
        assert result.reduction_at(0.50) == pytest.approx(50.0)
        assert result.mean_reduction_pct == pytest.approx(50.0)
        assert result.dominates

    def test_regression_is_negative(self):
        baseline = Distribution([10.0] * 10)
        variant = Distribution([15.0] * 10)
        result = compare(baseline, variant)
        assert result.reduction_at(0.50) == pytest.approx(-50.0)
        assert not result.dominates

    def test_crossing_distributions_not_dominant(self):
        # Variant better at the median, worse in the tail.
        baseline = Distribution([10.0] * 9 + [100.0])
        variant = Distribution([5.0] * 9 + [500.0])
        result = compare(baseline, variant)
        assert result.reduction_at(0.50) > 0
        assert not result.dominates

    def test_counts_recorded(self):
        result = compare(Distribution([1.0, 2.0]), Distribution([1.0]))
        assert result.baseline_count == 2
        assert result.variant_count == 1

    def test_custom_fractions(self):
        baseline = Distribution(range(1, 101))
        variant = Distribution(range(1, 101))
        result = compare(baseline, variant, fractions=(0.25, 0.75))
        assert set(result.reductions_pct) == {0.25, 0.75}
        assert result.reduction_at(0.25) == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare(Distribution(), Distribution([1.0]))

    def test_nonpositive_baseline_percentile_rejected(self):
        with pytest.raises(ValueError):
            compare(Distribution([0.0, 0.0]), Distribution([1.0]))

    def test_rows_rendering(self):
        result = compare(Distribution([10.0] * 4), Distribution([5.0] * 4))
        rows = comparison_rows(result)
        labels = [label for label, __ in rows]
        assert "p50 reduction" in labels
        assert ("stochastic dominance", "yes") in rows

    def test_str_summary(self):
        result = compare(Distribution([10.0] * 4), Distribution([5.0] * 4))
        text = str(result)
        assert "p50" in text
        assert "dominates" in text


class TestEndToEnd:
    def test_real_chain_comparison_dominates(self):
        from repro.core.framework import ServiceChain, SpeedyBox
        from repro.nf import IPFilter, Monitor
        from repro.platform import BessPlatform
        from repro.traffic import FlowSpec, TrafficGenerator
        from repro.traffic.generator import clone_packets

        def chain():
            return [Monitor("m"), IPFilter("fw1"), IPFilter("fw2")]

        flows = [
            FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000 + i, 80, packets=6, payload=b"x")
            for i in range(5)
        ]
        packets = TrafficGenerator(flows, interleave="round_robin").packets()
        baseline_platform = BessPlatform(ServiceChain(chain()))
        sbox_platform = BessPlatform(SpeedyBox(chain()))
        baseline = Distribution(
            [baseline_platform.process(p).latency_us for p in clone_packets(packets)]
        )
        variant = Distribution(
            [sbox_platform.process(p).latency_us for p in clone_packets(packets)]
        )
        result = compare(baseline, variant)
        assert result.reduction_at(0.50) > 20.0
        # The slow initial packets cost more than the baseline's, so
        # strict dominance does NOT hold for per-packet latency...
        assert not result.dominates
        # ...while the median and mean clearly improve.
        assert result.mean_reduction_pct > 10.0
