"""Extra traffic-generation coverage: timestamped traces, cloning, payload
policies."""

import pytest

from repro.traffic import DatacenterTraceConfig, DatacenterTraceGenerator, FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets, packets_for_flow


class TestClonePackets:
    def test_clones_are_deeply_independent(self):
        spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2, packets=2, payload=b"orig")
        originals = packets_for_flow(spec)
        clones = clone_packets(originals)
        clones[0].payload = b"mutated"
        clones[0].metadata["x"] = 1
        clones[0].drop()
        assert originals[0].payload == b"orig"
        assert "x" not in originals[0].metadata
        assert not originals[0].dropped

    def test_clone_preserves_wire_bytes(self):
        spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2, packets=3, payload=b"abc")
        originals = packets_for_flow(spec)
        for original, clone in zip(originals, clone_packets(originals)):
            assert original.serialize() == clone.serialize()


class TestPayloadPolicies:
    def test_callable_policy_indexes_data_packets_only(self):
        seen = []

        def policy(index):
            seen.append(index)
            return bytes([index])

        spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2, packets=3,
                            payload=policy, handshake=True, fin=True)
        packets = packets_for_flow(spec)
        # SYN and FIN carry no payload; data packets index 0..2.
        assert seen == [0, 1, 2]
        assert packets[1].payload == b"\x00"
        assert packets[3].payload == b"\x02"
        assert packets[0].payload == b""
        assert packets[-1].payload == b""


class TestTimestampedTraceShape:
    def make(self, **kwargs):
        config = DatacenterTraceConfig(flows=8, seed=4)
        return DatacenterTraceGenerator(config).timestamped_packets(**kwargs)

    def test_burst_structure(self):
        packets = self.make(burst_size=3, intra_burst_gap_ns=100.0, mean_off_gap_ns=1e6)
        by_flow = {}
        for packet in packets:
            by_flow.setdefault(packet.five_tuple(), []).append(packet.timestamp_ns)
        # Within a flow, intra-burst gaps are the small constant; OFF gaps
        # are much larger.
        small, large = 0, 0
        for stamps in by_flow.values():
            for gap in (b - a for a, b in zip(stamps, stamps[1:])):
                if gap == pytest.approx(100.0):
                    small += 1
                elif gap > 10_000:
                    large += 1
        assert small > 0
        assert large > 0

    def test_mean_flow_gap_scales_span(self):
        tight = self.make(mean_flow_gap_ns=1_000.0)
        loose = self.make(mean_flow_gap_ns=1_000_000.0)
        assert loose[-1].timestamp_ns > tight[-1].timestamp_ns

    def test_total_packet_count_matches_specs(self):
        config = DatacenterTraceConfig(flows=8, seed=4)
        generator = DatacenterTraceGenerator(config)
        specs = generator.generate_flows()
        expected = sum(spec.total_packets for spec in specs)
        fresh = DatacenterTraceGenerator(config)
        assert len(fresh.timestamped_packets()) == expected


class TestFlowSpecEdge:
    def test_zero_data_packets_with_fin_only(self):
        spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2, packets=0, fin=True)
        packets = packets_for_flow(spec)
        assert len(packets) == 1
        from repro.net.headers import TCP_FIN

        assert packets[0].l4.has_flag(TCP_FIN)

    def test_total_packets_accounting(self):
        spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2, packets=7, handshake=True)
        assert spec.total_packets == 8
        assert len(packets_for_flow(spec)) == 8

    def test_generator_total_matches_emission(self):
        flows = [
            FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000 + i, 2, packets=i + 1)
            for i in range(4)
        ]
        generator = TrafficGenerator(flows, interleave="shuffled", seed=3)
        assert len(generator.packets()) == generator.total_packets == 1 + 2 + 3 + 4
