"""Unit tests for the VPN, DoS-prevention and synthetic NFs."""

import pytest

from repro.core.actions import Modify
from repro.core.local_mat import NullInstrumentationAPI
from repro.core.state_function import PayloadClass
from repro.net import AuthenticationHeader, FiveTuple, Packet
from repro.net.headers import TCP_ACK, TCP_SYN
from repro.nf.dos import DosPrevention
from repro.nf.synthetic import SyntheticNF
from repro.nf.vpn import VpnDecap, VpnEncap, keyed_digest


def make_packet(payload=b"secret", flags=TCP_ACK, fid=1, sport=1000):
    packet = Packet.from_five_tuple(
        FiveTuple.make("10.0.0.1", "10.0.0.2", sport, 80), payload=payload, tcp_flags=flags
    )
    packet.metadata["fid"] = fid
    return packet


class TestVpn:
    def test_encap_pushes_ah(self):
        encap = VpnEncap("enc", spi=0xABC)
        packet = make_packet()
        encap.process(packet, NullInstrumentationAPI())
        assert len(packet.encaps) == 1
        assert packet.encaps[0].spi == 0xABC
        assert encap.encapsulated == 1

    def test_encap_authenticates_payload(self):
        encap = VpnEncap("enc", key=0x1234)
        packet = make_packet(payload=b"hello")
        encap.process(packet, NullInstrumentationAPI())
        assert packet.encaps[0].icv == keyed_digest(0x1234, b"hello")

    def test_decap_strips_ah(self):
        encap = VpnEncap("enc", key=7)
        decap = VpnDecap("dec", key=7)
        packet = make_packet()
        encap.process(packet, NullInstrumentationAPI())
        decap.process(packet, NullInstrumentationAPI())
        assert not packet.encaps
        assert decap.decapsulated == 1
        assert decap.verification_failures == 0

    def test_decap_detects_wrong_key(self):
        encap = VpnEncap("enc", key=7)
        decap = VpnDecap("dec", key=8)
        packet = make_packet()
        encap.process(packet, NullInstrumentationAPI())
        decap.process(packet, NullInstrumentationAPI())
        assert decap.verification_failures == 1

    def test_decap_without_ah_forwards(self):
        decap = VpnDecap("dec")
        packet = make_packet()
        decap.process(packet, NullInstrumentationAPI())
        assert decap.decapsulated == 0
        assert not packet.dropped

    def test_digest_deterministic_and_keyed(self):
        assert keyed_digest(1, b"x") == keyed_digest(1, b"x")
        assert keyed_digest(1, b"x") != keyed_digest(2, b"x")
        assert keyed_digest(1, b"x") != keyed_digest(1, b"y")


class TestDosPrevention:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DosPrevention(threshold=0)
        with pytest.raises(ValueError):
            DosPrevention(mode="bananas")

    def test_syn_mode_counts_only_syns(self):
        dos = DosPrevention("dos", threshold=100, mode="syn")
        key = make_packet().five_tuple()
        dos.process(make_packet(flags=TCP_SYN), NullInstrumentationAPI())
        dos.process(make_packet(flags=TCP_ACK), NullInstrumentationAPI())
        assert dos.counters[key] == 1

    def test_packet_mode_counts_everything(self):
        dos = DosPrevention("dos", threshold=100, mode="packets")
        key = make_packet().five_tuple()
        for __ in range(3):
            dos.process(make_packet(), NullInstrumentationAPI())
        assert dos.counters[key] == 3

    def test_drops_over_threshold(self):
        # Check-then-count: packets 1..threshold+1 pass (the counter must
        # *exceed* the threshold before the pre-check drops), then drop.
        dos = DosPrevention("dos", threshold=2, mode="packets")
        results = []
        for __ in range(6):
            packet = make_packet()
            dos.process(packet, NullInstrumentationAPI())
            results.append(packet.dropped)
        assert results == [False, False, False, True, True, True]
        assert dos.blocked_flows[make_packet().five_tuple()] == 3

    def test_flows_counted_independently(self):
        dos = DosPrevention("dos", threshold=2, mode="packets")
        for sport in (1000, 2000):
            for __ in range(2):
                dos.process(make_packet(sport=sport), NullInstrumentationAPI())
        assert not dos.blocked_flows

    def test_exceeded_condition(self):
        dos = DosPrevention("dos", threshold=2, mode="packets")
        key = make_packet().five_tuple()
        assert not dos.exceeded(key)
        dos.counters[key] = 3
        assert dos.exceeded(key)

    def test_reset(self):
        dos = DosPrevention("dos", threshold=1, mode="packets")
        for __ in range(3):
            dos.process(make_packet(), NullInstrumentationAPI())
        dos.reset()
        assert not dos.counters
        assert not dos.blocked_flows


class TestSyntheticNF:
    def test_default_records_read_sf(self):
        nf = SyntheticNF("s")
        packet = make_packet()
        nf.process(packet, NullInstrumentationAPI())
        assert nf.sf_invocations == 1

    def test_no_sf_mode(self):
        nf = SyntheticNF("s", sf_payload_class=None)
        nf.process(make_packet(), NullInstrumentationAPI())
        assert nf.sf_invocations == 0

    def test_modify_action_applied(self):
        nf = SyntheticNF("s", action=Modify.set(dst_port=4444), sf_payload_class=None)
        packet = make_packet()
        nf.process(packet, NullInstrumentationAPI())
        assert packet.l4.dst_port == 4444

    def test_write_class_transforms_payload(self):
        nf = SyntheticNF("s", sf_payload_class=PayloadClass.WRITE)
        packet = make_packet(payload=b"\x00\x01")
        nf.process(packet, NullInstrumentationAPI())
        assert packet.payload == b"\x01\x02"
        assert nf.payload_writes == 1

    def test_write_wraps_at_255(self):
        nf = SyntheticNF("s", sf_payload_class=PayloadClass.WRITE)
        packet = make_packet(payload=b"\xff")
        nf.process(packet, NullInstrumentationAPI())
        assert packet.payload == b"\x00"

    def test_work_cycles_charged(self):
        from repro.platform.costs import CostModel, CycleMeter

        nf = SyntheticNF("s", sf_work_cycles=555.0)
        meter = CycleMeter()
        nf.meter = meter
        nf.process(make_packet(), NullInstrumentationAPI())
        assert meter.direct_cycles == 555.0

    def test_payload_scan_mode(self):
        from repro.platform.costs import CycleMeter, Operation

        nf = SyntheticNF("s", sf_scans_payload=True)
        meter = CycleMeter()
        nf.meter = meter
        nf.process(make_packet(payload=b"x" * 32), NullInstrumentationAPI())
        assert meter.count(Operation.PAYLOAD_BYTE_SCAN) == 32
