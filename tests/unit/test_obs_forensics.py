"""Unit tests for tail-latency forensics (repro.obs.forensics).

The load-bearing claim is *exactness*: every decomposed packet's
components reproduce its latency under IEEE float equality in the
canonical order ``((service + transfer) + stall) + queue`` — including
the round-half-even midpoint inputs where no exact residual exists and
the decomposition must fall back to a queue-only split rather than
break the invariant.
"""

import json

import pytest

from repro.core.framework import SpeedyBox
from repro.nf import IPFilter
from repro.obs import AuditLog
from repro.obs.forensics import (
    COMPONENTS,
    FlightRecorder,
    ForensicsEngine,
    RegimeShiftDetector,
    StallCharge,
    TailRecord,
    build_timeline,
    components_sum,
    decompose,
    emit_recovery_regime_shift,
    exact_residual,
    load_forensics_jsonl,
    render_explain,
    render_forensics,
    split_plan_total,
)
from repro.platform import BessPlatform


class TestExactResidual:
    def test_naive_difference_is_not_exact_in_general(self):
        # The motivating example: (a - b) + b != a.
        a, b = 2.0**52 + 3.0, 0.5
        assert (a - b) + b != a

    def test_walk_finds_exact_residual_when_one_exists(self):
        a, b = 2.0**52 + 3.0, 1.0
        q = exact_residual(a, b)
        assert b + q == a

    def test_midpoint_has_no_exact_residual_and_returns_naive(self):
        # Both neighbouring q values tie-to-even onto an even sum while
        # the target is odd — the walk gives up and returns a - b.
        a, b = 2.0**52 + 3.0, 0.5
        q = exact_residual(a, b)
        assert q == a - b
        assert b + q != a  # no exact residual exists at this midpoint

    def test_trivial_cases(self):
        assert exact_residual(0.0, 0.0) == 0.0
        assert exact_residual(100.0, 40.0) == 60.0


class TestSplitPlanTotal:
    def test_split_is_exact(self):
        service, transfer = split_plan_total(1234.5, 200.25)
        assert service + transfer == 1234.5
        assert transfer == 200.25

    def test_estimate_clamped_to_plan_total(self):
        service, transfer = split_plan_total(100.0, 1e9)
        assert transfer <= 100.0
        assert service + transfer == 100.0
        service, transfer = split_plan_total(100.0, -5.0)
        assert transfer == 0.0
        assert service == 100.0

    def test_zero_plan_collapses(self):
        assert split_plan_total(0.0, 10.0) == (0.0, 0.0)


class TestDecompose:
    def test_components_sum_exactly(self):
        queue, service, transfer, stall = decompose(1000.0, 321.7, 45.3, 12.0)
        assert components_sum(queue, service, transfer, stall) == 1000.0

    def test_midpoint_falls_back_to_queue_only(self):
        # No exact residual exists for these inputs; the invariant must
        # survive via the queue-only fallback.
        latency = 2.0**52 + 3.0
        queue, service, transfer, stall = decompose(latency, 0.5, 0.0)
        assert (queue, service, transfer, stall) == (latency, 0.0, 0.0, 0.0)
        assert components_sum(queue, service, transfer, stall) == latency

    def test_extreme_magnitude_gap_still_exact(self):
        queue, service, transfer, stall = decompose(2.0**52 + 3.0, 2.0**52, 1.0)
        assert components_sum(queue, service, transfer, stall) == 2.0**52 + 3.0


class TestRecords:
    def test_tail_record_dominant_and_tiebreak(self):
        record = TailRecord(0, 100.0, 60.0, 30.0, 5.0, 5.0)
        assert record.dominant == "queue"
        # Exact tie between service and queue: canonical order wins.
        tie = TailRecord(0, 100.0, 50.0, 50.0, 0.0, 0.0)
        assert tie.dominant == "service"
        assert COMPONENTS.index("service") < COMPONENTS.index("queue")

    def test_stall_charge_latency_is_canonical_sum(self):
        charge = StallCharge("r0", "flow", 10.0, stall_ns=900.0, service_ns=100.0)
        assert charge.latency_ns == components_sum(0.0, 100.0, 0.0, 900.0)
        summary = charge.summary()
        assert summary["dominant"] == "stall"
        assert summary["type"] == "stall"


class TestFlightRecorder:
    def test_ring_is_bounded_and_evicts_oldest(self):
        recorder = FlightRecorder(worst_k=2, capacity=3)
        for wid in range(5):
            recorder.record_window({"window": wid}, [])
        assert recorder.windows_recorded == 5
        assert recorder.windows_evicted == 2
        assert [summary["window"] for summary, __ in recorder.entries] == [2, 3, 4]

    def test_worst_overall_sorted_latency_desc(self):
        recorder = FlightRecorder(worst_k=2, capacity=4)
        mk = lambda i, lat: TailRecord(i, lat, lat, 0.0, 0.0, 0.0)
        recorder.record_window({"window": 0}, [mk(0, 5.0), mk(1, 9.0)])
        recorder.record_window({"window": 1}, [mk(2, 7.0)])
        assert [r.latency_ns for r in recorder.worst_overall()] == [9.0, 7.0, 5.0]
        assert [r.latency_ns for r in recorder.worst_overall(top=1)] == [9.0]

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            FlightRecorder(worst_k=0)
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestRegimeShiftDetector:
    @staticmethod
    def window(index, p50, p99, packets=100, buffered=0):
        return {"index": index, "p50_ns": p50, "p99_ns": p99,
                "packets": packets, "buffered": buffered}

    def test_fires_on_p99_jump_with_audit_event(self):
        audit = AuditLog()
        detector = RegimeShiftDetector(audit=audit, factor=2.0, min_baseline=2)
        for i in range(4):
            detector.observe_summary(self.window(i, 100.0, 150.0))
        assert detector.shifts == []
        detector.observe_summary(
            self.window(4, 100.0, 400.0), components={"queue": 9.0, "stall": 1.0}
        )
        assert len(detector.shifts) == 1
        shift = detector.shifts[0]
        assert shift["metric"] == "p99"
        assert shift["component"] == "queue"
        events = audit.events("latency_regime_shift")
        assert len(events) == 1
        assert events[0]["current"] == 400.0

    def test_needs_min_baseline_before_firing(self):
        detector = RegimeShiftDetector(min_baseline=3)
        detector.observe_summary(self.window(0, 100.0, 100.0))
        detector.observe_summary(self.window(1, 900.0, 900.0))  # only 1 sample
        assert detector.shifts == []

    def test_buffered_fraction_fires_stall_component_once_per_regime(self):
        detector = RegimeShiftDetector(buffered_fraction=0.05)
        detector.observe_summary(self.window(0, 100.0, 100.0, buffered=10))
        detector.observe_summary(self.window(1, 100.0, 100.0, buffered=20))
        stall_shifts = [s for s in detector.shifts if s["component"] == "stall"]
        assert len(stall_shifts) == 1  # latched until the surge clears
        detector.observe_summary(self.window(2, 100.0, 100.0, buffered=0))
        detector.observe_summary(self.window(3, 100.0, 100.0, buffered=50))
        stall_shifts = [s for s in detector.shifts if s["component"] == "stall"]
        assert len(stall_shifts) == 2

    def test_unknown_component_without_sums(self):
        assert RegimeShiftDetector._moved_component(None) == "unknown"
        assert RegimeShiftDetector._moved_component({"stall": 5.0}) == "stall"

    def test_emit_recovery_regime_shift_names_stall(self):
        audit = AuditLog()
        emit_recovery_regime_shift(audit, 2, [100.0, 300.0, 200.0])
        event = audit.last("latency_regime_shift")
        assert event["component"] == "stall"
        assert event["current"] == 200.0  # median
        assert event["stall_max_ns"] == 300.0
        emit_recovery_regime_shift(audit, 2, [])  # no stalls, no event
        assert len(audit.events("latency_regime_shift")) == 1

    def test_rejects_factor_at_or_below_one(self):
        with pytest.raises(ValueError):
            RegimeShiftDetector(factor=1.0)


def run_engine(engine, packets=96):
    platform = BessPlatform(SpeedyBox([IPFilter("fw0")]), forensics=engine)
    from repro.traffic import FlowSpec, TrafficGenerator

    stream = TrafficGenerator(
        [FlowSpec.tcp(f"10.0.0.{i}", "10.0.1.1", 1000 + i, 80, packets=8)
         for i in range(packets // 8)],
        interleave="round_robin",
    ).packets()
    result = platform.run_load(stream)
    return result


class TestForensicsEngine:
    def test_disabled_engine_observes_nothing(self):
        engine = ForensicsEngine(enabled=False)
        run_engine(engine)
        assert engine.packets == 0
        assert engine.windows == []
        assert engine.runs == 0

    def test_absent_engine_keeps_platform_results_identical(self):
        bare = run_engine(None)
        observed = run_engine(ForensicsEngine(sample_every=1))
        assert bare.latencies_ns == observed.latencies_ns
        assert bare.makespan_ns == observed.makespan_ns

    def test_record_all_components_sum_exactly_per_packet(self):
        engine = ForensicsEngine(record_all=True, sample_every=1)
        run_engine(engine)
        assert engine.records
        for record in engine.records:
            assert components_sum(
                record.queue_ns, record.service_ns,
                record.transfer_ns, record.stall_ns,
            ) == record.latency_ns

    def test_windows_and_worst_k_populate(self):
        engine = ForensicsEngine(worst_k=3, window_packets=16, sample_every=1)
        run_engine(engine, packets=64)
        assert engine.packets == 64
        assert len(engine.windows) == 4
        for __, worst in engine.recorder.entries:
            assert 1 <= len(worst) <= 3
        top = engine.recorder.worst_overall(top=3)
        assert all(a.latency_ns >= b.latency_ns for a, b in zip(top, top[1:]))

    def test_note_stall_accumulates(self):
        engine = ForensicsEngine()
        engine.note_stall(StallCharge("r1", "f", 0.0, stall_ns=500.0, service_ns=20.0))
        assert engine.totals["stall"] == 500.0
        assert engine.summary()["stall_records"] == 1
        disabled = ForensicsEngine(enabled=False)
        disabled.note_stall(
            StallCharge("r1", "f", 0.0, stall_ns=500.0, service_ns=20.0)
        )
        assert disabled.stall_records == []

    def test_reset_clears_state(self):
        engine = ForensicsEngine(sample_every=1)
        run_engine(engine)
        engine.note_stall(StallCharge("r", "f", 0.0, 1.0, 1.0))
        engine.reset()
        assert engine.packets == engine.sampled == engine.runs == 0
        assert engine.windows == [] and engine.stall_records == []
        assert all(v == 0.0 for v in engine.totals.values())

    def test_jsonl_round_trip(self, tmp_path):
        engine = ForensicsEngine(sample_every=1, window_packets=32)
        run_engine(engine)
        engine.note_stall(StallCharge("r0", "flow", 5.0, 900.0, 100.0))
        path = tmp_path / "forensics.jsonl"
        count = engine.write_jsonl(path)
        assert count == len(engine.rows())
        data = load_forensics_jsonl(path)
        assert data["summary"]["packets"] == engine.packets
        assert len(data["windows"]) == len(engine.windows)
        assert len(data["stalls"]) == 1
        assert data["stalls"][0]["dominant"] == "stall"

    def test_load_rejects_empty_and_truncated(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_forensics_jsonl(empty)
        truncated = tmp_path / "trunc.jsonl"
        truncated.write_text(
            json.dumps({"type": "summary"}) + "\n" + '{"type": "wind'
        )
        with pytest.raises(ValueError, match="line 2"):
            load_forensics_jsonl(truncated)


class TestTimelineAndRendering:
    def test_timeline_orders_and_normalizes(self):
        audit = [
            {"seq": 1, "kind": "ft_kill", "replica": 0},
            {"seq": 5, "kind": "ft_failover_complete", "replica": 0},
        ]
        forensics = {
            "stalls": [{"arrival_ns": 3.0, "replica": 0, "flow": "f",
                        "stall_ns": 7.0, "cause": "failover"}],
            "worst": [{"index": 2, "replica": 0, "fid": 9,
                       "latency_ns": 10.0, "dominant": "stall", "window": 0}],
        }
        windows = [{"start_ns": 2.0, "index": 0, "packets": 4,
                    "buffered": 1, "p99_ns": 9.0}]
        timeline = build_timeline(audit=audit, windows=windows, forensics=forensics)
        # Equal-time tie at t=2: the window (priority 1) precedes the
        # forensic worst-packet record (priority 3).
        assert [e["kind"] for e in timeline] == [
            "ft_kill", "telemetry_window", "worst_packet",
            "stall_charge", "ft_failover_complete",
        ]
        assert all({"t", "source", "kind", "replica", "flow", "detail"} <= set(e)
                   for e in timeline)

    def test_equal_time_orders_audit_before_forensics(self):
        audit = [{"seq": 3, "kind": "ft_kill", "replica": 0}]
        forensics = {"stalls": [{"arrival_ns": 3.0, "replica": 0, "flow": "f"}]}
        timeline = build_timeline(audit=audit, forensics=forensics)
        assert [e["source"] for e in timeline] == ["audit", "forensics"]

    def test_render_forensics_shows_attribution_and_worst(self, tmp_path):
        engine = ForensicsEngine(sample_every=1, window_packets=32)
        run_engine(engine)
        path = tmp_path / "f.jsonl"
        engine.write_jsonl(path)
        text = render_forensics(load_forensics_jsonl(path), top=3)
        assert "component attribution" in text
        for name in COMPONENTS:
            assert name in text
        assert "worst 3 packets" in text

    def test_render_explain_includes_stalls_shifts_and_timeline(self, tmp_path):
        audit = AuditLog()
        engine = ForensicsEngine(sample_every=1, window_packets=32, audit=audit)
        run_engine(engine)
        engine.note_stall(StallCharge("r0", "flow", 5.0, 900.0, 100.0))
        emit_recovery_regime_shift(audit, "r0", [900.0])
        audit.emit("ft_failover_complete", replica="r0")
        path = tmp_path / "f.jsonl"
        engine.write_jsonl(path)
        text = render_explain(load_forensics_jsonl(path), audit=audit.events())
        assert "stall charges (1 packets)" in text
        assert "stall-dominant  : 1/1" in text
        assert "regime shifts" in text
        assert "correlated causes" in text
        assert "causal timeline (tail)" in text
