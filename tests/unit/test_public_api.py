"""API-surface guard: everything exported exists, imports cleanly, and the
layering rules hold."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.net",
    "repro.nf",
    "repro.nf.snort",
    "repro.platform",
    "repro.sim",
    "repro.stats",
    "repro.traffic",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        exported = getattr(module, "__all__", [])
        assert exported, f"{package} must declare __all__"
        for name in exported:
            assert hasattr(module, name) or getattr(module, name, None) is not None, (
                f"{package}.__all__ lists {name!r} but it does not resolve"
            )

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_is_sorted(self, package):
        module = importlib.import_module(package)
        exported = list(getattr(module, "__all__", []))
        assert exported == sorted(exported), f"{package}.__all__ not sorted"

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_top_level_convenience_imports(self):
        from repro import BessPlatform, CostModel, OpenNetVMPlatform, ServiceChain, SpeedyBox

        assert all((BessPlatform, CostModel, OpenNetVMPlatform, ServiceChain, SpeedyBox))


class TestLayering:
    """The dependency discipline DESIGN.md implies."""

    def test_net_is_a_leaf_of_core(self):
        import repro.net.packet as packet_module

        source = open(packet_module.__file__).read()
        assert "repro.core" not in source
        assert "repro.platform" not in source
        assert "repro.nf" not in source

    def test_sim_depends_on_nothing_else(self):
        import repro.sim.engine, repro.sim.resources

        for module in (repro.sim.engine, repro.sim.resources):
            source = open(module.__file__).read()
            for forbidden in ("repro.net", "repro.core", "repro.nf", "repro.platform"):
                assert forbidden not in source, f"{module.__name__} imports {forbidden}"

    def test_costs_is_a_leaf(self):
        import repro.platform.costs as costs_module

        source = open(costs_module.__file__).read()
        for forbidden in ("repro.core", "repro.nf", "repro.sim", "repro.net"):
            assert forbidden not in source

    def test_every_paper_nf_exported(self):
        import repro.nf as nf

        for name in ("SnortIDS", "MaglevLoadBalancer", "IPFilter", "Monitor", "MazuNAT"):
            assert name in nf.__all__


class TestDocstringCoverage:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_public_classes_documented(self, package):
        module = importlib.import_module(package)
        assert module.__doc__, f"{package} lacks a module docstring"
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name, None)
            if isinstance(obj, type):
                assert obj.__doc__, f"{package}.{name} lacks a docstring"
