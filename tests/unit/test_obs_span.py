"""FlowSpanRecorder: sampling, capping, exact attribution, export."""

import pytest

from repro.core.framework import SpeedyBox
from repro.nf import IPFilter, MazuNAT, Monitor
from repro.obs import FlowSpanRecorder, PacketTracer, load_span_jsonl
from repro.platform.costs import CostModel
from repro.traffic import FlowSpec, TrafficGenerator


def make_packets(n=8, sport=1000):
    spec = FlowSpec.tcp("10.0.0.1", "20.0.0.1", sport, 80, packets=n)
    return TrafficGenerator([spec]).packets()


def record_run(recorder, chain=None, packets=None):
    runtime = SpeedyBox(chain or [MazuNAT("nat"), Monitor("mon")])
    reports = [runtime.process(p) for p in (packets or make_packets(8))]
    for report in reports:
        recorder.record(report)
    return reports


class TestSampling:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FlowSpanRecorder(every=0)
        with pytest.raises(ValueError):
            FlowSpanRecorder(max_spans_per_flow=0)
        FlowSpanRecorder(every=1, max_spans_per_flow=None)  # both edges ok

    def test_every_n_samples_the_kth_distinct_flow(self):
        recorder = FlowSpanRecorder(every=3)
        decisions = [recorder.wants(fid) for fid in (10, 20, 30, 40, 50, 60)]
        # Deterministic: flows ranked 0, 3 are sampled out of 6.
        assert decisions == [True, False, False, True, False, False]
        assert recorder.flows_seen == 6
        assert recorder.flows_sampled == 2
        # The decision is sticky per flow.
        assert recorder.wants(10) is True
        assert recorder.wants(20) is False
        assert recorder.flows_seen == 6

    def test_unsampled_flows_join_the_skip_probe(self):
        recorder = FlowSpanRecorder(every=2)
        recorder.wants(1)
        recorder.wants(2)
        assert 1 not in recorder.skip  # sampled
        assert recorder.skip.get(2) is True  # unsampled: one-probe veto

    def test_record_respects_sampling(self):
        recorder = FlowSpanRecorder(every=2)
        runtime = SpeedyBox([Monitor("mon")])
        for sport in (1000, 1001, 1002, 1003):
            for packet in make_packets(4, sport=sport):
                recorder.record(runtime.process(packet))
        assert recorder.flows_sampled == 2
        fids = {root["args"]["fid"] for root in recorder.roots()}
        assert len(fids) == 2


class TestCap:
    def test_cap_stops_recording_and_vetoes_the_flow(self):
        recorder = FlowSpanRecorder(every=1, max_spans_per_flow=3)
        record_run(recorder, packets=make_packets(8))
        assert recorder.packets_sampled == 3
        fid = recorder.roots()[0]["args"]["fid"]
        assert recorder.skip.get(fid) is True

    def test_none_cap_records_every_packet(self):
        recorder = FlowSpanRecorder(every=1, max_spans_per_flow=None)
        record_run(recorder, packets=make_packets(8))
        assert recorder.packets_sampled == 8


class TestAttribution:
    def test_child_cycles_partition_the_meter_exactly(self):
        """Per-span cycles sum to total_meter().cycles() — exact ==."""
        model = CostModel()
        recorder = FlowSpanRecorder(model=model, every=1, max_spans_per_flow=None)
        reports = record_run(
            recorder, chain=[MazuNAT("nat"), Monitor("mon"), IPFilter("fw")]
        )
        roots = recorder.roots()
        assert len(roots) == len(reports)
        for root, report in zip(roots, reports):
            assert root["args"]["cycles"] == report.total_meter().cycles(model)
        span_total = sum(
            r["args"]["cycles"] for r in recorder.records if r["depth"] == 1
        )
        run_total = sum(r.total_meter().cycles(model) for r in reports)
        assert span_total == run_total

    def test_children_carry_stage_labels_and_tile_the_root(self):
        recorder = FlowSpanRecorder(every=1, max_spans_per_flow=None)
        record_run(recorder, packets=make_packets(2))
        roots = recorder.roots()
        for root in roots:
            children = [
                r for r in recorder.records
                if r["depth"] == 1 and r["track"] == root["track"]
                and root["start_ns"] <= r["start_ns"] < root["start_ns"] + root["dur_ns"]
            ]
            assert children, "every packet span has stage children"
            # Children tile the root interval contiguously.
            cursor = root["start_ns"]
            for child in children:
                assert child["start_ns"] == cursor
                cursor += child["dur_ns"]
            assert cursor == root["start_ns"] + root["dur_ns"]
            assert all("stage" in c["args"] for c in children)

    def test_fast_path_spans_name_sf_batches(self):
        recorder = FlowSpanRecorder(every=1, max_spans_per_flow=None)
        record_run(recorder, chain=[Monitor("mon")], packets=make_packets(8))
        names = {r["name"] for r in recorder.records}
        assert "sf:mon" in names  # fast-path state-function batch
        assert "dispatch" in {r["args"].get("stage") for r in recorder.records
                              if r["depth"] == 1}

    def test_steady_template_reuse_is_observably_identical(self):
        def spans_of(**kwargs):
            recorder = FlowSpanRecorder(every=1, max_spans_per_flow=None, **kwargs)
            record_run(recorder, chain=[Monitor("m")], packets=make_packets(12))
            return [
                (r["name"], r["args"].get("stage"), r["args"].get("cycles"))
                for r in recorder.records
            ]

        first = spans_of()
        assert first == spans_of()  # deterministic run to run


class TestLoadedAnnotation:
    def test_annotate_loaded_stamps_sim_times(self):
        recorder = FlowSpanRecorder(every=1, max_spans_per_flow=None)
        runtime = SpeedyBox([Monitor("mon")])
        recorder.begin_run()
        for index, packet in enumerate(make_packets(4)):
            recorder.record(runtime.process(packet), index)
        arrival_at = [100.0, 200.0, 300.0, 400.0]
        completions = [(0, 150.0), (1, 260.0), (3, 480.0)]
        recorder.annotate_loaded(arrival_at, completions)
        roots = recorder.roots()
        assert roots[0]["args"]["sim_latency_ns"] == 50.0
        assert roots[1]["args"]["sim_latency_ns"] == 60.0
        assert "sim_finish_ns" not in roots[2]["args"]  # dropped mid-run
        assert roots[3]["args"]["sim_latency_ns"] == 80.0

    def test_begin_run_forgets_previous_indices(self):
        recorder = FlowSpanRecorder(every=1, max_spans_per_flow=None)
        runtime = SpeedyBox([Monitor("mon")])
        recorder.begin_run()
        recorder.record(runtime.process(make_packets(1)[0]), 0)
        recorder.begin_run()
        recorder.annotate_loaded([999.0], [(0, 1000.0)])
        assert "sim_arrival_ns" not in recorder.roots()[0]["args"]


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        recorder = FlowSpanRecorder(every=1, max_spans_per_flow=None)
        record_run(recorder, packets=make_packets(3))
        path = tmp_path / "spans.jsonl"
        assert recorder.write_jsonl(path) == len(recorder.records)
        assert load_span_jsonl(path) == recorder.records

    def test_replay_into_tracer(self):
        recorder = FlowSpanRecorder(every=1, max_spans_per_flow=None)
        record_run(recorder, packets=make_packets(3))
        tracer = PacketTracer()
        assert recorder.replay_into(tracer) == len(recorder.records)
        assert any(track.startswith("flow:") for track in tracer.tracks())

    def test_reset_and_repr(self):
        recorder = FlowSpanRecorder(every=1)
        record_run(recorder, packets=make_packets(2))
        assert len(recorder) > 0
        recorder.reset()
        assert len(recorder) == 0
        assert recorder.summary() == {
            "every": 1, "flows_seen": 0, "flows_sampled": 0,
            "packets_sampled": 0, "spans": 0,
        }
        assert "1-in-1" in repr(recorder)
