"""The transactional shared-state store: commit/abort, idempotence, pools.

The store's contract is what makes cross-replica state safe: optimistic
per-key validation catches interleaved writers, remembered transaction
ids make recovery replay commit exactly once, and the two chain clients
(NAT port pool, monitor aggregate) inherit both properties.
"""

import pytest

from repro.ft import (
    PortPoolExhausted,
    SharedAggregate,
    SharedPortPool,
    TransactionalStore,
    TxnConflict,
)
from repro.net.flow import FiveTuple
from repro.obs.audit import AuditLog


def tcp_flow(i: int) -> FiveTuple:
    return FiveTuple(
        src_ip=0x0A000000 + i, dst_ip=0x63020001, src_port=6000 + i,
        dst_port=80, protocol=6,
    )


class TestTransactionalStore:
    def test_commit_applies_writes_and_bumps_versions(self):
        store = TransactionalStore()
        txn = store.transaction()
        txn.set("a", 1)
        txn.set("b", 2)
        txn.commit()
        assert store.get("a") == 1 and store.get("b") == 2
        assert store.version("a") == 1 and store.version("b") == 1
        assert store.commits == 1

    def test_read_validation_aborts_on_concurrent_write(self):
        store = TransactionalStore()
        store.run(lambda t: t.set("k", 0))
        txn = store.transaction()
        assert txn.get("k") == 0
        # another writer sneaks in between read and commit
        store.run(lambda t: t.set("k", 99))
        txn.set("k", 1)
        with pytest.raises(TxnConflict):
            txn.commit()
        assert store.get("k") == 99
        assert store.aborts == 1

    def test_run_retries_through_conflicts(self):
        store = TransactionalStore()
        store.run(lambda t: t.set("k", 0))
        attempts = []

        def body(txn):
            value = txn.get("k")
            if not attempts:
                # first attempt: invalidate our own read before commit
                store.run(lambda t: t.set("k", value + 10))
            attempts.append(value)
            txn.set("k", txn.get("k") + 1)
            return txn.get("k")

        result = store.run(body)
        assert len(attempts) == 2  # aborted once, then succeeded
        assert result == store.get("k") == 11

    def test_txn_id_dedupes_replay(self):
        store = TransactionalStore()

        def increment(txn):
            txn.set("count", txn.get("count", 0) + 1)
            return txn.get("count")

        first = store.run(increment, txn_id="pkt-1")
        again = store.run(increment, txn_id="pkt-1")
        assert first == again == 1
        assert store.get("count") == 1
        assert store.replays_deduped == 1
        assert store.applied("pkt-1") and store.result_of("pkt-1") == 1

    def test_delete_round_trips_through_staging(self):
        store = TransactionalStore()
        store.run(lambda t: t.set("k", 5))
        txn = store.transaction()
        txn.delete("k")
        assert txn.get("k") is None  # staged delete visible to the txn
        txn.commit()
        assert store.get("k") is None
        assert store.version("k") == 2  # delete still bumps the version

    def test_aborts_are_audited_commits_gated(self):
        audit = AuditLog()
        store = TransactionalStore(audit=audit, audit_commits=False)
        store.run(lambda t: t.set("k", 0))
        txn = store.transaction()
        txn.get("k")
        store.run(lambda t: t.set("k", 1))
        with pytest.raises(TxnConflict):
            txn.commit()
        kinds = [event["kind"] for event in audit.events()]
        assert "txn_abort" in kinds and "txn_commit" not in kinds
        # opt-in commit auditing
        store.run(lambda t: t.set("j", 1), audit_commit=True)
        assert audit.last("txn_commit") is not None


class TestSharedPortPool:
    def test_sequential_allocation_matches_private_allocator(self):
        pool = SharedPortPool(TransactionalStore(), port_range=(20000, 60000))
        ports = [pool.acquire(tcp_flow(i)) for i in range(5)]
        assert ports == [20000, 20001, 20002, 20003, 20004]

    def test_acquire_is_idempotent_per_flow(self):
        pool = SharedPortPool(TransactionalStore(), port_range=(20000, 60000))
        flow = tcp_flow(1)
        assert pool.acquire(flow) == pool.acquire(flow) == 20000
        assert pool.acquire(tcp_flow(2)) == 20001  # no hole, no dupe

    def test_no_double_allocation_across_clients(self):
        # Two pool handles over one store model two replicas' NATs.
        store = TransactionalStore()
        a = SharedPortPool(store, port_range=(20000, 60000))
        b = SharedPortPool(store, port_range=(20000, 60000))
        seen = set()
        for i in range(16):
            port = (a if i % 2 else b).acquire(tcp_flow(i))
            assert port not in seen
            seen.add(port)

    def test_release_reuses_in_order(self):
        pool = SharedPortPool(TransactionalStore(), port_range=(20000, 60000))
        for i in range(3):
            pool.acquire(tcp_flow(i))
        assert pool.release(tcp_flow(0)) is True
        assert pool.release(tcp_flow(0)) is False  # idempotent
        assert pool.release(tcp_flow(2)) is True
        # freed ports come back FIFO, before the sequential cursor
        assert pool.acquire(tcp_flow(10)) == 20000
        assert pool.acquire(tcp_flow(11)) == 20002
        assert pool.acquire(tcp_flow(12)) == 20003

    def test_exhaustion(self):
        pool = SharedPortPool(TransactionalStore(), port_range=(20000, 20001))
        pool.acquire(tcp_flow(0))
        pool.acquire(tcp_flow(1))
        with pytest.raises(PortPoolExhausted):
            pool.acquire(tcp_flow(2))

    def test_ownership_introspection(self):
        pool = SharedPortPool(TransactionalStore(), port_range=(20000, 60000))
        flow = tcp_flow(3)
        port = pool.acquire(flow)
        assert pool.port_of(flow) == port
        assert pool.owner_of(port) == flow
        assert pool.allocated() == {flow: port}


class TestSharedAggregate:
    def test_counts_and_dedupes(self):
        store = TransactionalStore()
        agg = SharedAggregate(store, name="mon")
        assert agg.add(("f1", 1), packets=1, bytes_=100) is True
        assert agg.add(("f1", 2), packets=1, bytes_=50) is True
        # recovery replays packet 1 of flow f1: same id, no double count
        assert agg.add(("f1", 1), packets=1, bytes_=100) is False
        assert agg.packets == 2 and agg.bytes == 150
        assert store.replays_deduped == 1

    def test_independent_aggregates_share_one_store(self):
        store = TransactionalStore()
        a = SharedAggregate(store, name="a")
        b = SharedAggregate(store, name="b")
        a.add(("f", 1))
        b.add(("f", 1))  # same inner id, different aggregate: both count
        assert a.packets == 1 and b.packets == 1
