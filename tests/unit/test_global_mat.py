"""Unit tests for the Global MAT (repro.core.global_mat)."""

from repro.core.actions import Drop, Forward, Modify
from repro.core.global_mat import GlobalMAT
from repro.core.local_mat import LocalMAT
from repro.core.state_function import PayloadClass, StateFunction


def local_rule(nf_name, fid, actions=(), sf_classes=()):
    mat = LocalMAT(nf_name)
    for action in actions:
        mat.add_header_action(fid, action)
    for payload_class in sf_classes:
        mat.add_state_function(
            fid, StateFunction(lambda p: None, payload_class, nf_name=nf_name)
        )
    return mat.rule_for(fid) or mat.begin_recording(fid)


class TestBuildRule:
    def test_consolidates_actions_across_nfs(self):
        gmat = GlobalMAT()
        rules = [
            ("nat", local_rule("nat", 1, [Modify.set(src_port=9999)])),
            ("lb", local_rule("lb", 1, [Modify.set(dst_port=8080)])),
        ]
        rule = gmat.build_rule(1, rules)
        assert rule.consolidated.merged_modify_count == 2
        assert rule.nf_names == ("nat", "lb")
        assert len(rule.raw_actions) == 2

    def test_none_rules_skipped(self):
        gmat = GlobalMAT()
        rule = gmat.build_rule(1, [("a", None), ("b", local_rule("b", 1, [Forward()]))])
        assert rule.consolidated.is_noop

    def test_parallel_schedule_by_default(self):
        gmat = GlobalMAT(enable_parallelism=True)
        rules = [
            ("s1", local_rule("s1", 1, [Forward()], [PayloadClass.READ])),
            ("s2", local_rule("s2", 1, [Forward()], [PayloadClass.READ])),
        ]
        rule = gmat.build_rule(1, rules)
        assert rule.schedule.wave_count == 1
        assert rule.schedule.max_wave_width == 2

    def test_sequential_schedule_when_parallelism_disabled(self):
        gmat = GlobalMAT(enable_parallelism=False)
        rules = [
            ("s1", local_rule("s1", 1, [Forward()], [PayloadClass.READ])),
            ("s2", local_rule("s2", 1, [Forward()], [PayloadClass.READ])),
        ]
        rule = gmat.build_rule(1, rules)
        assert rule.schedule.wave_count == 2
        assert rule.schedule.max_wave_width == 1


class TestDropTruncation:
    def test_sfs_after_dropper_discarded(self):
        gmat = GlobalMAT()
        rules = [
            ("mon", local_rule("mon", 1, [Forward()], [PayloadClass.IGNORE])),
            ("fw", local_rule("fw", 1, [Drop()])),
            ("ids", local_rule("ids", 1, [Forward()], [PayloadClass.READ])),
        ]
        rule = gmat.build_rule(1, rules)
        assert rule.consolidated.drop
        names = [batch.nf_name for batch in rule.schedule.all_batches()]
        assert names == ["mon"]  # the IDS after the firewall never saw it

    def test_dropper_own_sfs_kept(self):
        gmat = GlobalMAT()
        rules = [
            ("dos", local_rule("dos", 1, [Drop()], [PayloadClass.IGNORE])),
        ]
        rule = gmat.build_rule(1, rules)
        names = [batch.nf_name for batch in rule.schedule.all_batches()]
        assert names == ["dos"]

    def test_pre_drop_consolidation_recorded(self):
        gmat = GlobalMAT()
        rules = [
            ("nat", local_rule("nat", 1, [Modify.set(src_port=7777)], [])),
            ("fw", local_rule("fw", 1, [Drop()])),
            ("tail", local_rule("tail", 1, [Modify.set(dst_port=1)])),
        ]
        rule = gmat.build_rule(1, rules)
        assert rule.consolidated.drop
        assert rule.dropper == "fw"
        # pre_drop holds only the upstream rewrite, never the post-drop one.
        assert rule.pre_drop is not None
        fields = {field.value for field in rule.pre_drop.field_ops}
        assert fields == {"src_port"}

    def test_non_drop_rule_has_no_pre_drop(self):
        gmat = GlobalMAT()
        rule = gmat.build_rule(1, [("a", local_rule("a", 1, [Forward()]))])
        assert rule.pre_drop is None
        assert rule.dropper is None

    def test_droppers_own_pre_drop_actions_included(self):
        gmat = GlobalMAT()
        rules = [
            ("markdrop", local_rule("markdrop", 1, [Modify.set(dst_port=5), Drop()])),
        ]
        rule = gmat.build_rule(1, rules)
        assert rule.dropper == "markdrop"
        assert {field.value for field in rule.pre_drop.field_ops} == {"dst_port"}


class TestLifecycle:
    def test_lookup_counts_hits(self):
        gmat = GlobalMAT()
        gmat.build_rule(1, [("a", local_rule("a", 1, [Forward()]))])
        gmat.lookup(1)
        gmat.lookup(1)
        assert gmat.peek(1).hits == 2

    def test_lookup_miss_returns_none(self):
        assert GlobalMAT().lookup(99) is None

    def test_reconsolidation_bumps_version(self):
        gmat = GlobalMAT()
        gmat.build_rule(1, [("a", local_rule("a", 1, [Forward()]))])
        rule = gmat.build_rule(1, [("a", local_rule("a", 1, [Drop()]))])
        assert rule.version == 2
        assert gmat.reconsolidations == 1

    def test_delete_flow(self):
        gmat = GlobalMAT()
        gmat.build_rule(1, [("a", local_rule("a", 1, [Forward()]))])
        assert gmat.delete_flow(1)
        assert 1 not in gmat
        assert not gmat.delete_flow(1)

    def test_flows_listing(self):
        gmat = GlobalMAT()
        gmat.build_rule(1, [("a", local_rule("a", 1, [Forward()]))])
        gmat.build_rule(2, [("a", local_rule("a", 2, [Forward()]))])
        assert set(gmat.flows()) == {1, 2}
