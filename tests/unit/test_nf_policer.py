"""Unit + equivalence tests for the token-bucket policer (repro.nf.policer)."""

import pytest

from repro.core.framework import ServiceChain, SpeedyBox
from repro.core.local_mat import NullInstrumentationAPI
from repro.net import FiveTuple, Packet
from repro.nf.policer import TokenBucketPolicer
from repro.traffic.generator import clone_packets


def make_packet(timestamp_ns=0.0, sport=1000):
    packet = Packet.from_five_tuple(
        FiveTuple.make("10.0.0.1", "10.0.0.2", sport, 80),
        payload=b"x",
        timestamp_ns=timestamp_ns,
    )
    packet.metadata["fid"] = 1
    return packet


def burst(count, start_ns=0.0, gap_ns=1000.0, sport=1000):
    return [make_packet(start_ns + i * gap_ns, sport=sport) for i in range(count)]


class TestBucketMechanics:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TokenBucketPolicer(rate_pps=0)
        with pytest.raises(ValueError):
            TokenBucketPolicer(burst=0.5)

    def test_burst_passes_then_drops(self):
        # 3-token bucket, negligible refill at this timescale.
        policer = TokenBucketPolicer(rate_pps=1.0, burst=3)
        api = NullInstrumentationAPI()
        verdicts = []
        for packet in burst(6, gap_ns=10.0):
            policer.process(packet, api)
            verdicts.append(packet.dropped)
        assert verdicts == [False, False, False, True, True, True]
        assert policer.policed == 3

    def test_bucket_refills_over_time(self):
        # 1000 pps = one token per ms.  Verdicts use check-then-update
        # ordering: a refill becomes visible from the *next* packet (the
        # same one-packet lag the fast path's event pre-check has).
        policer = TokenBucketPolicer(rate_pps=1000.0, burst=1)
        api = NullInstrumentationAPI()
        first = make_packet(0.0)
        policer.process(first, api)
        assert not first.dropped
        # 0.1 ms later: bucket empty -> drop.
        starved = make_packet(100_000.0)
        policer.process(starved, api)
        assert starved.dropped
        # 2 ms later: the bucket HAS refilled, but the verdict still sees
        # the pre-refill state -> this packet is the edge...
        edge = make_packet(2_100_000.0)
        policer.process(edge, api)
        assert edge.dropped
        # ...and the packet after it is forwarded.
        fed = make_packet(2_200_000.0)
        policer.process(fed, api)
        assert not fed.dropped

    def test_flows_have_independent_buckets(self):
        policer = TokenBucketPolicer(rate_pps=1.0, burst=1)
        api = NullInstrumentationAPI()
        policer.process(make_packet(0.0, sport=1000), api)
        policer.process(make_packet(10.0, sport=1000), api)  # dropped
        other = make_packet(20.0, sport=2000)
        policer.process(other, api)
        assert not other.dropped

    def test_tokens_capped_at_burst(self):
        policer = TokenBucketPolicer(rate_pps=1e9, burst=2)
        api = NullInstrumentationAPI()
        policer.process(make_packet(0.0), api)
        key = make_packet().five_tuple()
        # Huge refill after long idle: still capped at burst.
        policer.process(make_packet(1e12), api)
        assert policer.buckets[key].tokens <= 2.0

    def test_flow_close_clears_state(self):
        policer = TokenBucketPolicer()
        api = NullInstrumentationAPI()
        packet = make_packet()
        policer.process(packet, api)
        policer.handle_flow_close(packet)
        assert not policer.buckets
        assert not policer.mode


class TestPolicerEquivalence:
    def run_both(self, packets, rate=1000.0, bucket=3):
        baseline = ServiceChain([TokenBucketPolicer("p", rate_pps=rate, burst=bucket)])
        speedybox = SpeedyBox([TokenBucketPolicer("p", rate_pps=rate, burst=bucket)])
        base_stream = clone_packets(packets)
        sbox_stream = clone_packets(packets)
        for packet in base_stream:
            packet.metadata.pop("fid", None)
            baseline.process(packet)
        for packet in sbox_stream:
            packet.metadata.pop("fid", None)
            speedybox.process(packet)
        return baseline, speedybox, base_stream, sbox_stream

    def test_drop_pattern_identical_through_oscillation(self):
        # Burst, starve, recover, burst again: the verdict pattern must be
        # packet-exact even as events flip the rule back and forth.
        packets = (
            burst(5, start_ns=0.0, gap_ns=1000.0)
            + burst(3, start_ns=5_000_000.0, gap_ns=1000.0)
            + burst(5, start_ns=20_000_000.0, gap_ns=1000.0)
        )
        baseline, speedybox, base_stream, sbox_stream = self.run_both(packets)
        base_pattern = [p.dropped for p in base_stream]
        sbox_pattern = [p.dropped for p in sbox_stream]
        assert base_pattern == sbox_pattern
        assert True in base_pattern and False in base_pattern  # both regimes hit

    def test_bucket_state_identical(self):
        packets = burst(8, gap_ns=500_000.0)
        baseline, speedybox, *_ = self.run_both(packets, rate=2000.0, bucket=2)
        base_policer = baseline.nfs[0]
        sbox_policer = speedybox.nfs[0]
        assert base_policer.forwarded == sbox_policer.forwarded
        assert base_policer.policed == sbox_policer.policed
        key = packets[0].five_tuple()
        assert base_policer.buckets[key].tokens == pytest.approx(
            sbox_policer.buckets[key].tokens
        )

    def test_events_fire_on_both_edges(self):
        packets = (
            burst(5, start_ns=0.0, gap_ns=1000.0)          # drains the bucket
            + burst(2, start_ns=30_000_000.0, gap_ns=1000.0)  # refilled
        )
        __, speedybox, *_ = self.run_both(packets)
        # At least one flip to drop and one back to forward.
        assert speedybox.event_table.total_triggered >= 2

    def test_healthy_flow_does_not_reconsolidate_every_packet(self):
        # Edge-triggering: a flow comfortably under its rate must keep
        # one rule version.
        packets = burst(10, gap_ns=10_000_000.0)  # 100 pps against 1000 pps
        __, speedybox, *_ = self.run_both(packets)
        fid_list = speedybox.global_mat.flows()
        assert len(fid_list) == 1
        assert speedybox.global_mat.peek(fid_list[0]).version == 1
