"""Edge cases for TracingObserver and the unloaded-mode timeline.

Covers the corners the happy-path hook tests skip: empty runs,
blocked-put storms at tiny ring capacity, one observer shared across
several engines (tracks must not mix), and timeline layout for dropped
and parallel-wave packets.
"""

from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import IPFilter, Monitor, TokenBucketPolicer
from repro.obs import CountingObserver, PacketTracer, TracingObserver
from repro.obs.timeline import trace_unloaded
from repro.platform import BessPlatform
from repro.sim.engine import Engine, Get, Put, Timeout
from repro.sim.resources import Store
from repro.traffic import FlowSpec, TrafficGenerator


def make_packets(n=8):
    spec = FlowSpec.tcp("10.0.0.1", "20.0.0.1", 1000, 80, packets=n)
    return TrafficGenerator([spec]).packets()


def run_pipeline(engine, observer, items, capacity, name="ring0"):
    engine.observer = observer
    store = Store(engine, capacity=capacity, name=name)

    def producer():
        for index in range(items):
            yield Put(store, index)

    def consumer():
        for _ in range(items):
            yield Get(store)
            yield Timeout(10.0)

    engine.add_process(producer(), name="producer")
    engine.add_process(consumer(), name="consumer")
    engine.run()


class TestTracingObserverEdges:
    def test_empty_engine_run_records_nothing(self):
        tracer = PacketTracer()
        engine = Engine()
        engine.observer = TracingObserver(tracer)
        engine.run()  # no processes at all
        assert tracer.tracks() == []

    def test_blocked_put_storm_is_fully_recorded(self):
        """Capacity 1 under a slow consumer: every put but the first blocks."""
        tracer = PacketTracer()
        run_pipeline(Engine(), TracingObserver(tracer), items=20, capacity=1)
        records = tracer.to_chrome()["traceEvents"]
        blocked = [e for e in records if e.get("name") == "blocked_put"]
        # The producer outruns the consumer's 10 ns service time: after
        # the first two puts race ahead, every remaining put blocks.
        assert len(blocked) == 18
        counters = [e for e in records if e["ph"] == "C"]
        assert len(counters) == 40  # one occupancy sample per put + per get
        occupancies = [e["args"]["occupancy"] for e in counters]
        assert max(occupancies) <= 1  # never exceeds ring capacity

    def test_one_observer_two_engines_does_not_mix_tracks(self):
        """Same ring name on two engines must land on distinct tracks."""
        tracer = PacketTracer()
        observer = TracingObserver(tracer)
        run_pipeline(Engine(), observer, items=3, capacity=2, name="ring0")
        run_pipeline(Engine(), observer, items=5, capacity=2, name="ring0")
        tracks = tracer.tracks()
        assert "ring:ring0" in tracks  # first engine keeps the legacy name
        namespaced = [t for t in tracks if t.endswith(":ring:ring0") and t != "ring:ring0"]
        assert len(namespaced) == 1  # second engine got its own namespace
        by_track = {}
        for sample in tracer._counters:
            by_track[sample.track] = by_track.get(sample.track, 0) + 1
        assert by_track["ring:ring0"] == 6  # 3 puts + 3 gets
        assert by_track[namespaced[0]] == 10  # 5 puts + 5 gets

    def test_same_engine_reuse_keeps_one_namespace(self):
        tracer = PacketTracer()
        observer = TracingObserver(tracer)
        engine = Engine()
        run_pipeline(engine, observer, items=2, capacity=2, name="ring0")
        run_pipeline(engine, observer, items=2, capacity=2, name="ring1")
        assert "ring:ring0" in tracer.tracks()
        assert "ring:ring1" in tracer.tracks()  # no e1: prefix: same engine


class TestEmptyRuns:
    def test_run_load_with_no_packets(self):
        observer_metrics = CountingObserver()
        platform = BessPlatform(SpeedyBox([IPFilter("fw")]))
        result = platform.run_load([])
        assert result.offered == 0
        assert result.delivered == 0
        assert observer_metrics.puts == 0

    def test_run_load_with_no_packets_and_tracer(self):
        tracer = PacketTracer()
        platform = BessPlatform(SpeedyBox([IPFilter("fw")]), tracer=tracer)
        result = platform.run_load([])
        assert result.delivered == 0
        # Chrome export of whatever little was traced still works.
        tracer.to_chrome()


class TestTimelineEdges:
    def test_dropped_packet_ends_with_instant_not_tx(self):
        tracer = PacketTracer()
        # burst=1: the second back-to-back packet exceeds the bucket.
        runtime = ServiceChain([TokenBucketPolicer("pol", rate_pps=1.0, burst=1)])
        platform = BessPlatform(runtime)
        packets = make_packets(2)
        reports = [runtime.process(p) for p in packets]
        assert reports[1].dropped
        end = trace_unloaded(tracer, platform, reports[1], 0.0, 1)
        names = [s.name for s in tracer.spans]
        assert "nic_tx" not in names
        instants = [e for e in tracer.to_chrome()["traceEvents"] if e["ph"] == "i"]
        assert any(e["name"] == "dropped" for e in instants)
        assert end > 0.0

    def test_fast_path_wave_spans_carry_wave_index(self):
        tracer = PacketTracer()
        runtime = SpeedyBox([Monitor("m0"), Monitor("m1")])
        platform = BessPlatform(runtime)
        reports = [runtime.process(p) for p in make_packets(8)]
        fast = [r for r in reports if r.is_fast]
        assert fast, "steady flow must reach the fast path"
        trace_unloaded(tracer, platform, fast[-1], 0.0, 0)
        sf_spans = [s for s in tracer.spans if s.name.startswith("sf:")]
        assert sf_spans
        assert all("wave" in s.args for s in sf_spans)

    def test_timeline_is_contiguous_for_slow_path(self):
        tracer = PacketTracer()
        runtime = ServiceChain([IPFilter("fw0"), IPFilter("fw1")])
        platform = BessPlatform(runtime)
        report = runtime.process(make_packets(1)[0])
        end = trace_unloaded(tracer, platform, report, 100.0, 0)
        main = [s for s in tracer.spans if s.track.endswith(":main")]
        cursor = 100.0
        for span in main:
            assert span.start_ns == cursor
            cursor += span.dur_ns
        assert cursor == end
