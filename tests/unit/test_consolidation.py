"""Unit tests for header-action consolidation (repro.core.consolidation)."""

import pytest

from repro.core.actions import Decap, Drop, Encap, Forward, Modify, apply_sequentially
from repro.core.consolidation import (
    ConsolidationError,
    consolidate_header_actions,
    xor_merge_bytes,
)
from repro.net import AuthenticationHeader, FiveTuple, Packet, VxlanHeader
from repro.net.addresses import ip_to_int


def make_packet():
    return Packet.from_five_tuple(FiveTuple.make("10.0.0.1", "10.0.0.2", 1234, 80), payload=b"pp")


def consolidated_equals_sequential(actions):
    """Oracle: the consolidated action must equal sequential application."""
    seq_packet = make_packet()
    apply_sequentially(seq_packet, actions)

    con_packet = make_packet()
    consolidated = consolidate_header_actions(actions)
    consolidated.apply(con_packet)

    if seq_packet.dropped:
        return con_packet.dropped
    seq_packet.finalize()
    return con_packet.serialize() == seq_packet.serialize()


class TestDropDominance:
    def test_single_drop(self):
        result = consolidate_header_actions([Forward(), Drop(), Forward()])
        assert result.drop

    def test_drop_short_circuits(self):
        # Actions after the drop are irrelevant and must not be consolidated.
        result = consolidate_header_actions([Drop(), Modify.set(ttl=1)])
        assert result.drop
        assert not result.field_ops
        assert result.source_count == 1

    def test_drop_applies(self):
        packet = make_packet()
        consolidate_header_actions([Modify.set(ttl=3), Drop()]).apply(packet)
        assert packet.dropped


class TestForwardDefault:
    def test_all_forwards_is_noop(self):
        result = consolidate_header_actions([Forward()] * 5)
        assert result.is_noop

    def test_empty_list_is_noop(self):
        assert consolidate_header_actions([]).is_noop


class TestModifyMerge:
    def test_disjoint_fields_merge(self):
        actions = [Modify.set(dst_ip=ip_to_int("9.9.9.9")), Modify.set(dst_port=8080)]
        result = consolidate_header_actions(actions)
        assert result.merged_modify_count == 2
        assert consolidated_equals_sequential(actions)

    def test_same_field_latter_wins(self):
        actions = [Modify.set(dst_port=1111), Modify.set(dst_port=2222)]
        result = consolidate_header_actions(actions)
        assert result.merged_modify_count == 1
        packet = make_packet()
        result.apply(packet)
        assert packet.l4.dst_port == 2222

    def test_ttl_decrements_accumulate(self):
        actions = [Modify.ttl_dec(), Modify.ttl_dec(), Modify.ttl_dec()]
        packet = make_packet()
        original = packet.ip.ttl
        consolidate_header_actions(actions).apply(packet)
        assert packet.ip.ttl == original - 3

    def test_set_after_adjust(self):
        actions = [Modify.ttl_dec(), Modify.set(ttl=32), Modify.ttl_dec()]
        packet = make_packet()
        consolidate_header_actions(actions).apply(packet)
        assert packet.ip.ttl == 31
        assert consolidated_equals_sequential(actions)

    def test_zero_net_adjust_drops_out(self):
        actions = [Modify.adjust(ttl=-2), Modify.adjust(ttl=2)]
        result = consolidate_header_actions(actions)
        assert result.is_noop

    def test_checksum_valid_after_apply(self):
        packet = make_packet()
        consolidate_header_actions([Modify.set(dst_ip=ip_to_int("8.8.8.8"))]).apply(packet)
        assert packet.ip.checksum_valid()

    def test_mixed_routing_and_finalisation_fields(self):
        actions = [
            Modify.set(dst_ip=ip_to_int("8.8.4.4")),
            Modify.ttl_dec(),
            Modify.set(src_port=5555),
        ]
        assert consolidated_equals_sequential(actions)


class TestEncapDecapStack:
    def test_adjacent_encap_decap_cancel(self):
        actions = [Encap(AuthenticationHeader(spi=7)), Decap(AuthenticationHeader)]
        result = consolidate_header_actions(actions)
        assert result.is_noop

    def test_net_encap_survives(self):
        result = consolidate_header_actions([Encap(AuthenticationHeader(spi=7))])
        assert len(result.net_encaps) == 1
        assert consolidated_equals_sequential([Encap(AuthenticationHeader(spi=7))])

    def test_underflow_decap_becomes_leading(self):
        result = consolidate_header_actions([Decap(AuthenticationHeader)])
        assert len(result.leading_decaps) == 1
        packet = make_packet()
        packet.push_encap(AuthenticationHeader(spi=3))
        result.apply(packet)
        assert not packet.encaps

    def test_nested_stack_cancellation(self):
        actions = [
            Encap(AuthenticationHeader(spi=1)),
            Encap(VxlanHeader(vni=2)),
            Decap(VxlanHeader),
            Decap(AuthenticationHeader),
        ]
        result = consolidate_header_actions(actions)
        assert result.is_noop

    def test_decap_then_encap_both_survive(self):
        actions = [Decap(AuthenticationHeader), Encap(VxlanHeader(vni=9))]
        result = consolidate_header_actions(actions)
        assert len(result.leading_decaps) == 1
        assert len(result.net_encaps) == 1

    def test_mismatched_typed_decap_raises(self):
        actions = [Encap(AuthenticationHeader(spi=1)), Decap(VxlanHeader)]
        with pytest.raises(ConsolidationError):
            consolidate_header_actions(actions)

    def test_interleaved_modify_and_encap(self):
        actions = [
            Modify.set(dst_port=4321),
            Encap(AuthenticationHeader(spi=5)),
            Modify.set(dst_ip=ip_to_int("5.5.5.5")),
        ]
        assert consolidated_equals_sequential(actions)


class TestUnknownAction:
    def test_rejects_foreign_objects(self):
        with pytest.raises(ConsolidationError):
            consolidate_header_actions([object()])  # type: ignore[list-item]


class TestXorMergeFormula:
    def test_paper_formula_on_disjoint_fields(self):
        # Two modifies touching different bytes of the same buffer.
        original = bytes([0, 0, 0, 0])
        out1 = bytes([0xAA, 0, 0, 0])
        out2 = bytes([0, 0, 0xBB, 0])
        merged = xor_merge_bytes(original, [out1, out2])
        assert merged == bytes([0xAA, 0, 0xBB, 0])

    def test_single_output_is_identity(self):
        original = b"\x01\x02\x03"
        out = b"\x01\xFF\x03"
        assert xor_merge_bytes(original, [out]) == out

    def test_no_outputs_returns_original(self):
        assert xor_merge_bytes(b"abc", []) == b"abc"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            xor_merge_bytes(b"abc", [b"ab"])

    def test_matches_field_level_merge_on_real_headers(self):
        # Cross-validate: the paper's byte formula against our field algebra.
        base = make_packet()
        p1 = base.clone()
        Modify.set(dst_ip=ip_to_int("9.9.9.9")).apply(p1)
        p2 = base.clone()
        Modify.set(src_port=4242).apply(p2)

        base_bytes = base.ip.pack() + base.l4.pack()
        p1_bytes = p1.ip.pack() + p1.l4.pack()
        p2_bytes = p2.ip.pack() + p2.l4.pack()
        merged = xor_merge_bytes(base_bytes, [p1_bytes, p2_bytes])

        both = base.clone()
        Modify.set(dst_ip=ip_to_int("9.9.9.9"), src_port=4242).apply(both)
        assert merged == both.ip.pack() + both.l4.pack()
