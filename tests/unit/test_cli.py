"""Unit tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import NF_CATALOGUE, build_chain, main


class TestChainSpec:
    def test_builds_named_nfs(self):
        chain = build_chain("nat,monitor,firewall")
        assert [type(nf).__name__ for nf in chain] == ["MazuNAT", "Monitor", "IPFilter"]

    def test_instances_are_uniquely_named(self):
        chain = build_chain("monitor,monitor,monitor")
        assert len({nf.name for nf in chain}) == 3

    def test_unknown_nf_rejected(self):
        with pytest.raises(SystemExit):
            build_chain("nat,frobnicator")

    def test_empty_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_chain(" , ,")

    def test_catalogue_covers_all_nf_families(self):
        assert {"nat", "maglev", "monitor", "firewall", "snort"} <= set(NF_CATALOGUE)


class TestDemoCommand:
    def test_demo_prints_summary(self, capsys):
        assert main(["demo", "--flows", "6", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "original" in out
        assert "speedybox" in out
        assert "p50 latency reduction" in out

    def test_demo_no_speedybox(self, capsys):
        assert main(["demo", "--flows", "4", "--no-speedybox"]) == 0
        out = capsys.readouterr().out
        assert "speedybox" not in out

    def test_demo_onvm_platform(self, capsys):
        assert main(["demo", "--flows", "4", "--platform", "onvm",
                     "--chain", "monitor,firewall"]) == 0
        assert "onvm" in capsys.readouterr().out

    def test_list_nfs(self, capsys):
        assert main(["demo", "--list-nfs"]) == 0
        out = capsys.readouterr().out
        assert "maglev" in out
        assert "snort" in out

    def test_dump_rules(self, capsys):
        assert main(["demo", "--flows", "4", "--dump-rules", "2"]) == 0
        out = capsys.readouterr().out
        assert "fid=" in out
        assert "action  :" in out


class TestObservabilityFlags:
    def test_metrics_json_to_stdout(self, capsys):
        assert main(["demo", "--flows", "4", "--chain", "nat,maglev,monitor",
                     "--metrics-json", "-"]) == 0
        out = capsys.readouterr().out
        assert "fast_path_packets_total" in out
        assert "slow_path_packets_total" in out
        assert "ring_high_watermark" in out

    def test_metrics_json_to_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["demo", "--flows", "4", "--metrics-json", str(path)]) == 0
        snapshot = json.loads(path.read_text())
        assert snapshot["load_runs_total{platform=bess}"] >= 1
        assert any(key.startswith("path_packets_total") for key in snapshot)
        assert str(path) in capsys.readouterr().out

    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["demo", "--flows", "4", "--trace-out", str(path)]) == 0
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        assert len(events) > 0
        timestamps = [e["ts"] for e in events if e["ph"] != "M"]
        assert timestamps == sorted(timestamps)
        assert str(path) in capsys.readouterr().out

    def test_sweep_supports_metrics_json(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["sweep", "--max-length", "2", "--flows", "3",
                     "--metrics-json", str(path)]) == 0
        # Sweep runs unloaded (no rings): latency histogram + path counters.
        snapshot = json.loads(path.read_text())
        assert snapshot["platform_packets_total{platform=bess}"] > 0
        assert any(key.startswith("unloaded_latency_ns_bucket") for key in snapshot)

    def test_no_flags_no_observability_output(self, capsys):
        assert main(["demo", "--flows", "4"]) == 0
        out = capsys.readouterr().out
        assert "fast_path_packets_total" not in out


class TestEquivalenceCommand:
    def test_no_mismatches_returns_zero(self, capsys):
        assert main(["equivalence", "--flows", "8", "--seed", "2"]) == 0
        assert "0 mismatches" in capsys.readouterr().out

    def test_custom_chain(self, capsys):
        assert main(["equivalence", "--chain", "snort,monitor", "--flows", "6"]) == 0


class TestSweepCommand:
    def test_sweep_lists_lengths(self, capsys):
        assert main(["sweep", "--max-length", "3", "--flows", "4"]) == 0
        out = capsys.readouterr().out
        assert "chain length" in out
        assert "3" in out

    def test_onvm_capped_at_five(self, capsys):
        assert main(["sweep", "--platform", "onvm", "--max-length", "9", "--flows", "3"]) == 0
        out = capsys.readouterr().out
        assert "\n6 " not in out  # rows stop at 5


class TestProfileFlag:
    def test_sweep_profile_prints_report(self, capsys):
        assert main(["sweep", "--max-length", "2", "--flows", "3", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "chain length" in out  # the command still ran
        assert "top 30 by cumulative time" in out
        assert "cumtime" in out

    def test_demo_profile_out_writes_stats(self, tmp_path, capsys):
        import pstats

        path = str(tmp_path / "demo.prof")
        assert main(["demo", "--flows", "4", "--profile-out", path]) == 0
        out = capsys.readouterr().out
        assert f"wrote raw profile stats to {path}" in out
        stats = pstats.Stats(path)
        assert stats.total_calls > 0


class TestTraceCommand:
    def test_generate_and_inspect(self, tmp_path, capsys):
        path = str(tmp_path / "t.sbtr")
        assert main(["trace", "--generate", path, "--flows", "4"]) == 0
        assert main(["trace", "--inspect", path]) == 0
        out = capsys.readouterr().out
        assert "4 flows" in out

    def test_convert_to_pcap(self, tmp_path, capsys):
        sbtr = str(tmp_path / "t.sbtr")
        pcap = str(tmp_path / "t.pcap")
        assert main(["trace", "--generate", sbtr, "--flows", "3"]) == 0
        assert main(["trace", "--to-pcap", sbtr, pcap]) == 0
        assert "Wireshark" in capsys.readouterr().out
        from repro.net.pcap import load_pcap
        from repro.net.trace import load_trace

        assert len(load_pcap(pcap)) == len(load_trace(sbtr))

    def test_missing_args_errors(self, capsys):
        assert main(["trace"]) == 2


class TestScaleCommand:
    def test_scale_sweeps_both_platforms(self, capsys):
        assert main(["scale", "--replicas", "2", "--flows", "8", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "replica sweep" in out
        assert "Mpps" in out and "p99 us" in out
        # One row per (platform, replica count): both models, counts 1..2.
        assert sum(line.startswith("bess") for line in out.splitlines()) == 2
        assert sum(line.startswith("onvm") for line in out.splitlines()) == 2

    def test_scale_single_platform(self, capsys):
        assert main(
            ["scale", "--replicas", "3", "--platforms", "onvm", "--flows", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert sum(line.startswith("onvm") for line in out.splitlines()) == 3
        assert not any(line.startswith("bess") for line in out.splitlines())

    def test_scale_churn_reports_migrations(self, capsys):
        assert main(
            ["scale", "--replicas", "2", "--platforms", "bess", "--flows", "12",
             "--churn", "3"]
        ) == 0
        out = capsys.readouterr().out
        two_replica_row = [
            line for line in out.splitlines() if line.startswith("bess      2")
        ]
        assert two_replica_row and two_replica_row[0].rstrip().endswith("3")

    def test_scale_physical_cores_and_gap(self, capsys):
        assert main(
            ["scale", "--replicas", "2", "--platforms", "bess", "--flows", "6",
             "--physical-cores", "4", "--gap-ns", "100"]
        ) == 0
        assert "replica sweep" in capsys.readouterr().out

    def test_scale_no_speedybox(self, capsys):
        assert main(
            ["scale", "--replicas", "1", "--platforms", "bess", "--flows", "6",
             "--no-speedybox"]
        ) == 0

    def test_scale_metrics_json(self, tmp_path, capsys):
        target = tmp_path / "scale-metrics.json"
        assert main(
            ["scale", "--replicas", "2", "--platforms", "onvm", "--flows", "8",
             "--churn", "2", "--metrics-json", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert "cluster_replicas" in payload
        assert "flow_migrations_total" in payload


class TestBatchCommand:
    def test_batch_lane_run(self, capsys):
        assert main(
            ["batch", "--flows", "200", "--packets-per-flow", "3",
             "--table", "64", "--block", "32"]
        ) == 0
        out = capsys.readouterr().out
        assert "batch lane" in out
        assert "us/packet" in out

    def test_batch_compare_legs_identical(self, capsys):
        assert main(
            ["batch", "--flows", "120", "--packets-per-flow", "4",
             "--table", "48", "--block", "16", "--compare"]
        ) == 0
        out = capsys.readouterr().out
        assert "per-packet" in out
        assert "identical results: yes" in out

    def test_batch_no_lane_flag(self, capsys):
        assert main(
            ["batch", "--flows", "50", "--packets-per-flow", "2",
             "--no-batch-lane"]
        ) == 0
        assert "batch" in capsys.readouterr().out

    def test_batch_onvm_platform(self, capsys):
        assert main(
            ["batch", "--platform", "onvm", "--flows", "60",
             "--packets-per-flow", "2", "--compare"]
        ) == 0
        assert "identical results: yes" in capsys.readouterr().out
