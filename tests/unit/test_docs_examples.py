"""The code blocks in the documentation must keep working.

Extracts fenced python blocks from README.md and docs/writing_nfs.md and
executes the ones that define the documented usage patterns — the docs
are part of the public API surface.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

_FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path):
    return _FENCE_RE.findall(path.read_text())


class TestReadmeExample:
    def test_quick_tour_runs(self, capsys):
        blocks = python_blocks(REPO / "README.md")
        assert blocks, "README lost its quick-tour code block"
        namespace: dict = {}
        exec(compile(blocks[0], "README.md", "exec"), namespace)  # noqa: S102
        out = capsys.readouterr().out
        assert "original" in out
        assert "fast" in out


class TestWritingNfsGuide:
    def test_port_counter_example_is_a_working_nf(self):
        blocks = python_blocks(REPO / "docs" / "writing_nfs.md")
        assert blocks, "writing_nfs.md lost its example"
        namespace: dict = {}
        exec(compile(blocks[0], "writing_nfs.md", "exec"), namespace)  # noqa: S102
        PortCounter = namespace["PortCounter"]

        from repro.core.framework import ServiceChain, SpeedyBox
        from repro.traffic import FlowSpec, TrafficGenerator
        from repro.traffic.generator import clone_packets

        packets = TrafficGenerator(
            [FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000, 80, packets=5, payload=b"x")]
        ).packets()

        baseline = ServiceChain([PortCounter()])
        speedybox = SpeedyBox([PortCounter()])
        for packet in clone_packets(packets):
            baseline.process(packet)
        for packet in clone_packets(packets):
            speedybox.process(packet)

        # The documented pattern yields an equivalence-safe NF.
        assert baseline.nfs[0].per_port == speedybox.nfs[0].per_port == {80: 5}
        assert speedybox.fast_packets == 4

    def test_docs_reference_real_symbols(self):
        text = (REPO / "docs" / "writing_nfs.md").read_text()
        import repro.core.actions
        import repro.nf.base
        from repro.core.local_mat import InstrumentationAPI

        for symbol in ("add_header_action", "add_state_function", "register_event",
                       "nf_extract_fid"):
            assert symbol in text
            assert hasattr(InstrumentationAPI, symbol)


class TestCostModelDocAccuracy:
    def test_documented_constants_exist(self):
        from repro.platform.costs import CostModel

        text = (REPO / "docs" / "cost_model.md").read_text()
        names = re.findall(r"`(\w+)`", text)
        known = set(CostModel.operation_names()) | {
            "repro", "PlatformConfig", "CostModel", "PacketOutcome",
            "batch_size", "cost_model", "worker_cores", "clock_ghz",
            "makespan", "with_overrides", "name", "value",
        }
        cost_like = [n for n in names if n in CostModel.operation_names()]
        # The doc names a healthy sample of real constants, none stale.
        assert len(set(cost_like)) >= 15
        for name in names:
            if "_" in name and not name.startswith("repro"):
                assert name in known, f"docs mention unknown constant {name!r}"

    def test_documented_anchor_arithmetic(self):
        from repro.platform.costs import CostModel

        model = CostModel()
        assert model.nf_dispatch + model.parse + model.exact_match_lookup == 530
        assert model.ring_enqueue + model.ring_dequeue + model.cross_core_sync == 440


class TestObservabilityDocAccuracy:
    def test_documented_symbols_exist(self):
        import repro.obs as obs

        text = (REPO / "docs" / "observability.md").read_text()
        for symbol in ("MetricsRegistry", "PacketTracer", "CountingObserver",
                       "TracingObserver", "FanoutObserver", "NULL_REGISTRY",
                       "NULL_TRACER", "trace_unloaded"):
            assert symbol in text
            assert hasattr(obs, symbol)

    def test_documented_metric_families_are_real(self):
        """Every family named in the doc's tables shows up in an actual run."""
        from repro.core.framework import SpeedyBox
        from repro.nf import IPFilter
        from repro.obs import MetricsRegistry
        from repro.platform import BessPlatform
        from repro.traffic import FlowSpec, TrafficGenerator

        metrics = MetricsRegistry()
        platform = BessPlatform(
            SpeedyBox([IPFilter("fw")], metrics=metrics), metrics=metrics
        )
        packets = TrafficGenerator(
            [FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000, 80, packets=6)]
        ).packets()
        platform.run_load(packets)

        text = (REPO / "docs" / "observability.md").read_text()
        documented = set(re.findall(r"`([a-z_]+_total|[a-z_]+_watermark|"
                                    r"[a-z_]*occupancy|[a-z_]*tracked_flows)", text))
        live = {key.split("{")[0] for key in metrics.snapshot()}
        # Families the minimal run can't exercise (ONVM, events, drops...).
        optional = {
            "classifier_fid_collisions_total", "global_mat_reconsolidations_total",
            "global_mat_evictions_total", "events_registered_total",
            "events_triggered_total", "event_checks_total", "slow_path_packets_total",
            "fast_path_events_fired_total", "packets_dropped_total",
            "flow_deletes_total", "chain_packets_total", "sim_store_blocked_total",
        }
        missing = documented - live - optional
        assert not missing, f"doc names families no run produces: {sorted(missing)}"

    def test_cli_flags_match_doc(self):
        from repro.cli import make_parser

        help_text = make_parser().format_help()
        text = (REPO / "docs" / "observability.md").read_text()
        assert "--metrics-json" in text and "--trace-out" in text
        assert "demo" in help_text and "sweep" in help_text
