"""Unit tests for Snort rule parsing (repro.nf.snort.rules)."""

import pytest

from repro.net.flow import FiveTuple, PROTO_TCP, PROTO_UDP
from repro.nf.snort.rules import (
    AddressSpec,
    PortSpec,
    RuleAction,
    RuleParseError,
    parse_rule,
    parse_rules,
)


class TestHeaderParsing:
    def test_basic_alert_rule(self):
        rule = parse_rule('alert tcp any any -> 10.0.0.0/24 80 (msg:"hi"; sid:1;)')
        assert rule.action is RuleAction.ALERT
        assert rule.protocol == PROTO_TCP
        assert rule.msg == "hi"
        assert rule.sid == 1

    def test_log_and_pass_actions(self):
        assert parse_rule("log udp any any -> any any (sid:2;)").action is RuleAction.LOG
        assert parse_rule("pass tcp any any -> any any (sid:3;)").action is RuleAction.PASS

    def test_unsupported_action(self):
        with pytest.raises(RuleParseError):
            parse_rule("explode tcp any any -> any any (sid:1;)")

    def test_unsupported_protocol(self):
        with pytest.raises(RuleParseError):
            parse_rule("alert icmp6 any any -> any any (sid:1;)")

    def test_ip_protocol_wildcard(self):
        rule = parse_rule("alert ip any any -> any any (sid:4;)")
        assert rule.protocol is None
        flow = FiveTuple.make("1.1.1.1", "2.2.2.2", 1, 2, protocol=PROTO_UDP)
        assert rule.header_matches(flow)

    def test_bidirectional(self):
        rule = parse_rule("alert tcp 10.0.0.1 any <> 10.0.0.2 80 (sid:5;)")
        forward = FiveTuple.make("10.0.0.1", "10.0.0.2", 999, 80)
        assert rule.header_matches(forward)
        assert rule.header_matches(forward.reversed())

    def test_unidirectional_does_not_reverse(self):
        rule = parse_rule("alert tcp 10.0.0.1 any -> 10.0.0.2 80 (sid:5;)")
        forward = FiveTuple.make("10.0.0.1", "10.0.0.2", 999, 80)
        assert rule.header_matches(forward)
        assert not rule.header_matches(forward.reversed())

    def test_garbage_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule("this is not a rule")


class TestAddressSpec:
    def test_any(self):
        assert AddressSpec.parse("any").matches(0x01020304)

    def test_cidr(self):
        spec = AddressSpec.parse("10.0.0.0/8")
        from repro.net.addresses import ip_to_int

        assert spec.matches(ip_to_int("10.9.9.9"))
        assert not spec.matches(ip_to_int("11.0.0.1"))

    def test_negation(self):
        spec = AddressSpec.parse("!10.0.0.0/8")
        from repro.net.addresses import ip_to_int

        assert not spec.matches(ip_to_int("10.9.9.9"))
        assert spec.matches(ip_to_int("11.0.0.1"))

    def test_not_any_rejected(self):
        with pytest.raises(RuleParseError):
            AddressSpec.parse("!any")

    def test_bad_prefix(self):
        with pytest.raises(RuleParseError):
            AddressSpec.parse("10.0.0.0/40")


class TestPortSpec:
    def test_single(self):
        spec = PortSpec.parse("80")
        assert spec.matches(80)
        assert not spec.matches(81)

    def test_range(self):
        spec = PortSpec.parse("1000:2000")
        assert spec.matches(1500)
        assert not spec.matches(999)

    def test_open_ranges(self):
        assert PortSpec.parse(":1024").matches(80)
        assert not PortSpec.parse(":1024").matches(2048)
        assert PortSpec.parse("49152:").matches(65000)

    def test_negated(self):
        spec = PortSpec.parse("!80")
        assert not spec.matches(80)
        assert spec.matches(81)

    def test_reversed_range_rejected(self):
        with pytest.raises(RuleParseError):
            PortSpec.parse("2000:1000")


class TestOptions:
    def test_content_simple(self):
        rule = parse_rule('alert tcp any any -> any any (content:"evil"; sid:1;)')
        assert rule.contents[0].pattern == b"evil"
        assert not rule.contents[0].nocase

    def test_content_nocase(self):
        rule = parse_rule('alert tcp any any -> any any (content:"EviL"; nocase; sid:1;)')
        assert rule.contents[0].nocase
        assert rule.payload_matches(b"--evil--")

    def test_multiple_contents_all_required(self):
        rule = parse_rule('alert tcp any any -> any any (content:"aa"; content:"bb"; sid:1;)')
        assert rule.payload_matches(b"aa..bb")
        assert not rule.payload_matches(b"aa only")

    def test_content_hex_escape(self):
        rule = parse_rule('alert tcp any any -> any any (content:"|90 90 90|"; sid:1;)')
        assert rule.contents[0].pattern == b"\x90\x90\x90"
        assert rule.payload_matches(b"\x00\x90\x90\x90\x00")

    def test_content_mixed_text_and_hex(self):
        rule = parse_rule('alert tcp any any -> any any (content:"GET|20|/"; sid:1;)')
        assert rule.contents[0].pattern == b"GET /"

    def test_bad_hex_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any -> any any (content:"|9|"; sid:1;)')

    def test_pcre(self):
        rule = parse_rule(r'alert tcp any any -> any any (pcre:"/ev[i1]l/"; sid:1;)')
        assert rule.payload_matches(b"xx ev1l xx")
        assert not rule.payload_matches(b"good")

    def test_pcre_case_insensitive_flag(self):
        rule = parse_rule(r'alert tcp any any -> any any (pcre:"/evil/i"; sid:1;)')
        assert rule.payload_matches(b"EVIL")

    def test_pcre_bad_flag(self):
        with pytest.raises(RuleParseError):
            parse_rule(r'alert tcp any any -> any any (pcre:"/x/q"; sid:1;)')

    def test_semicolon_inside_quoted_content(self):
        rule = parse_rule('alert tcp any any -> any any (content:"a;b"; sid:9;)')
        assert rule.contents[0].pattern == b"a;b"

    def test_unknown_option_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule("alert tcp any any -> any any (frobnicate:1; sid:1;)")

    def test_rev_and_priority(self):
        rule = parse_rule("alert tcp any any -> any any (sid:7; rev:3; priority:1;)")
        assert rule.rev == 3
        assert rule.priority == 1


class TestRuleFile:
    def test_comments_and_blanks_skipped(self):
        text = """
        # a comment
        alert tcp any any -> any 80 (msg:"one"; sid:1;)

        log tcp any any -> any 80 (msg:"two"; sid:2;)
        """
        rules = parse_rules(text)
        assert [rule.sid for rule in rules] == [1, 2]

    def test_error_reports_line_number(self):
        with pytest.raises(RuleParseError, match="line 2"):
            parse_rules("alert tcp any any -> any 80 (sid:1;)\nbroken rule here")
