"""BENCH_*.json differ: directions, thresholds, ignore list, CLI gate."""

import json

from repro.obs.benchdiff import (
    collect_benches,
    diff_benches,
    diff_metrics,
    direction_of,
    regressions,
    render_diff,
)


def write_bench(path, experiment, metrics):
    path.write_text(json.dumps({"experiment": experiment, "metrics": metrics}))


class TestDirections:
    def test_latency_like_keys_gate_lower(self):
        for key in ("p99_us", "latency_ns", "dropped", "recovery_windows"):
            assert direction_of(key) == "lower"

    def test_throughput_like_keys_gate_higher(self):
        for key in ("rate_mpps", "throughput", "fast_hit_ratio", "delivered"):
            assert direction_of(key) == "higher"

    def test_everything_else_is_neutral(self):
        assert direction_of("flows") == "neutral"
        assert direction_of("packets") == "neutral"


class TestDiff:
    def test_regressions_respect_direction(self):
        entries = diff_metrics(
            "x",
            {"p99_us": 100.0, "rate_mpps": 2.0},
            {"p99_us": 120.0, "rate_mpps": 1.8},
            ignore=None,
        )
        assert {e.key: e.status for e in entries} == {
            "p99_us": "regression",     # lower-better went up 20%
            "rate_mpps": "regression",  # higher-better went down 10%
        }

    def test_improvements_and_ok(self):
        entries = diff_metrics(
            "x",
            {"p99_us": 100.0, "rate_mpps": 2.0, "flows": 64.0},
            {"p99_us": 80.0, "rate_mpps": 2.01, "flows": 64.0},
            ignore=None,
        )
        statuses = {e.key: e.status for e in entries}
        assert statuses["p99_us"] == "improvement"
        assert statuses["rate_mpps"] == "ok"  # +0.5% under threshold
        assert statuses["flows"] == "ok"

    def test_neutral_keys_only_change(self):
        entries = diff_metrics("x", {"flows": 64.0}, {"flows": 128.0}, ignore=None)
        assert entries[0].status == "changed"

    def test_wallclock_keys_are_ignored_not_gated(self):
        entries = diff_metrics("x", {"off_s": 1.0}, {"off_s": 3.0})
        assert entries[0].status == "ignored"
        assert regressions(entries) == []

    def test_added_and_removed_keys(self):
        entries = diff_metrics("x", {"old": 1.0}, {"new": 2.0}, ignore=None)
        statuses = {e.key: e.status for e in entries}
        assert statuses == {"old": "removed", "new": "added"}

    def test_zero_baseline_regresses_infinitely(self):
        entries = diff_metrics("x", {"dropped": 0.0}, {"dropped": 5.0}, ignore=None)
        assert entries[0].status == "regression"


class TestCollectAndRender:
    def test_collect_file_and_directory(self, tmp_path):
        write_bench(tmp_path / "BENCH_a.json", "a", {"p99_us": 1.0})
        write_bench(tmp_path / "BENCH_b.json", "b", {"p99_us": 2.0})
        by_dir = collect_benches(tmp_path)
        assert set(by_dir) == {"a", "b"}
        by_file = collect_benches(tmp_path / "BENCH_a.json")
        assert set(by_file) == {"a"}

    def test_diff_benches_flags_missing_experiments(self, tmp_path):
        entries = diff_benches(
            {"a": {"p99_us": 1.0}, "gone": {"x": 1.0}},
            {"a": {"p99_us": 2.0}, "fresh": {"y": 1.0}},
            ignore=None,
        )
        statuses = {(e.experiment, e.key): e.status for e in entries}
        assert statuses[("a", "p99_us")] == "regression"
        assert statuses[("gone", "x")] == "removed"
        assert statuses[("fresh", "y")] == "added"

    def test_render_sorts_regressions_first(self):
        entries = diff_metrics(
            "x",
            {"p99_us": 100.0, "rate_mpps": 2.0},
            {"p99_us": 120.0, "rate_mpps": 2.5},
            ignore=None,
        )
        text = render_diff(entries)
        assert text.index("regression") < text.index("improvement")

    def test_render_show_ok_includes_unchanged(self):
        entries = diff_metrics("x", {"flows": 1.0}, {"flows": 1.0}, ignore=None)
        assert "(no changes)" in render_diff(entries)
        assert "flows" in render_diff(entries, show_ok=True)


class TestCheckerScript:
    def test_exit_codes(self, tmp_path):
        import benchmarks.check_bench_diff as checker

        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir()
        cur.mkdir()
        write_bench(base / "BENCH_a.json", "a", {"rate_mpps": 2.0})
        write_bench(cur / "BENCH_a.json", "a", {"rate_mpps": 2.0})
        assert checker.main([str(base), str(cur)]) == 0
        write_bench(cur / "BENCH_a.json", "a", {"rate_mpps": 1.0})
        assert checker.main([str(base), str(cur)]) == 1
        # loosening the threshold can un-gate the same change
        assert checker.main([str(base), str(cur), "--threshold", "0.6"]) == 0
