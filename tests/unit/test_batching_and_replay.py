"""Unit tests for NIC batching and timestamped trace replay."""

import pytest

from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import Monitor, SyntheticNF
from repro.platform import BessPlatform, PlatformConfig
from repro.traffic import DatacenterTraceConfig, DatacenterTraceGenerator, FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets


def packets(n=20):
    spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000, 80, packets=n, payload=b"x")
    return TrafficGenerator([spec]).packets()


class TestBatching:
    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            PlatformConfig(batch_size=0)

    def test_batching_amortises_nic_cost(self):
        unbatched = BessPlatform(ServiceChain([Monitor("m")]))
        batched = BessPlatform(ServiceChain([Monitor("m")]), PlatformConfig(batch_size=32))
        single = packets(1)[0]
        u = unbatched.process(single.clone())
        b = batched.process(single.clone())
        model = unbatched.costs
        saved = (model.nic_rx + model.nic_tx) * (1 - 1 / 32)
        assert u.work_cycles - b.work_cycles == pytest.approx(saved)

    def test_batching_improves_rate(self):
        def rate(batch):
            platform = BessPlatform(
                ServiceChain([SyntheticNF("s", sf_work_cycles=200)]),
                PlatformConfig(batch_size=batch),
            )
            return platform.run_load(clone_packets(packets(40))).throughput_mpps

        assert rate(32) > rate(1)

    def test_batch_one_is_default_and_neutral(self):
        default = BessPlatform(ServiceChain([Monitor("m")]))
        explicit = BessPlatform(ServiceChain([Monitor("m")]), PlatformConfig(batch_size=1))
        p = packets(1)[0]
        assert default.process(p.clone()).work_cycles == explicit.process(p.clone()).work_cycles


class TestTimestampedReplay:
    def trace(self):
        config = DatacenterTraceConfig(flows=10, seed=11)
        return DatacenterTraceGenerator(config).timestamped_packets()

    def test_timestamps_nondecreasing(self):
        trace = self.trace()
        stamps = [p.timestamp_ns for p in trace]
        assert stamps == sorted(stamps)
        assert stamps[-1] > 0

    def test_flows_interleave_in_time(self):
        trace = self.trace()
        # ON/OFF gaps make flows overlap: the packet order is not simply
        # flow-by-flow.
        flow_sequence = [p.five_tuple() for p in trace]
        blocks = 1
        for previous, current in zip(flow_sequence, flow_sequence[1:]):
            if previous != current:
                blocks += 1
        assert blocks > 10  # more transitions than flows => interleaving

    def test_replay_through_platform(self):
        trace = self.trace()
        platform = BessPlatform(SpeedyBox([Monitor("m")]))
        result = platform.run_load(clone_packets(trace), use_timestamps=True)
        assert result.offered == len(trace)
        # Replay pacing stretches the makespan to at least the trace span.
        assert result.makespan_ns >= trace[-1].timestamp_ns - trace[0].timestamp_ns

    def test_paced_replay_has_lower_latency_than_saturation(self):
        trace = self.trace()
        platform = BessPlatform(ServiceChain([SyntheticNF("s", sf_work_cycles=3000)]))
        paced = platform.run_load(clone_packets(trace), use_timestamps=True)
        platform.reset()
        slammed = platform.run_load(clone_packets(trace))
        assert paced.latency_percentile(0.99) <= slammed.latency_percentile(0.99)

    def test_decreasing_timestamps_rejected(self):
        trace = packets(3)
        trace[0].timestamp_ns = 100.0
        trace[1].timestamp_ns = 50.0
        platform = BessPlatform(ServiceChain([Monitor("m")]))
        with pytest.raises(ValueError):
            platform.run_load(trace, use_timestamps=True)

    def test_deterministic(self):
        a = [p.timestamp_ns for p in self.trace()]
        b = [p.timestamp_ns for p in self.trace()]
        assert a == b
