"""Cross-check: the event-driven replay agrees with closed-form queueing.

For uniform traffic the platforms have analytic throughput: BESS is one
server (rate = 1/service time), ONVM a tandem line (rate = 1/bottleneck
stage).  The simulator must reproduce those within the pipeline-drain
epsilon — if it drifts, the replay machinery (rings, poison pills,
delay stages) is broken, not the model.
"""

import pytest

from repro.core.framework import ServiceChain
from repro.nf import SyntheticNF
from repro.platform import BessPlatform, OpenNetVMPlatform
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets

N_PACKETS = 200


def chain(lengths_cycles):
    return ServiceChain(
        [SyntheticNF(f"s{i}", sf_work_cycles=c) for i, c in enumerate(lengths_cycles)]
    )


def uniform_packets():
    spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000, 80, packets=N_PACKETS, payload=b"u")
    return TrafficGenerator([spec]).packets()


class TestBessClosedForm:
    @pytest.mark.parametrize("work", [200.0, 1000.0, 4000.0])
    def test_rate_is_inverse_service_time(self, work):
        platform = BessPlatform(chain([work]))
        packets = uniform_packets()
        outcomes = platform.process_all(clone_packets(packets))
        # Steady-state service time = subsequent-packet latency.
        service_ns = outcomes[-1].latency_ns
        platform.reset()
        measured = platform.run_load(clone_packets(packets)).throughput_mpps
        # One expensive initial packet amortised over N: allow 3%.
        analytic = 1000.0 / service_ns
        assert measured == pytest.approx(analytic, rel=0.03)


class TestOnvmClosedForm:
    def test_rate_is_inverse_bottleneck(self):
        works = [500.0, 3000.0, 800.0]  # middle stage dominates
        platform = OpenNetVMPlatform(chain(works))
        packets = uniform_packets()
        outcomes = platform.process_all(clone_packets(packets))
        report = outcomes[-1].report
        model = platform.costs
        hop = platform._transport_cycles_per_hop()
        stage_ns = [
            model.cycles_to_ns(meter.cycles(model) + hop) for __, meter in report.nf_meters
        ]
        stage_ns[-1] += model.cycles_to_ns(model.nic_tx)
        bottleneck_ns = max(stage_ns)
        platform.reset()
        measured = platform.run_load(clone_packets(packets)).throughput_mpps
        analytic = 1000.0 / bottleneck_ns
        assert measured == pytest.approx(analytic, rel=0.05)

    def test_latency_is_sum_of_stages_unloaded(self):
        works = [500.0, 900.0]
        platform = OpenNetVMPlatform(chain(works))
        outcome = platform.process(uniform_packets()[0])
        model = platform.costs
        hop = platform._transport_cycles_per_hop()
        expected = platform._nic_cycles()
        expected += outcome.report.fixed_meter.cycles(model)
        for __, meter in outcome.report.nf_meters:
            expected += meter.cycles(model) + hop
        assert outcome.latency_cycles == pytest.approx(expected)


class TestLittlesLawSanity:
    def test_paced_below_capacity_latency_near_unloaded(self):
        platform = BessPlatform(chain([1000.0]))
        packets = uniform_packets()
        unloaded_ns = platform.process_all(clone_packets(packets[:3]))[-1].latency_ns
        platform.reset()
        # Offer at 40% of capacity: negligible queueing.
        service_ns = unloaded_ns
        result = platform.run_load(
            clone_packets(packets), inter_arrival_ns=service_ns / 0.4
        )
        assert result.latency_percentile(0.5) == pytest.approx(unloaded_ns, rel=0.15)
