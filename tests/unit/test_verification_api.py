"""Unit tests for the public equivalence-verification API."""

import pytest

from repro.core import verify_equivalence
from repro.core.verification import Divergence, VerificationReport
from repro.nf import IPFilter, MaglevLoadBalancer, Monitor
from repro.nf.base import NetworkFunction
from repro.nf.maglev import Backend
from repro.traffic import FlowSpec, TrafficGenerator


def packets(count=6, sport=1000):
    spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", sport, 80, packets=count, payload=b"v")
    return TrafficGenerator([spec]).packets()


class TestVerifyEquivalence:
    def test_correct_chain_verifies(self):
        report = verify_equivalence(lambda: [Monitor("m"), IPFilter("fw")], packets())
        assert report.equivalent
        assert report.packets == 6
        assert report.fast_packets == 5
        assert report.slow_packets == 1
        assert "EQUIVALENT" in report.summary()

    def test_fast_path_rate(self):
        report = verify_equivalence(lambda: [Monitor("m")], packets(10))
        assert report.fast_path_rate == pytest.approx(0.9)

    def test_intervention_hook(self):
        backends = [Backend.make(f"b{i}", f"192.168.3.{i + 1}", 80) for i in range(3)]

        def chain():
            return [MaglevLoadBalancer("lb", backends=[Backend(b.name, b.ip, b.port) for b in backends], table_size=131)]

        def fail(baseline, speedybox):
            for runtime in (baseline, speedybox):
                lb = runtime.nfs[0]
                victim = next(iter(lb.conntrack.values()))
                lb.fail_backend(victim.name)

        report = verify_equivalence(chain, packets(8), interventions={4: fail})
        assert report.equivalent
        assert report.events_triggered == 1

    def test_buggy_nf_caught(self):
        class ForgetfulNF(NetworkFunction):
            """Does a rewrite but 'forgets' to record it — the classic
            instrumentation bug the verifier exists to catch."""

            def process(self, packet, api):
                self.ingress(packet)
                fid = api.nf_extract_fid(packet)
                from repro.core.actions import Forward, Modify

                Modify.set(dst_port=9999).apply(packet)
                api.add_header_action(fid, Forward())  # BUG: recorded Forward

        report = verify_equivalence(lambda: [ForgetfulNF("buggy")], packets())
        assert not report.equivalent
        # Every fast-path packet diverges (5 of 6).
        assert len(report.divergences) == 5
        assert all(d.kind == "bytes" for d in report.divergences)
        assert "DIVERGENCES" in report.summary()

    def test_drop_divergence_reported(self):
        class SilentDropper(NetworkFunction):
            """Drops without recording the drop."""

            def process(self, packet, api):
                self.ingress(packet)
                fid = api.nf_extract_fid(packet)
                from repro.core.actions import Forward

                packet.drop()
                api.add_header_action(fid, Forward())  # BUG

        report = verify_equivalence(lambda: [SilentDropper("sd")], packets())
        assert not report.equivalent
        assert all(d.kind == "drop" for d in report.divergences)

    def test_summary_truncates_long_lists(self):
        report = VerificationReport(packets=100)
        for index in range(15):
            report.divergences.append(Divergence(index, "bytes", "x"))
        text = report.summary()
        assert "and 5 more" in text

    def test_speedybox_kwargs_passthrough(self):
        report = verify_equivalence(
            lambda: [Monitor("m")],
            packets(),
            speedybox_kwargs={"max_flows": 1},
        )
        assert report.equivalent

    def test_input_packets_untouched(self):
        stream = packets()
        before = [p.serialize() for p in stream]
        verify_equivalence(lambda: [IPFilter("fw", mark_dscp=9)], stream)
        assert [p.serialize() for p in stream] == before
