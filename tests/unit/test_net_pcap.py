"""Unit tests for libpcap export/import (repro.net.pcap)."""

import io
import struct

import pytest

from repro.net import FiveTuple, Packet
from repro.net.pcap import (
    MAGIC_NS,
    MAGIC_US,
    PcapFormatError,
    load_pcap,
    write_pcap,
)


def sample_packets(n=4):
    packets = []
    for index in range(n):
        packet = Packet.from_five_tuple(
            FiveTuple.make("10.0.0.1", "10.0.0.2", 1000 + index, 80),
            payload=bytes([index]) * 10,
        )
        packet.timestamp_ns = 1_500_000_000_000_000_000.0 + index * 1_000.0
        packets.append(packet)
    return packets


def roundtrip(packets, nanosecond=True):
    buffer = io.BytesIO()
    write_pcap(buffer, packets, nanosecond=nanosecond)
    buffer.seek(0)
    return load_pcap(buffer)


class TestRoundtrip:
    def test_packets_survive(self):
        packets = sample_packets()
        restored = roundtrip(packets)
        assert len(restored) == len(packets)
        for original, loaded in zip(packets, restored):
            assert loaded.serialize() == original.serialize()

    def test_nanosecond_timestamps_exact(self):
        packets = sample_packets()
        restored = roundtrip(packets, nanosecond=True)
        for original, loaded in zip(packets, restored):
            assert loaded.timestamp_ns == original.timestamp_ns

    def test_microsecond_flavour_quantises(self):
        packets = sample_packets()
        packets[0].timestamp_ns += 123.0  # sub-microsecond detail
        restored = roundtrip(packets, nanosecond=False)
        assert restored[0].timestamp_ns % 1000.0 == 0.0

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "chain.pcap"
        count = write_pcap(path, sample_packets(3))
        assert count == 3
        assert len(load_pcap(path)) == 3

    def test_empty_capture(self):
        assert roundtrip([]) == []


class TestHeaderValidation:
    def test_magic_constants(self):
        buffer = io.BytesIO()
        write_pcap(buffer, [], nanosecond=True)
        assert struct.unpack("<I", buffer.getvalue()[:4])[0] == MAGIC_NS
        buffer = io.BytesIO()
        write_pcap(buffer, [], nanosecond=False)
        assert struct.unpack("<I", buffer.getvalue()[:4])[0] == MAGIC_US

    def test_big_endian_file_readable(self):
        # Hand-build a big-endian microsecond capture with one packet.
        packet = sample_packets(1)[0]
        wire = packet.serialize()
        buffer = io.BytesIO()
        buffer.write(struct.pack(">IHHiIII", MAGIC_US, 2, 4, 0, 0, 0xFFFF, 1))
        buffer.write(struct.pack(">IIII", 1, 500, len(wire), len(wire)))
        buffer.write(wire)
        buffer.seek(0)
        restored = load_pcap(buffer)
        assert restored[0].timestamp_ns == 1_000_000_000.0 + 500 * 1000.0

    def test_bad_magic_rejected(self):
        with pytest.raises(PcapFormatError, match="magic"):
            load_pcap(io.BytesIO(b"\x00" * 24))

    def test_non_ethernet_linktype_rejected(self):
        buffer = io.BytesIO()
        buffer.write(struct.pack("<IHHiIII", MAGIC_US, 2, 4, 0, 0, 0xFFFF, 101))
        buffer.seek(0)
        with pytest.raises(PcapFormatError, match="linktype"):
            load_pcap(buffer)

    def test_truncated_record_rejected(self):
        buffer = io.BytesIO()
        write_pcap(buffer, sample_packets(1))
        data = buffer.getvalue()[:-5]
        with pytest.raises(PcapFormatError, match="truncated"):
            load_pcap(io.BytesIO(data))

    def test_snaplen_truncation_rejected(self):
        packet = sample_packets(1)[0]
        wire = packet.serialize()
        buffer = io.BytesIO()
        buffer.write(struct.pack("<IHHiIII", MAGIC_US, 2, 4, 0, 0, 0xFFFF, 1))
        buffer.write(struct.pack("<IIII", 0, 0, len(wire) - 4, len(wire)))
        buffer.write(wire[:-4])
        buffer.seek(0)
        with pytest.raises(PcapFormatError, match="snap-length"):
            load_pcap(buffer)


class TestInterop:
    def test_sbtr_to_pcap_conversion(self):
        """The two capture formats agree on content."""
        from repro.net.trace import roundtrip_bytes

        packets = sample_packets()
        via_sbtr = roundtrip_bytes(packets)
        via_pcap = roundtrip(packets)
        for a, b in zip(via_sbtr, via_pcap):
            assert a.serialize() == b.serialize()
