"""Whole-batch fast-path lane (repro.core.batchlane) unit behaviour.

Engagement rules, fallback correctness, the bounded-flow-table
guarantee, and the eviction-teardown audit pairing (the flow-table
growth hazard: every ``classifier_evict`` of a compiled flow must ship a
matching ``fastpath_invalidate``, or a dangling closure keeps serving a
forgotten flow).
"""

from repro.core.actions import Modify
from repro.core.framework import SpeedyBox
from repro.nf import SyntheticNF
from repro.obs.audit import AuditLog
from repro.obs.span import FlowSpanRecorder
from repro.obs.registry import MetricsRegistry
from repro.platform import BessPlatform, PlatformConfig
from repro.traffic.columnar import uniform_batch


def build_chain():
    return [
        SyntheticNF("ttl", action=Modify.ttl_dec(), sf_payload_class=None),
        SyntheticNF("rewrite", action=Modify.set(dst_port=8080), sf_payload_class=None),
    ]


def make_runtime(**kwargs):
    return SpeedyBox(build_chain(), **kwargs)


def run_batch(batch, *, batch_lane=True, runtime=None):
    runtime = runtime or make_runtime()
    platform = BessPlatform(runtime, config=PlatformConfig(batch_lane=batch_lane))
    return platform.run_load(batch), runtime, platform


def results_equal(a, b):
    return (
        a.offered == b.offered
        and a.delivered == b.delivered
        and a.dropped == b.dropped
        and a.makespan_ns == b.makespan_ns
        and a.latencies_ns == b.latencies_ns
    )


def test_lane_eligibility_flags():
    runtime = make_runtime()
    platform = BessPlatform(runtime, config=PlatformConfig(batch_lane=True))
    assert platform._batch_lane_eligible(use_timestamps=False)
    assert not platform._batch_lane_eligible(use_timestamps=True)

    off = BessPlatform(make_runtime(), config=PlatformConfig(batch_lane=False))
    assert not off._batch_lane_eligible(use_timestamps=False)

    uncompiled = BessPlatform(
        make_runtime(), config=PlatformConfig(batch_lane=True, compiled_flows=False)
    )
    assert not uncompiled._batch_lane_eligible(use_timestamps=False)

    metered = SpeedyBox(build_chain(), metrics=MetricsRegistry(enabled=True))
    instrumented = BessPlatform(
        metered,
        config=PlatformConfig(batch_lane=True),
        metrics=metered.metrics,
    )
    assert not instrumented._batch_lane_eligible(use_timestamps=False)


def test_lane_matches_per_packet_oracle():
    batch = uniform_batch(40, 5, interleave="round_robin", block=8)
    lane_result, lane_runtime, __ = run_batch(batch)
    oracle_result, oracle_runtime, __ = run_batch(batch, batch_lane=False)
    assert results_equal(lane_result, oracle_result)
    assert lane_runtime.stats() == oracle_runtime.stats()


def test_lane_off_consumes_packet_view():
    """batch_lane=False streams the batch per-packet — same totals as a list."""
    batch = uniform_batch(10, 3)
    off_result, __, ___ = run_batch(batch, batch_lane=False)
    runtime = make_runtime()
    platform = BessPlatform(runtime, config=PlatformConfig(batch_lane=False))
    list_result = platform.run_load(batch.to_packets())
    assert results_equal(off_result, list_result)


def test_flow_table_stays_bounded():
    capacity = 32
    runtime = make_runtime(max_tracked_flows=capacity, max_flows=capacity)
    batch = uniform_batch(500, 2, interleave="round_robin", block=16)
    result, runtime, __ = run_batch(batch, runtime=runtime)
    assert result.delivered == len(batch)
    assert len(runtime.classifier._flows) <= capacity
    assert len(runtime.global_mat._rules) <= capacity
    for mat in runtime.local_mats.values():
        assert len(mat._rules) <= capacity
    assert runtime.classifier.evictions == 500 - capacity


def test_eviction_pairs_invalidate_with_evict_audit():
    """Satellite: the growth-hazard teardown is audit-visible and paired.

    Every ``classifier_evict`` of a flow whose closure was compiled (and
    not already invalidated) must be immediately preceded by a
    ``fastpath_invalidate`` with ``reason='classifier_evict'`` for the
    same FID — on the lane's inlined teardown and the legacy path alike.
    """
    for batch_lane in (True, False):
        audit = AuditLog()
        runtime = SpeedyBox(
            build_chain(), max_tracked_flows=16, max_flows=16, audit=audit
        )
        batch = uniform_batch(120, 3, interleave="round_robin", block=8)
        run_batch(batch, batch_lane=batch_lane, runtime=runtime)

        events = audit.events()
        compiled_live = set()
        for event in events:
            if event["kind"] == "fastpath_compile":
                compiled_live.add(event["fid"])
            elif event["kind"] == "fastpath_invalidate":
                compiled_live.discard(event["fid"])
        paired = 0
        for i, event in enumerate(events):
            if event["kind"] != "classifier_evict":
                continue
            fid = event["fid"]
            preceding = [
                e
                for e in events[:i]
                if e["kind"] == "fastpath_invalidate"
                and e["fid"] == fid
                and e["reason"] == "classifier_evict"
            ]
            following_compiles = [
                e
                for e in events[:i]
                if e["kind"] == "fastpath_compile" and e["fid"] == fid
            ]
            if following_compiles:
                assert preceding, (
                    f"classifier_evict fid={fid} without fastpath_invalidate "
                    f"(batch_lane={batch_lane})"
                )
                paired += 1
        assert paired > 0, "churn cell produced no compiled-flow evictions"
        # No dangling closures: everything still compiled is still tracked.
        assert compiled_live == set(runtime._compiled_fids)


def test_last_lane_stats_introspection():
    batch = uniform_batch(30, 4, interleave="round_robin", block=10)
    result, __, platform = run_batch(batch)
    stats = platform.last_lane_stats
    assert stats is not None
    assert stats["offered"] == len(batch)
    # The template flow itself admits via the scalar path; the other 29
    # flows take bulk admission.
    assert stats["admitted"] == 29
    assert stats["dropped"] == result.dropped
    assert 0 < stats["span_packets"] <= len(batch)
    assert stats["plan_table_size"] >= 1
    platform.reset()
    assert platform.last_lane_stats is None
    # The per-packet oracle never sets it.
    __, ___, oracle = run_batch(batch, batch_lane=False)
    assert oracle.last_lane_stats is None


def test_mat_evict_pairs_with_fastpath_invalidate():
    """Global-MAT LRU pressure alone must also tear the closure down.

    With ``max_flows`` below the classifier capacity the Global MAT
    evicts while the classifier still remembers the flow; every
    ``global_mat_evict`` of a compiled flow must be followed by a
    ``fastpath_invalidate`` (reason ``rule_evicted``) for the same FID.
    """
    for batch_lane in (True, False):
        audit = AuditLog()
        runtime = SpeedyBox(
            build_chain(), max_tracked_flows=256, max_flows=8, audit=audit
        )
        batch = uniform_batch(64, 3, interleave="round_robin", block=16)
        run_batch(batch, batch_lane=batch_lane, runtime=runtime)

        events = audit.events()
        compiled = set()
        paired = 0
        for i, event in enumerate(events):
            kind = event["kind"]
            if kind == "fastpath_compile":
                compiled.add(event["fid"])
            elif kind == "global_mat_evict" and event["fid"] in compiled:
                tail = events[i + 1 :]
                assert any(
                    e["kind"] == "fastpath_invalidate"
                    and e["fid"] == event["fid"]
                    and e["reason"] == "rule_evicted"
                    for e in tail[:4]
                ), f"global_mat_evict fid={event['fid']} left a dangling closure"
                compiled.discard(event["fid"])
                paired += 1
        assert paired > 0, "capacity pressure produced no compiled-rule evictions"
        assert len(runtime.global_mat._rules) <= 8


def test_lane_and_oracle_emit_identical_audit_streams():
    def run(batch_lane):
        audit = AuditLog()
        runtime = SpeedyBox(
            build_chain(), max_tracked_flows=16, max_flows=16, audit=audit
        )
        batch = uniform_batch(60, 4, interleave="round_robin", block=8)
        run_batch(batch, batch_lane=batch_lane, runtime=runtime)
        return [
            {k: v for k, v in event.items() if k != "ts"}
            for event in audit.events()
        ]

    assert run(True) == run(False)


# -- flow-span sampling on the lane (sampled flows keep full coverage) --


def run_with_spans(batch, recorder, *, batch_lane=True, runtime=None):
    runtime = runtime or make_runtime()
    platform = BessPlatform(
        runtime, config=PlatformConfig(batch_lane=batch_lane), spans=recorder
    )
    return platform.run_load(batch), platform


def test_span_recorder_does_not_disqualify_the_lane():
    runtime = make_runtime()
    platform = BessPlatform(
        runtime,
        config=PlatformConfig(batch_lane=True),
        spans=FlowSpanRecorder(every=4),
    )
    assert platform._batch_lane_eligible(use_timestamps=False)


def test_lane_with_spans_matches_oracle_and_coverage():
    """Same results AND the same span population as the per-packet path."""
    batch = uniform_batch(40, 5, interleave="round_robin", block=8)
    lane_rec = FlowSpanRecorder(every=4)
    oracle_rec = FlowSpanRecorder(every=4)
    lane_result, __ = run_with_spans(batch, lane_rec)
    oracle_result, __ = run_with_spans(batch, oracle_rec, batch_lane=False)
    assert results_equal(lane_result, oracle_result)
    assert lane_rec.summary() == oracle_rec.summary()
    lane_fids = {root["args"]["fid"] for root in lane_rec.roots()}
    oracle_fids = {root["args"]["fid"] for root in oracle_rec.roots()}
    assert lane_fids == oracle_fids


def test_sampled_flows_stay_off_the_array_path():
    """every=1 samples all flows: the lane admits nothing, records all."""
    batch = uniform_batch(8, 4, interleave="round_robin", block=8)
    recorder = FlowSpanRecorder(every=1, max_spans_per_flow=None)
    result, platform = run_with_spans(batch, recorder)
    assert result.delivered == len(batch)
    stats = platform.last_lane_stats
    assert stats["admitted"] == 0
    assert stats["span_packets"] == 0
    assert recorder.packets_sampled == len(batch)


def test_unsampled_flows_ride_the_array_path():
    batch = uniform_batch(40, 5, interleave="round_robin", block=8)
    recorder = FlowSpanRecorder(every=40)  # exactly one flow sampled
    result, platform = run_with_spans(batch, recorder)
    assert result.delivered == len(batch)
    assert recorder.flows_sampled == 1
    stats = platform.last_lane_stats
    assert stats["admitted"] == 39
    # the one sampled flow's packets never hit the array fast path
    assert stats["span_packets"] == 39 * 4  # steady packets of 39 flows
    assert recorder.packets_sampled == 5


def test_capped_flow_earns_the_fast_lane_back():
    """Once span-capped, a sampled flow is promoted like any other."""
    batch = uniform_batch(1, 12, block=4)
    recorder = FlowSpanRecorder(every=1, max_spans_per_flow=2)
    result, platform = run_with_spans(batch, recorder)
    assert result.delivered == 12
    assert recorder.packets_sampled == 2
    fid = recorder.roots()[0]["args"]["fid"]
    assert recorder.skip.get(fid) is True
    # packets after the cap (minus the promoting one) take the lane
    assert platform.last_lane_stats["span_packets"] > 0


def test_lane_publishes_runtime_lane_metrics():
    registry = MetricsRegistry(enabled=True)
    runtime = SpeedyBox(build_chain(), metrics=registry)
    batch = uniform_batch(20, 5, interleave="round_robin", block=8)
    result, platform = run_batch(batch, runtime=runtime)[0], None
    snapshot = registry.snapshot()
    assert snapshot["lane_batches_total"] == 1.0
    # the template flow admits via the scalar path, like last_lane_stats
    assert snapshot["lane_admitted_flows_total"] == 19.0
    assert snapshot["lane_fast_packets_total"] == result.delivered - 20.0
    assert snapshot["lane_flushes_total"] >= 1.0
    assert snapshot["lane_plan_table_size"] >= 1.0
