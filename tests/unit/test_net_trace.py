"""Unit tests for the pcap-lite trace format (repro.net.trace)."""

import io

import pytest

from repro.net import FiveTuple, Packet
from repro.net.trace import (
    TraceFormatError,
    load_trace,
    read_trace,
    roundtrip_bytes,
    write_trace,
)
from repro.traffic import FlowSpec, TrafficGenerator


def sample_packets(n=5):
    spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000, 80, packets=n, payload=b"trace-data")
    packets = TrafficGenerator([spec]).packets()
    for index, packet in enumerate(packets):
        packet.timestamp_ns = index * 1000.0
    return packets


class TestRoundtrip:
    def test_packets_survive(self):
        packets = sample_packets()
        restored = roundtrip_bytes(packets)
        assert len(restored) == len(packets)
        for original, loaded in zip(packets, restored):
            assert loaded.serialize() == original.serialize()
            assert loaded.five_tuple() == original.five_tuple()

    def test_timestamps_survive(self):
        restored = roundtrip_bytes(sample_packets())
        assert [p.timestamp_ns for p in restored] == [0.0, 1000.0, 2000.0, 3000.0, 4000.0]

    def test_empty_trace(self):
        assert roundtrip_bytes([]) == []

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "capture.sbtr"
        packets = sample_packets(3)
        count = write_trace(path, packets)
        assert count == 3
        restored = load_trace(path)
        assert len(restored) == 3
        assert restored[0].payload == b"trace-data"

    def test_streaming_read_is_lazy(self):
        buffer = io.BytesIO()
        write_trace(buffer, sample_packets(4))
        buffer.seek(0)
        iterator = read_trace(buffer)
        first = next(iterator)
        assert first.timestamp_ns == 0.0


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(TraceFormatError, match="magic"):
            load_trace(io.BytesIO(b"XXXX\x00\x01\x00\x00"))

    def test_bad_version(self):
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(io.BytesIO(b"SBTR\x00\x63\x00\x00"))

    def test_truncated_header(self):
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace(io.BytesIO(b"SB"))

    def test_truncated_record(self):
        buffer = io.BytesIO()
        write_trace(buffer, sample_packets(1))
        data = buffer.getvalue()
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace(io.BytesIO(data[:-4]))

    def test_replay_through_chain_matches_live(self):
        """Captured traffic replays with identical chain behaviour."""
        from repro.core.framework import SpeedyBox
        from repro.nf import Monitor

        packets = sample_packets(6)
        restored = roundtrip_bytes(packets)

        live = SpeedyBox([Monitor("m")])
        replay = SpeedyBox([Monitor("m")])
        for packet in packets:
            live.process(packet)
        for packet in restored:
            replay.process(packet)
        assert live.nfs[0].counters == replay.nfs[0].counters
        assert live.fast_packets == replay.fast_packets
