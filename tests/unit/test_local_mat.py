"""Unit tests for Local MATs and the instrumentation API (repro.core.local_mat)."""

import pytest

from repro.core.actions import Drop, Forward, Modify
from repro.core.event_table import EventTable
from repro.core.local_mat import InstrumentationAPI, LocalMAT, NullInstrumentationAPI
from repro.core.state_function import PayloadClass
from repro.net import FiveTuple, Packet


def make_packet(fid=None):
    packet = Packet.from_five_tuple(FiveTuple.make("10.0.0.1", "10.0.0.2", 1, 2))
    if fid is not None:
        packet.metadata["fid"] = fid
    return packet


class TestLocalMAT:
    def test_records_actions_in_order(self):
        mat = LocalMAT("nf")
        mat.add_header_action(7, Forward())
        mat.add_header_action(7, Modify.set(ttl=3))
        rule = mat.rule_for(7)
        assert [type(a).__name__ for a in rule.header_actions] == ["Forward", "Modify"]

    def test_state_functions_queued_in_order(self):
        mat = LocalMAT("nf")
        from repro.core.state_function import StateFunction

        mat.add_state_function(7, StateFunction(lambda p: "a", PayloadClass.IGNORE, name="a"))
        mat.add_state_function(7, StateFunction(lambda p: "b", PayloadClass.READ, name="b"))
        rule = mat.rule_for(7)
        assert [fn.name for fn in rule.sf_batch] == ["a", "b"]
        assert rule.sf_batch.payload_class is PayloadClass.READ

    def test_begin_recording_resets_rule(self):
        mat = LocalMAT("nf")
        mat.add_header_action(7, Drop())
        mat.begin_recording(7)
        assert mat.rule_for(7).header_actions == []

    def test_begin_recording_clears_nf_events(self):
        events = EventTable()
        mat = LocalMAT("nf", events)
        api = InstrumentationAPI(mat, events)
        api.register_event(7, lambda: True, update_action=Drop())
        assert len(events) == 1
        mat.begin_recording(7)
        assert len(events) == 0

    def test_delete_flow(self):
        mat = LocalMAT("nf")
        mat.add_header_action(7, Forward())
        assert mat.delete_flow(7)
        assert 7 not in mat
        assert not mat.delete_flow(7)

    def test_replace_header_actions(self):
        mat = LocalMAT("nf")
        mat.add_header_action(7, Forward())
        mat.replace_header_actions(7, [Drop()])
        assert isinstance(mat.rule_for(7).header_actions[0], Drop)

    def test_flows_listing(self):
        mat = LocalMAT("nf")
        mat.add_header_action(1, Forward())
        mat.add_header_action(2, Forward())
        assert set(mat.flows()) == {1, 2}


class TestInstrumentationAPI:
    def make_api(self):
        events = EventTable()
        mat = LocalMAT("nf", events)
        return InstrumentationAPI(mat, events), mat, events

    def test_nf_extract_fid_reads_metadata(self):
        api, __, __ = self.make_api()
        assert api.nf_extract_fid(make_packet(fid=42)) == 42

    def test_nf_extract_fid_without_classifier_raises(self):
        api, __, __ = self.make_api()
        with pytest.raises(KeyError):
            api.nf_extract_fid(make_packet())

    def test_add_header_action_records(self):
        api, mat, __ = self.make_api()
        api.add_header_action(1, Drop())
        assert isinstance(mat.rule_for(1).header_actions[0], Drop)

    def test_add_state_function_binds_metadata(self):
        api, mat, __ = self.make_api()
        api.add_state_function(1, lambda p, k: None, PayloadClass.READ, args=("key",), name="fn")
        fn = mat.rule_for(1).sf_batch.functions[0]
        assert fn.name == "fn"
        assert fn.nf_name == "nf"
        assert fn.args == ("key",)
        assert fn.payload_class is PayloadClass.READ

    def test_register_event_lands_in_table(self):
        api, __, events = self.make_api()
        event = api.register_event(1, lambda: True, update_action=Drop())
        assert events.events_for(1) == [event]
        assert event.nf_name == "nf"

    def test_paper_spelling_aliases(self):
        api, mat, __ = self.make_api()
        api.localmat_add_HA(1, Forward())
        api.localmat_add_SF(1, lambda p: None, PayloadClass.IGNORE)
        rule = mat.rule_for(1)
        assert len(rule.header_actions) == 1
        assert len(rule.sf_batch) == 1

    def test_recording_flag(self):
        api, __, __ = self.make_api()
        assert api.recording
        assert not NullInstrumentationAPI().recording


class TestNullInstrumentationAPI:
    def test_records_nothing(self):
        api = NullInstrumentationAPI()
        api.add_header_action(1, Drop())
        api.add_state_function(1, lambda p: None, PayloadClass.READ)
        assert api.register_event(1, lambda: True, update_action=Drop()) is None

    def test_fid_defaults_to_minus_one(self):
        api = NullInstrumentationAPI()
        assert api.nf_extract_fid(make_packet()) == -1
        assert api.nf_extract_fid(make_packet(fid=5)) == 5
