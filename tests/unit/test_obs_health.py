"""Health scoring: thresholds, EWMA baseline, transitions, audit."""

from repro.obs import AuditLog, HealthModel, TimeSeries
from repro.obs.health import CRITICAL, DEGRADED, HEALTHY, HealthThresholds


def feed_window(ts, replica=0, packets=16, drops=0, buffered=0,
                latency_ns=100.0, fast_hits=None):
    """Fill and close exactly one packet-clock window."""
    served = packets - buffered
    fast = served if fast_hits is None else fast_hits
    for i in range(packets):
        ts.record(
            float(i),
            latency_ns=latency_ns if i >= buffered + drops else None,
            replica=replica,
            dropped=(buffered <= i < buffered + drops),
            buffered=(i < buffered),
            fast_hit=(i - buffered - drops < fast),
        )


def make_pair(window_packets=16, **kwargs):
    ts = TimeSeries(window_packets=window_packets)
    audit = AuditLog()
    health = HealthModel(timeseries=ts, audit=audit, **kwargs)
    return ts, audit, health


class TestScoring:
    def test_quiet_replica_stays_healthy(self):
        ts, audit, health = make_pair()
        for __ in range(3):
            feed_window(ts)
        assert health.state_of(0) == HEALTHY
        assert health.worst_state() == HEALTHY
        assert audit.events() == []

    def test_drop_rate_degrades_then_criticals(self):
        ts, audit, health = make_pair()
        feed_window(ts)  # healthy baseline
        feed_window(ts, drops=1)  # 1/16 > 1% degraded threshold
        assert health.state_of(0) == DEGRADED
        feed_window(ts, drops=4)  # 25% > 10% critical threshold
        assert health.state_of(0) == CRITICAL
        kinds = [e["kind"] for e in audit.events()]
        assert kinds == ["health_degraded", "health_critical"]

    def test_buffered_packets_are_critical_by_definition(self):
        ts, __, health = make_pair()
        feed_window(ts, buffered=2)
        assert health.state_of(0) == CRITICAL
        report = health.last_report(0)
        assert any("buffered" in reason for reason in report.reasons)

    def test_latency_trend_judged_against_healthy_baseline(self):
        ts, __, health = make_pair()
        feed_window(ts, latency_ns=100.0)   # baseline learns 100ns
        feed_window(ts, latency_ns=250.0)   # 2.5x baseline -> degraded
        assert health.state_of(0) == DEGRADED
        report = health.last_report(0)
        assert report.baseline_p99_ns == 100.0
        # the degraded window must NOT teach the baseline
        feed_window(ts, latency_ns=100.0)
        assert health.last_report(0).baseline_p99_ns == 100.0

    def test_recovery_emits_health_recovered(self):
        ts, audit, health = make_pair()
        feed_window(ts)
        feed_window(ts, drops=1)
        feed_window(ts)
        assert health.state_of(0) == HEALTHY
        assert [e["kind"] for e in audit.events()] == [
            "health_degraded",
            "health_recovered",
        ]

    def test_tiny_windows_skip_ratio_rules(self):
        ts, __, health = make_pair(window_packets=4)
        feed_window(ts, packets=4, drops=2)  # 50% drops but < min_packets
        assert health.state_of(0) == HEALTHY


class TestWiring:
    def test_listeners_fire_on_state_change_only(self):
        ts, __, health = make_pair()
        seen = []
        health.add_listener(lambda report: seen.append((report.replica, report.state)))
        feed_window(ts)
        feed_window(ts, drops=1)
        feed_window(ts, drops=1)  # still degraded: no new event
        assert seen == [(0, DEGRADED)]

    def test_worst_state_and_unhealthy_replicas(self):
        ts, __, health = make_pair()
        for i in range(16):
            ts.record(float(i), latency_ns=100.0, replica=i % 2)
        for i in range(16):
            ts.record(
                float(16 + i),
                latency_ns=100.0,
                replica=i % 2,
                dropped=(i % 2 == 1 and i < 8),
            )
        ts.finish()
        assert health.state_of(1) == CRITICAL  # 4/8 dropped
        assert health.state_of(0) == HEALTHY
        assert health.worst_state() == CRITICAL
        assert health.unhealthy_replicas() == [1]
        snapshot = health.snapshot()
        assert snapshot["1"]["state"] == CRITICAL

    def test_txn_retry_rate_degrades(self):
        class Store:
            commits = 0
            aborts = 0

        store = Store()
        ts, __, health = make_pair(txn_store=store)
        feed_window(ts)
        store.commits, store.aborts = 90, 10  # 10% abort rate
        feed_window(ts)
        assert health.state_of(0) == DEGRADED
        assert any(
            "txn_retry" in reason for reason in health.last_report(0).reasons
        )

    def test_custom_thresholds(self):
        ts, __, health = make_pair(
            thresholds=HealthThresholds(drop_rate_degraded=0.5, drop_rate_critical=0.9)
        )
        feed_window(ts, drops=4)  # 25% < 50%: still healthy
        assert health.state_of(0) == HEALTHY
