"""Prometheus text exposition: conventions and parser round-trip."""

import math

from repro.obs import MetricsRegistry, parse_prometheus, render_prometheus, write_prometheus


def make_registry():
    registry = MetricsRegistry()
    registry.counter("packets_total", "packets seen").inc(41)
    registry.counter("lookups_total", "MAT lookups").labels(result="hit").inc(9)
    registry.counter("lookups_total").labels(result="miss").inc(2)
    registry.gauge("occupancy", "rules resident").set(7)
    histogram = registry.histogram("latency_us", "per-packet latency", buckets=(1, 5, 10))
    for value in (0.5, 0.7, 3.0, 8.0, 25.0):
        histogram.observe(value)
    return registry


class TestRendering:
    def test_help_and_type_headers(self):
        text = render_prometheus(make_registry())
        assert "# HELP packets_total packets seen" in text
        assert "# TYPE packets_total counter" in text
        assert "# TYPE occupancy gauge" in text
        assert "# TYPE latency_us histogram" in text

    def test_histogram_follows_prometheus_conventions(self):
        """Cumulative buckets, +Inf == _count, and a _sum line."""
        parsed = parse_prometheus(render_prometheus(make_registry()))
        buckets = [
            (dict(labels).get("le"), value)
            for labels, value in parsed.series("latency_us_bucket")
        ]
        bounds = [le for le, _ in buckets]
        assert bounds == ["1.0", "5.0", "10.0", "+Inf"]
        counts = [value for _, value in buckets]
        assert counts == [2, 3, 4, 5]  # cumulative, monotonic
        assert counts == sorted(counts)
        assert parsed.value("latency_us_count") == 5
        assert counts[-1] == parsed.value("latency_us_count")
        assert parsed.value("latency_us_sum") == 0.5 + 0.7 + 3.0 + 8.0 + 25.0

    def test_labelled_series_render_sorted_and_quoted(self):
        text = render_prometheus(make_registry())
        assert 'lookups_total{result="hit"} 9' in text
        assert 'lookups_total{result="miss"} 2' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert len(parse_prometheus("")) == 0


class TestRoundTrip:
    def test_every_sample_survives_the_parser(self):
        registry = make_registry()
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed.value("packets_total") == 41
        assert parsed.value("lookups_total", result="hit") == 9
        assert parsed.value("lookups_total", result="miss") == 2
        assert parsed.value("occupancy") == 7
        assert parsed.types["lookups_total"] == "counter"
        assert parsed.helps["packets_total"] == "packets seen"

    def test_label_value_escaping_round_trips(self):
        registry = MetricsRegistry()
        hostile = 'quote " backslash \\ newline \n done'
        registry.counter("odd_total", "odd labels").labels(what=hostile).inc(3)
        text = render_prometheus(registry)
        assert "\n\n" not in text.strip()  # the newline was escaped
        parsed = parse_prometheus(text)
        assert parsed.value("odd_total", what=hostile) == 3

    def test_float_values_round_trip_exactly(self):
        registry = MetricsRegistry()
        registry.gauge("ratio", "").set(0.1 + 0.2)  # 0.30000000000000004
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed.value("ratio") == 0.1 + 0.2

    def test_write_prometheus_counts_samples(self, tmp_path):
        registry = make_registry()
        path = tmp_path / "metrics.prom"
        count = write_prometheus(registry, path)
        text = path.read_text()
        samples = [
            line for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert count == len(samples)
        # A fresh parse of the file agrees with an in-memory render.
        assert parse_prometheus(text).as_dict() == parse_prometheus(
            render_prometheus(registry)
        ).as_dict()

    def test_snapshot_agreement(self):
        """Exposition values match the registry's own snapshot."""
        registry = make_registry()
        parsed = parse_prometheus(render_prometheus(registry))
        snapshot = registry.snapshot()
        assert parsed.value("packets_total") == snapshot["packets_total"]
        assert parsed.value("lookups_total", result="hit") == (
            snapshot["lookups_total{result=hit}"]
        )


def test_nan_free_output():
    registry = MetricsRegistry()
    registry.histogram("empty_hist", "", buckets=(1.0,))
    for _, _, value in parse_prometheus(render_prometheus(registry)).samples:
        assert not math.isnan(value)
