"""Direct API tests for ConsolidatedAction and SnortIDS.from_file."""

import pytest

from repro.core.actions import Decap, Encap, FieldOp, Forward, Modify
from repro.core.consolidation import ConsolidatedAction, consolidate_header_actions
from repro.net import AuthenticationHeader, FiveTuple, Packet, PacketField
from repro.net.addresses import ip_to_int


def make_packet():
    return Packet.from_five_tuple(FiveTuple.make("10.0.0.1", "10.0.0.2", 1, 2), payload=b"a")


class TestConsolidatedActionApi:
    def test_is_noop_only_when_empty(self):
        assert ConsolidatedAction().is_noop
        assert not ConsolidatedAction(drop=True).is_noop
        assert not ConsolidatedAction(field_ops={PacketField.TTL: FieldOp.adjust(-1)}).is_noop
        assert not ConsolidatedAction(leading_decaps=[Decap()]).is_noop
        assert not ConsolidatedAction(net_encaps=[Encap(AuthenticationHeader())]).is_noop

    def test_routing_vs_finalisation_split(self):
        action = consolidate_header_actions(
            [Modify.set(dst_ip=ip_to_int("9.9.9.9")), Modify.ttl_dec(), Modify.set(dscp=10)]
        )
        routing = set(action.routing_ops())
        finalisation = set(action.finalisation_ops())
        assert routing == {PacketField.DST_IP}
        assert finalisation == {PacketField.TTL, PacketField.DSCP}
        assert action.merged_modify_count == 3

    def test_repr_variants(self):
        assert "DROP" in repr(ConsolidatedAction(drop=True))
        assert "FORWARD" in repr(ConsolidatedAction())
        modify = consolidate_header_actions([Modify.set(dst_port=1)])
        assert "modify(dst_port)" in repr(modify)
        encapped = consolidate_header_actions([Encap(AuthenticationHeader(spi=1))])
        assert "encap x1" in repr(encapped)

    def test_source_count_tracks_inputs(self):
        action = consolidate_header_actions([Forward(), Forward(), Modify.set(ttl=9)])
        assert action.source_count == 3

    def test_apply_is_repeatable_for_pure_sets(self):
        action = consolidate_header_actions([Modify.set(dst_port=7777)])
        packet = make_packet()
        action.apply(packet)
        first = packet.serialize()
        action.apply(packet)
        assert packet.serialize() == first  # sets are idempotent

    def test_apply_adjusts_are_not_idempotent(self):
        action = consolidate_header_actions([Modify.ttl_dec()])
        packet = make_packet()
        before = packet.ip.ttl
        action.apply(packet)
        action.apply(packet)
        assert packet.ip.ttl == before - 2


class TestSnortFromFile:
    def test_loads_rule_file(self, tmp_path):
        from repro.nf.snort import SnortIDS

        path = tmp_path / "local.rules"
        path.write_text(
            """
            # local rules
            var HOME_NET 10.0.0.0/8
            alert tcp $HOME_NET any -> any 80 (msg:"from file"; content:"evil"; sid:77;)
            """
        )
        snort = SnortIDS.from_file(path, name="filesnort")
        assert snort.name == "filesnort"
        assert len(snort.rules) == 1
        assert snort.rules[0].sid == 77

    def test_missing_file_raises(self, tmp_path):
        from repro.nf.snort import SnortIDS

        with pytest.raises(FileNotFoundError):
            SnortIDS.from_file(tmp_path / "nope.rules")
