"""Unit tests for the Event Table (repro.core.event_table)."""

import pytest

from repro.core.actions import Drop, Modify
from repro.core.event_table import Event, EventTable


class TestEvent:
    def test_requires_an_update(self):
        with pytest.raises(ValueError):
            Event(fid=1, nf_name="nf", condition=lambda: True)

    def test_requires_callable_condition(self):
        with pytest.raises(TypeError):
            Event(fid=1, nf_name="nf", condition="nope", update_action=Drop())  # type: ignore[arg-type]

    def test_check_evaluates_with_args(self):
        event = Event(1, "nf", condition=lambda a, b: a > b, args=(3, 2), update_action=Drop())
        assert event.check()
        event2 = Event(1, "nf", condition=lambda a, b: a > b, args=(1, 2), update_action=Drop())
        assert not event2.check()

    def test_fire_returns_update_action(self):
        event = Event(1, "nf", condition=lambda: True, update_action=Drop())
        assert isinstance(event.fire(), Drop)
        assert event.triggered
        assert event.trigger_count == 1

    def test_fire_runs_update_function(self):
        calls = []

        def update():
            calls.append("ran")
            return Modify.set(ttl=1)

        event = Event(1, "nf", condition=lambda: True, update_function=update)
        replacement = event.fire()
        assert calls == ["ran"]
        assert isinstance(replacement, Modify)

    def test_explicit_action_overrides_function_result(self):
        event = Event(
            1,
            "nf",
            condition=lambda: True,
            update_action=Drop(),
            update_function=lambda: Modify.set(ttl=1),
        )
        assert isinstance(event.fire(), Drop)

    def test_one_shot_deactivates(self):
        event = Event(1, "nf", condition=lambda: True, update_action=Drop())
        assert event.active
        event.fire()
        assert not event.active

    def test_recurring_event_stays_active(self):
        event = Event(1, "nf", condition=lambda: True, update_action=Drop(), one_shot=False)
        event.fire()
        assert event.active


class TestEventTable:
    def test_register_and_lookup(self):
        table = EventTable()
        event = Event(5, "nf", condition=lambda: False, update_action=Drop())
        table.register(event)
        assert table.events_for(5) == [event]
        assert table.events_for(6) == []
        assert len(table) == 1

    def test_check_fid_fires_matching(self):
        table = EventTable()
        state = {"count": 0}
        event = Event(5, "nf", condition=lambda: state["count"] > 2, update_action=Drop())
        table.register(event)
        assert table.check_fid(5) == []
        state["count"] = 3
        fired = table.check_fid(5)
        assert len(fired) == 1
        assert fired[0][0] is event
        assert isinstance(fired[0][1], Drop)

    def test_one_shot_not_rechecked(self):
        table = EventTable()
        table.register(Event(1, "nf", condition=lambda: True, update_action=Drop()))
        assert len(table.check_fid(1)) == 1
        assert table.check_fid(1) == []
        assert table.active_event_count(1) == 0

    def test_recurring_event_refires_while_condition_holds(self):
        table = EventTable()
        flag = {"on": True}
        table.register(
            Event(1, "nf", condition=lambda: flag["on"], update_action=Drop(), one_shot=False)
        )
        assert len(table.check_fid(1)) == 1
        assert len(table.check_fid(1)) == 1
        flag["on"] = False
        assert table.check_fid(1) == []

    def test_clear_flow(self):
        table = EventTable()
        table.register(Event(1, "nf", condition=lambda: True, update_action=Drop()))
        table.clear_flow(1)
        assert table.check_fid(1) == []
        assert len(table) == 0

    def test_clear_nf_flow_only_removes_that_nf(self):
        table = EventTable()
        table.register(Event(1, "a", condition=lambda: True, update_action=Drop()))
        table.register(Event(1, "b", condition=lambda: True, update_action=Drop()))
        table.clear_nf_flow(1, "a")
        remaining = table.events_for(1)
        assert len(remaining) == 1
        assert remaining[0].nf_name == "b"

    def test_stats_counters(self):
        table = EventTable()
        table.register(Event(1, "nf", condition=lambda: True, update_action=Drop()))
        table.check_fid(1)
        assert table.total_registered == 1
        assert table.total_triggered == 1
        assert table.total_checks == 1

    def test_multiple_events_fire_in_registration_order(self):
        table = EventTable()
        first = Event(1, "a", condition=lambda: True, update_action=Drop())
        second = Event(1, "b", condition=lambda: True, update_action=Drop())
        table.register(first)
        table.register(second)
        fired = [event for event, __ in table.check_fid(1)]
        assert fired == [first, second]
