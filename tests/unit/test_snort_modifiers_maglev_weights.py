"""Unit tests for Snort content modifiers and weighted Maglev backends."""

import pytest

from repro.nf.maglev import Backend, MaglevTable
from repro.nf.snort import DetectionEngine
from repro.nf.snort.rules import RuleParseError, parse_rule


class TestContentModifiers:
    def test_offset_skips_prefix(self):
        rule = parse_rule('alert tcp any any -> any any (content:"abc"; offset:4; sid:1;)')
        assert rule.payload_matches(b"xxxxabc")
        assert not rule.payload_matches(b"abcxxxx")

    def test_depth_bounds_search(self):
        rule = parse_rule('alert tcp any any -> any any (content:"abc"; depth:5; sid:1;)')
        assert rule.payload_matches(b"xxabc")
        assert not rule.payload_matches(b"xxxabc")  # match ends at byte 6 > depth 5

    def test_offset_and_depth_combine(self):
        rule = parse_rule('alert tcp any any -> any any (content:"ab"; offset:2; depth:3; sid:1;)')
        assert rule.payload_matches(b"xxab")
        assert rule.payload_matches(b"xxxab")
        assert not rule.payload_matches(b"xxxxab")  # starts beyond offset+depth window

    def test_modifiers_apply_to_preceding_content_only(self):
        rule = parse_rule(
            'alert tcp any any -> any any (content:"aa"; offset:3; content:"bb"; sid:1;)'
        )
        assert rule.contents[0].offset == 3
        assert rule.contents[1].offset == 0
        assert rule.payload_matches(b"zzzaabb")
        assert not rule.payload_matches(b"aazzbb")  # first content before offset

    def test_modifier_without_content_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule("alert tcp any any -> any any (offset:3; sid:1;)")

    def test_nonpositive_depth_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any -> any any (content:"a"; depth:0; sid:1;)')

    def test_nocase_with_offset(self):
        rule = parse_rule(
            'alert tcp any any -> any any (content:"AbC"; offset:2; nocase; sid:1;)'
        )
        assert rule.payload_matches(b"xxabc")
        assert not rule.payload_matches(b"abcxx")

    def test_engine_verifies_position_after_prescan(self):
        # The AC prescan finds the pattern anywhere; the engine must still
        # reject rules whose positional constraint fails.
        engine = DetectionEngine(
            [parse_rule('alert tcp any any -> any any (content:"evil"; offset:10; sid:7;)')]
        )
        from repro.net.flow import FiveTuple

        matcher = engine.assign_flow_matcher(FiveTuple.make("1.1.1.1", "2.2.2.2", 1, 2))
        assert matcher.inspect(b"evil-at-the-start").verdict == "clean"
        assert matcher.inspect(b"padpadpadpadevil").verdict == "alert"


class TestMaglevWeights:
    def make_backends(self):
        return [
            Backend.make("heavy", "192.168.1.1", 80, weight=3),
            Backend.make("light", "192.168.1.2", 80, weight=1),
        ]

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            Backend.make("bad", "192.168.1.1", 80, weight=0)

    def test_slot_share_proportional_to_weight(self):
        table = MaglevTable(self.make_backends(), table_size=1031)
        share = table.slot_share()
        ratio = share["heavy"] / share["light"]
        assert 2.5 <= ratio <= 3.5  # ~3x, with consistent-hashing noise

    def test_all_slots_still_filled(self):
        table = MaglevTable(self.make_backends(), table_size=131)
        assert all(entry is not None for entry in table.entries_snapshot())

    def test_equal_weights_unchanged_behaviour(self):
        even = [
            Backend.make("a", "192.168.1.1", 80),
            Backend.make("b", "192.168.1.2", 80),
        ]
        table = MaglevTable(even, table_size=1031)
        share = table.slot_share()
        assert abs(share["a"] - share["b"]) / 1031 < 0.1

    def test_weighted_failover_still_minimal(self):
        backends = self.make_backends() + [Backend.make("extra", "192.168.1.3", 80, weight=2)]
        table = MaglevTable(backends, table_size=1031)
        from repro.net.flow import FiveTuple

        flows = [FiveTuple.make("10.0.0.1", "99.0.0.1", 1000 + i, 80) for i in range(200)]
        before = {flow: table.lookup(flow).name for flow in flows}
        backends[1].healthy = False  # fail "light"
        table.rebuild()
        moved = sum(
            1
            for flow in flows
            if before[flow] != "light" and table.lookup(flow).name != before[flow]
        )
        survivors = sum(1 for flow in flows if before[flow] != "light")
        assert moved <= max(2, survivors // 2)
