"""Decision audit log: recording semantics and runtime integration."""

import json

from repro.core.framework import SpeedyBox
from repro.net.headers import TCP_FIN, TCPHeader
from repro.nf import IPFilter, MazuNAT, Monitor
from repro.obs import AuditLog, NULL_AUDIT, load_audit_jsonl, summarize_events
from repro.obs.registry import MetricsRegistry
from repro.traffic import FlowSpec, TrafficGenerator


def make_packets(n=6, sport=1000, fin=False):
    spec = FlowSpec.tcp("10.0.0.1", "20.0.0.1", sport, 80, packets=n, fin=fin)
    return TrafficGenerator([spec]).packets()


def is_fin(packet):
    return isinstance(packet.l4, TCPHeader) and packet.l4.has_flag(TCP_FIN)


class TestAuditLog:
    def test_emit_records_seq_ts_kind_and_fields(self):
        ticks = iter([10.0, 11.5])
        log = AuditLog(clock=lambda: next(ticks))
        first = log.emit("fastpath_compile", fid=7, waves=2)
        second = log.emit("global_mat_evict", fid=9)
        assert first == {
            "seq": 1, "ts": 10.0, "kind": "fastpath_compile", "fid": 7, "waves": 2,
        }
        assert second["seq"] == 2 and second["ts"] == 11.5
        assert len(log) == 2

    def test_events_filter_counts_and_last(self):
        log = AuditLog(clock=lambda: 0.0)
        log.emit("a", n=1)
        log.emit("b", n=2)
        log.emit("a", n=3)
        assert [e["n"] for e in log.events("a")] == [1, 3]
        assert log.counts() == {"a": 2, "b": 1}
        assert log.last("a")["n"] == 3
        assert log.last("missing") is None

    def test_disabled_log_records_nothing(self):
        log = AuditLog(enabled=False)
        assert log.emit("anything", x=1) is None
        assert len(log) == 0
        assert NULL_AUDIT.emit("anything") is None
        assert len(NULL_AUDIT) == 0

    def test_reset_restarts_seq(self):
        log = AuditLog(clock=lambda: 0.0)
        log.emit("a")
        log.reset()
        assert len(log) == 0
        assert log.emit("b")["seq"] == 1

    def test_jsonl_round_trip(self, tmp_path):
        log = AuditLog(clock=lambda: 1.0)
        log.emit("fastpath_compile", fid=3)
        log.emit("migration_freeze", flow="10.0.0.1:1000>20.0.0.1:80")
        path = tmp_path / "audit.jsonl"
        assert log.write_jsonl(path) == 2
        loaded = load_audit_jsonl(path)
        assert loaded == log.events()
        # ... and every line parses independently.
        lines = path.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == [
            "fastpath_compile", "migration_freeze",
        ]

    def test_empty_log_writes_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert AuditLog().write_jsonl(path) == 0
        assert path.read_text() == ""
        assert load_audit_jsonl(path) == []

    def test_summarize_events(self):
        events = [{"kind": "a"}, {"kind": "a"}, {"kind": "b"}, {"n": 1}]
        assert summarize_events(events) == {"a": 2, "b": 1, "?": 1}


class TestRuntimeAuditIntegration:
    def test_speedybox_emits_compile_and_insert(self):
        log = AuditLog(clock=lambda: 0.0)
        runtime = SpeedyBox([IPFilter("fw"), Monitor("mon")], audit=log)
        for packet in make_packets(6, fin=True):
            runtime.process(packet)
        counts = log.counts()
        assert counts["global_mat_insert"] == 1
        assert counts["fastpath_compile"] == 1
        compile_event = log.last("fastpath_compile")
        insert_event = log.last("global_mat_insert")
        assert compile_event["fid"] == insert_event["fid"]
        assert compile_event["waves"] >= 0
        # FIN teardown invalidates the compiled lane with the reason.
        assert log.last("fastpath_invalidate")["reason"] == "flow_delete"

    def test_global_mat_eviction_is_audited(self):
        log = AuditLog(clock=lambda: 0.0)
        runtime = SpeedyBox([MazuNAT("nat")], max_flows=2, audit=log)
        packets = []
        for sport in (1000, 1001, 1002):
            # No FINs, so all three flows stay live and contend.
            packets.extend(make_packets(4, sport=sport))
        for packet in packets:
            runtime.process(packet)
        evictions = log.events("global_mat_evict")
        assert evictions, "capacity 2 with 3 live flows must evict"
        assert all("fid" in event for event in evictions)

    def test_audit_does_not_perturb_metrics(self):
        """The audit log must never touch registry counters (parity)."""
        def run(audit):
            metrics = MetricsRegistry()
            runtime = SpeedyBox([IPFilter("fw")], metrics=metrics, audit=audit)
            for packet in make_packets(8):
                runtime.process(packet)
            return metrics.snapshot()

        assert run(NULL_AUDIT) == run(AuditLog(clock=lambda: 0.0))


def test_generated_flows_close_with_fin():
    # The invalidate test relies on the trailing FIN; pin it.
    assert is_fin(make_packets(4, fin=True)[-1])
    assert not any(is_fin(p) for p in make_packets(4))
