"""Batch lane vs the legacy per-packet oracle — end-to-end equivalence.

The §VII-C methodology applied to the whole-batch lane: drive the same
columnar workload down the lane and through ``packet_view()`` with the
lane disabled, and require *numerically identical* results — LoadResult
(latency list element for element), runtime stats, NF-visible state and
the audit stream (timestamps excluded).  Covers UDP bulk, TCP lifecycle
traffic, flow-table churn, state-function chains (which pin the lane to
its scalar path), both platforms, and the cluster's sharded batch entry
point.
"""

import pytest

from repro.core.actions import Modify
from repro.core.framework import SpeedyBox
from repro.nf import SyntheticNF
from repro.obs.audit import AuditLog
from repro.platform import BessPlatform, OpenNetVMPlatform, PlatformConfig
from repro.traffic.columnar import batch_from_specs, uniform_batch
from repro.traffic.generator import FlowSpec

PLATFORMS = {"bess": BessPlatform, "onvm": OpenNetVMPlatform}


def modify_chain():
    return [
        SyntheticNF("ttl", action=Modify.ttl_dec(), sf_payload_class=None),
        SyntheticNF("mark", action=Modify.set(dst_port=8080), sf_payload_class=None),
        SyntheticNF("fwd", sf_payload_class=None),
    ]


def stateful_chain():
    # Default sf_payload_class registers a state function per flow: the
    # lane's template guards reject it, forcing the scalar path — which
    # must still be exactly equivalent.
    return [SyntheticNF("dpi"), SyntheticNF("dpi2")]


def run_leg(platform_cls, build_chain, batch, *, batch_lane, sbox_kwargs=None):
    audit = AuditLog()
    runtime = SpeedyBox(build_chain(), audit=audit, **(sbox_kwargs or {}))
    platform = platform_cls(runtime, config=PlatformConfig(batch_lane=batch_lane))
    result = platform.run_load(batch)
    events = [{k: v for k, v in e.items() if k != "ts"} for e in audit.events()]
    return result, runtime, events


def assert_legs_identical(platform_cls, build_chain, batch, sbox_kwargs=None):
    fast, fast_rt, fast_audit = run_leg(
        platform_cls, build_chain, batch, batch_lane=True, sbox_kwargs=sbox_kwargs
    )
    slow, slow_rt, slow_audit = run_leg(
        platform_cls, build_chain, batch, batch_lane=False, sbox_kwargs=sbox_kwargs
    )
    assert fast.offered == slow.offered
    assert fast.delivered == slow.delivered
    assert fast.dropped == slow.dropped
    assert fast.makespan_ns == slow.makespan_ns
    assert list(fast.latencies_ns) == list(slow.latencies_ns)
    assert fast_rt.stats() == slow_rt.stats()
    assert fast_audit == slow_audit
    for fast_nf, slow_nf in zip(fast_rt.nfs, slow_rt.nfs):
        assert fast_nf.sf_invocations == slow_nf.sf_invocations, fast_nf.name
        assert fast_nf.payload_writes == slow_nf.payload_writes, fast_nf.name
    return fast, slow


@pytest.mark.parametrize("platform_name", ["bess", "onvm"])
def test_udp_bulk_equivalence(platform_name):
    batch = uniform_batch(64, 6, payload=b"pp", interleave="round_robin", block=16)
    assert_legs_identical(PLATFORMS[platform_name], modify_chain, batch)


@pytest.mark.parametrize("platform_name", ["bess", "onvm"])
def test_tcp_lifecycle_equivalence(platform_name):
    batch = uniform_batch(
        24, 4, protocol="tcp", handshake=True, fin=True, interleave="round_robin"
    )
    assert_legs_identical(PLATFORMS[platform_name], modify_chain, batch)


def test_churn_through_bounded_tables():
    batch = uniform_batch(300, 3, interleave="round_robin", block=32)
    fast, __ = assert_legs_identical(
        BessPlatform,
        modify_chain,
        batch,
        sbox_kwargs=dict(max_tracked_flows=64, max_flows=64),
    )
    assert fast.delivered == len(batch)


def test_stateful_chain_pins_scalar_path():
    batch = uniform_batch(20, 5, payload=b"abc", interleave="round_robin")
    fast, __ = assert_legs_identical(BessPlatform, stateful_chain, batch)
    assert fast.delivered == len(batch)


def test_mixed_specs_shuffled_equivalence():
    specs = [
        FlowSpec.udp("10.1.0.1", "20.0.0.1", 1000, 80, packets=5, payload=b"q"),
        FlowSpec.tcp("10.1.0.2", "20.0.0.1", 1001, 443, packets=3,
                     handshake=True, fin=True),
        FlowSpec.udp("10.1.0.3", "20.0.0.9", 1002, 53, packets=7),
        FlowSpec.tcp("10.1.0.4", "20.0.0.1", 1003, 80, packets=2, handshake=True),
    ]
    batch = batch_from_specs(specs, interleave="shuffled", seed=11)
    assert_legs_identical(BessPlatform, modify_chain, batch)


def test_cluster_batch_matches_per_packet():
    from repro.scale.cluster import ScaleCluster

    def factory():
        return modify_chain()

    batch = uniform_batch(90, 4, interleave="round_robin", block=16)
    lane_cluster = ScaleCluster(factory, platform="bess", replicas=3)
    oracle_cluster = ScaleCluster(factory, platform="bess", replicas=3)

    lane = lane_cluster.run_load_batch(batch)
    oracle = oracle_cluster.run_load(batch.packet_view())

    assert lane.total.offered == oracle.total.offered
    assert lane.total.delivered == oracle.total.delivered
    assert lane.total.dropped == oracle.total.dropped
    assert sorted(lane.total.latencies_ns) == sorted(oracle.total.latencies_ns)
    assert set(lane.per_replica) == set(oracle.per_replica)
    for rid in lane.per_replica:
        assert lane.per_replica[rid].offered == oracle.per_replica[rid].offered, rid
        assert (
            lane.per_replica[rid].delivered == oracle.per_replica[rid].delivered
        ), rid


def test_cluster_batch_rejects_frozen_and_ft():
    from repro.scale.cluster import MigrationError, ScaleCluster

    cluster = ScaleCluster(modify_chain, platform="bess", replicas=2)
    batch = uniform_batch(4, 1)
    cluster._frozen[batch.five_tuple_of(0).canonical()] = []
    with pytest.raises(MigrationError):
        cluster.run_load_batch(batch)
