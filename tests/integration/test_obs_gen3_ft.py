"""Gen-3 acceptance: telemetry sees the failure before recovery fixes it.

A replica is killed mid-run while windowed telemetry, the health model
and the SLO engine watch the cluster.  The dark-zone contract this PR
lights up: the doomed replica must be flagged unhealthy and an SLO
burn-rate alert must land in the audit log *before* the FT layer's
``ft_failover_complete`` — degraded-before-dead, ordered by audit seq.
Also covers the FT recovery timeline spans (detect → buffer → restore →
replay → drain on the ``ft:r<id>`` tracer track).
"""

from repro.ft import FaultInjector, FaultTolerance
from repro.nf import IPFilter, MazuNAT, Monitor
from repro.obs import (
    AuditLog,
    HealthModel,
    PacketTracer,
    SLOEngine,
    TimeSeries,
)
from repro.obs.health import HEALTHY
from repro.scale import ScaleCluster
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets

KILL_AT = 150
WINDOW_PACKETS = 32


def build_chain():
    return [
        MazuNAT("nat", external_ip="203.0.113.99", port_range=(20000, 60000)),
        Monitor("mon"),
        IPFilter("fw"),
    ]


def workload(flows=48, packets_per_flow=10):
    specs = [
        FlowSpec.tcp(
            f"10.6.{i // 200}.{i % 200 + 1}",
            f"99.4.0.{i % 20 + 1}",
            7000 + i,
            80,
            packets=packets_per_flow,
            handshake=True,
        )
        for i in range(flows)
    ]
    return TrafficGenerator(specs, interleave="round_robin", seed=11).packets()


def run_scenario():
    audit = AuditLog()
    tracer = PacketTracer()
    timeseries = TimeSeries(window_packets=WINDOW_PACKETS)
    health = HealthModel(timeseries=timeseries, audit=audit)
    slo = SLOEngine.from_specs(
        ["p99<250us", "loss<0.1%"], timeseries=timeseries, audit=audit
    )
    cluster = ScaleCluster(
        build_chain,
        replicas=3,
        audit=audit,
        timeseries=timeseries,
    )
    ft = FaultTolerance(
        cluster,
        checkpoint_interval=16,
        injector=FaultInjector(kill_at=KILL_AT),
        audit=audit,
        tracer=tracer,
    )
    health.add_listener(ft.on_health)
    packets = workload()
    result = cluster.run_load(clone_packets(packets))
    if ft.dead:
        ft.recover_all()
    return {
        "audit": audit,
        "tracer": tracer,
        "timeseries": timeseries,
        "health": health,
        "slo": slo,
        "ft": ft,
        "result": result,
        "offered": len(packets),
    }


class TestDegradedBeforeDead:
    def test_health_and_burn_alert_precede_failover_complete(self):
        ctx = run_scenario()
        audit = ctx["audit"]

        kills = audit.events("ft_kill")
        assert len(kills) == 1
        victim = kills[0]["replica"]

        complete = audit.events("ft_failover_complete")
        assert len(complete) == 1
        complete_seq = complete[0]["seq"]

        # The doomed replica was flagged while its packets were still
        # being buffered — before recovery finished.
        flags = [
            event
            for kind in ("health_degraded", "health_critical")
            for event in audit.events(kind)
            if event["replica"] == victim
        ]
        assert flags, "health never flagged the killed replica"
        assert min(event["seq"] for event in flags) < complete_seq

        # The loss SLO burned (buffered packets are bad events) and the
        # alert is ordered before the failover completion too.
        alerts = audit.events("slo_burn_alert")
        assert alerts, "no SLO burn alert was recorded"
        assert min(event["seq"] for event in alerts) < complete_seq

        # Charging the recovery stall announces the latency regime
        # shift before the failover is declared complete.
        shifts = audit.events("latency_regime_shift")
        assert shifts, "no latency_regime_shift was recorded"
        stall_shifts = [e for e in shifts if e.get("component") == "stall"]
        assert stall_shifts, "no stall-component regime shift"
        assert min(event["seq"] for event in stall_shifts) < complete_seq

    def test_windows_closed_mid_run_and_recovery_is_loss_free(self):
        ctx = run_scenario()
        timeseries = ctx["timeseries"]
        assert timeseries.windows_closed >= ctx["offered"] // WINDOW_PACKETS
        assert timeseries.total_buffered > 0  # the kill was observed

        # Loss-free failover: buffered packets are delivered by replay.
        ft = ctx["ft"]
        recovered = sum(r.packets_delivered for r in ft.recoveries)
        assert ft.packets_buffered > 0
        assert recovered == ft.packets_buffered

        # Health saw the victim; after recovery its state may still be
        # unhealthy (no healthy window closed after the run ended).
        health = ctx["health"]
        assert health.worst_state() != HEALTHY

        slo = ctx["slo"]
        assert slo.summary()["loss<0.1%"]["bad"] > 0


class TestRecoveryTimeline:
    def test_ft_track_carries_the_recovery_stages(self):
        ctx = run_scenario()
        tracer = ctx["tracer"]
        victim = ctx["audit"].events("ft_kill")[0]["replica"]
        track = f"ft:r{victim}"

        assert track in tracer.tracks()
        names = [span.name for span in tracer.spans if span.track == track]
        for stage in ("buffer", "restore", "replay", "drain"):
            assert stage in names, f"missing {stage} span on {track}"
        # the detect marker fires at kill time, before every stage span
        detects = [i for i in tracer._instants if i.track == track and i.name == "detect"]
        assert len(detects) == 1
        stage_spans = [span for span in tracer.spans if span.track == track]
        assert all(detects[0].ts_ns <= span.start_ns for span in stage_spans)

    def test_recovery_metrics_accumulate(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        cluster = ScaleCluster(build_chain, replicas=2)
        ft = FaultTolerance(
            cluster,
            checkpoint_interval=8,
            injector=FaultInjector(kill_at=40),
            metrics=registry,
        )
        cluster.run_load(clone_packets(workload(flows=16, packets_per_flow=6)))
        assert ft.dead
        ft.recover_all()
        snapshot = registry.snapshot()
        assert snapshot.get("ft_restore_ns_total", 0.0) >= 0.0
        assert snapshot.get("ft_replay_ns_total", 0.0) > 0.0
        assert snapshot.get("ft_drain_ns_total", 0.0) >= 0.0
