"""End-to-end observability: exact span attribution + the obs dashboard.

The tentpole acceptance check lives here: a fig8-style run (9 IPFilter
chain) with flow spans at ``every=1`` / no cap produces per-stage span
cycles that sum to the run's total cycle count with exact ``==``
equality — the span layer, the Fig. 7 profiler and the raw CycleMeter
arithmetic all agree bit for bit.  The CLI half drives ``repro demo``
with every artifact flag and renders ``repro obs report`` from the
files it wrote.
"""

from repro.cli import main
from repro.core.framework import SpeedyBox
from repro.nf import IPFilter
from repro.obs import CycleAttribution, FlowSpanRecorder
from repro.platform import BessPlatform
from repro.platform.costs import CostModel
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets


def fig8_chain():
    return [IPFilter(f"ipfilter{i}") for i in range(9)]


def fig8_packets(flows=6, per_flow=30):
    specs = [
        FlowSpec.tcp(f"10.1.{i}.1", "20.0.0.1", 5000 + i, 80, packets=per_flow)
        for i in range(flows)
    ]
    return TrafficGenerator(specs, interleave="round_robin").packets()


class TestExactAttribution:
    def test_loaded_run_spans_sum_to_total_cycles(self):
        """Acceptance: span attribution == run total, exact equality."""
        model = CostModel()
        packets = fig8_packets()
        spans = FlowSpanRecorder(model=model, every=1, max_spans_per_flow=None)
        platform = BessPlatform(SpeedyBox(fig8_chain()), spans=spans)
        result = platform.run_load(clone_packets(packets))
        assert result.delivered == len(packets)
        assert spans.packets_sampled == len(packets)

        # The oracle: the identical run's reports, summed raw and bucketed
        # through the Fig. 7 profiler.
        attribution = CycleAttribution(model)
        oracle = SpeedyBox(fig8_chain())
        reports = [oracle.process(p) for p in clone_packets(packets)]
        attribution.ingest_all(reports)
        raw_total = sum(r.total_meter().cycles(model) for r in reports)

        span_total = sum(
            record["args"]["cycles"]
            for record in spans.records
            if record["depth"] == 1
        )
        root_total = sum(root["args"]["cycles"] for root in spans.roots())
        assert span_total == raw_total  # exact ==, no approx
        assert root_total == raw_total
        assert attribution.total_cycles() == raw_total

    def test_per_stage_spans_match_profiler_stages(self):
        """Fixed-meter stages agree bucket by bucket, not just in total."""
        model = CostModel()
        packets = fig8_packets(flows=3, per_flow=20)
        spans = FlowSpanRecorder(model=model, every=1, max_spans_per_flow=None)
        platform = BessPlatform(SpeedyBox(fig8_chain()), spans=spans)
        platform.run_load(clone_packets(packets))

        attribution = CycleAttribution(model)
        oracle = SpeedyBox(fig8_chain())
        attribution.ingest_all(oracle.process(p) for p in clone_packets(packets))

        by_stage = {}
        for record in spans.records:
            if record["depth"] != 1:
                continue
            stage = record["args"]["stage"]
            if stage in ("nf", "sf"):
                continue  # NF buckets are keyed by name in the profiler
            by_stage[stage] = by_stage.get(stage, 0.0) + record["args"]["cycles"]
        profiler_stages = attribution.stage_cycles()
        for stage, cycles in by_stage.items():
            assert cycles == profiler_stages[stage]

    def test_loaded_roots_carry_sim_latency(self):
        spans = FlowSpanRecorder(every=1, max_spans_per_flow=None)
        platform = BessPlatform(SpeedyBox(fig8_chain()), spans=spans)
        platform.run_load(fig8_packets(flows=2, per_flow=10))
        latencies = [
            root["args"].get("sim_latency_ns") for root in spans.roots()
        ]
        assert all(value is not None and value > 0 for value in latencies)


class TestReportCli:
    def run_demo(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        spans = tmp_path / "spans.jsonl"
        audit = tmp_path / "audit.jsonl"
        status = main([
            "demo", "--chain", "firewall,monitor", "--flows", "8",
            "--metrics-prom", str(metrics),
            "--span-out", str(spans), "--span-every", "1",
            "--audit-out", str(audit),
        ])
        assert status == 0
        capsys.readouterr()
        return metrics, spans, audit

    def test_obs_report_renders_every_section(self, tmp_path, capsys):
        metrics, spans, audit = self.run_demo(tmp_path, capsys)
        status = main([
            "obs", "report",
            "--metrics", str(metrics),
            "--spans", str(spans),
            "--audit", str(audit),
            "--slo-us", "50",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "repro obs report" in out
        assert "flows by latency" in out
        assert "SLO attainment" in out
        assert "cycle attribution" in out
        assert "audit events" in out
        assert "metrics" in out
        assert "fastpath_compile" in out

    def test_obs_report_accepts_json_metrics(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        status = main([
            "demo", "--chain", "firewall", "--flows", "4",
            "--metrics-json", str(metrics),
        ])
        assert status == 0
        capsys.readouterr()
        assert main(["obs", "report", "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "metrics" in out
        assert "chain_packets_total" in out
        # A single artifact is enough: no "(no artifacts given ...)" hint.
        assert "no artifacts" not in out

    def test_obs_report_without_artifacts_is_an_error(self, capsys):
        assert main(["obs", "report"]) == 2
        assert "at least one" in capsys.readouterr().err
