"""End-to-end observability: exact span attribution + the obs dashboard.

The tentpole acceptance check lives here: a fig8-style run (9 IPFilter
chain) with flow spans at ``every=1`` / no cap produces per-stage span
cycles that sum to the run's total cycle count with exact ``==``
equality — the span layer, the Fig. 7 profiler and the raw CycleMeter
arithmetic all agree bit for bit.  The CLI half drives ``repro demo``
with every artifact flag and renders ``repro obs report`` from the
files it wrote.
"""

from repro.cli import main
from repro.core.framework import SpeedyBox
from repro.nf import IPFilter
from repro.obs import CycleAttribution, FlowSpanRecorder
from repro.platform import BessPlatform
from repro.platform.costs import CostModel
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets


def fig8_chain():
    return [IPFilter(f"ipfilter{i}") for i in range(9)]


def fig8_packets(flows=6, per_flow=30):
    specs = [
        FlowSpec.tcp(f"10.1.{i}.1", "20.0.0.1", 5000 + i, 80, packets=per_flow)
        for i in range(flows)
    ]
    return TrafficGenerator(specs, interleave="round_robin").packets()


class TestExactAttribution:
    def test_loaded_run_spans_sum_to_total_cycles(self):
        """Acceptance: span attribution == run total, exact equality."""
        model = CostModel()
        packets = fig8_packets()
        spans = FlowSpanRecorder(model=model, every=1, max_spans_per_flow=None)
        platform = BessPlatform(SpeedyBox(fig8_chain()), spans=spans)
        result = platform.run_load(clone_packets(packets))
        assert result.delivered == len(packets)
        assert spans.packets_sampled == len(packets)

        # The oracle: the identical run's reports, summed raw and bucketed
        # through the Fig. 7 profiler.
        attribution = CycleAttribution(model)
        oracle = SpeedyBox(fig8_chain())
        reports = [oracle.process(p) for p in clone_packets(packets)]
        attribution.ingest_all(reports)
        raw_total = sum(r.total_meter().cycles(model) for r in reports)

        span_total = sum(
            record["args"]["cycles"]
            for record in spans.records
            if record["depth"] == 1
        )
        root_total = sum(root["args"]["cycles"] for root in spans.roots())
        assert span_total == raw_total  # exact ==, no approx
        assert root_total == raw_total
        assert attribution.total_cycles() == raw_total

    def test_per_stage_spans_match_profiler_stages(self):
        """Fixed-meter stages agree bucket by bucket, not just in total."""
        model = CostModel()
        packets = fig8_packets(flows=3, per_flow=20)
        spans = FlowSpanRecorder(model=model, every=1, max_spans_per_flow=None)
        platform = BessPlatform(SpeedyBox(fig8_chain()), spans=spans)
        platform.run_load(clone_packets(packets))

        attribution = CycleAttribution(model)
        oracle = SpeedyBox(fig8_chain())
        attribution.ingest_all(oracle.process(p) for p in clone_packets(packets))

        by_stage = {}
        for record in spans.records:
            if record["depth"] != 1:
                continue
            stage = record["args"]["stage"]
            if stage in ("nf", "sf"):
                continue  # NF buckets are keyed by name in the profiler
            by_stage[stage] = by_stage.get(stage, 0.0) + record["args"]["cycles"]
        profiler_stages = attribution.stage_cycles()
        for stage, cycles in by_stage.items():
            assert cycles == profiler_stages[stage]

    def test_loaded_roots_carry_sim_latency(self):
        spans = FlowSpanRecorder(every=1, max_spans_per_flow=None)
        platform = BessPlatform(SpeedyBox(fig8_chain()), spans=spans)
        platform.run_load(fig8_packets(flows=2, per_flow=10))
        latencies = [
            root["args"].get("sim_latency_ns") for root in spans.roots()
        ]
        assert all(value is not None and value > 0 for value in latencies)


class TestReportCli:
    def run_demo(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        spans = tmp_path / "spans.jsonl"
        audit = tmp_path / "audit.jsonl"
        status = main([
            "demo", "--chain", "firewall,monitor", "--flows", "8",
            "--metrics-prom", str(metrics),
            "--span-out", str(spans), "--span-every", "1",
            "--audit-out", str(audit),
        ])
        assert status == 0
        capsys.readouterr()
        return metrics, spans, audit

    def test_obs_report_renders_every_section(self, tmp_path, capsys):
        metrics, spans, audit = self.run_demo(tmp_path, capsys)
        status = main([
            "obs", "report",
            "--metrics", str(metrics),
            "--spans", str(spans),
            "--audit", str(audit),
            "--slo-us", "50",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "repro obs report" in out
        assert "flows by latency" in out
        assert "SLO attainment" in out
        assert "cycle attribution" in out
        assert "audit events" in out
        assert "metrics" in out
        assert "fastpath_compile" in out

    def test_obs_report_accepts_json_metrics(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        status = main([
            "demo", "--chain", "firewall", "--flows", "4",
            "--metrics-json", str(metrics),
        ])
        assert status == 0
        capsys.readouterr()
        assert main(["obs", "report", "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "metrics" in out
        assert "chain_packets_total" in out
        # A single artifact is enough: no "(no artifacts given ...)" hint.
        assert "no artifacts" not in out

    def test_obs_report_without_artifacts_is_an_error(self, capsys):
        assert main(["obs", "report"]) == 2
        assert "at least one" in capsys.readouterr().err


class TestGen3Sections:
    """ft_*/txn_*/health_*/slo_* audit kinds and telemetry windows all
    surface in the dashboard (the report used to drop ft_*/txn_*)."""

    def run_scale(self, tmp_path, capsys):
        audit = tmp_path / "audit.jsonl"
        windows = tmp_path / "windows.jsonl"
        status = main([
            "scale", "--replicas", "3", "--flows", "24",
            "--kill-at", "100", "--checkpoint-every", "16",
            "--audit-out", str(audit),
            "--timeseries-out", str(windows), "--window-packets", "32",
            "--slo", "p99<250us", "--slo", "loss<0.1%",
        ])
        assert status == 0
        capsys.readouterr()
        return audit, windows

    def test_report_includes_ft_txn_health_and_windows(self, tmp_path, capsys):
        audit, windows = self.run_scale(tmp_path, capsys)
        status = main([
            "obs", "report", "--audit", str(audit), "--windows", str(windows),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "fault tolerance" in out
        assert "ft_failover_complete" in out
        assert "recoveries (" in out
        assert "health & SLO" in out
        assert "slo_burn_alert" in out
        assert "telemetry windows" in out

    def test_obs_watch_tables_windows_and_health(self, tmp_path, capsys):
        audit, windows = self.run_scale(tmp_path, capsys)
        assert main(["obs", "watch", "--windows", str(windows),
                     "--audit", str(audit)]) == 0
        out = capsys.readouterr().out
        assert "telemetry windows" in out
        assert "p99_us" in out
        assert "health & SLO" in out

    def test_obs_watch_needs_windows(self, capsys):
        assert main(["obs", "watch"]) == 2
        assert "--windows" in capsys.readouterr().err

    def test_obs_diff_gates_regressions(self, tmp_path, capsys):
        import json

        base = tmp_path / "base"
        cur = tmp_path / "cur"
        base.mkdir()
        cur.mkdir()
        payload = {"experiment": "x", "metrics": {"rate_mpps": 2.0}}
        (base / "BENCH_x.json").write_text(json.dumps(payload))
        (cur / "BENCH_x.json").write_text(json.dumps(payload))
        assert main(["obs", "diff", "--baseline", str(base),
                     "--current", str(cur)]) == 0
        capsys.readouterr()
        payload["metrics"]["rate_mpps"] = 1.0
        (cur / "BENCH_x.json").write_text(json.dumps(payload))
        assert main(["obs", "diff", "--baseline", str(base),
                     "--current", str(cur)]) == 1
        assert "regression" in capsys.readouterr().out
        assert main(["obs", "diff"]) == 2

    def test_txn_section_renders_from_audit_kinds(self):
        from repro.obs.report import render_txn_summary

        events = [
            {"kind": "txn_commit", "txn": "a", "reads": 1, "writes": 1},
            {"kind": "txn_abort", "txn": "b", "key": "('natpool', 'next')",
             "expected": 1, "found": 2},
            {"kind": "txn_abort", "txn": "c", "key": "('natpool', 'next')",
             "expected": 2, "found": 3},
        ]
        text = render_txn_summary(events)
        assert "commits audited : 1" in text
        assert "aborts          : 2" in text
        assert "natpool" in text
