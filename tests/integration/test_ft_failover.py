"""Failover end to end: kill a replica mid-run, recover, lose nothing.

Drives the whole ``repro.ft`` stack through the cluster's public
surface: the equivalence oracle under churn, the crash-during-migration
guard, cross-replica port-pool safety under concurrent failures, the
migration audit trail's replay counts, and the autoscaler's reaction to
a failover placement event.
"""

import pytest

from repro.ft import (
    FailoverError,
    FaultInjector,
    FaultTolerance,
    SharedAggregate,
    SharedPortPool,
    TransactionalStore,
    verify_equivalence_failover,
)
from repro.obs.audit import AuditLog
from repro.scale import Autoscaler, AutoscalerConfig, MigrationError, ScaleCluster
from repro.traffic import FlowSpec, TrafficGenerator
from repro.nf import IPFilter, MazuNAT, Monitor

PORTS = (20000, 60000)
EXTERNAL_IP = "203.0.113.80"


def reference_chain():
    return [
        MazuNAT("nat", external_ip=EXTERNAL_IP, port_range=PORTS),
        Monitor("mon"),
        IPFilter("fw"),
    ]


def shared_state():
    store = TransactionalStore()
    pool = SharedPortPool(store, port_range=PORTS)
    aggregate = SharedAggregate(store, name="mon_total")
    return store, pool, aggregate


def cluster_chain_factory(pool, aggregate):
    def chain():
        return [
            MazuNAT("nat", external_ip=EXTERNAL_IP, port_range=PORTS, port_pool=pool),
            Monitor("mon", aggregate=aggregate),
            IPFilter("fw"),
        ]

    return chain


def workload(flows=24, packets_per_flow=10, fin_every=3, seed=9):
    specs = [
        FlowSpec.tcp(
            f"10.3.{i // 200}.{i % 200 + 1}",
            f"99.2.0.{i % 20 + 1}",
            6000 + i,
            80,
            packets=packets_per_flow,
            handshake=True,
            fin=(fin_every is not None and i % fin_every == 0),
        )
        for i in range(flows)
    ]
    return TrafficGenerator(specs, interleave="round_robin", seed=seed).packets()


class TestFailoverOracle:
    def test_kill_one_of_four_under_churn_is_equivalent(self):
        """The acceptance scenario: 4 replicas, churned flows, one dies
        mid-run — recovery is loss-free, duplicate-free, state-identical."""
        __, pool, aggregate = shared_state()
        packets = workload()
        report = verify_equivalence_failover(
            reference_chain,
            packets,
            kill_at=len(packets) // 2,
            cluster_chain_factory=cluster_chain_factory(pool, aggregate),
            replicas=4,
            checkpoint_interval=16,
            recover_after=24,
            churn=4,
        )
        assert report.equivalent, report.summary()
        assert report.buffered_packets == report.delivered_packets
        assert report.flows_restored + report.flows_rebuilt > 0
        # the shared aggregate counted every offered packet exactly once
        assert aggregate.packets == len(packets)

    def test_flows_born_after_last_checkpoint_rebuild_from_log(self):
        """An interval larger than the stream means no flow ever got a
        snapshot — recovery is pure log replay, and still equivalent."""
        __, pool, aggregate = shared_state()
        packets = workload(flows=12, packets_per_flow=6)
        report = verify_equivalence_failover(
            reference_chain,
            packets,
            kill_at=len(packets) // 3,
            cluster_chain_factory=cluster_chain_factory(pool, aggregate),
            replicas=2,
            checkpoint_interval=10 * len(packets),
            recover_after=10,
        )
        assert report.equivalent, report.summary()
        assert report.flows_restored == 0
        assert report.flows_rebuilt > 0

    def test_completed_flows_are_not_resurrected_by_replay(self):
        """A flow that FINished before the kill must stay finished.

        Its teardown released the shared NAT port (and the per-flow
        idempotency record with it), so rebuilding it from the log
        would re-draw a *different* port from the freed list and leave
        resurrected state under a permuted post-NAT key — the reference
        run has no such flow. Recovery must skip it entirely: killing
        the replica on the stream's last packet, with an interval too
        large for any checkpoint, forces the pure-replay path that used
        to hit this.
        """
        __, pool, aggregate = shared_state()
        specs = [
            FlowSpec.tcp(
                f"10.7.{i}.9",
                f"99.4.0.{i + 1}",
                7000 + i,
                443,
                packets=[2, 3, 8, 8][i],
                handshake=False,
                # the two early-FIN flows release their pool ports
                fin=(i in (1, 2)),
            )
            for i in range(4)
        ]
        packets = TrafficGenerator(specs, interleave="round_robin", seed=0).packets()
        report = verify_equivalence_failover(
            reference_chain,
            packets,
            kill_at=len(packets) - 1,
            cluster_chain_factory=cluster_chain_factory(pool, aggregate),
            replicas=2,
            checkpoint_interval=10 * len(packets),
        )
        assert report.equivalent, report.summary()
        # only flows still live at the kill were rebuilt
        assert report.flows_rebuilt <= 2

    def test_recovery_at_end_of_stream(self):
        """recover_after=None leaves the replica dead until the caller
        recovers — buffered traffic is delivered then, still loss-free."""
        __, pool, aggregate = shared_state()
        packets = workload(flows=16, packets_per_flow=8)
        report = verify_equivalence_failover(
            reference_chain,
            packets,
            kill_at=int(len(packets) * 0.75),
            cluster_chain_factory=cluster_chain_factory(pool, aggregate),
            replicas=3,
            checkpoint_interval=8,
        )
        assert report.equivalent, report.summary()
        assert report.buffered_packets > 0


class TestCrashDuringMigration:
    def test_freeze_buffer_is_absorbed_and_delivered_once(self):
        """Killing a replica while one of its flows is frozen mid-migration
        must deliver that freeze buffer exactly once (via recovery) and
        cancel the migration."""
        cluster = ScaleCluster(reference_chain, replicas=4)
        ft = FaultTolerance(cluster, checkpoint_interval=8)
        packets = workload(flows=8, packets_per_flow=8, fin_every=None)
        half = len(packets) // 2
        for packet in packets[:half]:
            cluster.process(packet)

        key = sorted(cluster.flow_homes())[0]
        home = cluster.home_of(key)
        cluster.begin_migration(key)
        frozen = [
            p for p in packets[half:] if p.five_tuple().canonical() == key
        ][:2]
        for packet in frozen:
            assert cluster.process(packet) is None  # buffered by the freeze

        ft.kill(home)
        assert ft.dead[home].frozen_absorbed == len(frozen)
        assert not cluster._freeze_groups  # migration cancelled

        # completing the cancelled migration must refuse, not double-replay
        survivor = sorted(cluster.replicas)[0]
        with pytest.raises(MigrationError):
            cluster.complete_migration(key, survivor)

        report = ft.recover(home)
        assert report.packets_delivered >= len(frozen)
        total = sum(
            replica.runtime.nfs[1].total_packets()
            for replica in cluster.replicas.values()
        )
        assert total == half + len(frozen)  # exactly once, no double delivery

    def test_begin_migration_refuses_dead_home(self):
        cluster = ScaleCluster(reference_chain, replicas=2)
        ft = FaultTolerance(cluster, checkpoint_interval=8)
        packets = workload(flows=4, packets_per_flow=4, fin_every=None)
        for packet in packets:
            cluster.process(packet)
        key = sorted(cluster.flow_homes())[0]
        ft.kill(cluster.home_of(key))
        with pytest.raises(MigrationError):
            cluster.begin_migration(key)


class TestSharedPoolUnderFailover:
    def test_no_port_double_allocation_across_concurrent_failovers(self):
        """Two replicas die back to back; the survivors rebuild their
        flows by replay.  Every flow keeps its original port and no port
        serves two flows — the pinned acceptance property."""
        store, pool, aggregate = shared_state()
        cluster = ScaleCluster(cluster_chain_factory(pool, aggregate), replicas=4)
        ft = FaultTolerance(cluster, checkpoint_interval=12, store=store)
        packets = workload(flows=20, packets_per_flow=8, fin_every=None)
        two_thirds = 2 * len(packets) // 3
        for packet in packets[:two_thirds]:
            cluster.process(packet)

        before = pool.allocated()
        victims = sorted(cluster.replicas)[:2]
        for rid in victims:
            ft.kill(rid)
        for packet in packets[two_thirds:]:
            cluster.process(packet)  # buffers against both dead replicas
        reports = ft.recover_all()
        assert len(reports) == 2

        after = pool.allocated()
        assert after == before  # replay re-acquired, never re-allocated
        ports = list(after.values())
        assert len(ports) == len(set(ports))  # no port serves two flows
        # every offered packet went through exactly once
        total = sum(
            replica.runtime.nfs[1].total_packets()
            for replica in cluster.replicas.values()
        )
        assert total == len(packets)
        assert aggregate.packets == len(packets)

    def test_cannot_kill_the_last_replica(self):
        cluster = ScaleCluster(reference_chain, replicas=1)
        ft = FaultTolerance(cluster, checkpoint_interval=8)
        with pytest.raises(FailoverError):
            ft.kill(0)


class TestAuditTrail:
    def test_migration_transfer_records_replayed_count(self):
        """Satellite fix: the migrator's audit event carries how many
        freeze-buffered packets the caller replays on the target."""
        audit = AuditLog()
        cluster = ScaleCluster(reference_chain, replicas=2, audit=audit)
        packets = workload(flows=4, packets_per_flow=6, fin_every=None)
        half = len(packets) // 2
        for packet in packets[:half]:
            cluster.process(packet)
        key = sorted(cluster.flow_homes())[0]
        src = cluster.home_of(key)
        dst = next(rid for rid in cluster.replicas if rid != src)
        cluster.begin_migration(key)
        held = [p for p in packets[half:] if p.five_tuple().canonical() == key][:3]
        for packet in held:
            cluster.process(packet)
        cluster.complete_migration(key, dst)

        transfer = audit.last("migration_transfer")
        assert transfer["replayed"] == len(held)
        replay = audit.last("migration_replay")
        assert replay["buffered"] == replay["replayed"] == len(held)

    def test_failover_emits_the_full_event_sequence(self):
        audit = AuditLog()
        cluster = ScaleCluster(reference_chain, replicas=3, audit=audit)
        ft = FaultTolerance(cluster, checkpoint_interval=8)
        packets = workload(flows=9, packets_per_flow=8, fin_every=None)
        for packet in packets[: 2 * len(packets) // 3]:
            cluster.process(packet)
        victim = ft.kill()
        for packet in packets[2 * len(packets) // 3:]:
            cluster.process(packet)
        ft.recover(victim)

        counts = audit.counts()
        for kind in ("ft_checkpoint", "ft_kill", "ft_buffer", "ft_restore",
                     "ft_replay", "ft_failover_complete"):
            assert counts.get(kind, 0) > 0, f"missing {kind} events"
        complete = audit.last("ft_failover_complete")
        assert complete["replica"] == victim
        assert complete["delivered"] == ft.packets_buffered


class TestAutoscalerPlacementEvents:
    def test_failover_restarts_the_cooldown(self):
        """A failover during the window counts as a placement event: the
        next autoscaler decision holds in cooldown instead of piling a
        scale action onto a still-settling cluster."""
        cluster = ScaleCluster(reference_chain, replicas=3)
        ft = FaultTolerance(
            cluster,
            checkpoint_interval=16,
            injector=FaultInjector(kill_at=40, recover_after=20),
        )
        scaler = Autoscaler(
            cluster,
            # watermarks that always read as pressure, so only the
            # cooldown can hold the decision back
            AutoscalerConfig(high_ring_occupancy=0.0, high_core_utilisation=0.0,
                             cooldown_windows=1, max_replicas=8),
        )
        packets = workload(flows=12, packets_per_flow=10, fin_every=None)
        decision = scaler.step(packets)
        assert "failover" in scaler.placement_events
        assert decision.action == 0 and decision.reason == "cooldown"
        assert len(ft.recoveries) == 1
        # the window after the quiet one is free to scale again
        decision = scaler.step(workload(flows=6, packets_per_flow=4, seed=3))
        assert decision.action == +1
