"""Failure injection: misbehaving NFs must not corrupt the framework.

SpeedyBox's contract under NF exceptions is fail-stop per packet: the
exception propagates to the caller (an NF crash is an NF bug, not
something to paper over), but the framework's tables stay consistent —
no half-recorded rule is ever installed, and unrelated flows keep their
fast paths.
"""

import pytest

from repro.core.framework import PathTaken, SpeedyBox
from repro.core.local_mat import InstrumentationAPI
from repro.net.packet import Packet
from repro.nf import Monitor
from repro.nf.base import NetworkFunction
from repro.platform.costs import Operation
from repro.traffic import FlowSpec, TrafficGenerator


class FaultyNF(NetworkFunction):
    """Raises on selected packets; records normally otherwise."""

    def __init__(self, name="faulty", fail_on=frozenset(), fail_in_sf=False):
        super().__init__(name)
        self.fail_on = set(fail_on)
        self.fail_in_sf = fail_in_sf
        self.seen = 0

    def work(self, packet: Packet) -> None:
        self.charge(Operation.COUNTER_UPDATE)
        if self.fail_in_sf and self.seen in self.fail_on:
            raise RuntimeError(f"{self.name}: injected SF fault at packet {self.seen}")

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        self.ingress(packet)
        self.seen += 1
        if not self.fail_in_sf and self.seen in self.fail_on:
            raise RuntimeError(f"{self.name}: injected fault at packet {self.seen}")
        fid = api.nf_extract_fid(packet)
        from repro.core.actions import Forward
        from repro.core.state_function import PayloadClass

        api.add_header_action(fid, Forward())
        api.add_state_function(fid, self.work, PayloadClass.IGNORE, name="work")
        self.work(packet)


def flow_packets(sport=1000, packets=4):
    spec = FlowSpec.tcp("10.0.0.1", "10.0.0.2", sport, 80, packets=packets, payload=b"x")
    return TrafficGenerator([spec]).packets()


class TestSlowPathFaults:
    def test_exception_propagates(self):
        sbox = SpeedyBox([FaultyNF(fail_on={1})])
        with pytest.raises(RuntimeError, match="injected fault"):
            sbox.process(flow_packets()[0])

    def test_no_rule_installed_for_failed_recording(self):
        sbox = SpeedyBox([Monitor("m"), FaultyNF(fail_on={1})])
        packets = flow_packets()
        with pytest.raises(RuntimeError):
            sbox.process(packets[0])
        assert len(sbox.global_mat) == 0  # consolidation never ran

    def test_flow_recovers_after_transient_fault(self):
        sbox = SpeedyBox([FaultyNF(fail_on={1})])  # only the first packet faults
        packets = flow_packets()
        with pytest.raises(RuntimeError):
            sbox.process(packets[0])
        # The next packet re-records from scratch and consolidates.
        report = sbox.process(packets[1])
        assert report.path is PathTaken.ORIGINAL
        assert len(sbox.global_mat) == 1
        assert sbox.process(packets[2]).path is PathTaken.FAST

    def test_other_flows_unaffected(self):
        # The NF's process() runs only on slow-path packets: good[0]
        # (seen=1) records the good flow; bad[0] is the second process()
        # call and faults.
        sbox = SpeedyBox([FaultyNF(fail_on={2})])
        good = flow_packets(sport=1000)
        bad = flow_packets(sport=2000)
        sbox.process(good[0])
        sbox.process(good[1])  # fast path: NF.process not invoked
        with pytest.raises(RuntimeError):
            sbox.process(bad[0])
        # The established flow's fast path still works.
        assert sbox.process(good[2]).path is PathTaken.FAST


class TestFastPathFaults:
    def test_sf_exception_propagates_from_fast_path(self):
        nf = FaultyNF(fail_on={3}, fail_in_sf=True)
        sbox = SpeedyBox([nf])
        packets = flow_packets()
        sbox.process(packets[0])  # records (seen=1)
        sbox.process(packets[1])  # fast, SF runs (seen stays 1... work uses seen)
        # seen counts process() calls; only packet 0 went through process.
        # Force the fault window onto the next SF invocation instead:
        nf.fail_on = {nf.seen}
        with pytest.raises(RuntimeError, match="injected SF fault"):
            sbox.process(packets[2])

    def test_rule_survives_sf_fault(self):
        nf = FaultyNF(fail_in_sf=True)
        sbox = SpeedyBox([nf])
        packets = flow_packets()
        report = sbox.process(packets[0])
        nf.fail_on = {nf.seen}
        with pytest.raises(RuntimeError):
            sbox.process(packets[1])
        # The rule is still installed; once the fault clears, fast path
        # resumes.
        nf.fail_on = set()
        assert sbox.process(packets[2]).path is PathTaken.FAST
        assert sbox.global_mat.peek(report.fid) is not None


class TestMeterHygieneAfterFaults:
    def test_nf_meter_detached_after_exception(self):
        from repro.platform.costs import NULL_METER

        nf = FaultyNF(fail_on={1})
        sbox = SpeedyBox([nf])
        with pytest.raises(RuntimeError):
            sbox.process(flow_packets()[0])
        # The finally-block restored the null meter: later functional
        # calls never charge into a stale per-packet meter.
        assert nf.meter is NULL_METER
