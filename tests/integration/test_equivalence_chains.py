"""§VII-C(3): comprehensive real-world-chain equivalence.

"We also test the equivalence of SpeedyBox in real world service chains
... In the first chain's Maglev NF, we set events for 20% flows during
mid-stream.  We find that there is no difference between the packet
output for both chains.  Further, we compare the per-flow counters of the
Monitor and the log outputs of Snort.  Results show that the value of all
counters and the Snort logs are all identical with and without SpeedyBox.
And the events of Maglev have been triggered correctly for all associated
flows."
"""

import random

import pytest

from repro.nf import IPFilter, MaglevLoadBalancer, MazuNAT, Monitor, SnortIDS
from repro.nf.maglev import Backend
from repro.nf.snort.rules import parse_rules
from repro.traffic import DatacenterTraceConfig, DatacenterTraceGenerator, TrafficGenerator
from tests.integration.helpers import nf_by_name, run_lockstep

RULES_TEXT = """
alert tcp any any -> any any (msg:"bad content"; content:"malware-beacon"; sid:9001;)
log tcp any any -> any any (msg:"plain http get"; content:"GET /"; sid:9002;)
"""
RULES = parse_rules(RULES_TEXT)


def backends():
    return [Backend.make(f"b{i}", f"192.168.9.{i + 1}", 9000) for i in range(4)]


def chain1():
    """The Motivation chain: NAT -> Load Balancer -> Monitor -> Firewall."""
    return [
        MazuNAT("mazunat", external_ip="203.0.113.9", internal_prefix="10.0.0.0/8"),
        MaglevLoadBalancer("maglev", backends=backends(), table_size=131),
        Monitor("monitor"),
        IPFilter("ipfilter"),
    ]


def chain2():
    """IPFilter -> Snort -> Monitor."""
    return [IPFilter("ipfilter"), SnortIDS("snort", RULES_TEXT), Monitor("monitor")]


def trace_packets(flows=40, seed=77):
    config = DatacenterTraceConfig(
        flows=flows,
        seed=seed,
        max_packets_per_flow=40,
        client_subnet="10.1",
        server_subnet="10.2",
    )
    specs = DatacenterTraceGenerator(config, RULES).generate_flows()
    return TrafficGenerator(specs, interleave="round_robin").packets()


def maglev_event_schedule(packets, fraction=0.2, seed=5):
    """Fail the tracked backend of ~``fraction`` of flows mid-stream.

    Returns {packet_index: intervention} failing, in both runs, the
    backend that the packet's flow is pinned to at that moment.
    """
    rng = random.Random(seed)
    flows = {}
    for index, packet in enumerate(packets):
        flows.setdefault(packet.five_tuple(), []).append(index)
    chosen = [flow for flow in flows if rng.random() < fraction and len(flows[flow]) > 4]

    interventions = {}
    for flow in chosen:
        indices = flows[flow]
        trigger_at = indices[len(indices) // 2]

        def intervene(baseline, speedybox, flow=flow):
            for runtime in (baseline, speedybox):
                maglev = nf_by_name(runtime, "maglev")
                nat = nf_by_name(runtime, "mazunat")
                mapping = nat.mappings.get(flow)
                if mapping is None:
                    continue
                healthy = sum(1 for b in maglev.backends if b.healthy)
                if healthy <= 1:
                    continue  # keep the service alive in both runs
                translated = flow._replace(src_ip=mapping[0], src_port=mapping[1])
                backend = maglev.conntrack.get(translated)
                if backend is not None and backend.healthy:
                    maglev.fail_backend(backend.name)

        interventions[trigger_at] = intervene
    return interventions


class TestChain1Equivalence:
    def test_packet_outputs_identical_without_events(self):
        packets = trace_packets(flows=25, seed=101)
        run_lockstep(chain1, packets)  # asserts wire equality internally

    def test_packet_outputs_identical_with_events(self):
        packets = trace_packets(flows=30, seed=102)
        interventions = maglev_event_schedule(packets, fraction=0.2)
        assert interventions, "schedule must fail at least one backend"
        baseline, speedybox, *_ = run_lockstep(chain1, packets, interventions=interventions)
        assert speedybox.event_table.total_triggered >= 1

    def test_monitor_counters_identical(self):
        packets = trace_packets(flows=25, seed=103)
        interventions = maglev_event_schedule(packets, fraction=0.2)
        baseline, speedybox, *_ = run_lockstep(chain1, packets, interventions=interventions)
        assert (
            nf_by_name(baseline, "monitor").counters
            == nf_by_name(speedybox, "monitor").counters
        )

    def test_nat_mappings_identical(self):
        packets = trace_packets(flows=20, seed=104)
        baseline, speedybox, *_ = run_lockstep(chain1, packets)
        assert nf_by_name(baseline, "mazunat").mappings == nf_by_name(speedybox, "mazunat").mappings

    def test_events_triggered_for_all_affected_flows(self):
        packets = trace_packets(flows=30, seed=105)
        interventions = maglev_event_schedule(packets, fraction=0.25, seed=6)
        baseline, speedybox, *_ = run_lockstep(chain1, packets, interventions=interventions)
        base_reroutes = nf_by_name(baseline, "maglev").reroutes
        sbox_triggers = speedybox.event_table.total_triggered
        # Every baseline inline reroute has a matching fast-path event.
        assert sbox_triggers >= base_reroutes > 0


class TestChain2Equivalence:
    def test_packet_outputs_identical(self):
        packets = trace_packets(flows=25, seed=201)
        run_lockstep(chain2, packets)

    def test_snort_logs_and_alerts_identical(self):
        packets = trace_packets(flows=30, seed=202)
        baseline, speedybox, *_ = run_lockstep(chain2, packets)
        base_snort = nf_by_name(baseline, "snort")
        sbox_snort = nf_by_name(speedybox, "snort")
        assert base_snort.alerts == sbox_snort.alerts
        assert base_snort.logs == sbox_snort.logs
        assert base_snort.alerts, "trace must include malicious flows"

    def test_monitor_counters_identical(self):
        packets = trace_packets(flows=25, seed=203)
        baseline, speedybox, *_ = run_lockstep(chain2, packets)
        assert (
            nf_by_name(baseline, "monitor").counters
            == nf_by_name(speedybox, "monitor").counters
        )

    def test_fast_path_dominates_on_trace(self):
        packets = trace_packets(flows=25, seed=204)
        __, speedybox, __, __, reports = run_lockstep(chain2, packets)
        fast = sum(1 for report in reports if report.is_fast)
        assert fast > len(packets) * 0.6


class TestChainWithDrops:
    def test_blacklisted_flows_dropped_identically(self):
        from repro.nf.ipfilter import AclRule, Verdict

        def chain():
            return [
                Monitor("monitor"),
                IPFilter(
                    "ipfilter",
                    rules=[AclRule.make(dst_ports=(11211, 11211), verdict=Verdict.DROP)],
                ),
            ]

        packets = trace_packets(flows=30, seed=301)
        baseline, speedybox, base_packets, sbox_packets, __ = run_lockstep(chain, packets)
        dropped = sum(1 for packet in sbox_packets if packet.dropped)
        if dropped == 0:
            pytest.skip("trace produced no flows to port 11211")
        # Monitor sits before the firewall: it must count dropped
        # packets too, on both paths.
        assert (
            nf_by_name(baseline, "monitor").counters
            == nf_by_name(speedybox, "monitor").counters
        )
