"""UDP service chains: connectionless flows through the full stack.

UDP has no handshake and no FIN — the classifier treats the first packet
as the initial one and rules live until evicted.  A DNS-ish chain
exercises that lifecycle end to end.
"""

from repro.core.framework import PathTaken, ServiceChain, SpeedyBox
from repro.nf import IPFilter, Monitor, SnortIDS
from repro.nf.ipfilter import AclRule, Verdict
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets
from tests.integration.helpers import nf_by_name, run_lockstep

RULES = 'alert udp any any -> any 53 (msg:"suspicious label"; content:"exfil"; sid:5301;)'


def build_chain():
    return [
        IPFilter("fw", rules=[AclRule.make(dst_ports=(5353, 5353), verdict=Verdict.DROP)]),
        SnortIDS("ids", RULES),
        Monitor("mon"),
    ]


def udp_flows():
    return [
        FlowSpec.udp("10.0.0.1", "10.0.0.53", 40000, 53, packets=6, payload=b"query www"),
        FlowSpec.udp("10.0.0.2", "10.0.0.53", 40001, 53, packets=6, payload=b"exfil chunk"),
        FlowSpec.udp("10.0.0.3", "10.0.0.53", 40002, 5353, packets=4, payload=b"mdns"),
    ]


class TestUdpChains:
    def test_first_udp_packet_is_initial(self):
        sbox = SpeedyBox(build_chain())
        packets = TrafficGenerator(udp_flows()[:1]).packets()
        paths = [sbox.process(p).path for p in packets]
        assert paths[0] is PathTaken.ORIGINAL
        assert all(path is PathTaken.FAST for path in paths[1:])

    def test_lockstep_equivalence(self):
        packets = TrafficGenerator(udp_flows(), interleave="round_robin").packets()
        baseline, speedybox, *_ = run_lockstep(build_chain, packets)
        assert nf_by_name(baseline, "mon").counters == nf_by_name(speedybox, "mon").counters
        assert nf_by_name(baseline, "ids").alerts == nf_by_name(speedybox, "ids").alerts

    def test_udp_rule_header_scoping(self):
        packets = TrafficGenerator(udp_flows(), interleave="round_robin").packets()
        __, speedybox, *_ = run_lockstep(build_chain, packets)
        ids = nf_by_name(speedybox, "ids")
        assert {record.sid for record in ids.alerts} == {5301}
        # Only the exfil flow alerted, once per data packet.
        assert len(ids.alerts) == 6

    def test_blacklisted_udp_port_early_drops(self):
        packets = TrafficGenerator(udp_flows(), interleave="round_robin").packets()
        __, speedybox, __, sbox_packets, reports = run_lockstep(build_chain, packets)
        mdns = [p for p in sbox_packets if p.l4.dst_port == 5353]
        assert mdns and all(p.dropped for p in mdns)
        fast_drops = [
            r for r, p in zip(reports, sbox_packets) if p.dropped and r.is_fast
        ]
        assert fast_drops and all(r.nf_meters == [] for r in fast_drops)

    def test_udp_rules_persist_without_fin(self):
        sbox = SpeedyBox(build_chain())
        packets = TrafficGenerator(udp_flows(), interleave="round_robin").packets()
        for packet in clone_packets(packets):
            sbox.process(packet)
        # No teardown signal: all three rules stay installed.
        assert len(sbox.global_mat) == 3
        assert sbox.stats()["tracked_flows"] == 3

    def test_mixed_tcp_udp_traffic(self):
        flows = udp_flows() + [
            FlowSpec.tcp("10.0.1.1", "10.0.0.53", 50000, 53, packets=5,
                         payload=b"tcp zone transfer", handshake=True, fin=True)
        ]
        packets = TrafficGenerator(flows, interleave="round_robin").packets()
        baseline, speedybox, *_ = run_lockstep(build_chain, packets)
        # The TCP flow FINs away; the UDP rules remain.
        assert len(speedybox.global_mat) == 3
