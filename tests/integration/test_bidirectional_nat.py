"""Bidirectional traffic through the NAT chain.

Forward flows (inside → out) allocate NAT mappings; reverse flows
(responses addressed to the NAT's external endpoint) must be translated
back — and each direction is its own flow with its own FID and its own
consolidated rule.  This exercises the classifier's direction
sensitivity and MazuNAT's reverse table end to end.
"""

from repro.core.framework import PathTaken, ServiceChain, SpeedyBox
from repro.net import FiveTuple, Packet
from repro.net.addresses import ip_to_str
from repro.nf import MazuNAT, Monitor
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets
from tests.integration.helpers import nf_by_name

EXTERNAL_IP = "203.0.113.7"


def build_chain():
    return [MazuNAT("nat", external_ip=EXTERNAL_IP, internal_prefix="10.0.0.0/8"), Monitor("mon")]


def run_bidirectional(runtime):
    """Send 4 outbound packets, then 4 inbound responses; returns both
    mutated streams."""
    outbound_spec = FlowSpec.tcp("10.0.0.5", "99.0.0.1", 3333, 80, packets=4, payload=b"req")
    outbound = TrafficGenerator([outbound_spec]).packets()
    for packet in outbound:
        runtime.process(packet)

    # The server answers to the NAT's external endpoint, learned from the
    # (translated) outbound packets.
    ext_port = outbound[0].l4.src_port
    inbound_spec = FlowSpec.tcp("99.0.0.1", EXTERNAL_IP, 80, ext_port, packets=4, payload=b"resp")
    inbound = TrafficGenerator([inbound_spec]).packets()
    for packet in inbound:
        runtime.process(packet)
    return outbound, inbound


class TestBidirectionalNat:
    def test_translation_both_directions(self):
        sbox = SpeedyBox(build_chain())
        outbound, inbound = run_bidirectional(sbox)
        for packet in outbound:
            assert ip_to_str(packet.ip.src_ip) == EXTERNAL_IP
        for packet in inbound:
            assert ip_to_str(packet.ip.dst_ip) == "10.0.0.5"
            assert packet.l4.dst_port == 3333

    def test_each_direction_gets_its_own_fast_path(self):
        sbox = SpeedyBox(build_chain())
        run_bidirectional(sbox)
        # Two flows consolidated: forward and reverse.
        assert len(sbox.global_mat) == 2
        stats = sbox.stats()
        assert stats["slow_packets"] == 2  # one initial packet per direction
        assert stats["fast_packets"] == 6

    def test_matches_baseline(self):
        baseline = ServiceChain(build_chain())
        speedybox = SpeedyBox(build_chain())
        base_out, base_in = run_bidirectional(baseline)
        sbox_out, sbox_in = run_bidirectional(speedybox)
        for base_pkt, sbox_pkt in zip(base_out + base_in, sbox_out + sbox_in):
            assert base_pkt.serialize() == sbox_pkt.serialize()
        assert (
            nf_by_name(baseline, "mon").counters == nf_by_name(speedybox, "mon").counters
        )

    def test_monitor_sees_translated_flows(self):
        sbox = SpeedyBox(build_chain())
        run_bidirectional(sbox)
        monitor = nf_by_name(sbox, "mon")
        keys = set(monitor.counters)
        # Monitor sits after the NAT: it must count the *translated*
        # five-tuples in both directions.
        translated_forward = FiveTuple.make(EXTERNAL_IP, "99.0.0.1", 10000, 80)
        assert any(key.src_ip == translated_forward.src_ip for key in keys)
        assert any(ip_to_str(key.dst_ip) == "10.0.0.5" for key in keys)
