"""The paper's two real-world chains through the public verification API.

A condensed restatement of §VII-C(3) using `repro.core.verify_equivalence`
— the form downstream users would write.
"""

from repro.core import verify_equivalence
from repro.nf import IPFilter, MaglevLoadBalancer, MazuNAT, Monitor, SnortIDS
from repro.nf.maglev import Backend
from repro.nf.snort.rules import parse_rules
from repro.traffic import DatacenterTraceConfig, DatacenterTraceGenerator, TrafficGenerator

RULES_TEXT = 'alert tcp any any -> any any (msg:"beacon"; content:"malware-beacon"; sid:1;)'
RULES = parse_rules(RULES_TEXT)


def chain1():
    backends = [Backend.make(f"b{i}", f"192.168.8.{i + 1}", 9000) for i in range(3)]
    return [
        MazuNAT("nat", external_ip="203.0.113.88"),
        MaglevLoadBalancer("lb", backends=backends, table_size=131),
        Monitor("mon"),
        IPFilter("fw"),
    ]


def chain2():
    return [IPFilter("fw"), SnortIDS("ids", RULES_TEXT), Monitor("mon")]


def trace(seed):
    config = DatacenterTraceConfig(flows=25, seed=seed, max_packets_per_flow=25)
    specs = DatacenterTraceGenerator(config, RULES).generate_flows()
    return TrafficGenerator(specs, interleave="round_robin").packets()


class TestPaperChainsViaApi:
    def test_chain1_verifies(self):
        report = verify_equivalence(chain1, trace(501))
        assert report.equivalent, report.summary()
        assert report.fast_path_rate > 0.6

    def test_chain2_verifies(self):
        report = verify_equivalence(chain2, trace(502))
        assert report.equivalent, report.summary()

    def test_chain1_with_failover_intervention(self):
        packets = trace(503)

        def fail(baseline, speedybox):
            for runtime in (baseline, speedybox):
                lb = next(nf for nf in runtime.nfs if nf.name == "lb")
                healthy = [b for b in lb.backends if b.healthy]
                if len(healthy) > 1 and lb.conntrack:
                    tracked = next(iter(lb.conntrack.values()))
                    if tracked.healthy:
                        lb.fail_backend(tracked.name)

        report = verify_equivalence(chain1, packets, interventions={len(packets) // 2: fail})
        assert report.equivalent, report.summary()
        assert report.events_triggered >= 1

    def test_chain1_under_table_pressure(self):
        report = verify_equivalence(
            chain1, trace(504), speedybox_kwargs={"max_flows": 4}
        )
        assert report.equivalent, report.summary()
