"""Fast-engine equivalence: compiled flows + analytic replay vs legacy.

The perf engine (``PlatformConfig(compiled_flows=True, analytic_replay=True)``,
the default) must be *numerically invisible*: every ``LoadResult`` field —
including the per-packet latency list, element for element — must match a
run with both halves disabled, which reproduces the original interpreted
execution path and the generator-based DES replay.

Coverage follows the acceptance matrix: both platform models, chain
lengths 1–9, with and without SpeedyBox, plus chains whose NFs register
events, run SF schedules or drop packets (forcing the compiled lane to
fall back per packet) and the gapped / trace-timestamped arrival modes.
"""

from __future__ import annotations

import pytest

from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import (
    DosPrevention,
    IPFilter,
    MaglevLoadBalancer,
    MazuNAT,
    Monitor,
    TokenBucketPolicer,
)
from repro.platform import BessPlatform, OpenNetVMPlatform, PlatformConfig
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets

LEGACY = dict(compiled_flows=False, analytic_replay=False)


def multi_flow_packets(flows: int = 4, per_flow: int = 30):
    specs = [
        FlowSpec.tcp(
            f"10.0.{index}.1",
            "20.0.0.1",
            4000 + index,
            80,
            packets=per_flow,
            payload=b"y" * 20,
        )
        for index in range(flows)
    ]
    return TrafficGenerator(specs, interleave="round_robin").packets()


def build_platform(platform_name, runtime, config=None):
    kwargs = {} if config is None else {"config": config}
    if platform_name == "onvm":
        # Lengths past the testbed's 5-NF core budget still exercise the
        # stage-pipeline model with the limit lifted.
        return OpenNetVMPlatform(runtime, enforce_core_limit=False, **kwargs)
    return BessPlatform(runtime, **kwargs)


def assert_identical_results(fast, legacy):
    assert fast.offered == legacy.offered
    assert fast.delivered == legacy.delivered
    assert fast.dropped == legacy.dropped
    assert fast.makespan_ns == legacy.makespan_ns
    # Exact float equality, element for element and in the same order.
    assert fast.latencies_ns == legacy.latencies_ns


def run_both(platform_name, runtime_factory, packets, **load_kwargs):
    fast = build_platform(platform_name, runtime_factory())
    fast_result = fast.run_load(clone_packets(packets), **load_kwargs)
    legacy = build_platform(
        platform_name, runtime_factory(), config=PlatformConfig(**LEGACY)
    )
    legacy_result = legacy.run_load(clone_packets(packets), **load_kwargs)
    assert_identical_results(fast_result, legacy_result)
    return fast_result, legacy_result


@pytest.mark.parametrize("platform_name", ["bess", "onvm"])
@pytest.mark.parametrize("runtime_cls", [ServiceChain, SpeedyBox])
@pytest.mark.parametrize("length", range(1, 10))
def test_chain_length_sweep(platform_name, runtime_cls, length):
    packets = multi_flow_packets(flows=3, per_flow=14)
    run_both(
        platform_name,
        lambda: runtime_cls([IPFilter(f"fw{i}") for i in range(length)]),
        packets,
    )


EVENT_CHAINS = {
    # Maglev registers backend-failure events; Monitor runs SF batches.
    "maglev-monitor": lambda: [
        MaglevLoadBalancer("maglev0", table_size=131),
        Monitor("monitor0"),
    ],
    # NAT rewrites headers (non-noop consolidated action) ahead of a
    # stateful chain tail.
    "nat-monitor-fw": lambda: [
        MazuNAT("nat0"),
        Monitor("monitor0"),
        IPFilter("fw0"),
    ],
    # DoS preventer flips flows to DROP mid-run (threshold crossed) and
    # the policer drops on token exhaustion: per-packet event checks and
    # mid-flow rule rebuilds keep knocking flows off the compiled lane.
    "dos-policer-fw": lambda: [
        DosPrevention("dos0", threshold=20, mode="packets"),
        TokenBucketPolicer("policer0", rate_pps=1e6, burst=16),
        IPFilter("fw0"),
    ],
}


@pytest.mark.parametrize("platform_name", ["bess", "onvm"])
@pytest.mark.parametrize("chain_key", sorted(EVENT_CHAINS))
def test_event_and_drop_chains(platform_name, chain_key):
    packets = multi_flow_packets(flows=4, per_flow=24)
    run_both(
        platform_name,
        lambda: SpeedyBox(EVENT_CHAINS[chain_key]()),
        packets,
    )


@pytest.mark.parametrize("platform_name", ["bess", "onvm"])
def test_gapped_arrivals(platform_name):
    packets = multi_flow_packets(flows=3, per_flow=20)
    fast, __ = run_both(
        platform_name,
        lambda: SpeedyBox([IPFilter(f"fw{i}") for i in range(4)]),
        packets,
        inter_arrival_ns=137.5,
    )
    assert fast.offered == len(packets)


def test_timestamped_replay():
    packets = multi_flow_packets(flows=2, per_flow=16)
    for index, packet in enumerate(packets):
        packet.timestamp_ns = index * 211.25
    run_both(
        "bess",
        lambda: SpeedyBox([IPFilter(f"fw{i}") for i in range(3)]),
        packets,
        use_timestamps=True,
    )


def test_fin_teardown_flows():
    """Closing flows exercise the compiled lane's FIN fallback + teardown."""
    specs = [
        FlowSpec.tcp(
            "10.1.0.1", "20.0.0.1", 5000 + i, 80,
            packets=12, payload=b"z" * 8, handshake=True, fin=True,
        )
        for i in range(3)
    ]
    packets = TrafficGenerator(specs, interleave="round_robin").packets()
    run_both("bess", lambda: SpeedyBox([IPFilter("fw0"), Monitor("mon0")]), packets)
