"""Integration scenarios beyond §VII-C: early drop, encap/decap chains,
the Fig. 3 DoS event walkthrough, long chains, and flow lifecycle."""

from repro.core.framework import PathTaken, ServiceChain, SpeedyBox
from repro.nf import (
    DosPrevention,
    IPFilter,
    Monitor,
    SyntheticNF,
    VpnDecap,
    VpnEncap,
)
from repro.nf.ipfilter import AclRule, Verdict
from repro.platform import BessPlatform
from repro.traffic import FlowSpec, TrafficGenerator
from repro.traffic.generator import clone_packets
from tests.integration.helpers import nf_by_name, run_lockstep


def flow_packets(packets=8, sport=1500, payload=b"data-bytes", handshake=False, fin=False):
    spec = FlowSpec.tcp(
        "10.0.0.1", "10.0.0.2", sport, 80,
        packets=packets, payload=payload, handshake=handshake, fin=fin,
    )
    return TrafficGenerator([spec]).packets()


class TestEarlyDrop:
    """Table III scenario: {forward, forward, drop} chain."""

    @staticmethod
    def chain():
        return [
            IPFilter("nf1"),
            IPFilter("nf2"),
            IPFilter("nf3", rules=[AclRule.make(verdict=Verdict.DROP)]),
        ]

    def test_all_packets_dropped_both_ways(self):
        packets = flow_packets(6)
        __, __, base_packets, sbox_packets, __ = run_lockstep(self.chain, packets)
        assert all(packet.dropped for packet in base_packets)
        assert all(packet.dropped for packet in sbox_packets)

    def test_subsequent_packets_drop_at_entry(self):
        packets = flow_packets(6)
        __, speedybox, __, __, reports = run_lockstep(self.chain, packets)
        for report in reports[1:]:
            assert report.is_fast
            assert report.nf_meters == []  # no NF executed: dropped at entry

    def test_early_drop_saves_cycles(self):
        packets = flow_packets(6)
        baseline = BessPlatform(ServiceChain(self.chain()))
        speedybox = BessPlatform(SpeedyBox(self.chain()))
        base_outcomes = baseline.process_all(clone_packets(packets))
        sbox_outcomes = speedybox.process_all(clone_packets(packets))
        # Table III: ~65% cycle reduction on subsequent packets.
        base_sub = base_outcomes[-1].work_cycles
        sbox_sub = sbox_outcomes[-1].work_cycles
        assert sbox_sub < 0.5 * base_sub


class TestVpnChain:
    def test_encap_decap_pair_consolidates_away(self):
        def chain():
            return [VpnEncap("enc", spi=0x10, key=5), VpnDecap("dec", key=5)]

        packets = flow_packets(5, payload=b"tunnel-me")
        __, speedybox, __, sbox_packets, reports = run_lockstep(chain, packets)
        fid = reports[0].fid
        rule = speedybox.global_mat.peek(fid)
        assert rule.consolidated.is_noop  # encap+decap cancelled (§V-B)
        assert all(not packet.encaps for packet in sbox_packets)

    def test_encap_only_chain_emits_tunnelled_packets(self):
        def chain():
            return [VpnEncap("enc", spi=0x22, key=9)]

        packets = flow_packets(4, payload=b"payload")
        __, __, base_packets, sbox_packets, __ = run_lockstep(chain, packets)
        for packet in sbox_packets:
            assert len(packet.encaps) == 1
            assert packet.encaps[0].spi == 0x22

    def test_decap_verification_state_identical(self):
        def chain():
            return [VpnEncap("enc", spi=0x10, key=5), VpnDecap("dec", key=5)]

        packets = flow_packets(5)
        baseline, speedybox, *_ = run_lockstep(chain, packets)
        assert (
            nf_by_name(baseline, "dec").verification_failures
            == nf_by_name(speedybox, "dec").verification_failures
            == 0
        )


class TestDosEventWalkthrough:
    """The Fig. 3 scenario: counter crosses threshold -> modify becomes drop."""

    @staticmethod
    def chain(threshold=4):
        return [DosPrevention("dos", threshold=threshold, mode="packets"), Monitor("mon")]

    def test_drop_starts_at_same_packet_in_both_runs(self):
        packets = flow_packets(10)
        __, __, base_packets, sbox_packets, __ = run_lockstep(lambda: self.chain(4), packets)
        base_pattern = [packet.dropped for packet in base_packets]
        sbox_pattern = [packet.dropped for packet in sbox_packets]
        assert base_pattern == sbox_pattern
        assert base_pattern == [False] * 5 + [True] * 5

    def test_counters_and_blocked_state_identical(self):
        packets = flow_packets(10)
        baseline, speedybox, *_ = run_lockstep(lambda: self.chain(4), packets)
        base_dos = nf_by_name(baseline, "dos")
        sbox_dos = nf_by_name(speedybox, "dos")
        assert base_dos.counters == sbox_dos.counters
        assert base_dos.blocked_flows == sbox_dos.blocked_flows

    def test_monitor_after_dropper_stops_counting(self):
        packets = flow_packets(10)
        baseline, speedybox, *_ = run_lockstep(lambda: self.chain(4), packets)
        # The Monitor sits after the DoS NF: it must only see the 5
        # forwarded packets — on both paths.
        assert nf_by_name(baseline, "mon").total_packets() == 5
        assert nf_by_name(speedybox, "mon").total_packets() == 5

    def test_rule_flips_to_drop(self):
        packets = flow_packets(10)
        __, speedybox, __, __, reports = run_lockstep(lambda: self.chain(4), packets)
        rule = speedybox.global_mat.peek(reports[0].fid)
        assert rule.consolidated.drop
        assert rule.version >= 2


class TestLongChains:
    def test_nine_nf_chain_equivalent(self):
        def chain():
            return [IPFilter(f"fw{i}") for i in range(9)]

        packets = flow_packets(5, handshake=True, fin=True)
        run_lockstep(chain, packets)

    def test_fast_path_latency_independent_of_length(self):
        def fast_latency(n):
            platform = BessPlatform(SpeedyBox([IPFilter(f"fw{i}") for i in range(n)]))
            outcomes = platform.process_all(flow_packets(3))
            return outcomes[-1].latency_cycles

        assert abs(fast_latency(9) - fast_latency(2)) < 1.0

    def test_original_latency_grows_linearly(self):
        def latency(n):
            platform = BessPlatform(ServiceChain([IPFilter(f"fw{i}") for i in range(n)]))
            outcomes = platform.process_all(flow_packets(3))
            return outcomes[-1].latency_cycles

        l3, l6, l9 = latency(3), latency(6), latency(9)
        assert abs((l9 - l6) - (l6 - l3)) < 1.0


class TestFlowLifecycle:
    def test_interleaved_flows_keep_separate_rules(self):
        def chain():
            return [SyntheticNF("syn", sf_work_cycles=100), Monitor("mon")]

        flows = [
            FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1000 + i, 80, packets=4, payload=b"x")
            for i in range(6)
        ]
        packets = TrafficGenerator(flows, interleave="round_robin").packets()
        baseline, speedybox, *_ = run_lockstep(chain, packets)
        assert len(speedybox.global_mat) == 6
        assert nf_by_name(baseline, "mon").counters == nf_by_name(speedybox, "mon").counters

    def test_restarted_flow_after_fin_reconsolidates(self):
        sbox = SpeedyBox([Monitor("mon")])
        first_run = flow_packets(3, fin=True)
        for packet in first_run:
            sbox.process(packet)
        assert len(sbox.global_mat) == 0
        second_run = flow_packets(3)
        paths = [sbox.process(packet).path for packet in second_run]
        assert paths[0] is PathTaken.ORIGINAL
        assert all(path is PathTaken.FAST for path in paths[1:])
        assert sbox.global_mat.consolidations == 2
