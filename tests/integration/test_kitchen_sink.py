"""The kitchen-sink chain: every NF family in one service chain.

DoS → NAT → VXLAN gateway → Maglev → VPN encap → VPN decap → Snort →
Monitor → terminator → Firewall.  If equivalence survives this, the
consolidation engine handles arbitrary compositions of all five header
actions and all three payload classes at once.
"""

import pytest

from repro.core.framework import SpeedyBox
from repro.nf import (
    DosPrevention,
    IPFilter,
    MaglevLoadBalancer,
    MazuNAT,
    Monitor,
    SnortIDS,
    VniMap,
    VpnDecap,
    VpnEncap,
    VxlanGateway,
    VxlanTerminator,
)
from repro.nf.maglev import Backend
from repro.traffic import FlowSpec, TrafficGenerator
from tests.integration.helpers import nf_by_name, run_lockstep

RULES_TEXT = 'alert tcp any any -> any any (msg:"sink"; content:"needle"; sid:1;)'


def build_chain():
    backends = [Backend.make(f"b{i}", f"192.168.77.{i + 1}", 7000) for i in range(3)]
    return [
        DosPrevention("dos", threshold=500, mode="packets"),
        MazuNAT("nat", external_ip="203.0.113.99"),
        MaglevLoadBalancer("maglev", backends=backends, table_size=131),
        # After Maglev the destination is a 192.168.77.x backend, which
        # the gateway's VNI map tunnels into the backend overlay.
        VxlanGateway("gateway", VniMap([("192.168.0.0/16", 55)]), underlay_dscp=18),
        VpnEncap("vpnenc", spi=0x77, key=11),
        VpnDecap("vpndec", key=11),
        SnortIDS("snort", RULES_TEXT),
        VxlanTerminator("terminator"),
        # Monitor sits after the last header-rewriting NF: its byte
        # counters must observe the final header state on both paths
        # (the positional caveat documented in repro.nf.monitor).
        Monitor("monitor"),
        IPFilter("firewall"),
    ]


def traffic(packets=6, flows=4, payload=b"clean traffic", fin=True):
    specs = [
        FlowSpec.tcp(
            f"10.0.{i}.1", "100.0.0.1", 5000 + i, 80,
            packets=packets, payload=payload, handshake=True, fin=fin,
        )
        for i in range(flows)
    ]
    return TrafficGenerator(specs, interleave="round_robin").packets()


class TestKitchenSink:
    def test_outputs_identical(self):
        run_lockstep(build_chain, traffic())

    def test_outputs_identical_with_needle_payloads(self):
        run_lockstep(build_chain, traffic(payload=b"a needle in the haystack"))

    def test_all_nf_state_identical(self):
        baseline, speedybox, *_ = run_lockstep(build_chain, traffic())
        assert nf_by_name(baseline, "monitor").counters == nf_by_name(speedybox, "monitor").counters
        assert nf_by_name(baseline, "nat").mappings == nf_by_name(speedybox, "nat").mappings
        assert nf_by_name(baseline, "dos").counters == nf_by_name(speedybox, "dos").counters
        assert nf_by_name(baseline, "snort").alerts == nf_by_name(speedybox, "snort").alerts
        assert (
            nf_by_name(baseline, "vpndec").verification_failures
            == nf_by_name(speedybox, "vpndec").verification_failures
        )

    def test_consolidated_rule_shape(self):
        """The 10-NF chain's fast path nets out to: Maglev rewrite +
        NAT rewrite + DSCP marks; VPN encap/decap cancel; the VXLAN encap
        cancels against the terminator."""
        __, speedybox, __, __, reports = run_lockstep(build_chain, traffic(fin=False))
        fast_report = next(report for report in reports if report.is_fast)
        rule = speedybox.global_mat.peek(fast_report.fid)
        consolidated = rule.consolidated
        assert not consolidated.drop
        assert not consolidated.net_encaps       # both encaps cancelled
        assert not consolidated.leading_decaps
        fields = {field.value for field in consolidated.field_ops}
        assert {"src_ip", "src_port", "dst_ip", "dst_port", "dscp"} <= fields

    def test_sf_schedule_respects_payload_hazards(self):
        __, speedybox, __, __, reports = run_lockstep(build_chain, traffic(fin=False))
        fast_report = next(report for report in reports if report.is_fast)
        rule = speedybox.global_mat.peek(fast_report.fid)
        # All recorded SFs are READ or IGNORE here, so one wide wave.
        assert rule.schedule.wave_count == 1
        names = {batch.nf_name for batch in rule.schedule.all_batches()}
        assert {"snort", "monitor", "dos", "maglev"} <= names

    def test_fast_path_dominates(self):
        __, speedybox, __, __, reports = run_lockstep(build_chain, traffic(packets=10))
        stats = speedybox.stats()
        assert stats["fast_path_rate"] > 0.6
        assert stats["events_registered"] > 0
        assert stats["fid_collisions"] == 0

    def test_speedybox_latency_win_scales_with_chain_depth(self):
        from repro.core.framework import ServiceChain
        from repro.platform import BessPlatform
        from repro.traffic.generator import clone_packets

        packets = traffic(packets=6, flows=1)
        baseline = BessPlatform(ServiceChain(build_chain()))
        speedybox = BessPlatform(SpeedyBox(build_chain()))
        base_last = baseline.process_all(clone_packets(packets))[-2]
        sbox_last = speedybox.process_all(clone_packets(packets))[-2]
        # A 10-NF chain consolidates into a fast path several times cheaper.
        assert sbox_last.latency_cycles < 0.45 * base_last.latency_cycles
