"""EXPERIMENTS.md honesty check.

The measured numbers quoted in EXPERIMENTS.md must match what the
benchmark harness actually regenerates.  These tests parse the saved
result tables under benchmarks/results/ (skipping if the benches have
not been run in this checkout) and cross-check the headline figures the
document cites.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
RESULTS = REPO / "benchmarks" / "results"

pytestmark = pytest.mark.skipif(
    not RESULTS.exists(), reason="benchmarks/results not generated in this checkout"
)


def result(name):
    path = RESULTS / f"{name}.txt"
    if not path.exists():
        pytest.skip(f"{name}.txt not generated")
    return path.read_text()


def experiments_text():
    return (REPO / "EXPERIMENTS.md").read_text()


class TestFig4Consistency:
    def test_sbox_sub_flat_at_750(self):
        text = result("fig4_bess")
        rows = [line for line in text.splitlines() if re.match(r"^\d\s", line)]
        sbox_sub = [line.split()[-1].replace(",", "") for line in rows]
        assert sbox_sub == ["750", "750", "750"]
        assert "750" in experiments_text()

    def test_quoted_reductions_match(self):
        text = result("fig4_bess")
        rows = [line.split() for line in text.splitlines() if re.match(r"^\d\s", line)]
        orig = [float(row[3].replace(",", "")) for row in rows]
        sbox = [float(row[4].replace(",", "")) for row in rows]
        reduction2 = 100 * (1 - sbox[1] / orig[1])
        reduction3 = 100 * (1 - sbox[2] / orig[2])
        doc = experiments_text()
        assert f"−{reduction2:.1f}%" in doc or f"-{reduction2:.1f}%" in doc
        assert f"−{reduction3:.1f}%" in doc or f"-{reduction3:.1f}%" in doc


class TestTable3Consistency:
    def test_aggregates_match_document(self):
        text = result("table3_early_drop")
        doc = experiments_text()
        bess = re.search(r"BESS w/ SBox.*?(\d+) \(-(\d+\.\d)%\)", text)
        assert bess is not None
        assert f"−{bess.group(2)}%" in doc or f"-{bess.group(2)}%" in doc


class TestFig9Consistency:
    @pytest.mark.parametrize("chain", ["chain1", "chain2"])
    def test_p50_reductions_match_document(self, chain):
        text = result(f"fig9_{chain}")
        doc = experiments_text()
        for match in re.finditer(r"p50 reduction\s+-(\d+\.\d)%", text):
            value = match.group(1)
            assert f"−{value}%" in doc or f"-{value}%" in doc, (
                f"{chain}: measured -{value}% not quoted in EXPERIMENTS.md"
            )


class TestAblationConsistency:
    def test_breakeven_flow_size_quoted(self):
        text = result("ablation_breakeven")
        match = re.search(r"first win at (\d+) packets", text)
        assert match is not None
        assert "second" in experiments_text() or f"at {match.group(1)} packets" in experiments_text()

    def test_event_overhead_per_event(self):
        text = result("ablation_event_overhead")
        # +50 cycles per event, quoted in the doc.
        assert "+50" in text
        assert "+50 cyc/event" in experiments_text()
