"""§VII-C equivalence across mid-life flow migrations.

The migration variant of the paper's methodology: the same packet stream
through one SpeedyBox runtime and through a sharded cluster that
migrates a flow between replicas mid-life.  The migration must be
invisible — byte-identical outputs, identical drop decisions, identical
NF state and runtime counters, zero packet loss while frozen.
"""

from repro.core import verify_equivalence_migration
from repro.core.verification import MigrationVerificationReport
from repro.net.addresses import ip_to_str
from repro.nf import IPFilter, MaglevLoadBalancer, MazuNAT, Monitor
from repro.nf.maglev import Backend
from repro.traffic import FlowSpec, TrafficGenerator

EXTERNAL_IP = "203.0.113.9"


def build_chain():
    backends = [Backend.make(f"b{i}", f"192.168.77.{i + 1}", 8080) for i in range(4)]
    return [
        MazuNAT("nat", external_ip=EXTERNAL_IP, port_range=(20000, 60000)),
        MaglevLoadBalancer("lb", backends=backends, table_size=251),
        Monitor("mon"),
        IPFilter("fw"),
    ]


def midlife_trace(flows=10, packets_per_flow=12, seed=7):
    """Interleaved long-lived TCP flows: handshakes, no FINs (the flows
    must still be alive at the migration point)."""
    specs = [
        FlowSpec.tcp(
            f"10.1.{i}.2",
            f"99.0.0.{i + 1}",
            4000 + i,
            80,
            packets=packets_per_flow,
            payload=b"data-%d" % i,
            handshake=True,
        )
        for i in range(flows)
    ]
    return TrafficGenerator(specs, interleave="round_robin", seed=seed).packets()


class TestMigrationEquivalence:
    def test_midlife_migration_is_invisible(self):
        packets = midlife_trace()
        report = verify_equivalence_migration(
            build_chain, packets, migrate_at=len(packets) // 2
        )
        assert isinstance(report, MigrationVerificationReport)
        assert report.equivalent, report.summary()
        # The migration actually moved the flow's state (tables + NF state).
        assert report.migration is not None
        assert report.migration.fids
        assert report.migration.nf_states_moved > 0
        assert report.migration.local_rules_moved > 0
        assert report.migration.global_rules_moved == len(report.migration.fids)
        # Maglev registers a per-flow health event; it must travel too.
        assert report.migration.events_moved >= 1
        assert report.migration.handlers_rebound >= 1

    def test_freeze_window_buffers_without_loss(self):
        packets = midlife_trace()
        migrate_at = len(packets) // 3
        report = verify_equivalence_migration(
            build_chain, packets, migrate_at=migrate_at, freeze_for=25
        )
        assert report.equivalent, report.summary()
        # Several of the frozen flow's packets arrived during the freeze;
        # every one was buffered, replayed and still byte-identical.
        assert report.buffered_packets > 0

    def test_migration_on_both_platform_models(self):
        packets = midlife_trace(flows=6, packets_per_flow=8)
        for platform in ("bess", "onvm"):
            report = verify_equivalence_migration(
                build_chain, packets, migrate_at=len(packets) // 2, platform=platform
            )
            assert report.equivalent, f"[{platform}] {report.summary()}"

    def test_every_flow_migrated_one_at_a_time(self):
        """Migrate a different flow in each run; all must stay equivalent."""
        packets = midlife_trace(flows=5, packets_per_flow=8)
        seen_flows = set()
        for index, packet in enumerate(packets):
            flow = packet.five_tuple()
            if flow in seen_flows or index < 10:
                continue
            seen_flows.add(flow)
            report = verify_equivalence_migration(
                build_chain, packets, migrate_at=index, flow=flow
            )
            assert report.equivalent, f"flow {flow}: {report.summary()}"


class TestBidirectionalMigration:
    """A NAT'd flow's return traffic arrives on the *translated* tuple —
    migration must move that wire direction too, and the cluster must
    keep routing it to the flow's new home."""

    @staticmethod
    def _chain():
        return [
            MazuNAT("nat", external_ip=EXTERNAL_IP, internal_prefix="10.0.0.0/8"),
            Monitor("mon"),
        ]

    def _mixed_stream(self):
        outbound_spec = FlowSpec.tcp(
            "10.0.0.5", "99.0.0.1", 3333, 80, packets=8, payload=b"req"
        )
        outbound = TrafficGenerator([outbound_spec]).packets()
        # Learn the NAT's deterministic external port from a probe run.
        from repro.core.framework import SpeedyBox

        probe = SpeedyBox(self._chain())
        probe_stream = [packet.clone() for packet in outbound]
        for packet in probe_stream:
            probe.process(packet)
        ext_port = probe_stream[0].l4.src_port
        inbound_spec = FlowSpec.tcp(
            "99.0.0.1", EXTERNAL_IP, 80, ext_port, packets=8, payload=b"resp"
        )
        inbound = TrafficGenerator([inbound_spec]).packets()
        # Interleave: 4 requests, then alternate replies and requests.
        mixed = outbound[:4]
        for out_pkt, in_pkt in zip(outbound[4:], inbound):
            mixed.extend([in_pkt, out_pkt])
        mixed.extend(inbound[len(outbound) - 4 :])
        return mixed

    def test_reverse_direction_survives_migration(self):
        packets = self._mixed_stream()
        report = verify_equivalence_migration(
            self._chain, packets, migrate_at=6, freeze_for=4
        )
        assert report.equivalent, report.summary()
        # Both wire directions' FIDs moved in the one migration.
        assert report.migration is not None
        assert len(report.migration.fids) == 2
        # The reference forwards everything — equivalence therefore means
        # the cluster translated replies correctly after the move too.
        from repro.core.framework import SpeedyBox

        reference = SpeedyBox(self._chain())
        for packet in [p.clone() for p in packets]:
            reference.process(packet)
            assert not packet.dropped
            if ip_to_str(packet.ip.dst_ip) != "99.0.0.1":
                assert ip_to_str(packet.ip.dst_ip) == "10.0.0.5"

    def test_translated_replies_are_still_correct_post_migration(self):
        packets = self._mixed_stream()
        report = verify_equivalence_migration(self._chain, packets, migrate_at=5)
        assert report.equivalent, report.summary()
