"""Scale smoke: hundreds of concurrent flows through a real chain.

Not a microbenchmark — a correctness check that the tables, the 20-bit
FID space, FIN cleanup and LRU capacity behave at a scale where sloppy
bookkeeping (leaks, stale rules, cross-flow bleed) would show.
"""

from repro.core.framework import ServiceChain, SpeedyBox
from repro.nf import IPFilter, MaglevLoadBalancer, MazuNAT, Monitor
from repro.nf.maglev import Backend
from repro.traffic import DatacenterTraceConfig, DatacenterTraceGenerator, TrafficGenerator
from repro.traffic.generator import clone_packets
from tests.integration.helpers import nf_by_name


def build_chain():
    backends = [Backend.make(f"b{i}", f"192.168.200.{i + 1}", 8000) for i in range(6)]
    return [
        MazuNAT("nat", external_ip="203.0.113.200", port_range=(10000, 60000)),
        MaglevLoadBalancer("lb", backends=backends, table_size=521),
        Monitor("mon"),
        IPFilter("fw"),
    ]


def big_trace(flows=400, seed=31):
    config = DatacenterTraceConfig(flows=flows, seed=seed, max_packets_per_flow=30)
    specs = DatacenterTraceGenerator(config).generate_flows()
    return specs, TrafficGenerator(specs, interleave="round_robin").packets()


class TestScale:
    def test_400_flows_stay_equivalent(self):
        specs, packets = big_trace()
        baseline = ServiceChain(build_chain())
        speedybox = SpeedyBox(build_chain())
        base_stream = clone_packets(packets)
        sbox_stream = clone_packets(packets)
        for packet in base_stream:
            baseline.process(packet)
        for packet in sbox_stream:
            speedybox.process(packet)

        mismatches = sum(
            1
            for a, b in zip(base_stream, sbox_stream)
            if a.dropped != b.dropped or (not a.dropped and a.serialize() != b.serialize())
        )
        assert mismatches == 0
        assert nf_by_name(baseline, "mon").counters == nf_by_name(speedybox, "mon").counters

    def test_fin_cleanup_leaves_no_residue(self):
        specs, packets = big_trace(flows=300, seed=32)
        speedybox = SpeedyBox(build_chain())
        for packet in clone_packets(packets):
            speedybox.process(packet)
        # Every flow FINs in this trace: all tables must drain.
        stats = speedybox.stats()
        assert stats["active_rules"] == 0
        assert stats["tracked_flows"] == 0
        assert len(speedybox.event_table) == 0
        for local_mat in speedybox.local_mats.values():
            assert len(local_mat) == 0
        # NAT mappings released back to the pool, firewall cache drained.
        nat = nf_by_name(speedybox, "nat")
        assert not nat.mappings
        assert not nat.reverse
        assert not nf_by_name(speedybox, "fw")._verdict_cache
        # (Maglev conntrack is keyed by its position-local five-tuple and
        # relies on timeouts in the real system; not asserted here.)

    def test_capacity_pressure_preserves_equivalence(self):
        specs, packets = big_trace(flows=250, seed=33)
        baseline = ServiceChain(build_chain())
        speedybox = SpeedyBox(build_chain(), max_flows=16)  # heavy eviction
        base_stream = clone_packets(packets)
        sbox_stream = clone_packets(packets)
        for packet in base_stream:
            baseline.process(packet)
        for packet in sbox_stream:
            speedybox.process(packet)
        assert speedybox.global_mat.evictions > 0
        mismatches = sum(
            1
            for a, b in zip(base_stream, sbox_stream)
            if a.dropped != b.dropped or (not a.dropped and a.serialize() != b.serialize())
        )
        assert mismatches == 0

    def test_fast_path_dominates_at_scale(self):
        specs, packets = big_trace(flows=400, seed=34)
        speedybox = SpeedyBox(build_chain())
        for packet in clone_packets(packets):
            speedybox.process(packet)
        stats = speedybox.stats()
        slow_floor = sum(1 for spec in specs) * 2  # SYN + initial per flow
        assert stats["slow_packets"] <= slow_floor + stats["fid_collisions"] * 50
        assert stats["fast_path_rate"] > 0.5
