"""§VII-C(1): Snort equivalence across conditional branches.

"We inject three sets of flows containing suspicious payloads that match
all the three types of inspection rules (Pass/Alert/Log) of Snort to
cover the conditional branches sufficiently.  We examine and find the log
outputs are identical."
"""

from repro.nf import Monitor, SnortIDS
from repro.nf.snort.rules import RuleAction, parse_rules
from repro.traffic import FlowSpec, PayloadSynthesizer, TrafficGenerator
from tests.integration.helpers import nf_by_name, run_lockstep

RULES_TEXT = """
alert tcp any any -> any 80 (msg:"exploit attempt"; content:"exploit"; sid:1001;)
alert tcp any any -> any 80 (msg:"shellcode"; content:"|90 90 90 90|"; sid:1002;)
log tcp any any -> any 80 (msg:"scanner ua"; content:"nmap"; nocase; sid:2001;)
pass tcp 10.0.0.100 any -> any 80 (msg:"trusted scanner"; sid:3001;)
"""

RULES = parse_rules(RULES_TEXT)


def build_chain():
    return [SnortIDS("snort", RULES_TEXT), Monitor("monitor")]


def three_branch_traffic():
    """Flows covering alert, log and pass branches, plus a clean one."""
    synth = PayloadSynthesizer(RULES)
    alert_payload = synth.matching_action(RuleAction.ALERT)
    log_payload = synth.matching_action(RuleAction.LOG)
    benign = synth.benign()

    flows = [
        # Branch 1: alert rule fires.
        FlowSpec.tcp("10.0.0.1", "20.0.0.1", 1001, 80, packets=6, payload=alert_payload,
                     handshake=True, fin=True),
        # Branch 2: log rule fires (nocase content).
        FlowSpec.tcp("10.0.0.2", "20.0.0.1", 1002, 80, packets=6, payload=log_payload,
                     handshake=True, fin=True),
        # Branch 3: trusted host — pass rule suppresses the alert.
        FlowSpec.tcp("10.0.0.100", "20.0.0.1", 1003, 80, packets=6, payload=alert_payload,
                     handshake=True, fin=True),
        # Clean flow: no rule matches.
        FlowSpec.tcp("10.0.0.3", "20.0.0.1", 1004, 80, packets=6, payload=benign,
                     handshake=True, fin=True),
    ]
    return TrafficGenerator(flows, interleave="round_robin").packets()


class TestSnortEquivalence:
    def test_log_outputs_identical(self):
        packets = three_branch_traffic()
        baseline, speedybox, *_ = run_lockstep(build_chain, packets)

        base_snort = nf_by_name(baseline, "snort")
        sbox_snort = nf_by_name(speedybox, "snort")

        assert base_snort.alerts == sbox_snort.alerts
        assert base_snort.logs == sbox_snort.logs
        assert base_snort.passed_packets == sbox_snort.passed_packets

    def test_all_three_branches_exercised(self):
        packets = three_branch_traffic()
        baseline, *_ = run_lockstep(build_chain, packets)
        snort = nf_by_name(baseline, "snort")
        assert snort.alerts, "alert branch not covered"
        assert snort.logs, "log branch not covered"
        assert snort.passed_packets, "pass branch not covered"

    def test_alert_flow_attribution_identical(self):
        packets = three_branch_traffic()
        baseline, speedybox, *_ = run_lockstep(build_chain, packets)
        base_flows = [record.flow for record in nf_by_name(baseline, "snort").alerts]
        sbox_flows = [record.flow for record in nf_by_name(speedybox, "snort").alerts]
        assert base_flows == sbox_flows

    def test_monitor_counters_identical(self):
        packets = three_branch_traffic()
        baseline, speedybox, *_ = run_lockstep(build_chain, packets)
        assert nf_by_name(baseline, "monitor").counters == nf_by_name(speedybox, "monitor").counters

    def test_most_packets_took_fast_path(self):
        packets = three_branch_traffic()
        __, speedybox, __, __, reports = run_lockstep(build_chain, packets)
        fast = sum(1 for report in reports if report.is_fast)
        # 4 flows x (1 SYN + 1 initial + 1 FIN-adjacent accounting):
        # everything after each flow's initial data packet is fast.
        assert fast >= len(packets) - 4 * 2 - 1
        assert speedybox.fast_packets == fast
