"""Shared harness for the equivalence test suites (§VII-C methodology).

"The methodology is to inject various packets into the system to cover
different conditional branches in the code.  If the system generates
identical packet outputs and state, we are confident that SpeedyBox
guarantees equivalence."

:func:`run_lockstep` drives the original chain and a SpeedyBox-wrapped
copy of the same chain over byte-identical packet streams, optionally
applying mid-stream interventions (e.g. failing a Maglev backend before
packet 6) to *both* runs at the same packet index, and asserts the packet
outputs are identical.  NF-state comparisons are the caller's to add.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.framework import ProcessReport, ServiceChain, SpeedyBox
from repro.net.packet import Packet
from repro.traffic.generator import clone_packets

Intervention = Callable[[ServiceChain, SpeedyBox], None]


def run_lockstep(
    build_chain: Callable[[], list],
    packets: Sequence[Packet],
    interventions: Optional[Dict[int, Intervention]] = None,
    compare_outputs: bool = True,
    sbox_kwargs: Optional[dict] = None,
) -> Tuple[ServiceChain, SpeedyBox, List[Packet], List[Packet], List[ProcessReport]]:
    """Process the same stream through baseline and SpeedyBox runs.

    ``interventions[i]`` runs *before* packet ``i`` is processed, against
    both runtimes.  Returns both runtimes, both (mutated) packet lists and
    the SpeedyBox reports.
    """
    interventions = interventions or {}
    baseline = ServiceChain(build_chain())
    speedybox = SpeedyBox(build_chain(), **(sbox_kwargs or {}))

    base_packets = clone_packets(packets)
    sbox_packets = clone_packets(packets)
    reports: List[ProcessReport] = []

    for index, (base_pkt, sbox_pkt) in enumerate(zip(base_packets, sbox_packets)):
        if index in interventions:
            interventions[index](baseline, speedybox)
        baseline.process(base_pkt)
        reports.append(speedybox.process(sbox_pkt))

    if compare_outputs:
        assert_output_equivalence(base_packets, sbox_packets)
    return baseline, speedybox, base_packets, sbox_packets, reports


def assert_output_equivalence(base_packets: Sequence[Packet], sbox_packets: Sequence[Packet]) -> None:
    """Packet-for-packet: same drop decisions, same bytes on the wire."""
    assert len(base_packets) == len(sbox_packets)
    for index, (base_pkt, sbox_pkt) in enumerate(zip(base_packets, sbox_packets)):
        assert base_pkt.dropped == sbox_pkt.dropped, (
            f"packet {index}: drop mismatch (baseline={base_pkt.dropped}, "
            f"speedybox={sbox_pkt.dropped})"
        )
        if not base_pkt.dropped:
            assert base_pkt.serialize() == sbox_pkt.serialize(), (
                f"packet {index}: wire bytes differ\n"
                f"  baseline : {base_pkt!r}\n  speedybox: {sbox_pkt!r}"
            )


def nf_by_name(runtime, name: str):
    for nf in runtime.nfs:
        if nf.name == name:
            return nf
    raise KeyError(name)
