"""CLI acceptance for tail-latency forensics (``repro obs explain``).

Round-trips real artifacts through the command line: a demo run writes
``--forensics-out``, ``obs explain`` and ``obs report`` render it; a
fig8-style cluster run with an injected failover must name the failover
stall as the dominant tail component; and empty or truncated artifacts
must fail with one clear message and exit code 2 — not a traceback.
"""

import json

from repro.cli import main
from repro.obs.forensics import COMPONENTS, load_forensics_jsonl


class TestForensicsRoundTrip:
    def run_demo(self, tmp_path, capsys):
        forensics = tmp_path / "forensics.jsonl"
        audit = tmp_path / "audit.jsonl"
        windows = tmp_path / "windows.jsonl"
        assert main([
            "demo", "--flows", "10",
            "--forensics-out", str(forensics),
            "--audit-out", str(audit),
            "--timeseries-out", str(windows),
            "--window-packets", "32",
        ]) == 0
        out = capsys.readouterr().out
        assert "forensics rows" in out
        return forensics, audit, windows

    def test_demo_emits_decomposed_artifact(self, tmp_path, capsys):
        forensics, __, __ = self.run_demo(tmp_path, capsys)
        data = load_forensics_jsonl(forensics)
        assert data["summary"]["packets"] > 0
        assert data["windows"] and data["worst"]
        for record in data["worst"]:
            # Components reproduce the latency after a JSON round trip.
            total = ((record["service_ns"] + record["transfer_ns"])
                     + record["stall_ns"]) + record["queue_ns"]
            assert total == record["latency_ns"]

    def test_obs_explain_renders(self, tmp_path, capsys):
        forensics, audit, windows = self.run_demo(tmp_path, capsys)
        assert main([
            "obs", "explain", "--forensics", str(forensics),
            "--audit", str(audit), "--windows", str(windows),
        ]) == 0
        out = capsys.readouterr().out
        assert "repro obs explain" in out
        assert "component attribution" in out
        for name in COMPONENTS:
            assert name in out
        assert "worst" in out

    def test_obs_report_gains_forensics_section(self, tmp_path, capsys):
        forensics, __, __ = self.run_demo(tmp_path, capsys)
        assert main(["obs", "report", "--forensics", str(forensics)]) == 0
        out = capsys.readouterr().out
        assert "latency forensics" in out
        assert "component attribution" in out

    def test_batch_forensics_round_trip(self, tmp_path, capsys):
        forensics = tmp_path / "batch.jsonl"
        assert main([
            "batch", "--flows", "300", "--packets-per-flow", "4",
            "--block", "64", "--forensics-out", str(forensics),
        ]) == 0
        capsys.readouterr()
        assert main(["obs", "explain", "--forensics", str(forensics)]) == 0
        assert "component attribution" in capsys.readouterr().out


class TestFailoverForensics:
    def run_failover(self, tmp_path, capsys):
        forensics = tmp_path / "forensics.jsonl"
        audit = tmp_path / "audit.jsonl"
        assert main([
            "scale", "--replicas", "3", "--platforms", "bess",
            "--flows", "30", "--checkpoint-every", "16", "--kill-at", "150",
            "--forensics-out", str(forensics), "--audit-out", str(audit),
        ]) == 0
        capsys.readouterr()
        return forensics, audit

    def test_explain_names_stall_as_dominant_tail_component(
        self, tmp_path, capsys
    ):
        forensics, audit = self.run_failover(tmp_path, capsys)
        data = load_forensics_jsonl(forensics)
        assert data["stalls"], "failover charged no stall records"
        components = data["summary"]["components"]
        assert components["stall"] == max(
            components[name] for name in COMPONENTS
        ), f"stall is not the dominant component: {components}"

        assert main([
            "obs", "explain", "--forensics", str(forensics),
            "--audit", str(audit),
        ]) == 0
        out = capsys.readouterr().out
        assert "stall charges" in out
        assert "stall-dominant" in out
        assert "cause failover" in out
        assert "latency_regime_shift" in out

    def test_regime_shift_precedes_failover_complete(self, tmp_path, capsys):
        __, audit_path = self.run_failover(tmp_path, capsys)
        events = [json.loads(line) for line in audit_path.read_text().splitlines()]
        completes = [e["seq"] for e in events
                     if e["kind"] == "ft_failover_complete"]
        shifts = [e["seq"] for e in events
                  if e["kind"] == "latency_regime_shift"
                  and e.get("component") == "stall"]
        assert completes and shifts
        for seq in completes:
            assert any(shift < seq for shift in shifts), (
                f"ft_failover_complete seq={seq} has no preceding "
                f"stall regime shift (shifts at {shifts})"
            )

    def test_charged_stall_raises_reported_p99(self, capsys, tmp_path):
        args = ["scale", "--replicas", "2", "--platforms", "bess",
                "--flows", "30", "--checkpoint-every", "16", "--kill-at", "150"]
        assert main(args) == 0
        charged = capsys.readouterr().out
        assert main(args + ["--no-charge-recovery"]) == 0
        uncharged = capsys.readouterr().out

        def p99_of_two_replica_row(out):
            for line in out.splitlines():
                cells = line.split()
                if cells[:2] == ["bess", "2"]:
                    return float(cells[5])
            raise AssertionError(f"no 2-replica row in:\n{out}")

        # Charging maps the failover wall time (milliseconds) onto the
        # buffered packets' simulated latency; without it the p99 stays
        # at the microsecond queueing scale.
        assert p99_of_two_replica_row(charged) > p99_of_two_replica_row(uncharged)


class TestGracefulArtifactFailures:
    def test_empty_artifact_exits_2_with_message(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["obs", "report", "--audit", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "empty" in err
        assert "Traceback" not in err

    def test_truncated_artifact_exits_2_with_line_number(self, tmp_path, capsys):
        truncated = tmp_path / "trunc.jsonl"
        truncated.write_text('{"kind": "ft_kill"}\n{"kind": "ft_re')
        assert main(["obs", "report", "--audit", str(truncated)]) == 2
        err = capsys.readouterr().err
        assert ":2:" in err  # names the offending line
        assert "invalid JSON" in err

    def test_missing_artifact_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["obs", "watch", "--windows", str(missing)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_explain_requires_forensics_artifact(self, capsys):
        assert main(["obs", "explain"]) == 2
        assert "--forensics" in capsys.readouterr().err

    def test_explain_rejects_truncated_forensics(self, tmp_path, capsys):
        truncated = tmp_path / "trunc.jsonl"
        truncated.write_text('{"type": "summ')
        assert main(["obs", "explain", "--forensics", str(truncated)]) == 2
        err = capsys.readouterr().err
        assert "bad forensics artifact" in err
