"""§VII-C(2): Maglev event equivalence.

"We inject a flow with 10 packets into Maglev, and set the associated
event condition as 'change the destination IP from ip1 to ip2, from the
sixth packet'.  We check the packet outputs and find the destination IP
of pkt1-pkt5 is ip1, and the destination IP of pkt6-pkt10 is ip2.  The
remaining headers and packet payloads going to ip2 are verified to be
true.  Thus, the event has been triggered correctly."

The condition is realised the way the paper's Maglev does: the flow's
backend is failed right before packet 6 arrives, so the registered
failure event reroutes the flow via consistent hashing.
"""

from repro.net.addresses import ip_to_str
from repro.nf.maglev import Backend, MaglevLoadBalancer
from repro.traffic import FlowSpec, TrafficGenerator
from tests.integration.helpers import nf_by_name, run_lockstep


def backends():
    return [Backend.make(f"b{i}", f"192.168.1.{i + 1}", 8080) for i in range(3)]


def build_chain():
    return [MaglevLoadBalancer("maglev", backends=backends(), table_size=131)]


def ten_packet_flow():
    spec = FlowSpec.tcp("10.0.0.7", "100.0.0.1", 4242, 80, packets=10, payload=b"maglev-data")
    return TrafficGenerator([spec]).packets()


def fail_tracked_backend(baseline, speedybox):
    """Fail, in both runs, the backend the flow is currently pinned to."""
    for runtime in (baseline, speedybox):
        maglev = nf_by_name(runtime, "maglev")
        backend = next(iter(maglev.conntrack.values()))
        maglev.fail_backend(backend.name)


class TestMaglevEventEquivalence:
    def run_scenario(self):
        packets = ten_packet_flow()
        # Packets are 0-indexed here; "from the sixth packet" = index 5.
        return run_lockstep(build_chain, packets, interventions={5: fail_tracked_backend})

    def test_destination_switches_at_packet_six(self):
        __, __, base_packets, sbox_packets, __ = self.run_scenario()
        first_ips = {ip_to_str(p.ip.dst_ip) for p in sbox_packets[:5]}
        later_ips = {ip_to_str(p.ip.dst_ip) for p in sbox_packets[5:]}
        assert len(first_ips) == 1, "pkt1-pkt5 must all go to ip1"
        assert len(later_ips) == 1, "pkt6-pkt10 must all go to ip2"
        (ip1,) = first_ips
        (ip2,) = later_ips
        assert ip1 != ip2

    def test_outputs_match_baseline_exactly(self):
        # run_lockstep already asserts wire-level equality; verify the
        # remaining headers and payloads explicitly as the paper does.
        __, __, base_packets, sbox_packets, __ = self.run_scenario()
        for base_pkt, sbox_pkt in zip(base_packets, sbox_packets):
            assert sbox_pkt.payload == base_pkt.payload
            assert sbox_pkt.l4.dst_port == base_pkt.l4.dst_port
            assert sbox_pkt.ip.ttl == base_pkt.ip.ttl
            assert sbox_pkt.ip.checksum_valid()

    def test_event_triggered_exactly_once(self):
        __, speedybox, __, __, reports = self.run_scenario()
        assert speedybox.event_table.total_triggered == 1
        assert sum(report.events_fired for report in reports) == 1

    def test_rule_reconsolidated(self):
        __, speedybox, __, __, reports = self.run_scenario()
        fid = reports[0].fid
        assert speedybox.global_mat.peek(fid).version == 2

    def test_packet_six_itself_rerouted(self):
        # The event fires on packet 6's pre-check, so packet 6 — not 7 —
        # already carries the new destination (matching the baseline,
        # whose Maglev re-selects inline on packet 6).
        __, __, __, sbox_packets, __ = self.run_scenario()
        assert sbox_packets[5].ip.dst_ip == sbox_packets[9].ip.dst_ip

    def test_conntrack_points_to_new_backend_in_both(self):
        baseline, speedybox, __, sbox_packets, __ = self.run_scenario()
        base_backend = next(iter(nf_by_name(baseline, "maglev").conntrack.values()))
        sbox_backend = next(iter(nf_by_name(speedybox, "maglev").conntrack.values()))
        assert base_backend.name == sbox_backend.name
        assert base_backend.healthy
