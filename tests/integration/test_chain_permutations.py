"""Chain-order permutations: consolidation must be order-faithful.

The same four NFs are deployed in every order in which the chain is
functionally sensible, and each permutation must stay packet-exact
against its own baseline.  Order genuinely changes behaviour (a firewall
before the NAT sees different addresses than after it) — the point is
not that permutations agree with each other, but that SpeedyBox tracks
whichever order it is given.
"""

import itertools

import pytest

from repro.nf import IPFilter, MazuNAT, Monitor, SnortIDS
from repro.nf.ipfilter import AclRule, Verdict
from repro.traffic import FlowSpec, TrafficGenerator
from tests.integration.helpers import nf_by_name, run_lockstep

RULES = 'alert tcp any any -> any any (msg:"perm"; content:"needle"; sid:1;)'

NF_BUILDERS = {
    "nat": lambda: MazuNAT("nat", external_ip="203.0.113.42"),
    "mon": lambda: Monitor("mon"),
    "ids": lambda: SnortIDS("ids", RULES),
    "fw": lambda: IPFilter(
        "fw", rules=[AclRule.make(dst_ports=(9999, 9999), verdict=Verdict.DROP)]
    ),
}

# The Monitor keys its counters by live headers, so it must sit at or
# after the last header-rewriting NF (the documented positional
# constraint in repro.nf.monitor); all other relative orders are fair
# game — including the firewall dropping before or after anyone.
PERMS = [
    p for p in itertools.permutations(sorted(NF_BUILDERS)) if p.index("mon") > p.index("nat")
]


def traffic():
    flows = [
        FlowSpec.tcp("10.0.0.1", "20.0.0.1", 1000, 80, packets=5, payload=b"a needle here"),
        FlowSpec.tcp("10.0.0.2", "20.0.0.1", 2000, 9999, packets=5, payload=b"blocked"),
        FlowSpec.tcp("10.0.0.3", "20.0.0.1", 3000, 80, packets=5, payload=b"clean"),
    ]
    return TrafficGenerator(flows, interleave="round_robin").packets()


@pytest.mark.parametrize("order", PERMS, ids=["-".join(p) for p in PERMS])
def test_permutation_is_equivalent(order):
    def build():
        return [NF_BUILDERS[name]() for name in order]

    baseline, speedybox, *_ = run_lockstep(build, traffic())
    assert nf_by_name(baseline, "mon").counters == nf_by_name(speedybox, "mon").counters
    assert nf_by_name(baseline, "ids").alerts == nf_by_name(speedybox, "ids").alerts


def test_monitor_before_rewriter_is_out_of_scope():
    """Documented caveat: a live-header-keyed monitor *upstream* of a
    rewriter observes pre-rewrite keys on the original path but final
    headers on the fast path — such placements are outside the
    consolidation contract (and excluded from PERMS above)."""

    def build():
        return [NF_BUILDERS["mon"](), NF_BUILDERS["nat"]()]

    baseline, speedybox, *_ = run_lockstep(build, traffic(), compare_outputs=True)
    # Packet outputs still match (header actions are exact)...
    # ...but the monitor's keys differ, which is precisely why this
    # order is unsupported.
    assert nf_by_name(baseline, "mon").counters != nf_by_name(speedybox, "mon").counters


def test_orders_differ_from_each_other():
    """Sanity: permutation order is semantically meaningful — the monitor
    counts blocked-flow packets only when it precedes the firewall."""

    def build(order):
        return [NF_BUILDERS[name]() for name in order]

    packets = traffic()
    __, mon_first, *_ = run_lockstep(lambda: build(("mon", "fw", "nat", "ids")), packets)
    __, fw_first, *_ = run_lockstep(lambda: build(("fw", "mon", "nat", "ids")), packets)
    assert (
        nf_by_name(mon_first, "mon").total_packets()
        > nf_by_name(fw_first, "mon").total_packets()
    )
