"""The example scripts are deliverables: they must keep running.

Each example module is imported and its ``main()`` executed; output is
captured and sanity-checked for the claims the example makes.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "fast" in out
        assert "identical" in out
        assert "DIFFER" not in out

    def test_enterprise_chain(self, capsys):
        out = run_example("enterprise_chain", capsys)
        assert "output mismatches        : 0" in out
        assert "events triggered" in out

    def test_ids_pipeline(self, capsys):
        out = run_example("ids_pipeline", capsys)
        assert "byte-identical" in out
        assert "p50 latency reduction" in out

    def test_early_drop(self, capsys):
        out = run_example("early_drop", capsys)
        assert "early drop saves" in out
        assert "counters identical: True" in out

    def test_platform_comparison(self, capsys):
        out = run_example("platform_comparison", capsys)
        assert "Chain length sweep" in out
        # ONVM columns stop at 5.
        lines = [line for line in out.splitlines() if line.startswith("6 ")]
        assert lines and "-" in lines[0]

    def test_trace_replay(self, capsys):
        out = run_example("trace_replay", capsys)
        assert "captured to" in out
        assert "timestamp-paced replay" in out

    def test_multi_chain(self, capsys):
        out = run_example("multi_chain", capsys)
        assert "steering change" in out
        assert "per-chain consolidation state" in out

    def test_rate_limiting(self, capsys):
        out = run_example("rate_limiting", capsys)
        assert "patterns identical" in out
        assert "-> DROP" in out
        assert "-> FORWARD" in out

    def test_every_example_has_a_test(self):
        scripts = {path.stem for path in EXAMPLES.glob("*.py")}
        tested = {
            name[len("test_"):]
            for name in dir(TestExamples)
            if name.startswith("test_") and name != "test_every_example_has_a_test"
        }
        assert scripts == tested, f"untested examples: {scripts - tested}"
