"""Declarative SLOs, error budgets and burn-rate alerts (obs gen-3).

An operator states objectives the way SRE practice writes them —
"99.9 % of packets under 250 µs", "loss under 0.1 %" — and the engine
does the bookkeeping against the telemetry windows a
:class:`~repro.obs.timeseries.TimeSeries` closes:

- an :class:`SLObjective` parses from compact spec strings
  (``"p99<250us"``, ``"p50<40us@0.99"``, ``"loss<0.001"``);
- every window, the engine counts *bad events* (latency samples over
  the threshold; drops + buffered packets for loss objectives), charges
  them to the objective's **error budget** (``1 - target`` of all
  events over the engine's lifetime) and computes the window **burn
  rate** — bad fraction over allowed fraction, the standard
  multi-window burn-rate alerting quantity;
- a window whose burn rate reaches ``alert_burn_rate`` emits one
  ``slo_burn_alert`` audit event, so alerts are ordered against every
  other decision in the run (the FT integration test asserts the alert
  lands *before* recovery completes).

The engine is deliberately small: objectives are windows-in, audit-out,
with :meth:`summary`/:meth:`render` for the CLI (``repro obs watch``)
and the report.
"""

from __future__ import annotations

import re
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.audit import AuditLog, NULL_AUDIT
from repro.obs.timeseries import TimeSeries, Window

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
_LATENCY_RE = re.compile(
    r"^p(?P<pct>\d+(?:\.\d+)?)\s*<\s*(?P<value>\d+(?:\.\d+)?)\s*"
    r"(?P<unit>ns|us|ms|s)(?:@(?P<target>0?\.\d+))?$"
)
_LOSS_RE = re.compile(r"^loss\s*<\s*(?P<value>0?\.\d+|\d+(?:\.\d+)?%)(?:@(?P<target>0?\.\d+))?$")


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective.

    ``kind`` is ``"latency"`` (a percentile of per-packet latency must
    stay under ``threshold_ns``; every sample over the threshold is a
    bad event) or ``"loss"`` (dropped/buffered packets are bad events;
    ``threshold_ns`` unused).  ``target`` is the compliance target the
    error budget derives from: a budget of ``1 - target`` bad events
    per event.
    """

    name: str
    kind: str
    threshold_ns: float = 0.0
    fraction: float = 0.99
    target: float = 0.999
    #: loss objectives: allowed loss fraction (doubles as 1 - target)
    loss_budget: float = 0.001

    @classmethod
    def parse(cls, spec: str) -> "SLObjective":
        text = spec.strip().lower().replace(" ", "")
        match = _LATENCY_RE.match(text)
        if match:
            fraction = float(match.group("pct")) / 100.0
            if not 0.0 < fraction <= 1.0:
                raise ValueError(f"bad percentile in SLO spec {spec!r}")
            threshold = float(match.group("value")) * _UNIT_NS[match.group("unit")]
            target = float(match.group("target")) if match.group("target") else 0.999
            return cls(
                name=text,
                kind="latency",
                threshold_ns=threshold,
                fraction=fraction,
                target=target,
            )
        match = _LOSS_RE.match(text)
        if match:
            raw = match.group("value")
            budget = float(raw[:-1]) / 100.0 if raw.endswith("%") else float(raw)
            if not 0.0 < budget < 1.0:
                raise ValueError(f"bad loss budget in SLO spec {spec!r}")
            target = float(match.group("target")) if match.group("target") else 1.0 - budget
            return cls(name=text, kind="loss", target=target, loss_budget=budget)
        raise ValueError(
            f"unparseable SLO spec {spec!r} (expected e.g. 'p99<250us' or 'loss<0.001')"
        )

    @property
    def error_budget_fraction(self) -> float:
        """Allowed bad-event fraction (the burn-rate denominator)."""
        allowed = 1.0 - self.target
        return allowed if allowed > 0 else 1e-9


@dataclass
class _ObjectiveState:
    objective: SLObjective
    events: int = 0
    bad: int = 0
    windows: int = 0
    alerts: List[Dict[str, Any]] = field(default_factory=list)
    worst_burn: float = 0.0
    last_burn: float = 0.0

    @property
    def compliance(self) -> float:
        return 1.0 - (self.bad / self.events) if self.events else 1.0

    def budget_total(self) -> float:
        return self.objective.error_budget_fraction * self.events

    def budget_remaining(self) -> float:
        return self.budget_total() - self.bad


class SLOEngine:
    """Charge telemetry windows against declared objectives."""

    def __init__(
        self,
        objectives: Sequence[SLObjective],
        timeseries: Optional[TimeSeries] = None,
        audit: AuditLog = NULL_AUDIT,
        alert_burn_rate: float = 2.0,
    ):
        if not objectives:
            raise ValueError("SLOEngine needs at least one objective")
        self.audit = audit
        self.alert_burn_rate = alert_burn_rate
        self._states = {obj.name: _ObjectiveState(obj) for obj in objectives}
        self.windows_observed = 0
        if timeseries is not None:
            timeseries.on_close(self.observe_window)

    @classmethod
    def from_specs(
        cls,
        specs: Sequence[str],
        timeseries: Optional[TimeSeries] = None,
        audit: AuditLog = NULL_AUDIT,
        alert_burn_rate: float = 2.0,
    ) -> "SLOEngine":
        return cls(
            [SLObjective.parse(spec) for spec in specs],
            timeseries=timeseries,
            audit=audit,
            alert_burn_rate=alert_burn_rate,
        )

    @property
    def objectives(self) -> List[SLObjective]:
        return [state.objective for state in self._states.values()]

    # -- windows in ---------------------------------------------------------

    def observe_window(self, window: Window) -> None:
        self.windows_observed += 1
        for state in self._states.values():
            objective = state.objective
            if objective.kind == "latency":
                ordered = window.sorted_latencies()
                events = len(ordered)
                bad = events - bisect_right(ordered, objective.threshold_ns)
            else:
                events = window.packets
                bad = window.drops + window.buffered
            if events <= 0:
                continue
            state.events += events
            state.bad += bad
            state.windows += 1
            bad_fraction = bad / events
            burn = bad_fraction / objective.error_budget_fraction
            state.last_burn = burn
            state.worst_burn = max(state.worst_burn, burn)
            if burn >= self.alert_burn_rate and bad > 0:
                alert = {
                    "objective": objective.name,
                    "window": window.index,
                    "burn_rate": burn,
                    "bad": bad,
                    "events": events,
                    "budget_remaining": state.budget_remaining(),
                }
                state.alerts.append(alert)
                self.audit.emit(
                    "slo_burn_alert",
                    objective=objective.name,
                    window=window.index,
                    burn=round(burn, 3),
                    bad=bad,
                    events=events,
                )

    # -- reads --------------------------------------------------------------

    def alerts(self, objective: Optional[str] = None) -> List[Dict[str, Any]]:
        if objective is not None:
            return list(self._states[objective].alerts)
        out: List[Dict[str, Any]] = []
        for state in self._states.values():
            out.extend(state.alerts)
        return out

    def compliance(self, objective: str) -> float:
        return self._states[objective].compliance

    def budget_remaining(self, objective: str) -> float:
        return self._states[objective].budget_remaining()

    def summary(self) -> Dict[str, Mapping[str, Any]]:
        return {
            name: {
                "kind": state.objective.kind,
                "target": state.objective.target,
                "events": state.events,
                "bad": state.bad,
                "compliance": state.compliance,
                "budget_total": state.budget_total(),
                "budget_remaining": state.budget_remaining(),
                "worst_burn": state.worst_burn,
                "last_burn": state.last_burn,
                "alerts": len(state.alerts),
            }
            for name, state in self._states.items()
        }

    def render(self, title: str = "SLOs") -> str:
        from repro.stats.tables import format_table

        rows = []
        for name, info in self.summary().items():
            rows.append(
                [
                    name,
                    f"{info['target']:.4f}",
                    info["events"],
                    info["bad"],
                    f"{info['compliance']:.5f}",
                    f"{info['budget_remaining']:.1f}",
                    f"{info['worst_burn']:.2f}",
                    info["alerts"],
                ]
            )
        return format_table(
            ["objective", "target", "events", "bad", "compliance", "budget_left", "burn_max", "alerts"],
            rows,
            title=title,
        )

    def __repr__(self) -> str:
        return (
            f"<SLOEngine {len(self._states)} objective(s), "
            f"{self.windows_observed} windows, {len(self.alerts())} alerts>"
        )
