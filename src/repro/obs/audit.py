"""The decision audit log: every control-plane verdict as a JSON line.

The data plane has metrics (how many) and traces (when); what neither
answers is *why the runtime is shaped the way it is* — why this flow's
fast lane was recompiled, why that Global MAT rule disappeared, why the
autoscaler added a replica at window 12.  :class:`AuditLog` records
those control-plane decisions as structured, timestamped events with
causal flow identifiers:

- fast-path lifecycle — ``fastpath_compile`` / ``fastpath_invalidate``
  (from :meth:`repro.core.framework.SpeedyBox._maybe_compile` and the
  invalidation hooks, with the reason: rule evicted, flow deleted,
  migration export/import, uncompilable);
- Global MAT — ``global_mat_insert`` / ``global_mat_rebuild`` (event-
  driven reconsolidation) / ``global_mat_evict`` (LRU at capacity);
- migration protocol — ``migration_freeze`` / ``migration_buffer`` /
  ``migration_transfer`` / ``migration_replay``, one event per phase of
  the freeze-buffer-replay choreography;
- elasticity — ``scale_out`` / ``scale_in`` / ``autoscale_decision``
  (the watermark verdict with the signal sample it was based on);
- fault tolerance — ``ft_checkpoint`` (snapshot round, with cause) /
  ``ft_kill`` / ``ft_buffer`` (in-flight packet held for a dead
  replica) / ``ft_freeze_absorbed`` (crash-during-migration guard) /
  ``ft_restore`` / ``ft_replay`` / ``ft_failover_complete``, one trail
  per failure from injection to recovered;
- transactional shared state — ``txn_abort`` (always) and
  ``txn_commit`` (opt-in per store/commit: every NAT port draw would
  be noise), from :class:`repro.ft.txstate.TransactionalStore`;
- cluster health — ``health_degraded`` / ``health_critical`` /
  ``health_recovered``, one event per replica *state transition* from
  :class:`repro.obs.health.HealthModel` (with the window index, score
  and triggering reasons);
- SLOs — ``slo_burn_alert`` from :class:`repro.obs.slo.SLOEngine`, one
  event per window whose burn rate crossed the alerting threshold
  (objective name, burn rate, bad/total events);
- latency forensics — ``latency_regime_shift`` from
  :class:`repro.obs.forensics.RegimeShiftDetector` (a window's p50/p99
  jumped past the trailing baseline, or its buffered fraction crossed
  the stall threshold) and from the FT coordinator when a recovery
  charges stall onto buffered deliveries — always emitted *before*
  that recovery's ``ft_failover_complete``; names the decomposition
  component that moved (``component=`` queue / service / transfer /
  stall) with the baseline and current values.

Events are dicts with a monotonically increasing ``seq`` (deterministic
— tests assert on it), a wall-clock ``ts`` (injectable clock), the
``kind`` and the emitter's keyword fields.  Export is JSON lines, one
event per line, greppable and loadable with pandas.

Deliberately *not* a metrics surface: none of these events increment
registry counters, so enabling the audit log cannot perturb the
metric-parity contract between the interpreted and compiled fast paths
(``tests/unit/test_fastpath_metric_parity.py``).

Like the registry and the tracer, the audit log has a null mode:
:data:`NULL_AUDIT` accepts every ``emit`` and records nothing, so
instrumented code never branches on "is auditing on" beyond the single
early return inside :meth:`AuditLog.emit`.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Iterable, List, Optional


class AuditLog:
    """Append-only structured event log for control-plane decisions."""

    def __init__(self, enabled: bool = True, clock: Callable[[], float] = time.time):
        self.enabled = enabled
        self.clock = clock
        self._events: List[Dict[str, Any]] = []
        self._seq = 0

    # -- recording ---------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> Optional[Dict[str, Any]]:
        """Record one event; returns the event dict (None when disabled)."""
        if not self.enabled:
            return None
        self._seq += 1
        event: Dict[str, Any] = {"seq": self._seq, "ts": self.clock(), "kind": kind}
        event.update(fields)
        self._events.append(event)
        return event

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """All events, or only those of one kind, in emission order."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event["kind"] == kind]

    def counts(self) -> Dict[str, int]:
        """Event count per kind (the audit-event summary of a run)."""
        out: Dict[str, int] = {}
        for event in self._events:
            out[event["kind"]] = out.get(event["kind"], 0) + 1
        return out

    def last(self, kind: Optional[str] = None) -> Optional[Dict[str, Any]]:
        matching = self.events(kind)
        return matching[-1] if matching else None

    def reset(self) -> None:
        self._events.clear()
        self._seq = 0

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(event, sort_keys=True) for event in self._events)

    def write_jsonl(self, path) -> int:
        """Write one JSON object per line; returns the event count."""
        payload = self.to_jsonl()
        with open(path, "w") as handle:
            if payload:
                handle.write(payload + "\n")
        return len(self._events)

    def __repr__(self) -> str:
        kinds = len({event["kind"] for event in self._events})
        return f"<AuditLog {len(self._events)} events, {kinds} kinds>"


def load_audit_jsonl(path) -> List[Dict[str, Any]]:
    """Read an audit JSONL file back into event dicts (report tooling)."""
    events: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def summarize_events(events: Iterable[Dict[str, Any]]) -> Dict[str, int]:
    """Per-kind counts over already-loaded event dicts."""
    out: Dict[str, int] = {}
    for event in events:
        kind = event.get("kind", "?")
        out[kind] = out.get(kind, 0) + 1
    return out


#: The shared disabled audit log — the default everywhere.
NULL_AUDIT = AuditLog(enabled=False)
