"""Unloaded-mode packet timelines: ProcessReport → tracer spans.

:func:`trace_unloaded` lays one packet's journey out on tracer tracks
using the platform's own cost model for durations — NIC RX, the
classifier + MAT fixed work, then either the slow path (per-hop
transport + NF service, chain order) or the fast path (dispatch, the
consolidated header action, and the state-function schedule with
parallel waves fanned out onto per-worker-core tracks exactly as the
platform's list scheduler would place them), and finally NIC TX.

Track names are ``<platform>:<variant>:main`` for the dispatching core
and ``...:worker<i>`` for the SF worker cores, so a Chrome/Perfetto view
shows one swimlane per core.  Every span carries its raw cycle count in
``args`` — the answer to "which hop cost this packet 400 cycles".

Loaded-mode (``run_load``) tracing lives in the platform itself, where
the discrete-event engine supplies real timestamps; this module covers
the per-packet microscope of unloaded mode.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.obs.trace import PacketTracer

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.framework import ProcessReport
    from repro.platform.base import Platform


def _variant(platform: "Platform") -> str:
    return "speedybox" if platform.with_speedybox else "original"


def trace_unloaded(
    tracer: PacketTracer,
    platform: "Platform",
    report: "ProcessReport",
    start_ns: float,
    packet_index: int,
) -> float:
    """Record one packet's spans starting at ``start_ns``; returns end time."""
    model = platform.costs
    base = f"{platform.name}:{_variant(platform)}"
    main = f"{base}:main"
    common = {"packet": packet_index, "fid": report.fid, "path": report.path.value}

    t = start_ns
    rx_cycles = model.nic_rx / platform.config.batch_size
    tracer.span("nic_rx", main, t, model.cycles_to_ns(rx_cycles), cycles=rx_cycles, **common)
    t += model.cycles_to_ns(rx_cycles)

    fixed_cycles = report.fixed_meter.cycles(model)
    tracer.span(
        "classify+mat", main, t, model.cycles_to_ns(fixed_cycles), cycles=fixed_cycles, **common
    )
    t += model.cycles_to_ns(fixed_cycles)

    if report.is_fast:
        extra = platform._fast_path_extra_cycles()
        if extra:
            tracer.span("fast_path_tx_ring", main, t, model.cycles_to_ns(extra),
                        cycles=extra, **common)
            t += model.cycles_to_ns(extra)
        t = _trace_sf_waves(tracer, platform, report, base, main, t, common)
    else:
        hop_cycles = platform._transport_cycles_per_hop()
        for nf_name, meter in report.nf_meters:
            tracer.span("transport", main, t, model.cycles_to_ns(hop_cycles),
                        cycles=hop_cycles, **common)
            t += model.cycles_to_ns(hop_cycles)
            nf_cycles = meter.cycles(model)
            tracer.span(f"nf:{nf_name}", main, t, model.cycles_to_ns(nf_cycles),
                        cycles=nf_cycles, **common)
            t += model.cycles_to_ns(nf_cycles)

    if report.events_fired:
        tracer.instant("events_fired", main, t, count=report.events_fired, **common)
    if report.dropped:
        tracer.instant("dropped", main, t, **common)
    else:
        tx_cycles = model.nic_tx / platform.config.batch_size
        tracer.span("nic_tx", main, t, model.cycles_to_ns(tx_cycles), cycles=tx_cycles, **common)
        t += model.cycles_to_ns(tx_cycles)
    return t


def _trace_sf_waves(
    tracer: PacketTracer,
    platform: "Platform",
    report: "ProcessReport",
    base: str,
    main: str,
    t: float,
    common: dict,
) -> float:
    """Lay out the state-function schedule; parallel waves fan to workers."""
    model = platform.costs
    for wave_index, wave in enumerate(report.sf_waves):
        if len(wave) == 1:
            nf_name, meter = wave[0]
            cycles = meter.cycles(model)
            tracer.span(f"sf:{nf_name}", main, t, model.cycles_to_ns(cycles),
                        cycles=cycles, wave=wave_index, **common)
            t += model.cycles_to_ns(cycles)
            continue

        overhead = (
            model.worker_fork + model.worker_join + platform._parallel_sync_cycles()
        )
        # Greedy LPT placement, mirroring makespan_with_workers: longest
        # batch first onto the earliest-finishing worker core.
        durations: List[Tuple[float, str]] = sorted(
            ((meter.cycles(model), nf_name) for nf_name, meter in wave), reverse=True
        )
        workers = max(1, min(platform.config.worker_cores, len(durations)))
        finish = [0.0] * workers
        for cycles, nf_name in durations:
            slot = finish.index(min(finish))
            tracer.span(
                f"sf:{nf_name}",
                f"{base}:worker{slot}",
                t + model.cycles_to_ns(finish[slot]),
                model.cycles_to_ns(cycles),
                cycles=cycles,
                wave=wave_index,
                **common,
            )
            finish[slot] += cycles
        wall = max(finish) + overhead
        tracer.span("fork+join", main, t, model.cycles_to_ns(wall),
                    cycles=overhead, wave=wave_index, batches=len(wave), **common)
        t += model.cycles_to_ns(wall)
    return t
