"""The metrics registry: Counters, Gauges and Histograms with labels.

Every SpeedyBox component (classifier, Global MAT, Event Table, the
framework, both platform models and the discrete-event engine) publishes
its signals into a :class:`MetricsRegistry` handed to it at construction
time.  The registry follows the Prometheus naming conventions —
``*_total`` counters, bare gauges, ``_bucket``/``_sum``/``_count``
histogram series — so the snapshot keys read like a scrape.

Disabled by default
-------------------

The hot path must stay hot: when no registry is passed, components fall
back to :data:`NULL_REGISTRY`, whose instruments are shared no-op
singletons.  ``counter.inc()`` on a null instrument is a single empty
method call — no dict lookup, no label hashing, no allocation — so the
per-packet cost of the instrumentation layer rounds to zero when
observability is off, and the cycle *model* (``CycleMeter``) is never
touched either way: enabling metrics cannot change a simulated cycle
count.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

LabelSet = Tuple[Tuple[str, str], ...]

#: Default histogram buckets (generic latency-ish spread, powers of ~4).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
)


def _label_key(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: LabelSet) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind when disabled."""

    __slots__ = ()

    def labels(self, **labels: object) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def value(self) -> float:
        return 0.0


NULL_INSTRUMENT = _NullInstrument()


class Counter:
    """A monotonically increasing count, optionally split by labels."""

    __slots__ = ("name", "help", "_values")

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: Dict[LabelSet, float] = {}

    def labels(self, **labels: object) -> "_BoundCounter":
        return _BoundCounter(self, _label_key({k: str(v) for k, v in labels.items()}))

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc by {amount!r})")
        self._inc((), amount)

    def _inc(self, key: LabelSet, amount: float) -> None:
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key({k: str(v) for k, v in labels.items()}), 0.0)

    def series(self) -> Dict[str, float]:
        return {_render_key(self.name, key): value for key, value in self._values.items()}

    def samples(self) -> List[Tuple[LabelSet, float]]:
        """(labels, value) pairs sorted by label set (exporter feed)."""
        return sorted(self._values.items())

    def reset(self) -> None:
        self._values.clear()


class _BoundCounter:
    __slots__ = ("_counter", "_key")

    def __init__(self, counter: Counter, key: LabelSet):
        self._counter = counter
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self._counter.name} cannot decrease (inc by {amount!r})"
            )
        self._counter._inc(self._key, amount)

    def value(self) -> float:
        return self._counter._values.get(self._key, 0.0)


class Gauge:
    """A value that can go up and down (occupancy, high-water marks)."""

    __slots__ = ("name", "help", "_values")

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: Dict[LabelSet, float] = {}

    def labels(self, **labels: object) -> "_BoundGauge":
        return _BoundGauge(self, _label_key({k: str(v) for k, v in labels.items()}))

    def set(self, value: float) -> None:
        self._values[()] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._values[()] = self._values.get((), 0.0) + amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key({k: str(v) for k, v in labels.items()}), 0.0)

    def series(self) -> Dict[str, float]:
        return {_render_key(self.name, key): value for key, value in self._values.items()}

    def samples(self) -> List[Tuple[LabelSet, float]]:
        """(labels, value) pairs sorted by label set (exporter feed)."""
        return sorted(self._values.items())

    def reset(self) -> None:
        self._values.clear()


class _BoundGauge:
    __slots__ = ("_gauge", "_key")

    def __init__(self, gauge: Gauge, key: LabelSet):
        self._gauge = gauge
        self._key = key

    def set(self, value: float) -> None:
        self._gauge._values[self._key] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._gauge._values[self._key] = self._gauge._values.get(self._key, 0.0) + amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self) -> float:
        return self._gauge._values.get(self._key, 0.0)


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, bucket_count: int):
        self.bucket_counts = [0] * bucket_count
        self.count = 0
        self.sum = 0.0


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe(v)`` increments every bucket whose upper bound is >= v; an
    implicit ``+Inf`` bucket equals ``count``.
    """

    __slots__ = ("name", "help", "buckets", "_series")

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram buckets must be sorted and non-empty: {buckets!r}")
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._series: Dict[LabelSet, _HistogramSeries] = {}

    def labels(self, **labels: object) -> "_BoundHistogram":
        return _BoundHistogram(self, _label_key({k: str(v) for k, v in labels.items()}))

    def observe(self, value: float) -> None:
        self._observe((), value)

    def _observe(self, key: LabelSet, value: float) -> None:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        series.count += 1
        series.sum += value
        # Per-bucket counts; series() renders the cumulative (le=) view.
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                series.bucket_counts[index] += 1
                break

    def count(self, **labels: object) -> int:
        series = self._series.get(_label_key({k: str(v) for k, v in labels.items()}))
        return series.count if series else 0

    def total(self, **labels: object) -> float:
        series = self._series.get(_label_key({k: str(v) for k, v in labels.items()}))
        return series.sum if series else 0.0

    def series(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for key, series in self._series.items():
            cumulative = 0
            for bound, bucket in zip(self.buckets, series.bucket_counts):
                cumulative += bucket
                bucket_key = key + (("le", f"{bound:g}"),)
                out[_render_key(f"{self.name}_bucket", bucket_key)] = float(cumulative)
            out[_render_key(f"{self.name}_bucket", key + (("le", "+Inf"),))] = float(series.count)
            out[_render_key(f"{self.name}_count", key)] = float(series.count)
            out[_render_key(f"{self.name}_sum", key)] = series.sum
        return out

    def samples(self) -> List[Tuple[LabelSet, Dict[str, object]]]:
        """Structured per-label-set view for the Prometheus exporter.

        Each entry is ``(labels, {"buckets": [(bound, cumulative), ...],
        "count": n, "sum": s})`` with cumulative bucket counts (the
        explicit ``+Inf`` bucket is the exporter's job — it always equals
        ``count``).
        """
        out: List[Tuple[LabelSet, Dict[str, object]]] = []
        for key in sorted(self._series):
            series = self._series[key]
            cumulative = 0
            buckets: List[Tuple[float, int]] = []
            for bound, bucket in zip(self.buckets, series.bucket_counts):
                cumulative += bucket
                buckets.append((bound, cumulative))
            out.append((key, {"buckets": buckets, "count": series.count, "sum": series.sum}))
        return out

    def reset(self) -> None:
        self._series.clear()


class _BoundHistogram:
    __slots__ = ("_histogram", "_key")

    def __init__(self, histogram: Histogram, key: LabelSet):
        self._histogram = histogram
        self._key = key

    def observe(self, value: float) -> None:
        self._histogram._observe(self._key, value)


class MetricsRegistry:
    """Name → instrument, with get-or-create semantics.

    ``enabled=False`` turns the registry into a null object: every
    ``counter()``/``gauge()``/``histogram()`` call returns the shared
    no-op instrument and ``snapshot()`` is empty.  Components therefore
    never branch on "is observability on" — they always publish, and the
    registry decides whether publishing means anything.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: "Dict[str, object]" = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get_or_create(self, name: str, factory, kind: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if getattr(existing, "kind", None) != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, "  # type: ignore[attr-defined]
                    f"requested {kind}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._get_or_create(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._get_or_create(name, lambda: Histogram(name, help, buckets), "histogram")

    def metric(self, name: str):
        """The registered instrument, or None."""
        return self._metrics.get(name)

    def instruments(self) -> List[object]:
        """Every registered instrument, sorted by metric name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, float]:
        """Every series as a flat ``name{label=value,...} -> value`` dict."""
        out: Dict[str, float] = {}
        for name in sorted(self._metrics):
            out.update(self._metrics[name].series())  # type: ignore[attr-defined]
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render(self, title: str = "metrics") -> str:
        """The snapshot as an aligned text table."""
        from repro.stats.tables import format_table

        rows = [[key, value] for key, value in sorted(self.snapshot().items())]
        return format_table(["metric", "value"], rows, title=title)

    def reset(self) -> None:
        for metric in self._metrics.values():
            metric.reset()  # type: ignore[attr-defined]


#: The shared disabled registry — the default everywhere.
NULL_REGISTRY = MetricsRegistry(enabled=False)
