"""Windowed time-series telemetry (obs gen-3).

Everything the registry and the load results expose is cumulative: one
number per run, no notion of *when*.  That is enough for the paper's
end-of-run tables but useless for the questions the scale and FT layers
ask — "was this replica slowing down before it died?", "did the drop
burst start before or after the autoscaler acted?".  This module adds
the missing axis: a :class:`TimeSeries` cuts a run into **windows** on a
sim-time (or packet-count) clock and summarizes each window as it
closes:

- per-window packet/drop/buffered counts and arrival rate;
- exact p50/p99 latency from a per-window sample channel
  (``sample_every=1`` keeps every sample, so a run that fits in one
  window reproduces ``LoadResult.latency_percentile`` bit-for-bit —
  the oracle test in ``tests/unit/test_obs_timeseries.py``);
- **registry deltas**: every metric in an attached
  :class:`~repro.obs.registry.MetricsRegistry` is snapshotted at window
  close and differenced against the previous close, turning cumulative
  counters into per-window rates and cumulative histograms into
  per-window bucket deltas with interpolated p50/p99
  (:func:`percentile_from_deltas`);
- per-replica sub-windows (packets, drops, buffered, fast-path hits,
  latency percentiles) — the input of
  :class:`~repro.obs.health.HealthModel`.

Windows land in a bounded ring (``deque(maxlen=capacity)``): old
windows are *evicted*, never merged, so eviction can never change any
retained window's totals (the Hypothesis property in
``tests/property/test_timeseries_properties.py``).

Two ingestion paths, chosen by who is running:

- **post-run** (:meth:`TimeSeries.ingest_result`): single-platform and
  batch-lane runs hand over the finished
  :class:`~repro.platform.base.LoadResult`; windowing is arithmetic on
  the arrival spacing, costs nothing per packet, and keeps the run
  eligible for the compiled/batch fast lanes — this is how the
  obs-overhead gate cells stay under 5 %;
- **per-dispatch** (:meth:`TimeSeries.record`): ``ScaleCluster`` calls
  it once per packet so windows close *mid-run* — the FT integration
  needs degraded/burn signals to fire before recovery completes.

``on_close`` callbacks receive each window as it closes; the health
model and the SLO engine subscribe there.
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import Histogram, MetricsRegistry, NULL_REGISTRY
from repro.stats.summary import percentile_sorted

#: default sim-time window when neither clock is given: 1 ms
DEFAULT_WINDOW_NS = 1_000_000.0


def percentile_from_deltas(
    bounds: Sequence[float], deltas: Sequence[float], fraction: float
) -> Optional[float]:
    """Interpolated percentile from per-window histogram bucket deltas.

    ``bounds`` are the bucket upper bounds (ascending, the last may be
    ``+Inf``); ``deltas`` the per-bucket observation counts within the
    window.  Linear interpolation inside the winning bucket — the
    standard Prometheus ``histogram_quantile`` estimate.  Returns None
    for an empty window.
    """
    total = sum(deltas)
    if total <= 0:
        return None
    rank = fraction * total
    cumulative = 0.0
    lower = 0.0
    for bound, delta in zip(bounds, deltas):
        cumulative += delta
        if cumulative >= rank and delta > 0:
            if math.isinf(bound):
                return lower
            inside = (rank - (cumulative - delta)) / delta
            return lower + inside * (bound - lower)
        lower = bound if not math.isinf(bound) else lower
    return lower


class ReplicaWindow:
    """One replica's share of one window."""

    __slots__ = ("replica", "packets", "drops", "buffered", "fast_hits", "latencies")

    def __init__(self, replica: Any):
        self.replica = replica
        self.packets = 0
        self.drops = 0
        self.buffered = 0
        self.fast_hits = 0
        self.latencies: List[float] = []

    def percentile(self, fraction: float) -> Optional[float]:
        if not self.latencies:
            return None
        return percentile_sorted(sorted(self.latencies), fraction)

    def summary(self) -> Dict[str, Any]:
        ordered = sorted(self.latencies)
        return {
            "packets": self.packets,
            "drops": self.drops,
            "buffered": self.buffered,
            "fast_hits": self.fast_hits,
            "samples": len(ordered),
            "p50_ns": percentile_sorted(ordered, 0.50) if ordered else None,
            "p99_ns": percentile_sorted(ordered, 0.99) if ordered else None,
        }


class Window:
    """One closed (or in-progress) telemetry window."""

    __slots__ = (
        "index",
        "start_ns",
        "end_ns",
        "packets",
        "drops",
        "buffered",
        "latencies",
        "replicas",
        "metric_deltas",
        "hist_percentiles",
        "closed",
        "_sorted",
    )

    def __init__(self, index: int, start_ns: float, end_ns: Optional[float]):
        self.index = index
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.packets = 0
        self.drops = 0
        self.buffered = 0
        #: sampled latency channel (``sample_every`` stride)
        self.latencies: List[float] = []
        self.replicas: Dict[Any, ReplicaWindow] = {}
        #: per-window change of every registry series (set at close)
        self.metric_deltas: Dict[str, float] = {}
        #: per-histogram interpolated {"p50": ..., "p99": ...} (at close)
        self.hist_percentiles: Dict[str, Dict[str, Optional[float]]] = {}
        self.closed = False
        self._sorted: Optional[List[float]] = None

    # -- reads --------------------------------------------------------------

    def sorted_latencies(self) -> List[float]:
        if self._sorted is None or len(self._sorted) != len(self.latencies):
            self._sorted = sorted(self.latencies)
        return self._sorted

    def percentile(self, fraction: float) -> Optional[float]:
        ordered = self.sorted_latencies()
        if not ordered:
            return None
        return percentile_sorted(ordered, fraction)

    @property
    def p50_ns(self) -> Optional[float]:
        return self.percentile(0.50)

    @property
    def p99_ns(self) -> Optional[float]:
        return self.percentile(0.99)

    @property
    def duration_ns(self) -> Optional[float]:
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    @property
    def rate_pps(self) -> Optional[float]:
        duration = self.duration_ns
        if not duration:
            return None
        return self.packets / (duration / 1e9)

    def replica_window(self, replica: Any) -> ReplicaWindow:
        window = self.replicas.get(replica)
        if window is None:
            window = self.replicas[replica] = ReplicaWindow(replica)
        return window

    def summary(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot (the JSONL export row)."""
        return {
            "index": self.index,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "packets": self.packets,
            "drops": self.drops,
            "buffered": self.buffered,
            "samples": len(self.latencies),
            "p50_ns": self.p50_ns,
            "p99_ns": self.p99_ns,
            "rate_pps": self.rate_pps,
            "replicas": {str(rid): rw.summary() for rid, rw in sorted(
                self.replicas.items(), key=lambda item: str(item[0])
            )},
            "metric_deltas": dict(self.metric_deltas),
            "hist_percentiles": {
                name: dict(values) for name, values in self.hist_percentiles.items()
            },
        }


class TimeSeries:
    """Bounded ring of telemetry windows on a sim-time or packet clock.

    Exactly one clock drives window closes: ``window_ns`` closes a
    window when an arrival crosses its end (sim time), ``window_packets``
    after that many records.  ``capacity`` bounds the ring;
    ``sample_every`` strides the latency sample channel (1 = exact).
    """

    def __init__(
        self,
        window_ns: Optional[float] = None,
        window_packets: Optional[int] = None,
        capacity: int = 256,
        registry: MetricsRegistry = NULL_REGISTRY,
        sample_every: int = 1,
    ):
        if window_ns is not None and window_packets is not None:
            raise ValueError("pass window_ns or window_packets, not both")
        if window_ns is None and window_packets is None:
            window_ns = DEFAULT_WINDOW_NS
        if window_ns is not None and window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns!r}")
        if window_packets is not None and window_packets < 1:
            raise ValueError(f"window_packets must be >= 1, got {window_packets!r}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every!r}")
        self.window_ns = window_ns
        self.window_packets = window_packets
        self.capacity = capacity
        self.registry = registry
        self.sample_every = sample_every
        self.windows: "deque[Window]" = deque(maxlen=capacity)
        self.evicted = 0
        self.windows_closed = 0
        #: run totals (never affected by ring eviction)
        self.total_packets = 0
        self.total_drops = 0
        self.total_buffered = 0
        self._current: Optional[Window] = None
        self._next_index = 0
        self._stride = 0
        self._callbacks: List[Callable[[Window], None]] = []
        #: registry state at the previous window close (delta base)
        self._snap_prev: Dict[str, float] = {}
        self._hist_prev: Dict[str, Tuple[Tuple[float, ...], Tuple[float, ...]]] = {}

    # -- subscriptions ------------------------------------------------------

    def on_close(self, callback: Callable[[Window], None]) -> None:
        """Call ``callback(window)`` at every window close, in order."""
        self._callbacks.append(callback)

    # -- the window clock ---------------------------------------------------

    def _open(self, start_ns: float) -> Window:
        if self.window_ns is not None:
            # Align the window to the clock grid so arrivals map to
            # window indices arithmetically.
            slot = math.floor(start_ns / self.window_ns)
            window = Window(
                self._next_index,
                slot * self.window_ns,
                (slot + 1) * self.window_ns,
            )
        else:
            window = Window(self._next_index, start_ns, None)
        self._next_index += 1
        self._current = window
        return window

    def _close(self, end_ns: Optional[float] = None) -> Optional[Window]:
        window = self._current
        if window is None:
            return None
        self._current = None
        if window.end_ns is None:
            window.end_ns = end_ns if end_ns is not None else window.start_ns
        window.closed = True
        self._snapshot_deltas(window)
        if len(self.windows) == self.windows.maxlen:
            self.evicted += 1
        self.windows.append(window)
        self.windows_closed += 1
        for callback in self._callbacks:
            callback(window)
        return window

    def advance(self, now_ns: float) -> None:
        """Close every sim-time window ending at or before ``now_ns``."""
        if self.window_ns is None:
            return
        while self._current is not None and now_ns >= self._current.end_ns:
            self._close()

    def finish(self, end_ns: Optional[float] = None) -> Optional[Window]:
        """Close the in-progress window (end of run)."""
        return self._close(end_ns)

    # -- per-dispatch ingestion (cluster path) ------------------------------

    def record(
        self,
        arrival_ns: float,
        latency_ns: Optional[float] = None,
        replica: Any = 0,
        dropped: bool = False,
        buffered: bool = False,
        fast_hit: bool = False,
    ) -> None:
        """Fold one dispatch into the current window (opening/closing
        windows as the arrival clock dictates)."""
        if self.window_ns is not None:
            self.advance(arrival_ns)
        window = self._current
        if window is None:
            window = self._open(arrival_ns)
        window.packets += 1
        self.total_packets += 1
        rw = window.replica_window(replica)
        rw.packets += 1
        if buffered:
            window.buffered += 1
            rw.buffered += 1
            self.total_buffered += 1
        elif dropped:
            window.drops += 1
            rw.drops += 1
            self.total_drops += 1
        if fast_hit:
            rw.fast_hits += 1
        if latency_ns is not None:
            self._stride += 1
            if self._stride >= self.sample_every:
                self._stride = 0
                window.latencies.append(latency_ns)
                rw.latencies.append(latency_ns)
        if self.window_packets is not None and window.packets >= self.window_packets:
            self._close(arrival_ns)

    # -- post-run ingestion (platform / batch-lane path) --------------------

    def ingest_result(
        self,
        result,
        inter_arrival_ns: float = 0.0,
        replica: Any = 0,
        fast_hits: int = 0,
    ) -> List[Window]:
        """Window a finished :class:`~repro.platform.base.LoadResult`.

        Arrivals are reconstructed as ``i * inter_arrival_ns`` (the
        spacing ``run_load`` offered them at); windowing is slice
        arithmetic over the delivered-latency list — no per-packet
        Python loop, which is what keeps the fast lanes' obs overhead
        near zero.  Drops (arrival positions unknown post-run) are
        charged to the final window.  Every ingested window is closed
        before returning, so ``on_close`` subscribers fire here too.
        """
        latencies = result.latencies_ns
        n = len(latencies)
        delivered_fast = min(fast_hits, n)
        closed: List[Window] = []

        def fill(window: Window, chunk: List[float], fast: int) -> None:
            count = len(chunk)
            window.packets += count
            self.total_packets += count
            rw = window.replica_window(replica)
            rw.packets += count
            rw.fast_hits += fast
            if self.sample_every == 1:
                window.latencies.extend(chunk)
                rw.latencies.extend(chunk)
            else:
                sampled = chunk[self.sample_every - 1 :: self.sample_every]
                window.latencies.extend(sampled)
                rw.latencies.extend(sampled)

        if self.window_ns is None:
            size = self.window_packets or n or 1
            lo = 0
            while lo < n:
                hi = min(lo + size, n)
                window = self._current or self._open(float(lo))
                room = size - window.packets
                hi = min(lo + room, n)
                chunk = list(latencies[lo:hi])
                fast = max(0, min(len(chunk), delivered_fast - lo))
                fill(window, chunk, fast)
                if window.packets >= size:
                    closed.append(self._close(float(hi)))
                lo = hi
        elif inter_arrival_ns <= 0:
            # Saturation: every arrival at t=0, one window holds the run.
            window = self._current or self._open(0.0)
            fill(window, list(latencies), delivered_fast)
            closed.append(self._close())
        else:
            per_window = max(1, int(math.ceil(self.window_ns / inter_arrival_ns)))
            lo = 0
            while lo < n:
                arrival = lo * inter_arrival_ns
                self.advance(arrival)
                window = self._current or self._open(arrival)
                # arrivals in [window.start, window.end) — slice bounds
                hi = min(n, int(math.ceil(window.end_ns / inter_arrival_ns)))
                hi = max(hi, lo + 1)
                chunk = list(latencies[lo:hi])
                fast = max(0, min(len(chunk), delivered_fast - lo))
                fill(window, chunk, fast)
                lo = hi
            _ = per_window  # grid sanity only

        window = self._current
        if result.dropped:
            if window is None:
                window = self._open(max(0.0, (n - 1)) * max(inter_arrival_ns, 0.0))
            window.drops += result.dropped
            self.total_drops += result.dropped
            rw = window.replica_window(replica)
            rw.packets += result.dropped
            rw.drops += result.dropped
            window.packets += result.dropped
            self.total_packets += result.dropped
        if self._current is not None:
            closed.append(self.finish())
        return [w for w in closed if w is not None]

    # -- registry deltas ----------------------------------------------------

    def _snapshot_deltas(self, window: Window) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        snap = registry.snapshot()
        prev = self._snap_prev
        deltas = {}
        for key, value in snap.items():
            delta = value - prev.get(key, 0.0)
            if delta:
                deltas[key] = delta
        for key in prev:
            if key not in snap:
                deltas[key] = -prev[key]
        window.metric_deltas = deltas
        self._snap_prev = snap

        hist_prev = self._hist_prev
        hist_now: Dict[str, Tuple[Tuple[float, ...], Tuple[float, ...]]] = {}
        for instrument in registry.instruments():
            if not isinstance(instrument, Histogram):
                continue
            bounds = instrument.buckets + (math.inf,)
            for labels, sample in instrument.samples():
                key = instrument.name + "".join(f"{{{k}={v}}}" for k, v in labels)
                cumulative = [c for __, c in sample["buckets"]] + [sample["count"]]
                hist_now[key] = (bounds, tuple(float(c) for c in cumulative))
        for key, (bounds, cumulative) in hist_now.items():
            prev_cumulative = hist_prev.get(key, (bounds, (0.0,) * len(cumulative)))[1]
            if len(prev_cumulative) != len(cumulative):
                prev_cumulative = (0.0,) * len(cumulative)
            cum_deltas = [c - p for c, p in zip(cumulative, prev_cumulative)]
            # de-cumulate: per-bucket deltas within the window
            per_bucket = [cum_deltas[0]] + [
                cum_deltas[i] - cum_deltas[i - 1] for i in range(1, len(cum_deltas))
            ]
            if sum(per_bucket) <= 0:
                continue
            window.hist_percentiles[key] = {
                "p50": percentile_from_deltas(bounds, per_bucket, 0.50),
                "p99": percentile_from_deltas(bounds, per_bucket, 0.99),
            }
        self._hist_prev = hist_now

    # -- introspection / export ---------------------------------------------

    def __len__(self) -> int:
        return len(self.windows)

    def last(self) -> Optional[Window]:
        return self.windows[-1] if self.windows else None

    def summary(self) -> Dict[str, Any]:
        return {
            "windows_closed": self.windows_closed,
            "windows_retained": len(self.windows),
            "windows_evicted": self.evicted,
            "total_packets": self.total_packets,
            "total_drops": self.total_drops,
            "total_buffered": self.total_buffered,
            "window_ns": self.window_ns,
            "window_packets": self.window_packets,
            "sample_every": self.sample_every,
        }

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(window.summary(), sort_keys=True) for window in self.windows
        )

    def write_jsonl(self, path) -> int:
        payload = self.to_jsonl()
        with open(path, "w") as handle:
            if payload:
                handle.write(payload + "\n")
        return len(self.windows)

    def reset(self) -> None:
        self.windows.clear()
        self.evicted = 0
        self.windows_closed = 0
        self.total_packets = 0
        self.total_drops = 0
        self.total_buffered = 0
        self._current = None
        self._next_index = 0
        self._stride = 0
        self._snap_prev = {}
        self._hist_prev = {}

    def __repr__(self) -> str:
        clock = (
            f"{self.window_ns:g}ns" if self.window_ns is not None
            else f"{self.window_packets}pkt"
        )
        return (
            f"<TimeSeries {clock} windows: {len(self.windows)} retained, "
            f"{self.evicted} evicted, {self.total_packets} packets>"
        )


def load_timeseries_jsonl(path) -> List[Dict[str, Any]]:
    """Read a windows JSONL export back into summary dicts."""
    rows: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def render_windows(rows: Sequence[Dict[str, Any]], title: str = "windows") -> str:
    """Window summaries (live or loaded) as an aligned text table."""
    from repro.stats.tables import format_table

    table_rows = []
    for row in rows:
        p50 = row.get("p50_ns")
        p99 = row.get("p99_ns")
        rate = row.get("rate_pps")
        table_rows.append(
            [
                row.get("index"),
                f"{row.get('start_ns', 0.0):.0f}",
                row.get("packets", 0),
                row.get("drops", 0),
                row.get("buffered", 0),
                "-" if p50 is None else f"{p50 / 1000.0:.2f}",
                "-" if p99 is None else f"{p99 / 1000.0:.2f}",
                "-" if rate is None else f"{rate / 1e6:.3f}",
            ]
        )
    return format_table(
        ["win", "start_ns", "pkts", "drop", "buf", "p50_us", "p99_us", "Mpps"],
        table_rows,
        title=title,
    )
