"""Prometheus text exposition: render a MetricsRegistry, parse it back.

The registry's internal :meth:`~repro.obs.registry.MetricsRegistry.snapshot`
keys (``name{k=v}``) are diff-friendly but not a scrapeable format —
label values are unquoted and unescaped, and histograms carry no type
metadata.  :func:`render_prometheus` emits the real thing (text format
version 0.0.4):

- ``# HELP`` / ``# TYPE`` headers per metric family;
- label values quoted, with ``\\``, ``"`` and newline escaped;
- histograms as cumulative ``<name>_bucket{le="..."}`` series with an
  explicit ``le="+Inf"`` bucket equal to ``<name>_count``, followed by
  ``<name>_sum`` and ``<name>_count``.

:func:`parse_prometheus` is the matching reader — enough of a scraper
to round-trip the exporter's output (the unit suite feeds one into the
other and asserts sample-level equality plus the histogram invariants:
bucket monotonicity, ``+Inf == count``).  It also powers ``repro obs
report`` when pointed at a ``--metrics-prom`` artifact.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import Counter, Gauge, Histogram, LabelSet, MetricsRegistry

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                out.append(ch)
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in labels)
    return f"{{{inner}}}"


def _format_value(value: float) -> str:
    # repr() round-trips through float() exactly; integers stay short.
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return _format_value(bound) if bound != int(bound) else repr(float(bound))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text format (one scrape's payload)."""
    lines: List[str] = []
    for instrument in registry.instruments():
        name = instrument.name  # type: ignore[attr-defined]
        help_text = getattr(instrument, "help", "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {instrument.kind}")  # type: ignore[attr-defined]
        if isinstance(instrument, (Counter, Gauge)):
            for labels, value in instrument.samples():
                lines.append(f"{name}{_format_labels(labels)} {_format_value(value)}")
        elif isinstance(instrument, Histogram):
            for labels, data in instrument.samples():
                for bound, cumulative in data["buckets"]:  # type: ignore[index]
                    bucket_labels = labels + (("le", _format_bound(bound)),)
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} "
                        f"{_format_value(float(cumulative))}"
                    )
                inf_labels = labels + (("le", "+Inf"),)
                count = data["count"]  # type: ignore[index]
                lines.append(
                    f"{name}_bucket{_format_labels(inf_labels)} "
                    f"{_format_value(float(count))}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(float(data['sum']))}"  # type: ignore[index]
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {_format_value(float(count))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path) -> int:
    """Write the exposition to a file; returns the sample-line count."""
    payload = render_prometheus(registry)
    with open(path, "w") as handle:
        handle.write(payload)
    return sum(1 for line in payload.splitlines() if line and not line.startswith("#"))


def _split_labels(raw: str) -> LabelSet:
    """Split ``k="v",k2="v2"`` respecting quotes and escapes."""
    labels: List[Tuple[str, str]] = []
    i = 0
    length = len(raw)
    while i < length:
        eq = raw.index("=", i)
        name = raw[i:eq].strip()
        if eq + 1 >= length or raw[eq + 1] != '"':
            raise ValueError(f"unquoted label value at {raw[i:]!r}")
        j = eq + 2
        chunk: List[str] = []
        while j < length:
            ch = raw[j]
            if ch == "\\" and j + 1 < length:
                chunk.append(ch)
                chunk.append(raw[j + 1])
                j += 2
                continue
            if ch == '"':
                break
            chunk.append(ch)
            j += 1
        else:
            raise ValueError(f"unterminated label value in {raw!r}")
        labels.append((name, _unescape_label_value("".join(chunk))))
        i = j + 1
        while i < length and raw[i] in ", ":
            i += 1
    return tuple(sorted(labels))


class ParsedExposition:
    """A parsed scrape: samples + family metadata, with lookup helpers."""

    def __init__(self):
        self.types: Dict[str, str] = {}
        self.helps: Dict[str, str] = {}
        #: (series name, sorted label set, value) in document order
        self.samples: List[Tuple[str, LabelSet, float]] = []

    def value(self, name: str, **labels: object) -> Optional[float]:
        want = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        for sample_name, sample_labels, value in self.samples:
            if sample_name == name and sample_labels == want:
                return value
        return None

    def series(self, name: str) -> List[Tuple[LabelSet, float]]:
        return [(labels, value) for n, labels, value in self.samples if n == name]

    def names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for name, __, __unused in self.samples:
            seen.setdefault(name, None)
        return list(seen)

    def as_dict(self) -> Dict[Tuple[str, LabelSet], float]:
        return {(name, labels): value for name, labels, value in self.samples}

    def __len__(self) -> int:
        return len(self.samples)


def parse_prometheus(text: str) -> ParsedExposition:
    """Parse text-format exposition (the exporter's output) back."""
    parsed = ParsedExposition()
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                parsed.types[parts[2]] = parts[3].strip()
            elif len(parts) >= 3 and parts[1] == "HELP":
                parsed.helps[parts[2]] = parts[3].strip() if len(parts) > 3 else ""
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        raw_labels = match.group("labels")
        labels = _split_labels(raw_labels) if raw_labels else ()
        parsed.samples.append((match.group("name"), labels, float(match.group("value"))))
    return parsed
