"""BENCH_*.json regression differ (obs gen-3 tooling).

Every benchmark writes a flat ``BENCH_<experiment>.json`` artifact at
the repo root; those files are the perf trajectory of the project.
This module diffs two such artifacts (or two directories of them) and
classifies every metric change:

- each key gets a **direction** from its name — timing/latency/loss
  keys are lower-is-better, throughput/speedup/hit keys are
  higher-is-better, everything else is direction-neutral;
- a change beyond ``threshold`` against the key's good direction is a
  **regression**; beyond it in the good direction, an **improvement**;
  neutral keys only ever *change*;
- wall-clock keys (matched by ``ignore``) are reported but never gate —
  CI runners differ too much for absolute seconds to be comparable.

``repro obs diff`` renders the result for humans;
``benchmarks/check_bench_diff.py`` turns regressions into a CI exit
code against the committed baselines.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: lower-is-better key patterns (timing, latency, loss, memory)
_LOWER_BETTER = re.compile(
    r"(_ns$|_ns_per_packet$|_us$|_ms$|latency|p50|p99|p999|dropped|drops|"
    r"loss|overhead|_rss|aborts|replay_depth|recovery)"
)
#: higher-is-better key patterns (rates, ratios, speedups)
_HIGHER_BETTER = re.compile(r"(mpps|throughput|speedup|_hit|delivered|compliance|survived)")
#: wall-clock-derived keys: reported, never gated (runner-dependent —
#: absolute seconds, overhead ratios, speedups and RSS all move with
#: the machine, while sim-time metrics are deterministic)
DEFAULT_IGNORE = r"(_s$|_secs$|wallclock|_seconds$|overhead|_rss|speedup|ns_per_packet)"


@dataclass(frozen=True)
class DiffEntry:
    """One metric's change between baseline and current."""

    experiment: str
    key: str
    baseline: Optional[float]
    current: Optional[float]
    delta_fraction: Optional[float]  # (current - baseline) / |baseline|
    direction: str                   # "lower", "higher", "neutral"
    status: str                      # "ok", "regression", "improvement",
                                     # "changed", "added", "removed", "ignored"

    def describe(self) -> str:
        base = "-" if self.baseline is None else f"{self.baseline:g}"
        cur = "-" if self.current is None else f"{self.current:g}"
        delta = (
            "-" if self.delta_fraction is None else f"{self.delta_fraction:+.1%}"
        )
        return f"{self.experiment}:{self.key} {base} -> {cur} ({delta}) [{self.status}]"


def direction_of(key: str) -> str:
    lowered = key.lower()
    if _LOWER_BETTER.search(lowered):
        return "lower"
    if _HIGHER_BETTER.search(lowered):
        return "higher"
    return "neutral"


def load_bench(path) -> Tuple[str, Dict[str, float]]:
    """Read one BENCH_*.json; returns (experiment, metrics)."""
    payload = json.loads(Path(path).read_text())
    experiment = payload.get("experiment") or Path(path).stem.replace("BENCH_", "")
    metrics = payload.get("metrics", {})
    return experiment, {k: v for k, v in metrics.items() if isinstance(v, (int, float))}


def collect_benches(path) -> Dict[str, Dict[str, float]]:
    """Map experiment -> metrics for a file or a directory of files."""
    p = Path(path)
    if p.is_dir():
        out: Dict[str, Dict[str, float]] = {}
        for child in sorted(p.glob("BENCH_*.json")):
            experiment, metrics = load_bench(child)
            out[experiment] = metrics
        return out
    experiment, metrics = load_bench(p)
    return {experiment: metrics}


def diff_metrics(
    experiment: str,
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float = 0.05,
    ignore: Optional[str] = DEFAULT_IGNORE,
) -> List[DiffEntry]:
    """Classify every key of one experiment pair."""
    ignore_re = re.compile(ignore) if ignore else None
    entries: List[DiffEntry] = []
    for key in sorted(set(baseline) | set(current)):
        base = baseline.get(key)
        cur = current.get(key)
        direction = direction_of(key)
        if base is None:
            entries.append(DiffEntry(experiment, key, None, cur, None, direction, "added"))
            continue
        if cur is None:
            entries.append(DiffEntry(experiment, key, base, None, None, direction, "removed"))
            continue
        if base == cur:
            delta = 0.0
        elif base == 0 or not math.isfinite(base):
            delta = math.inf if cur > base else -math.inf
        else:
            delta = (cur - base) / abs(base)
        if ignore_re is not None and ignore_re.search(key.lower()):
            status = "ignored" if delta else "ok"
        elif abs(delta) <= threshold:
            status = "ok"
        elif direction == "lower":
            status = "regression" if delta > 0 else "improvement"
        elif direction == "higher":
            status = "regression" if delta < 0 else "improvement"
        else:
            status = "changed"
        entries.append(DiffEntry(experiment, key, base, cur, delta, direction, status))
    return entries


def diff_benches(
    baseline: Dict[str, Dict[str, float]],
    current: Dict[str, Dict[str, float]],
    threshold: float = 0.05,
    ignore: Optional[str] = DEFAULT_IGNORE,
) -> List[DiffEntry]:
    """Diff two experiment->metrics maps (only experiments in both gate)."""
    entries: List[DiffEntry] = []
    for experiment in sorted(set(baseline) | set(current)):
        base = baseline.get(experiment)
        cur = current.get(experiment)
        if base is None or cur is None:
            side = "added" if base is None else "removed"
            for key in sorted((cur or base) or {}):
                value = (cur or base)[key]
                entries.append(
                    DiffEntry(
                        experiment,
                        key,
                        None if base is None else value,
                        None if cur is None else value,
                        None,
                        direction_of(key),
                        side,
                    )
                )
            continue
        entries.extend(diff_metrics(experiment, base, cur, threshold, ignore))
    return entries


def regressions(entries: List[DiffEntry]) -> List[DiffEntry]:
    return [entry for entry in entries if entry.status == "regression"]


def render_diff(
    entries: List[DiffEntry],
    title: str = "bench diff",
    show_ok: bool = False,
) -> str:
    """Aligned table of the diff, regressions first."""
    from repro.stats.tables import format_table

    order = {"regression": 0, "changed": 1, "improvement": 2, "added": 3,
             "removed": 4, "ignored": 5, "ok": 6}
    visible = [e for e in entries if show_ok or e.status != "ok"]
    visible.sort(key=lambda e: (order.get(e.status, 9), e.experiment, e.key))
    rows = []
    for entry in visible:
        rows.append(
            [
                entry.experiment,
                entry.key,
                "-" if entry.baseline is None else f"{entry.baseline:g}",
                "-" if entry.current is None else f"{entry.current:g}",
                "-" if entry.delta_fraction is None else f"{entry.delta_fraction:+.1%}",
                entry.direction,
                entry.status,
            ]
        )
    if not rows:
        rows.append(["-", "(no changes)", "-", "-", "-", "-", "ok"])
    return format_table(
        ["experiment", "metric", "baseline", "current", "delta", "dir", "status"],
        rows,
        title=title,
    )
