"""Sim-engine observability hooks.

:class:`repro.sim.engine.Engine` carries a nullable ``observer``
attribute; when set, the engine and its stores call the observer at six
points — process scheduled / resumed / finished, store put / get /
blocked.  The engine stays dependency-free (it never imports this
module): an observer is anything with these six methods, and the
implementations here are what the platforms and tests plug in.

- :class:`EngineObserver` — the no-op base class / protocol;
- :class:`CountingObserver` — firing counts per hook plus per-store
  put/get/blocked tallies (cheap; used by tests and the metrics layer);
- :class:`TracingObserver` — streams store occupancy into a
  :class:`~repro.obs.trace.PacketTracer` as counter samples (one Chrome
  counter track per ring) and marks blocked puts/gets as instants.

Every callback receives the engine-owned object itself (a ``Process`` or
``Store``), so observers read the current simulation time from
``store.engine.now`` without holding an engine reference.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.obs.trace import NULL_TRACER, PacketTracer


class EngineObserver:
    """No-op base: subclass and override the hooks you care about."""

    def process_scheduled(self, process: Any) -> None:
        pass

    def process_resumed(self, process: Any) -> None:
        pass

    def process_finished(self, process: Any) -> None:
        pass

    def store_put(self, store: Any, item: Any) -> None:
        pass

    def store_get(self, store: Any, item: Any) -> None:
        pass

    def store_blocked(self, store: Any, process: Any, kind: str) -> None:
        """``kind`` is ``"put"`` (store full) or ``"get"`` (store empty)."""
        pass


class CountingObserver(EngineObserver):
    """Tallies every hook firing; optionally mirrors into a registry."""

    def __init__(self, metrics: MetricsRegistry = NULL_REGISTRY):
        self.scheduled = 0
        self.resumed = 0
        self.finished = 0
        self.puts = 0
        self.gets = 0
        self.blocked: Dict[str, int] = {"put": 0, "get": 0}
        self.per_store_puts: Dict[str, int] = {}
        self.per_store_gets: Dict[str, int] = {}
        self._m_resumes = metrics.counter(
            "sim_process_resumes_total", "generator resumptions inside the engine"
        )
        self._m_blocked = metrics.counter(
            "sim_store_blocked_total", "puts/gets that had to wait on a store"
        )

    def process_scheduled(self, process: Any) -> None:
        self.scheduled += 1

    def process_resumed(self, process: Any) -> None:
        self.resumed += 1
        self._m_resumes.inc()

    def process_finished(self, process: Any) -> None:
        self.finished += 1

    def store_put(self, store: Any, item: Any) -> None:
        self.puts += 1
        name = store.name or "store"
        self.per_store_puts[name] = self.per_store_puts.get(name, 0) + 1

    def store_get(self, store: Any, item: Any) -> None:
        self.gets += 1
        name = store.name or "store"
        self.per_store_gets[name] = self.per_store_gets.get(name, 0) + 1

    def store_blocked(self, store: Any, process: Any, kind: str) -> None:
        self.blocked[kind] = self.blocked.get(kind, 0) + 1
        self._m_blocked.labels(kind=kind).inc()


class TracingObserver(EngineObserver):
    """Streams store occupancy and blocking into a packet tracer.

    Emits one counter sample per put/get (the occupancy *after* the
    operation) on track ``ring:<store name>`` and an instant marker for
    each blocked put/get — in Perfetto the rings render as stacked area
    charts with block events pinned on top.

    One observer may serve several engines (platforms reuse their
    observability bundle across runs): tracks are namespaced per engine,
    so two engines whose rings share a name — every platform calls its
    first ring ``ring:nf0`` — land on distinct tracks instead of
    interleaving.  The first engine seen keeps the bare legacy names;
    later engines are prefixed ``e1:``, ``e2:``, ...
    """

    def __init__(self, tracer: PacketTracer = NULL_TRACER):
        self.tracer = tracer
        # id(engine) -> (engine, tag).  The engine reference is held on
        # purpose: it pins the id, so a dead engine's recycled address
        # can never alias a later engine onto the wrong namespace.
        self._engine_tags: Dict[int, tuple] = {}

    def _track(self, store: Any) -> str:
        engine = store.engine
        entry = self._engine_tags.get(id(engine))
        if entry is None:
            tag = "" if not self._engine_tags else f"e{len(self._engine_tags)}:"
            entry = self._engine_tags[id(engine)] = (engine, tag)
        return f"{entry[1]}ring:{store.name or id(store)}"

    def store_put(self, store: Any, item: Any) -> None:
        self.tracer.counter("occupancy", self._track(store), store.engine.now, len(store))

    def store_get(self, store: Any, item: Any) -> None:
        self.tracer.counter("occupancy", self._track(store), store.engine.now, len(store))

    def store_blocked(self, store: Any, process: Any, kind: str) -> None:
        self.tracer.instant(
            f"blocked_{kind}",
            self._track(store),
            store.engine.now,
            process=getattr(process, "name", ""),
        )


class FanoutObserver(EngineObserver):
    """Forward every hook to several observers (counting + tracing)."""

    def __init__(self, *observers: EngineObserver):
        self.observers = [obs for obs in observers if obs is not None]

    def process_scheduled(self, process: Any) -> None:
        for obs in self.observers:
            obs.process_scheduled(process)

    def process_resumed(self, process: Any) -> None:
        for obs in self.observers:
            obs.process_resumed(process)

    def process_finished(self, process: Any) -> None:
        for obs in self.observers:
            obs.process_finished(process)

    def store_put(self, store: Any, item: Any) -> None:
        for obs in self.observers:
            obs.store_put(store, item)

    def store_get(self, store: Any, item: Any) -> None:
        for obs in self.observers:
            obs.store_get(store, item)

    def store_blocked(self, store: Any, process: Any, kind: str) -> None:
        for obs in self.observers:
            obs.store_blocked(store, process, kind)
