"""Tail-latency forensics: per-packet decomposition, flight recorder,
regime-shift detection and the unified causal timeline.

The rest of the observability stack can say *that* p99 regressed —
metrics give totals, spans give sampled flows, windows give trends.
What none of them answers is *why packet #8,431,207 took 40x the
median*.  This module closes that gap with four cooperating pieces:

- **per-packet latency decomposition** — every packet's sojourn is
  split into four components that sum *exactly* (IEEE float equality)
  to the reported latency::

      latency == ((service + transfer) + stall) + queue

  evaluated left-to-right in that canonical order.  ``service`` is the
  chain-processing share of the packet's stage plan, ``transfer`` the
  platform transport overhead inside it (NIC amortisation, ring
  enqueue/dequeue, cross-core sync — split out via
  ``Platform._plan_transfer_ns``), ``stall`` any charged recovery /
  freeze time (:class:`StallCharge`), and ``queue`` the exact residual:
  time spent waiting behind other packets in the replayed pipeline.
  Exactness is constructive, not assumed — :func:`exact_residual`
  walks the residual by ulps until the canonical sum reproduces the
  latency bit-for-bit (the naive IEEE difference does *not* guarantee
  this: ``(a - b) + b != a`` for e.g. ``a = 2**52 + 3, b = 0.5``).

- a **worst-K flight recorder** (:class:`FlightRecorder`) — a bounded
  ring of per-window entries, each holding the K worst packets of its
  window with full causal context: flow id, stage count, component
  breakdown, lane, replica.

- a **regime-shift detector** (:class:`RegimeShiftDetector`) — watches
  windowed p50/p99 against a trailing baseline and emits
  ``latency_regime_shift`` audit events naming the decomposition
  component that moved; a buffered-packet surge inside a window is an
  early stall-regime signal (those packets are accruing failover
  charge), so it fires the same event with ``component="stall"``
  *before* the recovery that will charge them completes.

- a **unified causal timeline** (:func:`build_timeline`) — joins audit
  events, flow spans, telemetry windows and forensic stall/worst
  records on (time, replica, flow) into one ordered event stream.

All observation is **post-run**: :class:`ForensicsEngine` consumes a
finished replay's plans/latencies, so a disabled (or absent) engine
costs nothing per packet and never disqualifies the analytic or batch
fast lanes.  Enabled, the engine decomposes a 1-in-``sample_every``
stride (plus every worst-K survivor), which is what keeps the
forensics cell inside the obs-overhead benchmark's 5% gate.
"""

from __future__ import annotations

import heapq
import json
import math
import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.audit import AuditLog, NULL_AUDIT
from repro.stats.summary import percentile_sorted

#: decomposition component names, canonical summation order
COMPONENTS = ("service", "transfer", "stall", "queue")


# -- exact float decomposition ------------------------------------------------


def exact_residual(total: float, partial: float, max_steps: int = 64) -> float:
    """A float ``q`` with ``partial + q == total`` exactly, when one exists.

    The naive IEEE difference does *not* qualify in general —
    ``(a - b) + b != a`` for ``a = 2**52 + 3, b = 0.5`` — so this walks
    ``q`` by ulps from the naive starting point until the rounded sum
    reproduces ``total`` (in practice within two steps).  An exact
    residual can fail to exist at round-half-even midpoints (the same
    ``2**52 + 3`` example: both neighbouring ``q`` values tie to an
    *even* sum while the target is odd); then the naive difference is
    returned and :func:`decompose` falls back to a queue-only split so
    the component-sum invariant still holds.
    """
    q = total - partial
    s = partial + q
    steps = 0
    while s != total and steps < max_steps:
        q = math.nextafter(q, math.inf if s < total else -math.inf)
        s = partial + q
        steps += 1
    if s != total:
        return total - partial
    return q


def split_plan_total(plan_total: float, transfer_estimate: float) -> Tuple[float, float]:
    """Split a stage plan's total service time into (service, transfer).

    ``transfer_estimate`` is clamped into ``[0, plan_total]``, then the
    service share is adjusted by ulps until ``service + transfer``
    reproduces ``plan_total`` exactly — the plan-level analogue of
    :func:`exact_residual`, so the decomposition invariant survives
    the split.  A degenerate estimate collapses to (plan_total, 0).
    """
    if not plan_total > 0.0:
        return plan_total, 0.0
    transfer = min(max(transfer_estimate, 0.0), plan_total)
    service = exact_residual(plan_total, transfer)
    if service + transfer != plan_total:
        # Midpoint case (see exact_residual): attribute everything to
        # service so the plan-level identity stays exact.
        return plan_total, 0.0
    return service, transfer


def decompose(
    latency_ns: float,
    service_ns: float,
    transfer_ns: float,
    stall_ns: float = 0.0,
) -> Tuple[float, float, float, float]:
    """(queue, service, transfer, stall) summing exactly to ``latency_ns``.

    The canonical order is ``((service + transfer) + stall) + queue``;
    the queue-wait is the exact residual against the known components.
    If no exact residual exists (only possible for wildly inconsistent
    inputs), everything collapses into the queue term so the invariant
    *always* holds.
    """
    known = (service_ns + transfer_ns) + stall_ns
    queue = exact_residual(latency_ns, known)
    if (known + queue) != latency_ns:
        # No exact residual exists (round-half-even midpoint): collapse
        # to a queue-only split rather than break the invariant.
        return latency_ns, 0.0, 0.0, 0.0
    return queue, service_ns, transfer_ns, stall_ns


def components_sum(
    queue_ns: float, service_ns: float, transfer_ns: float, stall_ns: float
) -> float:
    """The canonical left-to-right component sum (what tests compare)."""
    return ((service_ns + transfer_ns) + stall_ns) + queue_ns


# -- records ------------------------------------------------------------------


@dataclass
class StallCharge:
    """One packet's charged stall: recovery / freeze time on its clock.

    Produced by the FT coordinator when ``charge_recovery`` is on: a
    buffered packet delivered by failover is charged the wall time from
    failure detection to its delivery, mapped onto the simulated
    timeline.  ``latency_ns`` is built in the canonical component order
    so the decomposition invariant holds by construction.
    """

    replica: Any
    flow: str
    arrival_ns: float
    stall_ns: float
    service_ns: float
    cause: str = "failover"

    @property
    def latency_ns(self) -> float:
        return components_sum(0.0, self.service_ns, 0.0, self.stall_ns)

    def summary(self) -> Dict[str, Any]:
        return {
            "type": "stall",
            "replica": self.replica,
            "flow": self.flow,
            "arrival_ns": self.arrival_ns,
            "stall_ns": self.stall_ns,
            "service_ns": self.service_ns,
            "latency_ns": self.latency_ns,
            "cause": self.cause,
            "dominant": "stall" if self.stall_ns >= self.service_ns else "service",
        }


class TailRecord:
    """One decomposed packet (a worst-K survivor or a sampled stride)."""

    __slots__ = (
        "index",
        "fid",
        "replica",
        "lane",
        "latency_ns",
        "queue_ns",
        "service_ns",
        "transfer_ns",
        "stall_ns",
        "stages",
        "window",
        "fast",
    )

    def __init__(
        self,
        index: int,
        latency_ns: float,
        queue_ns: float,
        service_ns: float,
        transfer_ns: float,
        stall_ns: float,
        fid: Optional[int] = None,
        replica: Any = None,
        lane: str = "analytic",
        stages: int = 0,
        window: int = 0,
        fast: Optional[bool] = None,
    ):
        self.index = index
        self.fid = fid
        self.replica = replica
        self.lane = lane
        self.latency_ns = latency_ns
        self.queue_ns = queue_ns
        self.service_ns = service_ns
        self.transfer_ns = transfer_ns
        self.stall_ns = stall_ns
        self.stages = stages
        self.window = window
        self.fast = fast

    @property
    def dominant(self) -> str:
        shares = {
            "queue": self.queue_ns,
            "service": self.service_ns,
            "transfer": self.transfer_ns,
            "stall": self.stall_ns,
        }
        # Deterministic tie-break in canonical component order.
        best = max(COMPONENTS, key=lambda name: (shares[name], -COMPONENTS.index(name)))
        return best

    def summary(self) -> Dict[str, Any]:
        return {
            "type": "worst",
            "index": self.index,
            "fid": self.fid,
            "replica": self.replica,
            "lane": self.lane,
            "window": self.window,
            "latency_ns": self.latency_ns,
            "queue_ns": self.queue_ns,
            "service_ns": self.service_ns,
            "transfer_ns": self.transfer_ns,
            "stall_ns": self.stall_ns,
            "stages": self.stages,
            "fast": self.fast,
            "dominant": self.dominant,
        }


# -- the worst-K flight recorder ----------------------------------------------


class FlightRecorder:
    """Bounded ring of per-window worst-K packet records.

    Each closed window contributes one entry holding its K worst
    packets (by latency) with full causal context; the ring keeps the
    most recent ``capacity`` windows, so a long run's recorder stays
    bounded no matter how many windows it cuts.
    """

    def __init__(self, worst_k: int = 8, capacity: int = 256):
        if worst_k < 1:
            raise ValueError(f"worst_k must be >= 1, got {worst_k!r}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        from collections import deque

        self.worst_k = worst_k
        self.capacity = capacity
        self.entries: "Any" = deque(maxlen=capacity)
        self.windows_recorded = 0
        self.windows_evicted = 0

    def record_window(self, window_summary: Dict[str, Any], worst: List[TailRecord]) -> None:
        if len(self.entries) == self.entries.maxlen:
            self.windows_evicted += 1
        self.entries.append((window_summary, list(worst)))
        self.windows_recorded += 1

    def worst_overall(self, top: Optional[int] = None) -> List[TailRecord]:
        """The worst packets across every retained window, latency-desc."""
        records = [record for __, worst in self.entries for record in worst]
        records.sort(key=lambda r: (-r.latency_ns, r.index))
        return records if top is None else records[:top]


# -- the regime-shift detector ------------------------------------------------


class RegimeShiftDetector:
    """Windowed p50/p99 vs a trailing baseline; audits the shift.

    Consumes window *summaries* (dicts carrying ``p50_ns``/``p99_ns``/
    ``packets``/``buffered``), so the same detector watches live
    :class:`~repro.obs.timeseries.TimeSeries` windows (mid-run) and the
    forensics engine's own post-run windows.  Two rules fire a
    ``latency_regime_shift`` audit event:

    - a window's p50 or p99 exceeds ``factor`` times the trailing
      median of the last ``baseline`` windows (needs at least
      ``min_baseline`` of them), component attribution from the
      forensic component sums when the caller supplies them;
    - a window's buffered fraction crosses ``buffered_fraction`` —
      those packets are accruing failover stall charge, so the stall
      regime has *already* shifted even though their charged latencies
      only materialise at recovery (this is the event that precedes
      ``ft_failover_complete`` in the degraded-before-dead test).
    """

    def __init__(
        self,
        audit: AuditLog = NULL_AUDIT,
        factor: float = 2.0,
        baseline: int = 8,
        min_baseline: int = 2,
        buffered_fraction: float = 0.05,
    ):
        from collections import deque

        if factor <= 1.0:
            raise ValueError(f"factor must be > 1, got {factor!r}")
        self.audit = audit
        self.factor = factor
        self.min_baseline = min_baseline
        self.buffered_fraction = buffered_fraction
        self._p50s: "Any" = deque(maxlen=baseline)
        self._p99s: "Any" = deque(maxlen=baseline)
        self._buffered_regime = False
        self.shifts: List[Dict[str, Any]] = []

    def attach(self, timeseries) -> None:
        """Subscribe to a TimeSeries: every closing window is observed."""
        timeseries.on_close(lambda window: self.observe_summary(window.summary()))

    @staticmethod
    def _baseline(samples: Sequence[float]) -> Optional[float]:
        if not samples:
            return None
        ordered = sorted(samples)
        return ordered[len(ordered) // 2]

    def _emit(self, **fields: Any) -> None:
        event = dict(fields)
        self.shifts.append(event)
        self.audit.emit("latency_regime_shift", **fields)

    def observe_summary(
        self,
        summary: Dict[str, Any],
        components: Optional[Dict[str, float]] = None,
    ) -> None:
        """Fold one closed window in; maybe emit ``latency_regime_shift``."""
        window = summary.get("index", summary.get("window"))
        packets = summary.get("packets") or 0
        buffered = summary.get("buffered") or 0
        if packets and buffered / packets >= self.buffered_fraction:
            if not self._buffered_regime:
                self._buffered_regime = True
                self._emit(
                    window=window,
                    metric="buffered_fraction",
                    component="stall",
                    baseline=0.0,
                    current=round(buffered / packets, 4),
                    packets=packets,
                    buffered=buffered,
                )
        else:
            self._buffered_regime = False

        for metric, value, history in (
            ("p50", summary.get("p50_ns"), self._p50s),
            ("p99", summary.get("p99_ns"), self._p99s),
        ):
            if value is None:
                continue
            base = self._baseline(history)
            if (
                base is not None
                and len(history) >= self.min_baseline
                and base > 0
                and value > self.factor * base
            ):
                self._emit(
                    window=window,
                    metric=metric,
                    component=self._moved_component(components),
                    baseline=round(base, 3),
                    current=round(value, 3),
                    packets=packets,
                )
            history.append(value)

    @staticmethod
    def _moved_component(components: Optional[Dict[str, float]]) -> str:
        if not components:
            return "unknown"
        return max(COMPONENTS, key=lambda name: components.get(name, 0.0))

    def note_recovery_stall(
        self, replica: Any, delivered: int, stall_p50_ns: float, stall_max_ns: float
    ) -> None:
        """A failover just charged its buffered packets: stall regime shift.

        Called by the FT coordinator *before* it emits
        ``ft_failover_complete``, so the shift's audit ``seq`` precedes
        the completion's — the causal order the timeline relies on.
        """
        self._emit(
            window=None,
            metric="stall_charge",
            component="stall",
            baseline=0.0,
            current=round(stall_p50_ns, 3),
            stall_max_ns=round(stall_max_ns, 3),
            packets=delivered,
            replica=replica,
        )


#: module-level helper so the FT coordinator can audit a stall regime
#: shift without constructing a detector (its audit log is enough)
def emit_recovery_regime_shift(
    audit: AuditLog,
    replica: Any,
    stalls: Sequence[float],
) -> None:
    if not stalls:
        return
    ordered = sorted(stalls)
    audit.emit(
        "latency_regime_shift",
        window=None,
        metric="stall_charge",
        component="stall",
        baseline=0.0,
        current=round(ordered[len(ordered) // 2], 3),
        stall_max_ns=round(ordered[-1], 3),
        packets=len(stalls),
        replica=replica,
    )


# -- the engine ---------------------------------------------------------------


class _WindowAcc:
    """Accumulator for one forensic window of one observed run."""

    __slots__ = (
        "window",
        "packets",
        "latency_sum",
        "max_ns",
        "sampled",
        "queue_ns",
        "service_ns",
        "transfer_ns",
        "stall_ns",
        "latencies",
        "heap",
        "counter",
    )

    def __init__(self, window: int):
        self.window = window
        self.packets = 0
        self.latency_sum = 0.0
        self.max_ns = 0.0
        self.sampled = 0
        self.queue_ns = 0.0
        self.service_ns = 0.0
        self.transfer_ns = 0.0
        self.stall_ns = 0.0
        self.latencies: List[float] = []
        #: min-heap of (latency, -index) for the K worst
        self.heap: List[Tuple[float, int]] = []
        self.counter = 0


class ForensicsEngine:
    """Post-run tail-latency forensics over every execution lane.

    Attach one to a :class:`~repro.platform.base.Platform` (or a
    :class:`~repro.scale.cluster.ScaleCluster`); after each loaded run
    the platform hands over the replay's plans and completions
    (:meth:`observe_run`) or the batch lane's plan table and latency
    column (:meth:`observe_batch`).  Unloaded sweeps can feed their
    outcomes through :meth:`observe_outcomes`.  The engine cuts the run
    into ``window_packets`` windows (arrival order), accumulates
    component sums on a 1-in-``sample_every`` stride, keeps the K worst
    packets per window in the :class:`FlightRecorder`, and runs its
    :class:`RegimeShiftDetector` over the closing windows.

    ``enabled=False`` (or not attaching one at all) costs nothing: the
    platforms check the flag once per *run*, never per packet.
    """

    def __init__(
        self,
        worst_k: int = 8,
        window_packets: int = 4096,
        sample_every: int = 16,
        ring_capacity: int = 256,
        audit: AuditLog = NULL_AUDIT,
        detector: Optional[RegimeShiftDetector] = None,
        enabled: bool = True,
        record_all: bool = False,
    ):
        if window_packets < 1:
            raise ValueError(f"window_packets must be >= 1, got {window_packets!r}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every!r}")
        self.enabled = enabled
        self.worst_k = worst_k
        self.window_packets = window_packets
        self.sample_every = sample_every
        self.audit = audit
        self.recorder = FlightRecorder(worst_k=worst_k, capacity=ring_capacity)
        self.detector = detector or RegimeShiftDetector(audit=audit)
        #: keep a TailRecord for *every* packet (tests only — the
        #: exactness suites iterate them; unbounded, never the default)
        self.record_all = record_all
        self.records: List[TailRecord] = []
        self.windows: List[Dict[str, Any]] = []
        self.stall_records: List[StallCharge] = []
        self.runs = 0
        self.packets = 0
        self.sampled = 0
        self.totals = {name: 0.0 for name in COMPONENTS}

    # -- plan cost bookkeeping ----------------------------------------------

    @staticmethod
    def _plan_total(plan) -> float:
        total = 0.0
        for __, service_ns in plan:
            total += service_ns
        return total

    def _cost_fn(
        self, platform, plans, transfers
    ) -> Callable[[int], Tuple[float, float, int]]:
        """Per-index (service, transfer, stages) with per-plan caching.

        ``transfers`` may be a dict keyed by ``id(plan)`` (the lean
        functional pass records transfer at plan-build time, once per
        cached steady plan), a list aligned with ``plans`` (the cluster
        dispatch loop), or None — then the platform's plan-shape
        estimate (:meth:`Platform._transfer_estimate_for_plan`) is
        used.  Either way the split is exact per plan.
        """
        cache: Dict[int, Tuple[float, float, int]] = {}
        estimate = getattr(platform, "_transfer_estimate_for_plan", None)
        transfer_list = transfers if isinstance(transfers, list) else None
        transfer_map = transfers if isinstance(transfers, dict) else None

        def costs(index: int) -> Tuple[float, float, int]:
            plan = plans[index]
            key = id(plan)
            hit = cache.get(key)
            if hit is not None and transfer_list is None:
                return hit
            total = self._plan_total(plan)
            if transfer_list is not None:
                transfer_est = transfer_list[index]
            elif transfer_map is not None:
                transfer_est = transfer_map.get(key, 0.0)
            elif estimate is not None:
                transfer_est = estimate(plan)
            else:
                transfer_est = 0.0
            service, transfer = split_plan_total(total, transfer_est)
            entry = (service, transfer, len(plan))
            if transfer_list is None:
                cache[key] = entry
            return entry

        return costs

    # -- observation ---------------------------------------------------------

    def observe_run(
        self,
        platform,
        plans: Sequence,
        arrival_at,
        completions: Sequence[Tuple[int, float]],
        replica: Any = None,
        lane: str = "analytic",
        fids: Optional[Sequence[int]] = None,
        transfers=None,
        fast_flags: Optional[Sequence[bool]] = None,
        index_latencies=None,
    ) -> None:
        """Decompose one scalar-lane replay (analytic or DES).

        ``index_latencies``, when the replay collected one (see
        :func:`~repro.sim.analytic.analytic_replay`), carries every
        packet's latency in packet-index order — with numpy that turns
        windowing into contiguous array slices with no permutation
        recovery or arrival subtraction at all.
        """
        if not self.enabled or not completions:
            return
        costs = self._cost_fn(platform, plans, transfers)
        if not self.record_all:
            accs = self._bulk_accs(arrival_at, completions, costs, index_latencies)
            if accs is not None:
                self._finalize(accs, costs, fids, replica, lane, fast_flags)
                return
        accs: Dict[int, _WindowAcc] = {}
        window_packets = self.window_packets
        sample_every = self.sample_every
        worst_k = self.worst_k
        record_all = self.record_all
        for index, finish in completions:
            latency = finish - arrival_at[index]
            wid = index // window_packets
            acc = accs.get(wid)
            if acc is None:
                acc = accs[wid] = _WindowAcc(wid)
            acc.packets += 1
            acc.latency_sum += latency
            if latency > acc.max_ns:
                acc.max_ns = latency
            heap = acc.heap
            if len(heap) < worst_k:
                heapq.heappush(heap, (latency, -index))
            elif latency > heap[0][0]:
                heapq.heapreplace(heap, (latency, -index))
            acc.counter += 1
            if record_all or acc.counter >= sample_every:
                acc.counter = 0
                service, transfer, __ = costs(index)
                queue, service, transfer, stall = decompose(latency, service, transfer)
                acc.sampled += 1
                acc.queue_ns += queue
                acc.service_ns += service
                acc.transfer_ns += transfer
                acc.stall_ns += stall
                acc.latencies.append(latency)
                if record_all:
                    self.records.append(
                        self._record(
                            index, latency, costs, fids, replica, lane, wid, fast_flags
                        )
                    )
        self._finalize(accs, costs, fids, replica, lane, fast_flags)

    def observe_batch(
        self,
        platform,
        table: Sequence,
        plan_ids,
        latencies: Sequence[float],
        replica: Any = None,
        batch=None,
    ) -> None:
        """Decompose one vectorized batch-lane run.

        The lane's outputs are columnar — a deduplicated plan table and
        a per-packet plan-id column — so per-plan costs are computed
        once per *table entry* and gathered per packet.  Worst-K flow
        ids are resolved lazily from the batch's flow columns only for
        the records that actually get emitted.
        """
        if not self.enabled or not len(latencies):
            return
        # Per-packet plan lookup reuses the scalar machinery: plans[i]
        # is the shared table row, so the id(plan) cache collapses to
        # one split per table entry.
        plans = _TableView(table, plan_ids)
        fids = _BatchFids(batch) if batch is not None else None
        arrival = _ZeroArrivals()
        completions = _EnumerateLatencies(latencies)
        self.observe_run(
            platform,
            plans,
            arrival,
            completions,
            replica=replica,
            lane="batch",
            fids=fids,
        )

    def observe_outcomes(
        self, platform, outcomes: Sequence, replica: Any = None
    ) -> None:
        """Decompose unloaded outcomes (sweep mode: no queueing, queue~0)."""
        if not self.enabled or not outcomes:
            return
        plans = [platform._stage_plan(outcome.report) for outcome in outcomes]
        fids = [outcome.report.fid for outcome in outcomes]
        fast_flags = [outcome.report.is_fast for outcome in outcomes]
        arrival = _ZeroArrivals()
        completions = [(i, o.latency_ns) for i, o in enumerate(outcomes)]
        self.observe_run(
            platform, plans, arrival, completions,
            replica=replica, lane="unloaded", fids=fids, fast_flags=fast_flags,
        )

    def note_stall(self, charge: StallCharge) -> None:
        """Record one charged stall delivery (from the FT coordinator)."""
        if not self.enabled:
            return
        self.stall_records.append(charge)
        self.totals["stall"] += charge.stall_ns
        self.totals["service"] += charge.service_ns

    # -- internals ------------------------------------------------------------

    def _bulk_accs(self, arrival_at, completions, costs, index_latencies=None):
        """Vectorized window aggregation (numpy fast path, sampled mode).

        The scalar loop in :meth:`observe_run` is exact but pays a
        Python iteration per packet; against the compiled fast path
        that is the difference between a few percent and ~35% run
        overhead.  When numpy is available the per-packet work
        (latency, window bucketing, worst-K, stride selection) runs as
        whole-array operations and only the 1-in-``sample_every``
        stride is decomposed in Python, through the very same
        :func:`decompose`, so the exactness contract is untouched.
        Three shapes qualify, cheapest first: the replay's
        ``index_latencies`` column (windows become contiguous slices —
        no permutation recovery), the batch lane's latency ndarray,
        and plain ``(index, finish)`` tuple lists (one
        ``fromiter`` transposition plus a stable argsort).  Returns
        ``None`` to fall back to the scalar loop (DES dict arrivals,
        adapter sequences, no numpy).
        """
        from repro import vector as vec

        if not vec.HAVE_NUMPY:
            return None
        np = vec.np
        if index_latencies is not None and len(index_latencies) == len(completions):
            lat = np.asarray(index_latencies, dtype=np.float64)
            return self._accs_from_index_latencies(np, lat, costs)
        if (
            isinstance(completions, _EnumerateLatencies)
            and isinstance(arrival_at, _ZeroArrivals)
            and isinstance(completions.latencies, np.ndarray)
        ):
            lat = np.asarray(completions.latencies, dtype=np.float64)
            return self._accs_from_index_latencies(np, lat, costs)
        if not isinstance(completions, list) or not isinstance(arrival_at, list):
            return None
        count = len(completions)
        idx = np.fromiter(
            map(operator.itemgetter(0), completions), np.int64, count=count
        )
        fin = np.fromiter(
            map(operator.itemgetter(1), completions), np.float64, count=count
        )
        lat = fin - np.asarray(arrival_at, dtype=np.float64)[idx]
        return self._accs_from_arrays(np, idx, lat, costs)

    def _accs_from_index_latencies(self, np, lat, costs) -> Dict[int, "_WindowAcc"]:
        """Bulk aggregation when ``lat[i]`` is packet ``i``'s latency —
        every window is the contiguous slice ``[w*W:(w+1)*W]``."""
        window_packets = self.window_packets
        stride = self.sample_every
        worst_k = self.worst_k
        accs: Dict[int, _WindowAcc] = {}
        total = len(lat)
        for start in range(0, total, window_packets):
            end = min(start + window_packets, total)
            seg = lat[start:end]
            count = end - start
            acc = _WindowAcc(start // window_packets)
            acc.packets = count
            acc.latency_sum = float(seg.sum())
            acc.max_ns = float(seg.max())
            if count > worst_k:
                part = np.argpartition(seg, count - worst_k)[count - worst_k:]
            else:
                part = np.arange(count)
            acc.heap = [
                (float(seg[j]), -(start + j)) for j in part.tolist()
            ]
            samples = np.arange(stride - 1, count, stride)
            acc.latencies = seg[samples].tolist()
            acc.sampled = len(acc.latencies)
            for offset, latency in zip(samples.tolist(), acc.latencies):
                service, transfer, __ = costs(start + offset)
                queue, service, transfer, stall = decompose(latency, service, transfer)
                acc.queue_ns += queue
                acc.service_ns += service
                acc.transfer_ns += transfer
                acc.stall_ns += stall
            accs[acc.window] = acc
        return accs

    def _accs_from_arrays(self, np, idx, lat, costs) -> Dict[int, "_WindowAcc"]:
        window_packets = self.window_packets
        stride = self.sample_every
        worst_k = self.worst_k
        wid = idx // window_packets
        # Stable sort keeps completion order within each window, so the
        # stride lands on the same packets the scalar counter samples.
        order = np.argsort(wid, kind="stable")
        swid = wid[order]
        slat = lat[order]
        sidx = idx[order]
        cuts = np.flatnonzero(swid[1:] != swid[:-1]) + 1
        bounds = [0, *cuts.tolist(), len(swid)]
        accs: Dict[int, _WindowAcc] = {}
        for start, end in zip(bounds, bounds[1:]):
            seg_lat = slat[start:end]
            seg_idx = sidx[start:end]
            count = end - start
            acc = _WindowAcc(int(swid[start]))
            acc.packets = count
            acc.latency_sum = float(seg_lat.sum())
            acc.max_ns = float(seg_lat.max())
            if count > worst_k:
                part = np.argpartition(seg_lat, count - worst_k)[count - worst_k:]
            else:
                part = np.arange(count)
            # Same (latency, -index) tuples the scalar heap holds;
            # _finalize re-sorts them into descending-latency order.
            acc.heap = [
                (float(seg_lat[j]), int(-seg_idx[j])) for j in part.tolist()
            ]
            samples = np.arange(stride - 1, count, stride)
            acc.latencies = seg_lat[samples].tolist()
            acc.sampled = len(acc.latencies)
            for index, latency in zip(seg_idx[samples].tolist(), acc.latencies):
                service, transfer, __ = costs(index)
                queue, service, transfer, stall = decompose(latency, service, transfer)
                acc.queue_ns += queue
                acc.service_ns += service
                acc.transfer_ns += transfer
                acc.stall_ns += stall
            accs[acc.window] = acc
        return accs

    def _record(
        self, index, latency, costs, fids, replica, lane, wid, fast_flags=None
    ) -> TailRecord:
        service, transfer, stages = costs(index)
        queue, service, transfer, stall = decompose(latency, service, transfer)
        fid = None
        if fids is not None:
            try:
                fid = fids[index]
            except (IndexError, KeyError, TypeError):
                fid = None
        fast = None
        if fast_flags is not None:
            try:
                fast = bool(fast_flags[index])
            except (IndexError, KeyError, TypeError):
                fast = None
        return TailRecord(
            index=index,
            latency_ns=latency,
            queue_ns=queue,
            service_ns=service,
            transfer_ns=transfer,
            stall_ns=stall,
            fid=fid,
            replica=replica,
            lane=lane,
            stages=stages,
            window=wid,
            fast=fast,
        )

    def _finalize(self, accs, costs, fids, replica, lane, fast_flags=None) -> None:
        self.runs += 1
        for wid in sorted(accs):
            acc = accs[wid]
            self.packets += acc.packets
            self.sampled += acc.sampled
            self.totals["queue"] += acc.queue_ns
            self.totals["service"] += acc.service_ns
            self.totals["transfer"] += acc.transfer_ns
            self.totals["stall"] += acc.stall_ns
            ordered = sorted(acc.latencies)
            summary = {
                "type": "window",
                "run": self.runs,
                "window": wid,
                "replica": replica,
                "lane": lane,
                "packets": acc.packets,
                "sampled": acc.sampled,
                "latency_sum_ns": acc.latency_sum,
                "max_ns": acc.max_ns,
                "queue_ns": acc.queue_ns,
                "service_ns": acc.service_ns,
                "transfer_ns": acc.transfer_ns,
                "stall_ns": acc.stall_ns,
                "p50_ns": percentile_sorted(ordered, 0.50) if ordered else None,
                "p99_ns": percentile_sorted(ordered, 0.99) if ordered else None,
            }
            worst = [
                self._record(
                    -neg_index, latency, costs, fids, replica, lane, wid, fast_flags
                )
                for latency, neg_index in sorted(acc.heap, reverse=True)
            ]
            self.windows.append(summary)
            self.recorder.record_window(summary, worst)
            self.detector.observe_summary(
                summary,
                components={
                    "queue": acc.queue_ns,
                    "service": acc.service_ns,
                    "transfer": acc.transfer_ns,
                    "stall": acc.stall_ns,
                },
            )

    # -- export ---------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        return {
            "type": "summary",
            "runs": self.runs,
            "packets": self.packets,
            "sampled": self.sampled,
            "worst_k": self.worst_k,
            "window_packets": self.window_packets,
            "sample_every": self.sample_every,
            "windows": len(self.windows),
            "stall_records": len(self.stall_records),
            "regime_shifts": len(self.detector.shifts),
            "components": {name: self.totals[name] for name in COMPONENTS},
        }

    def rows(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = [self.summary()]
        out.extend(self.windows)
        for __, worst in self.recorder.entries:
            out.extend(record.summary() for record in worst)
        out.extend(charge.summary() for charge in self.stall_records)
        for shift in self.detector.shifts:
            row = {"type": "regime_shift"}
            row.update(shift)
            out.append(row)
        return out

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(row, sort_keys=True) for row in self.rows())

    def write_jsonl(self, path) -> int:
        rows = self.rows()
        with open(path, "w") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        return len(rows)

    def reset(self) -> None:
        self.recorder = FlightRecorder(
            worst_k=self.worst_k, capacity=self.recorder.capacity
        )
        self.records.clear()
        self.windows.clear()
        self.stall_records.clear()
        self.runs = 0
        self.packets = 0
        self.sampled = 0
        self.totals = {name: 0.0 for name in COMPONENTS}


# -- columnar adapters (batch lane) -------------------------------------------


class _TableView:
    """``plans[i]`` over a (table, plan_ids) pair without materializing."""

    __slots__ = ("table", "plan_ids")

    def __init__(self, table, plan_ids):
        self.table = table
        self.plan_ids = plan_ids

    def __getitem__(self, index):
        return self.table[self.plan_ids[index]]

    def __len__(self):
        return len(self.plan_ids)


class _BatchFids:
    """Lazy per-packet flow ids from a columnar batch (worst-K only)."""

    __slots__ = ("batch",)

    def __init__(self, batch):
        self.batch = batch

    def __getitem__(self, index):
        batch = self.batch
        flow_index = getattr(batch, "flow_index", None)
        if flow_index is None:
            raise IndexError(index)
        return int(flow_index[index])


class _ZeroArrivals:
    """``arrival_at[i] == 0.0`` for every i (saturation / unloaded)."""

    __slots__ = ()

    def __getitem__(self, index):
        return 0.0


class _EnumerateLatencies:
    """``(index, latency)`` completion pairs over a latency column."""

    __slots__ = ("latencies",)

    def __init__(self, latencies):
        self.latencies = latencies

    def __iter__(self):
        return iter(enumerate(self.latencies))

    def __len__(self):
        return len(self.latencies)

    def __bool__(self):
        return len(self.latencies) > 0


# -- loading / timeline / rendering -------------------------------------------


def load_forensics_jsonl(path) -> Dict[str, Any]:
    """Read a ``--forensics-out`` artifact back, grouped by row type."""
    summary: Optional[Dict[str, Any]] = None
    windows: List[Dict[str, Any]] = []
    worst: List[Dict[str, Any]] = []
    stalls: List[Dict[str, Any]] = []
    shifts: List[Dict[str, Any]] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: line {number}: invalid JSON ({exc})") from exc
            kind = row.get("type")
            if kind == "summary":
                summary = row
            elif kind == "window":
                windows.append(row)
            elif kind == "worst":
                worst.append(row)
            elif kind == "stall":
                stalls.append(row)
            elif kind == "regime_shift":
                shifts.append(row)
    if summary is None and not (windows or worst or stalls or shifts):
        raise ValueError(f"{path}: empty forensics artifact (no rows)")
    return {
        "summary": summary or {},
        "windows": windows,
        "worst": worst,
        "stalls": stalls,
        "regime_shifts": shifts,
    }


def build_timeline(
    audit: Optional[Sequence[Dict[str, Any]]] = None,
    spans: Optional[Sequence[Dict[str, Any]]] = None,
    windows: Optional[Sequence[Dict[str, Any]]] = None,
    forensics: Optional[Dict[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """Join the run's artifacts into one ordered causal event stream.

    Every event normalizes to ``{t, source, kind, replica, flow,
    detail}``.  Audit events order by their monotone ``seq`` (the
    control-plane causal order); spans and windows carry simulated-time
    stamps; forensic stall/worst records carry arrival stamps.  The
    stream sorts on ``(t, source-priority, seq)`` so equal-time events
    keep a deterministic, audit-causal order — queryable by replica,
    flow or time range with plain list comprehensions.
    """
    events: List[Dict[str, Any]] = []
    if audit:
        for event in audit:
            events.append(
                {
                    "t": float(event.get("seq", 0)),
                    "source": "audit",
                    "kind": event.get("kind", "?"),
                    "replica": event.get("replica"),
                    "flow": event.get("flow"),
                    "detail": {
                        k: v
                        for k, v in event.items()
                        if k not in ("kind", "replica", "flow")
                    },
                }
            )
    if spans:
        for record in spans:
            if record.get("depth") != 0:
                continue
            args = record.get("args", {})
            start = args.get("sim_arrival_ns", record.get("start_ns", 0.0))
            events.append(
                {
                    "t": float(start or 0.0),
                    "source": "span",
                    "kind": "flow_span",
                    "replica": None,
                    "flow": args.get("fid"),
                    "detail": {
                        "latency_ns": args.get("sim_latency_ns", record.get("dur_ns")),
                        "path": args.get("path"),
                    },
                }
            )
    if windows:
        for row in windows:
            events.append(
                {
                    "t": float(row.get("start_ns") or 0.0),
                    "source": "window",
                    "kind": "telemetry_window",
                    "replica": None,
                    "flow": None,
                    "detail": {
                        "index": row.get("index"),
                        "packets": row.get("packets"),
                        "buffered": row.get("buffered"),
                        "p99_ns": row.get("p99_ns"),
                    },
                }
            )
    if forensics:
        for row in forensics.get("stalls", []):
            events.append(
                {
                    "t": float(row.get("arrival_ns") or 0.0),
                    "source": "forensics",
                    "kind": "stall_charge",
                    "replica": row.get("replica"),
                    "flow": row.get("flow"),
                    "detail": {
                        "stall_ns": row.get("stall_ns"),
                        "cause": row.get("cause"),
                    },
                }
            )
        for row in forensics.get("worst", []):
            events.append(
                {
                    "t": float(row.get("index") or 0),
                    "source": "forensics",
                    "kind": "worst_packet",
                    "replica": row.get("replica"),
                    "flow": row.get("fid"),
                    "detail": {
                        "latency_ns": row.get("latency_ns"),
                        "dominant": row.get("dominant"),
                        "window": row.get("window"),
                    },
                }
            )
    priority = {"audit": 0, "window": 1, "span": 2, "forensics": 3}
    events.sort(key=lambda e: (e["t"], priority.get(e["source"], 9)))
    return events


def _us(value: Optional[float]) -> str:
    return "-" if value is None else f"{value / 1000.0:.2f}"


def render_forensics(data: Dict[str, Any], top: int = 5) -> str:
    """The ``repro obs report`` forensics section."""
    from repro.stats.tables import format_table

    summary = data.get("summary", {})
    components = summary.get("components", {})
    total = sum(components.get(name, 0.0) for name in COMPONENTS)
    lines = [
        f"latency forensics ({summary.get('packets', 0)} packets, "
        f"{summary.get('sampled', 0)} decomposed, "
        f"{summary.get('stall_records', 0)} stall charges, "
        f"{summary.get('regime_shifts', 0)} regime shifts)"
    ]
    if components:
        rows = [
            [
                name,
                f"{components.get(name, 0.0) / 1e6:.3f}",
                f"{100.0 * components.get(name, 0.0) / total:.1f}%" if total else "-",
            ]
            for name in COMPONENTS
        ]
        lines.append(
            format_table(["component", "total ms", "share"], rows,
                         title="component attribution (sampled)")
        )
    worst = sorted(
        data.get("worst", []), key=lambda r: -(r.get("latency_ns") or 0.0)
    )[:top]
    if worst:
        rows = [
            [
                record.get("index"),
                record.get("fid") if record.get("fid") is not None else "-",
                str(record.get("replica") if record.get("replica") is not None else "-"),
                _us(record.get("latency_ns")),
                _us(record.get("queue_ns")),
                _us(record.get("service_ns")),
                _us(record.get("transfer_ns")),
                _us(record.get("stall_ns")),
                record.get("dominant", "-"),
            ]
            for record in worst
        ]
        lines.append(
            format_table(
                ["pkt", "flow", "replica", "lat us", "queue", "service",
                 "transfer", "stall", "dominant"],
                rows,
                title=f"worst {len(rows)} packets",
            )
        )
    return "\n\n".join(lines)


def render_explain(
    data: Dict[str, Any],
    audit: Optional[Sequence[Dict[str, Any]]] = None,
    spans: Optional[Sequence[Dict[str, Any]]] = None,
    windows: Optional[Sequence[Dict[str, Any]]] = None,
    top: int = 10,
) -> str:
    """``repro obs explain``: tail table + attribution + correlated causes."""
    from repro.stats.tables import format_table

    blocks = ["repro obs explain\n=================", render_forensics(data, top=top)]

    stalls = data.get("stalls", [])
    if stalls:
        dominant_stall = sum(1 for s in stalls if s.get("dominant") == "stall")
        worst_stall = max(stalls, key=lambda s: s.get("stall_ns") or 0.0)
        blocks.append(
            "\n".join(
                [
                    f"stall charges ({len(stalls)} packets)",
                    f"  stall-dominant  : {dominant_stall}/{len(stalls)} packets",
                    f"  worst stall     : {_us(worst_stall.get('stall_ns'))} us "
                    f"(flow {worst_stall.get('flow')}, cause "
                    f"{worst_stall.get('cause')})",
                ]
            )
        )

    shifts = list(data.get("regime_shifts", []))
    if audit:
        seen = {
            (s.get("window"), s.get("metric"), s.get("current")) for s in shifts
        }
        for event in audit:
            if event.get("kind") != "latency_regime_shift":
                continue
            key = (event.get("window"), event.get("metric"), event.get("current"))
            if key not in seen:
                shifts.append(event)
    if shifts:
        lines = [f"regime shifts ({len(shifts)})"]
        for shift in shifts:
            lines.append(
                f"  window={shift.get('window')} metric={shift.get('metric')}"
                f" component={shift.get('component')}"
                f" baseline={shift.get('baseline')} current={shift.get('current')}"
            )
        blocks.append("\n".join(lines))

    if audit:
        interesting = (
            "ft_kill", "ft_buffer", "ft_restore", "ft_replay",
            "ft_failover_complete", "migration_freeze", "migration_replay",
            "fastpath_invalidate", "latency_regime_shift",
            "health_degraded", "health_critical", "slo_burn_alert",
        )
        counts: Dict[str, int] = {}
        for event in audit:
            kind = event.get("kind", "?")
            if kind in interesting:
                counts[kind] = counts.get(kind, 0) + 1
        if counts:
            rows = [[kind, counts[kind]] for kind in interesting if kind in counts]
            blocks.append(
                format_table(
                    ["correlated cause", "events"], rows, title="correlated causes"
                )
            )
        timeline = build_timeline(
            audit=audit, spans=spans, windows=windows, forensics=data
        )
        tail = [e for e in timeline if e["source"] in ("audit", "forensics")][-8:]
        if tail:
            lines = ["causal timeline (tail)"]
            for event in tail:
                where = []
                if event.get("replica") is not None:
                    where.append(f"replica={event['replica']}")
                if event.get("flow") is not None:
                    where.append(f"flow={event['flow']}")
                lines.append(
                    f"  [{event['source']}] {event['kind']} "
                    + " ".join(where)
                )
            blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
