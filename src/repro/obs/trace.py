"""The packet-path tracer: per-packet spans with two export formats.

A *span* is a named interval on a *track* (a core, a ring, a pipeline
stage) with nanosecond start and duration plus free-form args — "this
packet spent 400 cycles in the firewall hop", "ring1 held this descriptor
for 2.3 µs".  Spans nest: :meth:`PacketTracer.begin`/:meth:`~PacketTracer.end`
maintain a per-track stack so an NF hop can contain its transport
sub-span, and the recorded depth survives export.

Exports
-------

- :meth:`PacketTracer.to_jsonl` — one JSON object per line, trivially
  greppable / loadable with pandas;
- :meth:`PacketTracer.to_chrome` — the Chrome trace-event format
  (``{"traceEvents": [...]}``, complete ``"ph": "X"`` events with ``ts``
  and ``dur`` in microseconds), so a capture opens directly in
  ``chrome://tracing`` or https://ui.perfetto.dev with one named thread
  per track.  Counter series (ring occupancy over time) export as
  ``"ph": "C"`` events and render as stacked area charts.

Like the metrics registry, the tracer has a null mode: :data:`NULL_TRACER`
accepts every call and records nothing, so instrumented code never
branches on "is tracing on".
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Tuple


class Span:
    """One recorded interval on a track."""

    __slots__ = ("name", "track", "start_ns", "dur_ns", "depth", "args")

    def __init__(
        self,
        name: str,
        track: str,
        start_ns: float,
        dur_ns: float,
        depth: int = 0,
        args: Optional[Dict[str, Any]] = None,
    ):
        if dur_ns < 0:
            raise ValueError(f"span {name!r} has negative duration {dur_ns!r}")
        self.name = name
        self.track = track
        self.start_ns = float(start_ns)
        self.dur_ns = float(dur_ns)
        self.depth = depth
        self.args = args or {}

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.dur_ns

    def __repr__(self) -> str:
        return (
            f"<Span {self.name!r} track={self.track} "
            f"[{self.start_ns:g}, {self.end_ns:g}) ns depth={self.depth}>"
        )


class _CounterSample:
    __slots__ = ("name", "track", "ts_ns", "value")

    def __init__(self, name: str, track: str, ts_ns: float, value: float):
        self.name = name
        self.track = track
        self.ts_ns = float(ts_ns)
        self.value = float(value)


class _Instant:
    __slots__ = ("name", "track", "ts_ns", "args")

    def __init__(self, name: str, track: str, ts_ns: float, args: Dict[str, Any]):
        self.name = name
        self.track = track
        self.ts_ns = float(ts_ns)
        self.args = args


class PacketTracer:
    """Collects spans, instants and counter samples; exports them."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._spans: List[Span] = []
        self._instants: List[_Instant] = []
        self._counters: List[_CounterSample] = []
        #: per-track stack of (name, start_ns, args) for begin/end nesting
        self._open: Dict[str, List[Tuple[str, float, Dict[str, Any]]]] = {}

    # -- recording ---------------------------------------------------------

    def span(
        self, name: str, track: str, start_ns: float, dur_ns: float, **args: Any
    ) -> Optional[Span]:
        """Record a complete interval (the common one-shot form)."""
        if not self.enabled:
            return None
        depth = len(self._open.get(track, ()))
        span = Span(name, track, start_ns, dur_ns, depth=depth, args=args)
        self._spans.append(span)
        return span

    def begin(self, name: str, track: str, ts_ns: float, **args: Any) -> None:
        """Open a nested span; close it with :meth:`end` on the same track."""
        if not self.enabled:
            return
        self._open.setdefault(track, []).append((name, float(ts_ns), args))

    def end(self, track: str, ts_ns: float, **extra_args: Any) -> Optional[Span]:
        """Close the innermost open span on ``track``."""
        if not self.enabled:
            return None
        stack = self._open.get(track)
        if not stack:
            raise ValueError(f"end() with no open span on track {track!r}")
        name, start_ns, args = stack.pop()
        if extra_args:
            args = {**args, **extra_args}
        span = Span(name, track, start_ns, ts_ns - start_ns, depth=len(stack), args=args)
        self._spans.append(span)
        return span

    def instant(self, name: str, track: str, ts_ns: float, **args: Any) -> None:
        """A zero-duration marker (drop, event firing, blocked put)."""
        if not self.enabled:
            return
        self._instants.append(_Instant(name, track, float(ts_ns), args))

    def counter(self, name: str, track: str, ts_ns: float, value: float) -> None:
        """One sample of a time-varying quantity (e.g. ring occupancy)."""
        if not self.enabled:
            return
        self._counters.append(_CounterSample(name, track, ts_ns, value))

    # -- introspection -----------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    @property
    def open_depth(self) -> int:
        return sum(len(stack) for stack in self._open.values())

    def __len__(self) -> int:
        return len(self._spans) + len(self._instants) + len(self._counters)

    def tracks(self) -> List[str]:
        """Every track name in first-use order."""
        seen: Dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.track)
        for instant in self._instants:
            seen.setdefault(instant.track)
        for sample in self._counters:
            seen.setdefault(sample.track)
        return list(seen)

    def reset(self) -> None:
        self._spans.clear()
        self._instants.clear()
        self._counters.clear()
        self._open.clear()

    # -- export ------------------------------------------------------------

    def _jsonl_records(self) -> Iterator[Dict[str, Any]]:
        for span in self._spans:
            yield {
                "type": "span",
                "name": span.name,
                "track": span.track,
                "start_ns": span.start_ns,
                "dur_ns": span.dur_ns,
                "depth": span.depth,
                "args": span.args,
            }
        for instant in self._instants:
            yield {
                "type": "instant",
                "name": instant.name,
                "track": instant.track,
                "ts_ns": instant.ts_ns,
                "args": instant.args,
            }
        for sample in self._counters:
            yield {
                "type": "counter",
                "name": sample.name,
                "track": sample.track,
                "ts_ns": sample.ts_ns,
                "value": sample.value,
            }

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(record, sort_keys=True) for record in self._jsonl_records())

    def write_jsonl(self, path) -> int:
        records = self.to_jsonl()
        with open(path, "w") as handle:
            if records:
                handle.write(records + "\n")
        return len(self)

    def to_chrome(self) -> Dict[str, Any]:
        """The capture as a Chrome trace-event JSON object.

        ``ts``/``dur`` are microseconds (the format's unit); every track
        becomes a named thread of pid 0 via ``thread_name`` metadata, and
        events are sorted by timestamp so ``ts`` is monotonic.
        """
        tids = {track: index for index, track in enumerate(self.tracks())}
        events: List[Dict[str, Any]] = []
        for track, tid in tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        timed: List[Dict[str, Any]] = []
        for span in self._spans:
            timed.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "pid": 0,
                    "tid": tids[span.track],
                    "ts": span.start_ns / 1000.0,
                    "dur": span.dur_ns / 1000.0,
                    "args": span.args,
                }
            )
        for instant in self._instants:
            timed.append(
                {
                    "name": instant.name,
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": tids[instant.track],
                    "ts": instant.ts_ns / 1000.0,
                    "args": instant.args,
                }
            )
        for sample in self._counters:
            timed.append(
                {
                    "name": f"{sample.track}:{sample.name}",
                    "ph": "C",
                    "pid": 0,
                    "tid": tids[sample.track],
                    "ts": sample.ts_ns / 1000.0,
                    "args": {sample.name: sample.value},
                }
            )
        timed.sort(key=lambda event: event["ts"])
        events.extend(timed)
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def write_chrome(self, path) -> int:
        """Write the Chrome-trace JSON; returns the event count."""
        trace = self.to_chrome()
        with open(path, "w") as handle:
            json.dump(trace, handle)
        return len(trace["traceEvents"])

    def __repr__(self) -> str:
        return (
            f"<PacketTracer {len(self._spans)} spans, {len(self._instants)} instants, "
            f"{len(self._counters)} counter samples over {len(self.tracks())} tracks>"
        )


#: The shared disabled tracer — the default everywhere.
NULL_TRACER = PacketTracer(enabled=False)
