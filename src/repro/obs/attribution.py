"""Cycle attribution: CycleMeter charges folded into a latency budget.

The paper's Fig. 7 answers one question — *where do the cycles go per
packet* as chains consolidate.  :class:`CycleAttribution` is that view
live over any run: every :class:`~repro.core.framework.ProcessReport`
is ingested and its meter charges are bucketed three ways:

- **per stage** — the fixed meter's operations grouped by pipeline
  stage (classify → MAT lookup → dispatch → header action → record /
  consolidate → events → teardown → emit) via :func:`stage_of`;
- **per NF** — the slow path's chain hops (``nf_meters``) and the fast
  path's state-function batches (``sf_waves``), keyed by NF name;
- **per chain** — one total per ``chain`` label, so a sweep over
  several chains/platforms keeps their budgets side by side.

Exactness contract
------------------

Attribution is accumulated as raw *operation counts* and converted to
cycles once per bucket, with buckets and operations visited in a fixed
sorted order.  With integer-valued operation costs (every default cost
the fig8 chains exercise is an integer) the bucket totals and their sum
are exact IEEE-754 integers, so :meth:`CycleAttribution.total_cycles`
equals the run's summed ``report.total_meter().cycles(model)`` *exactly*
— the integration suite asserts ``==``, not ``approx``.  The same stage
mapping drives :mod:`repro.obs.span`, so a run's flow spans partition
the identical totals.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.platform.costs import CostModel, CycleMeter, Operation

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.framework import ProcessReport

#: Canonical stage order for rendering and span layout (chain order of
#: the per-packet walkthrough; "other" collects unmapped operations).
STAGE_ORDER: Tuple[str, ...] = (
    "classify",
    "mat_lookup",
    "dispatch",
    "header_action",
    "record",
    "consolidate",
    "events",
    "teardown",
    "emit",
    "transport",
    "other",
)

_STAGE_OF: Dict[Operation, str] = {
    # packet ingestion: parse, FID hash, classifier bookkeeping
    Operation.PARSE: "classify",
    Operation.FID_HASH: "classify",
    Operation.METADATA_ATTACH: "classify",
    Operation.EXACT_MATCH_LOOKUP: "classify",
    Operation.GLOBAL_MAT_LOOKUP: "mat_lookup",
    Operation.FAST_PATH_DISPATCH: "dispatch",
    # consolidated header action (or its raw-ablation equivalents)
    Operation.FIELD_WRITE: "header_action",
    Operation.MERGED_FIELD_WRITE: "header_action",
    Operation.CHECKSUM_UPDATE: "header_action",
    Operation.ENCAP_OP: "header_action",
    Operation.DECAP_OP: "header_action",
    Operation.DROP_FREE: "header_action",
    # original-path recording and Global MAT consolidation
    Operation.MAT_BEGIN_RECORD: "record",
    Operation.MAT_RECORD_HA: "record",
    Operation.MAT_RECORD_SF: "record",
    Operation.CONSOLIDATE_ACTION: "consolidate",
    Operation.GLOBAL_RULE_INSTALL: "consolidate",
    Operation.EVENT_REGISTER: "events",
    Operation.EVENT_CHECK: "events",
    Operation.FLOW_DELETE: "teardown",
    Operation.METADATA_DETACH: "emit",
    # platform transport charges (only appear in NF/transport meters)
    Operation.NIC_RX: "transport",
    Operation.NIC_TX: "transport",
    Operation.NF_DISPATCH: "transport",
    Operation.RING_ENQUEUE: "transport",
    Operation.RING_DEQUEUE: "transport",
    Operation.CROSS_CORE_SYNC: "transport",
}


def stage_of(operation: Operation) -> str:
    """The pipeline stage an operation's cycles are attributed to."""
    return _STAGE_OF.get(operation, "other")


class _Bucket:
    """Operation counts plus direct cycles for one attribution key."""

    __slots__ = ("counts", "direct_cycles")

    def __init__(self):
        self.counts: Dict[Operation, float] = {}
        self.direct_cycles = 0.0

    def add_meter(self, meter: CycleMeter) -> None:
        counts = self.counts
        for operation, times in meter.counts.items():
            counts[operation] = counts.get(operation, 0.0) + times
        self.direct_cycles += meter.direct_cycles

    def cycles(self, model: CostModel) -> float:
        table = model.op_cycles
        total = self.direct_cycles
        # Sorted by operation name: a deterministic summation order, so
        # two runs ingesting the same reports agree bit for bit.
        for operation in sorted(self.counts, key=lambda op: op.value):
            total += table[operation] * self.counts[operation]
        return total


class CycleAttribution:
    """Aggregates ProcessReport meters into the Fig. 7 budget view."""

    def __init__(self, model: Optional[CostModel] = None):
        self.model = model or CostModel()
        self.packets = 0
        self.paths: Dict[str, int] = {}
        self._stages: Dict[str, _Bucket] = {}
        self._nfs: Dict[str, _Bucket] = {}
        #: chain label -> (packets, exact cycle total); the per-chain
        #: breakdown when one profiler watches a whole sweep
        self._chains: Dict[str, List[float]] = {}

    # -- ingestion ---------------------------------------------------------

    def ingest(self, report: "ProcessReport", chain: str = "default") -> None:
        """Fold one packet's meters into the stage/NF/chain buckets."""
        self.packets += 1
        path = report.path.value
        self.paths[path] = self.paths.get(path, 0) + 1

        stages = self._stages
        fixed = report.fixed_meter
        for operation, times in fixed.counts.items():
            stage = _STAGE_OF.get(operation, "other")
            bucket = stages.get(stage)
            if bucket is None:
                bucket = stages[stage] = _Bucket()
            bucket.counts[operation] = bucket.counts.get(operation, 0.0) + times
        if fixed.direct_cycles:
            bucket = stages.get("other")
            if bucket is None:
                bucket = stages["other"] = _Bucket()
            bucket.direct_cycles += fixed.direct_cycles

        nfs = self._nfs
        for name, meter in report.nf_meters:
            bucket = nfs.get(name)
            if bucket is None:
                bucket = nfs[name] = _Bucket()
            bucket.add_meter(meter)
        for wave in report.sf_waves:
            for name, meter in wave:
                bucket = nfs.get(name)
                if bucket is None:
                    bucket = nfs[name] = _Bucket()
                bucket.add_meter(meter)

        entry = self._chains.get(chain)
        if entry is None:
            entry = self._chains[chain] = [0, 0.0]
        entry[0] += 1
        entry[1] += report.total_meter().cycles(self.model)

    def ingest_all(self, reports: Iterable["ProcessReport"], chain: str = "default") -> None:
        for report in reports:
            self.ingest(report, chain=chain)

    # -- breakdowns --------------------------------------------------------

    def stage_cycles(self) -> Dict[str, float]:
        """Per-stage cycle totals, in canonical stage order."""
        model = self.model
        out: Dict[str, float] = {}
        for stage in STAGE_ORDER:
            bucket = self._stages.get(stage)
            if bucket is not None:
                out[stage] = bucket.cycles(model)
        for stage in sorted(self._stages):
            if stage not in out:
                out[stage] = self._stages[stage].cycles(model)
        return out

    def nf_cycles(self) -> Dict[str, float]:
        """Per-NF cycle totals (chain hops + SF batches), by NF name."""
        model = self.model
        return {name: self._nfs[name].cycles(model) for name in sorted(self._nfs)}

    def chain_cycles(self) -> Dict[str, float]:
        """Per-chain exact cycle totals (one entry per ``chain`` label)."""
        return {chain: entry[1] for chain, entry in sorted(self._chains.items())}

    def chain_packets(self) -> Dict[str, int]:
        return {chain: int(entry[0]) for chain, entry in sorted(self._chains.items())}

    def total_cycles(self) -> float:
        """Sum of every stage and NF bucket — the run's whole budget.

        Equals the summed ``report.total_meter().cycles(model)`` of every
        ingested report exactly when all exercised operation costs are
        integers (all defaults outside the payload-byte DPI costs are).
        """
        total = 0.0
        for __, cycles in sorted(self.stage_cycles().items()):
            total += cycles
        for __, cycles in sorted(self.nf_cycles().items()):
            total += cycles
        return total

    def breakdown(self) -> Dict[str, object]:
        """The whole view as one JSON-serialisable dict."""
        return {
            "packets": self.packets,
            "paths": dict(sorted(self.paths.items())),
            "stages": self.stage_cycles(),
            "nfs": self.nf_cycles(),
            "chains": self.chain_cycles(),
            "total_cycles": self.total_cycles(),
        }

    # -- rendering ---------------------------------------------------------

    def render(self, title: str = "cycle attribution") -> str:
        """Aligned text tables: per-stage, per-NF, per-chain budgets."""
        from repro.stats.tables import format_table

        total = self.total_cycles()

        def share(cycles: float) -> str:
            return f"{100.0 * cycles / total:.1f}%" if total else "-"

        def per_packet(cycles: float) -> str:
            return f"{cycles / self.packets:.1f}" if self.packets else "-"

        stage_rows = [
            [stage, f"{cycles:.0f}", per_packet(cycles), share(cycles)]
            for stage, cycles in self.stage_cycles().items()
        ]
        blocks = [
            format_table(
                ["stage", "cycles", "cycles/pkt", "share"],
                stage_rows,
                title=f"{title} — per stage ({self.packets} packets)",
            )
        ]
        nf_rows = [
            [name, f"{cycles:.0f}", per_packet(cycles), share(cycles)]
            for name, cycles in self.nf_cycles().items()
        ]
        if nf_rows:
            blocks.append(
                format_table(
                    ["nf", "cycles", "cycles/pkt", "share"],
                    nf_rows,
                    title=f"{title} — per NF",
                )
            )
        chains = self.chain_cycles()
        if len(chains) > 1:
            packets = self.chain_packets()
            chain_rows = [
                [chain, packets[chain], f"{cycles:.0f}",
                 f"{cycles / packets[chain]:.1f}" if packets[chain] else "-"]
                for chain, cycles in chains.items()
            ]
            blocks.append(
                format_table(
                    ["chain", "packets", "cycles", "cycles/pkt"],
                    chain_rows,
                    title=f"{title} — per chain",
                )
            )
        return "\n\n".join(blocks)

    def reset(self) -> None:
        self.packets = 0
        self.paths.clear()
        self._stages.clear()
        self._nfs.clear()
        self._chains.clear()

    def __repr__(self) -> str:
        return (
            f"<CycleAttribution {self.packets} packets, "
            f"{len(self._stages)} stages, {len(self._nfs)} NFs>"
        )
