"""Autoscaler signals derived from the metrics registry and load results.

The load-driven autoscaler (``repro.scale.autoscaler``) does not reach
into platform internals; it watches the same observability surfaces an
operator would:

- **ring occupancy** — the deepest high-water mark any inter-stage ring
  reached, as a fraction of ring capacity, read from the registry's
  ``ring_high_watermark`` gauge (published by every loaded run);
- **core utilisation** — requested service time over available
  core-time, computed from the cluster's per-replica busy totals;
- **p99 latency** — from the merged loaded-run latency population.

Keeping the derivation here (``repro.obs``) keeps the scaling layer's
inputs inspectable: the exact numbers the autoscaler saw are in the
registry snapshot an operator can dump with ``--metrics-json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.obs.registry import MetricsRegistry


@dataclass(frozen=True)
class SignalSample:
    """One autoscaler observation window."""

    ring_occupancy: float     # max ring high-water / capacity, 0..1
    core_utilisation: float   # offered service time / available core-time
    p99_latency_ns: float
    throughput_mpps: float
    replicas: int

    def describe(self) -> str:
        return (
            f"rings {self.ring_occupancy:.0%}, cores {self.core_utilisation:.0%}, "
            f"p99 {self.p99_latency_ns / 1000.0:.1f}us, "
            f"{self.throughput_mpps:.2f} Mpps @ {self.replicas} replica(s)"
        )


class ClusterSignals:
    """Derive :class:`SignalSample` windows for the autoscaler."""

    def __init__(self, registry: MetricsRegistry, ring_capacity: int):
        if ring_capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {ring_capacity!r}")
        self.registry = registry
        self.ring_capacity = ring_capacity

    def ring_occupancy(self) -> float:
        """Max published ring high-water mark as a fraction of capacity."""
        gauge = self.registry.metric("ring_high_watermark")
        if gauge is None:
            return 0.0
        series = gauge.series()
        if not series:
            return 0.0
        return min(1.0, max(series.values()) / self.ring_capacity)

    def sample(
        self,
        makespan_ns: float,
        p99_latency_ns: float,
        throughput_mpps: float,
        busy_ns: Mapping[int, float],
        cores_per_replica: float,
        physical_cores: Optional[int] = None,
    ) -> SignalSample:
        """Fold one loaded-run window into a sample.

        ``busy_ns`` maps replica id to its total requested service time;
        the denominator is the shared pool when ``physical_cores`` is
        set, else each replica's own ``cores_per_replica``.
        """
        replicas = max(1, len(busy_ns))
        if physical_cores is not None:
            available = float(physical_cores)
        else:
            available = cores_per_replica * replicas
        utilisation = 0.0
        if makespan_ns > 0 and available > 0:
            utilisation = sum(busy_ns.values()) / (makespan_ns * available)
        return SignalSample(
            ring_occupancy=self.ring_occupancy(),
            core_utilisation=min(1.0, utilisation),
            p99_latency_ns=p99_latency_ns,
            throughput_mpps=throughput_mpps,
            replicas=replicas,
        )
