"""Sampled per-flow spans: the packet-path microscope that stays cheap.

The full :class:`~repro.obs.trace.PacketTracer` pipeline (metrics on,
tracer on) forces the platform's instrumented functional pass and the
DES replay — an order of magnitude slower than the compiled fast lane
with analytic replay.  :class:`FlowSpanRecorder` is the middle ground:
a 1-in-N *flow* sampler that records nested spans (classify → MAT
lookup → dispatch → header action → per-NF state functions → emit)
with exact cycle and model-time attribution, while the lean functional
pass, the compiled fast lane and the closed-form replay all stay
enabled.

How it stays cheap
------------------

The recorder exposes ``skip`` — a plain dict mapping FIDs of flows that
must *not* be recorded (unsampled, or past their per-flow span cap) to
``True``.  The platform's hot loops hoist ``skip.get`` and call
:meth:`record` only when the probe misses, so the steady-state cost per
unrecorded packet is one dict lookup; the 1-in-64 overhead gate in
``benchmarks/test_obs_overhead.py`` holds it under 5 % of the
uninstrumented fast path.  Sampled *steady* packets reuse a prebuilt
per-flow span template (steady reports are per-flow singletons), so
even recorded packets avoid re-walking the meter.

Sampling is per *flow*, deterministic: the k-th distinct FID seen is
sampled iff ``k % every == 0``, so ``every=1`` records every flow and
the selection is reproducible run to run.  ``max_spans_per_flow``
(default 64) bounds memory on long flows — after the cap the flow joins
``skip``; pass ``None`` to record every packet (the exact-attribution
tests do).

Cycle and sim-time attribution
------------------------------

Each recorded packet becomes one root span (track ``flow:<fid>``) whose
children partition the packet's meter charges by pipeline stage using
the same :func:`repro.obs.attribution.stage_of` mapping the Fig. 7
profiler uses; per-stage ``cycles`` sum *exactly* to the packet's
``total_meter()`` cycles (integer costs).  Durations are the cost
model's ``cycles_to_ns`` on a monotonic recorder clock.  Loaded runs
additionally annotate sampled roots with the replay's simulated arrival
and finish times (``sim_arrival_ns`` / ``sim_latency_ns``) via
:meth:`annotate_loaded` — valid for both the DES and the analytic
Lindley replay, which produce identical timelines.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.attribution import STAGE_ORDER, stage_of
from repro.platform.costs import CostModel

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.framework import ProcessReport
    from repro.obs.trace import PacketTracer

#: Fixed-meter stages laid out before the NF/SF spans, in walk order.
_PRE_NF_STAGES: Tuple[str, ...] = tuple(
    stage for stage in STAGE_ORDER if stage not in ("teardown", "emit", "transport", "other")
)
#: ... and after them (FIN teardown, metadata detach, unmapped charges).
_POST_NF_STAGES: Tuple[str, ...] = ("teardown", "emit", "transport", "other")


class FlowSpanRecorder:
    """Low-overhead 1-in-N flow span sampler for the fast engine."""

    def __init__(
        self,
        model: Optional[CostModel] = None,
        every: int = 64,
        max_spans_per_flow: Optional[int] = 64,
    ):
        if every < 1:
            raise ValueError(f"sampling ratio must be >= 1, got {every!r}")
        if max_spans_per_flow is not None and max_spans_per_flow < 1:
            raise ValueError(
                f"max_spans_per_flow must be >= 1 or None, got {max_spans_per_flow!r}"
            )
        self.model = model or CostModel()
        self.every = int(every)
        self.max_spans_per_flow = max_spans_per_flow
        #: hot-path probe: fid -> True for flows the platform must not
        #: record (unsampled or capped).  Hoisted by the lean pass.
        self.skip: Dict[int, bool] = {}
        self.flows_seen = 0
        self.flows_sampled = 0
        self.packets_sampled = 0
        #: flat span dicts ({"type": "flow_span", ...}), root then children
        self.records: List[Dict[str, Any]] = []
        self._decisions: Dict[int, bool] = {}
        self._flow_spans: Dict[int, int] = {}
        #: id(steady report) -> prebuilt child template (see _template_for)
        self._steady_templates: Dict[int, List[Tuple[str, str, float, float, Optional[int]]]] = {}
        self._clock_ns = 0.0
        #: run-local packet index -> root record, for annotate_loaded
        self._run_roots: Dict[int, Dict[str, Any]] = {}
        #: deferred (arrival_at, completions, roots) triples; resolving
        #: one costs O(run length), so it happens at read time, not
        #: inside the timed run (see annotate_loaded)
        self._pending_annotations: List[Tuple[Any, Sequence[Tuple[int, float]], Dict[int, Dict[str, Any]]]] = []

    # -- recording ---------------------------------------------------------

    def wants(self, fid: int) -> bool:
        """Sampling decision for a flow (allocates it a rank on first use)."""
        sampled = self._decisions.get(fid)
        if sampled is None:
            sampled = self.flows_seen % self.every == 0
            self.flows_seen += 1
            self._decisions[fid] = sampled
            if sampled:
                self.flows_sampled += 1
            else:
                self.skip[fid] = True
        return sampled

    def record(self, report: "ProcessReport", index: Optional[int] = None) -> None:
        """Record one packet's spans if its flow is sampled.

        ``index`` is the packet's position within the current loaded run
        (used by :meth:`annotate_loaded`); ``None`` in unloaded mode.
        Callers on a hot path should gate the call on ``skip.get(fid) is
        None`` — :meth:`record` re-checks, so the gate is optional.
        """
        fid = report.fid
        if not self.wants(fid):
            return
        cap = self.max_spans_per_flow
        if cap is not None:
            taken = self._flow_spans.get(fid, 0)
            if taken >= cap:
                self.skip[fid] = True
                return
            self._flow_spans[fid] = taken + 1

        self.packets_sampled += 1
        steady = report.steady
        if steady:
            template = self._steady_templates.get(id(report))
            if template is None:
                template = self._build_children(report)
                self._steady_templates[id(report)] = template
        else:
            template = self._build_children(report)

        start = self._clock_ns
        total_ns = 0.0
        total_cycles = 0.0
        track = f"flow:{fid}"
        records = self.records
        root: Dict[str, Any] = {
            "type": "flow_span",
            "name": "packet",
            "track": track,
            "start_ns": start,
            "dur_ns": 0.0,
            "depth": 0,
            "args": {
                "fid": fid,
                "path": report.path.value,
                "dropped": report.dropped,
                "cycles": 0.0,
            },
        }
        records.append(root)
        cursor = start
        for name, stage, cycles, dur_ns, wave in template:
            args: Dict[str, Any] = {"stage": stage, "cycles": cycles}
            if wave is not None:
                args["wave"] = wave
            records.append(
                {
                    "type": "flow_span",
                    "name": name,
                    "track": track,
                    "start_ns": cursor,
                    "dur_ns": dur_ns,
                    "depth": 1,
                    "args": args,
                }
            )
            cursor += dur_ns
            total_ns += dur_ns
            total_cycles += cycles
        root["dur_ns"] = total_ns
        root["args"]["cycles"] = total_cycles
        self._clock_ns = cursor
        if index is not None:
            self._run_roots[index] = root

    def _build_children(
        self, report: "ProcessReport"
    ) -> List[Tuple[str, str, float, float, Optional[int]]]:
        """(name, stage, cycles, dur_ns, wave) children for one report.

        The fixed meter's charges are grouped by :func:`stage_of` and
        laid out in the canonical stage order, with the per-NF spans
        (slow-path hops or fast-path SF batches) between the dispatch
        stages and the teardown/emit tail — the packet's actual walk.
        Per-stage cycles are computed as count × cost sums, the same
        arithmetic :class:`~repro.obs.attribution.CycleAttribution`
        uses, so span totals and profiler totals match exactly.
        """
        model = self.model
        table = model.op_cycles
        to_ns = model.ns_per_cycle()

        stage_cycles: Dict[str, float] = {}
        fixed = report.fixed_meter
        for operation in sorted(fixed.counts, key=lambda op: op.value):
            stage = stage_of(operation)
            stage_cycles[stage] = (
                stage_cycles.get(stage, 0.0) + table[operation] * fixed.counts[operation]
            )
        if fixed.direct_cycles:
            stage_cycles["other"] = stage_cycles.get("other", 0.0) + fixed.direct_cycles

        children: List[Tuple[str, str, float, float, Optional[int]]] = []
        for stage in _PRE_NF_STAGES:
            cycles = stage_cycles.get(stage)
            if cycles:
                children.append((stage, stage, cycles, cycles * to_ns, None))
        for name, meter in report.nf_meters:
            cycles = _meter_cycles(meter, table)
            children.append((f"nf:{name}", "nf", cycles, cycles * to_ns, None))
        for wave_index, wave in enumerate(report.sf_waves):
            for name, meter in wave:
                cycles = _meter_cycles(meter, table)
                children.append((f"sf:{name}", "sf", cycles, cycles * to_ns, wave_index))
        for stage in _POST_NF_STAGES:
            cycles = stage_cycles.get(stage)
            if cycles:
                children.append((stage, stage, cycles, cycles * to_ns, None))
        return children

    # -- loaded-run annotation --------------------------------------------

    def begin_run(self) -> None:
        """Forget the previous run's packet-index → root mapping."""
        self._resolve_annotations()
        self._run_roots = {}

    def annotate_loaded(self, arrival_at, completions: Sequence[Tuple[int, float]]) -> None:
        """Stamp sampled roots with the replay's simulated timeline.

        ``arrival_at`` indexes offered times by packet index (list or
        dict — both replay engines' shapes); ``completions`` pairs packet
        indices with simulated finish times.  Resolution is deferred:
        indexing the completions costs O(run length), which would eat
        the sampling overhead budget inside ``run_load``, so this only
        stashes references and the stamping happens on the next read
        (:meth:`roots`, :meth:`to_jsonl`, :meth:`replay_into`, ...).
        The root dicts are shared with ``records``, so late stamping is
        visible everywhere once resolved.
        """
        if self._run_roots:
            self._pending_annotations.append((arrival_at, completions, self._run_roots))

    def _resolve_annotations(self) -> None:
        """Apply every deferred sim-timeline annotation (idempotent)."""
        if not self._pending_annotations:
            return
        pending, self._pending_annotations = self._pending_annotations, []
        for arrival_at, completions, roots in pending:
            finish_of = dict(completions)
            for index, root in roots.items():
                args = root["args"]
                try:
                    args["sim_arrival_ns"] = arrival_at[index]
                except (IndexError, KeyError):
                    continue
                finish = finish_of.get(index)
                if finish is not None:
                    args["sim_finish_ns"] = finish
                    args["sim_latency_ns"] = finish - args["sim_arrival_ns"]

    # -- introspection / export -------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def roots(self) -> List[Dict[str, Any]]:
        """The per-packet root spans, in record order."""
        self._resolve_annotations()
        return [record for record in self.records if record["depth"] == 0]

    def summary(self) -> Dict[str, float]:
        return {
            "every": self.every,
            "flows_seen": self.flows_seen,
            "flows_sampled": self.flows_sampled,
            "packets_sampled": self.packets_sampled,
            "spans": len(self.records),
        }

    def to_jsonl(self) -> str:
        self._resolve_annotations()
        return "\n".join(json.dumps(record, sort_keys=True) for record in self.records)

    def write_jsonl(self, path) -> int:
        payload = self.to_jsonl()
        with open(path, "w") as handle:
            if payload:
                handle.write(payload + "\n")
        return len(self.records)

    def replay_into(self, tracer: "PacketTracer") -> int:
        """Copy the recorded spans into a PacketTracer (Chrome export)."""
        self._resolve_annotations()
        count = 0
        for record in self.records:
            span = tracer.span(
                record["name"],
                record["track"],
                record["start_ns"],
                record["dur_ns"],
                **record["args"],
            )
            if span is not None:
                span.depth = record["depth"]
                count += 1
        return count

    def reset(self) -> None:
        self.skip.clear()
        self.flows_seen = 0
        self.flows_sampled = 0
        self.packets_sampled = 0
        self.records.clear()
        self._decisions.clear()
        self._flow_spans.clear()
        self._steady_templates.clear()
        self._clock_ns = 0.0
        self._run_roots = {}
        self._pending_annotations = []

    def __repr__(self) -> str:
        return (
            f"<FlowSpanRecorder 1-in-{self.every}: {self.flows_sampled}/"
            f"{self.flows_seen} flows, {self.packets_sampled} packets, "
            f"{len(self.records)} spans>"
        )


def _meter_cycles(meter, table) -> float:
    """count × cost sum in sorted-operation order (exact for int costs)."""
    total = meter.direct_cycles
    counts = meter.counts
    for operation in sorted(counts, key=lambda op: op.value):
        total += table[operation] * counts[operation]
    return total


def load_span_jsonl(path) -> List[Dict[str, Any]]:
    """Read a flow-span JSONL file back into record dicts."""
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
