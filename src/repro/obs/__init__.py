"""Observability: metrics registry, packet-path tracing, engine hooks.

The paper's evaluation (§VII) is an observability exercise — per-packet
CPU cycles, fast/slow-path hit rates, ring occupancy, event-table
firings.  This package makes those signals first-class instead of ad-hoc
benchmark arithmetic:

- :mod:`repro.obs.registry` — ``Counter``/``Gauge``/``Histogram`` with
  labels behind a :class:`MetricsRegistry`; the classifier, Global MAT,
  Event Table, framework and platforms all publish into one.
- :mod:`repro.obs.trace` — the :class:`PacketTracer` records per-packet
  spans and exports JSON-lines or Chrome trace-event JSON (opens in
  ``chrome://tracing`` / Perfetto).
- :mod:`repro.obs.hooks` — observers for the discrete-event engine
  (process lifecycle, store put/get/blocked).
- :mod:`repro.obs.timeline` — builds unloaded-mode span timelines from
  :class:`~repro.core.framework.ProcessReport` objects.

Everything defaults to *off* via shared null objects
(:data:`NULL_REGISTRY`, :data:`NULL_TRACER`); with observability
disabled, instrumented code paths cost one no-op method call and the
simulated cycle outputs are bit-identical to an uninstrumented build.
"""

from repro.obs.attribution import STAGE_ORDER, CycleAttribution, stage_of
from repro.obs.audit import AuditLog, NULL_AUDIT, load_audit_jsonl, summarize_events
from repro.obs.hooks import (
    CountingObserver,
    EngineObserver,
    FanoutObserver,
    TracingObserver,
)
from repro.obs.promexport import parse_prometheus, render_prometheus, write_prometheus
from repro.obs.registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.report import render_report
from repro.obs.span import FlowSpanRecorder, load_span_jsonl
from repro.obs.timeline import trace_unloaded
from repro.obs.trace import NULL_TRACER, PacketTracer, Span

__all__ = [
    "AuditLog",
    "Counter",
    "CountingObserver",
    "CycleAttribution",
    "DEFAULT_BUCKETS",
    "EngineObserver",
    "FanoutObserver",
    "FlowSpanRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_AUDIT",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "PacketTracer",
    "STAGE_ORDER",
    "Span",
    "TracingObserver",
    "load_audit_jsonl",
    "load_span_jsonl",
    "parse_prometheus",
    "render_prometheus",
    "render_report",
    "stage_of",
    "summarize_events",
    "trace_unloaded",
    "write_prometheus",
]
