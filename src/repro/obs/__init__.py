"""Observability: metrics registry, packet-path tracing, engine hooks.

The paper's evaluation (§VII) is an observability exercise — per-packet
CPU cycles, fast/slow-path hit rates, ring occupancy, event-table
firings.  This package makes those signals first-class instead of ad-hoc
benchmark arithmetic:

- :mod:`repro.obs.registry` — ``Counter``/``Gauge``/``Histogram`` with
  labels behind a :class:`MetricsRegistry`; the classifier, Global MAT,
  Event Table, framework and platforms all publish into one.
- :mod:`repro.obs.trace` — the :class:`PacketTracer` records per-packet
  spans and exports JSON-lines or Chrome trace-event JSON (opens in
  ``chrome://tracing`` / Perfetto).
- :mod:`repro.obs.hooks` — observers for the discrete-event engine
  (process lifecycle, store put/get/blocked).
- :mod:`repro.obs.timeline` — builds unloaded-mode span timelines from
  :class:`~repro.core.framework.ProcessReport` objects.
- :mod:`repro.obs.timeseries` — gen-3 windowed telemetry: a bounded
  ring of per-window latency percentiles, drop/buffered counts and
  registry metric deltas on a sim-time or packet-count clock.
- :mod:`repro.obs.health` — per-replica health scoring (degraded /
  critical before dead) over the telemetry windows, consumed by the
  autoscaler and the FT coordinator.
- :mod:`repro.obs.slo` — declarative latency/loss objectives with
  error-budget accounting and burn-rate alerts.
- :mod:`repro.obs.benchdiff` — BENCH_*.json regression differ behind
  ``repro obs diff`` and the CI bench-diff gate.
- :mod:`repro.obs.forensics` — tail-latency forensics: exact per-packet
  latency decomposition (queue / service / transfer / stall), a worst-K
  flight recorder, a regime-shift detector emitting
  ``latency_regime_shift`` audit events, and the unified causal
  timeline behind ``repro obs explain``.

Everything defaults to *off* via shared null objects
(:data:`NULL_REGISTRY`, :data:`NULL_TRACER`); with observability
disabled, instrumented code paths cost one no-op method call and the
simulated cycle outputs are bit-identical to an uninstrumented build.
"""

from repro.obs.attribution import STAGE_ORDER, CycleAttribution, stage_of
from repro.obs.audit import AuditLog, NULL_AUDIT, load_audit_jsonl, summarize_events
from repro.obs.benchdiff import (
    DiffEntry,
    collect_benches,
    diff_benches,
    diff_metrics,
    render_diff,
)
from repro.obs.forensics import (
    FlightRecorder,
    ForensicsEngine,
    RegimeShiftDetector,
    StallCharge,
    TailRecord,
    build_timeline,
    components_sum,
    decompose,
    exact_residual,
    load_forensics_jsonl,
    render_explain,
    render_forensics,
    split_plan_total,
)
from repro.obs.health import (
    HealthModel,
    HealthThresholds,
    ReplicaHealth,
)
from repro.obs.hooks import (
    CountingObserver,
    EngineObserver,
    FanoutObserver,
    TracingObserver,
)
from repro.obs.promexport import parse_prometheus, render_prometheus, write_prometheus
from repro.obs.registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.report import render_report
from repro.obs.slo import SLObjective, SLOEngine
from repro.obs.span import FlowSpanRecorder, load_span_jsonl
from repro.obs.timeline import trace_unloaded
from repro.obs.timeseries import (
    TimeSeries,
    Window,
    load_timeseries_jsonl,
    percentile_from_deltas,
    render_windows,
)
from repro.obs.trace import NULL_TRACER, PacketTracer, Span

__all__ = [
    "AuditLog",
    "Counter",
    "CountingObserver",
    "CycleAttribution",
    "DEFAULT_BUCKETS",
    "DiffEntry",
    "EngineObserver",
    "FanoutObserver",
    "FlightRecorder",
    "FlowSpanRecorder",
    "ForensicsEngine",
    "Gauge",
    "HealthModel",
    "HealthThresholds",
    "Histogram",
    "MetricsRegistry",
    "NULL_AUDIT",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "PacketTracer",
    "RegimeShiftDetector",
    "ReplicaHealth",
    "SLOEngine",
    "SLObjective",
    "STAGE_ORDER",
    "Span",
    "StallCharge",
    "TailRecord",
    "TimeSeries",
    "TracingObserver",
    "Window",
    "build_timeline",
    "collect_benches",
    "components_sum",
    "decompose",
    "diff_benches",
    "diff_metrics",
    "exact_residual",
    "load_audit_jsonl",
    "load_forensics_jsonl",
    "load_span_jsonl",
    "load_timeseries_jsonl",
    "parse_prometheus",
    "percentile_from_deltas",
    "render_diff",
    "render_explain",
    "render_forensics",
    "render_prometheus",
    "render_report",
    "render_windows",
    "split_plan_total",
    "stage_of",
    "summarize_events",
    "trace_unloaded",
    "write_prometheus",
]
