"""The ``repro obs report`` dashboard: run artifacts → one text page.

A run emits up to four artifacts — a metrics snapshot (JSON) or
Prometheus scrape, a flow-span JSONL, an audit-event JSONL, and a
Chrome trace.  This module folds the first three into the operator's
one-page view:

- **top flows by latency** — sampled root spans grouped per flow,
  ranked by worst simulated latency (falling back to modelled pipeline
  time for unloaded runs);
- **SLO attainment** — the latency distribution's target percentile
  against ``--slo-us``, with a PASS/FAIL verdict and the attainment
  fraction (share of packets inside the objective);
- **cycle attribution** — the per-stage/per-NF budget recovered from
  the spans' depth-1 children (same stage taxonomy as
  :mod:`repro.obs.attribution`);
- **audit summary** — per-kind decision counts plus the most recent
  event of each kind;
- **metrics summary** — the snapshot itself, family-grouped.

Everything here is pure functions over loaded dicts so the unit suite
drives it without a CLI round-trip; :func:`render_report` is what the
CLI subcommand prints.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.audit import summarize_events
from repro.stats.summary import percentile_sorted
from repro.stats.tables import format_table


def load_jsonl(path) -> List[Dict[str, Any]]:
    """Read a JSONL artifact (spans or audit events) into dicts."""
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def load_metrics(path) -> Dict[str, float]:
    """Read a metrics artifact: snapshot JSON or Prometheus text."""
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return json.loads(text)
    from repro.obs.promexport import parse_prometheus

    parsed = parse_prometheus(text)
    out: Dict[str, float] = {}
    for name, labels, value in parsed.samples:
        key = name if not labels else (
            name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
        )
        out[key] = value
    return out


def _flow_latencies(roots: Sequence[Dict[str, Any]]) -> Dict[int, Dict[str, float]]:
    """Per-flow packet counts and worst/total latency from root spans."""
    flows: Dict[int, Dict[str, float]] = {}
    for record in roots:
        args = record.get("args", {})
        fid = args.get("fid")
        if fid is None:
            continue
        latency = args.get("sim_latency_ns")
        if latency is None:
            latency = record.get("dur_ns", 0.0)
        entry = flows.get(fid)
        if entry is None:
            entry = flows[fid] = {"packets": 0, "worst_ns": 0.0, "total_ns": 0.0}
        entry["packets"] += 1
        entry["total_ns"] += latency
        if latency > entry["worst_ns"]:
            entry["worst_ns"] = latency
    return flows


def _span_roots(spans: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [record for record in spans if record.get("depth") == 0]


def render_top_flows(spans: Sequence[Dict[str, Any]], top: int = 5) -> str:
    """Top flows by worst observed latency, from sampled root spans."""
    flows = _flow_latencies(_span_roots(spans))
    if not flows:
        return "top flows\n(no spans recorded)"
    ranked = sorted(flows.items(), key=lambda item: -item[1]["worst_ns"])[:top]
    rows = [
        [
            f"flow:{fid}",
            int(entry["packets"]),
            f"{entry['worst_ns'] / 1000.0:.2f}",
            f"{entry['total_ns'] / entry['packets'] / 1000.0:.2f}",
        ]
        for fid, entry in ranked
    ]
    return format_table(
        ["flow", "packets", "worst us", "mean us"],
        rows,
        title=f"top {len(rows)} flows by latency",
    )


def render_slo(
    spans: Sequence[Dict[str, Any]],
    slo_us: Optional[float],
    percentile: float = 0.99,
) -> str:
    """SLO attainment for the sampled latency distribution."""
    latencies = []
    for record in _span_roots(spans):
        args = record.get("args", {})
        latency = args.get("sim_latency_ns")
        if latency is None:
            latency = record.get("dur_ns", 0.0)
        latencies.append(latency)
    if not latencies:
        return "SLO attainment\n(no spans recorded)"
    latencies.sort()
    target = percentile_sorted(latencies, percentile)
    lines = [
        "SLO attainment",
        f"  packets sampled : {len(latencies)}",
        f"  p{percentile * 100:g} latency    : {target / 1000.0:.2f} us",
    ]
    if slo_us is not None:
        slo_ns = slo_us * 1000.0
        inside = sum(1 for latency in latencies if latency <= slo_ns)
        attainment = inside / len(latencies)
        verdict = "PASS" if target <= slo_ns else "FAIL"
        lines.append(f"  objective       : {slo_us:.2f} us at p{percentile * 100:g}")
        lines.append(f"  attainment      : {100.0 * attainment:.2f}% of packets inside")
        lines.append(f"  verdict         : {verdict}")
    else:
        lines.append("  objective       : (none given — pass --slo-us to gate)")
    return "\n".join(lines)


def render_attribution_from_spans(spans: Sequence[Dict[str, Any]]) -> str:
    """Per-stage cycle budget recovered from depth-1 child spans."""
    stage_cycles: Dict[str, float] = {}
    order: List[str] = []
    packets = 0
    for record in spans:
        if record.get("depth") == 0:
            packets += 1
            continue
        if record.get("depth") != 1:
            continue
        args = record.get("args", {})
        stage = args.get("stage", "other")
        name = record.get("name", stage)
        key = name if stage in ("nf", "sf") else stage
        if key not in stage_cycles:
            stage_cycles[key] = 0.0
            order.append(key)
        stage_cycles[key] += args.get("cycles", 0.0)
    if not stage_cycles:
        return "cycle attribution\n(no spans recorded)"
    total = sum(stage_cycles.values())
    rows = [
        [
            key,
            f"{stage_cycles[key]:.0f}",
            f"{stage_cycles[key] / packets:.1f}" if packets else "-",
            f"{100.0 * stage_cycles[key] / total:.1f}%" if total else "-",
        ]
        for key in order
    ]
    rows.append(["total", f"{total:.0f}", f"{total / packets:.1f}" if packets else "-", "100.0%"])
    return format_table(
        ["stage", "cycles", "cycles/pkt", "share"],
        rows,
        title=f"cycle attribution ({packets} sampled packets)",
    )


def render_audit_summary(events: Sequence[Dict[str, Any]], last_n: int = 3) -> str:
    """Per-kind decision counts plus the tail of the log."""
    if not events:
        return "audit events\n(no events recorded)"
    counts = summarize_events(events)
    rows = [[kind, counts[kind]] for kind in sorted(counts)]
    table = format_table(
        ["event kind", "count"], rows, title=f"audit events ({len(events)} total)"
    )
    tail_lines = ["", "last events:"]
    for event in list(events)[-last_n:]:
        fields = {
            key: value
            for key, value in event.items()
            if key not in ("seq", "ts", "kind")
        }
        rendered = " ".join(f"{key}={value}" for key, value in sorted(fields.items()))
        tail_lines.append(f"  #{event.get('seq', '?')} {event.get('kind', '?')} {rendered}".rstrip())
    return table + "\n".join(tail_lines)


def render_metrics_summary(snapshot: Dict[str, float]) -> str:
    from repro.stats.metrics_view import render_metrics

    return render_metrics(snapshot, title=f"metrics ({len(snapshot)} series)")


def render_report(
    metrics: Optional[Dict[str, float]] = None,
    spans: Optional[Sequence[Dict[str, Any]]] = None,
    audit: Optional[Sequence[Dict[str, Any]]] = None,
    slo_us: Optional[float] = None,
    percentile: float = 0.99,
    top: int = 5,
) -> str:
    """The full dashboard; sections appear for the artifacts provided."""
    blocks: List[str] = ["repro obs report\n================"]
    if spans is not None:
        blocks.append(render_top_flows(spans, top=top))
        blocks.append(render_slo(spans, slo_us, percentile=percentile))
        blocks.append(render_attribution_from_spans(spans))
    if audit is not None:
        blocks.append(render_audit_summary(audit))
    if metrics is not None:
        blocks.append(render_metrics_summary(metrics))
    if len(blocks) == 1:
        blocks.append("(no artifacts given — pass --spans / --audit / --metrics)")
    return "\n\n".join(blocks)
