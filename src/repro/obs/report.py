"""The ``repro obs report`` dashboard: run artifacts → one text page.

A run emits up to four artifacts — a metrics snapshot (JSON) or
Prometheus scrape, a flow-span JSONL, an audit-event JSONL, and a
Chrome trace.  This module folds the first three into the operator's
one-page view:

- **top flows by latency** — sampled root spans grouped per flow,
  ranked by worst simulated latency (falling back to modelled pipeline
  time for unloaded runs);
- **SLO attainment** — the latency distribution's target percentile
  against ``--slo-us``, with a PASS/FAIL verdict and the attainment
  fraction (share of packets inside the objective);
- **cycle attribution** — the per-stage/per-NF budget recovered from
  the spans' depth-1 children (same stage taxonomy as
  :mod:`repro.obs.attribution`);
- **audit summary** — per-kind decision counts plus the most recent
  event of each kind;
- **FT recovery** — one row per ``ft_failover_complete`` trail
  (restored/rebuilt/replayed/delivered and duration), with the
  kill/buffer/restore/replay event counts beside it, so an FT run is
  readable from the report alone;
- **transactions** — commit/abort/replay-dedup counts from the
  ``txn_*`` audit kinds;
- **health & SLO** — replica state transitions and burn-rate alerts
  (gen-3 windows), when a run emitted them;
- **telemetry windows** — the per-window table when a
  ``--timeseries-out`` artifact is supplied;
- **latency forensics** — component attribution and the worst-K tail
  table when a ``--forensics-out`` artifact is supplied (see
  :mod:`repro.obs.forensics`);
- **metrics summary** — the snapshot itself, family-grouped.

The loaders raise :class:`ValueError` with the offending path and line
number on truncated or invalid JSONL input — the CLI turns that into a
clear message and a nonzero exit instead of a traceback.

Everything here is pure functions over loaded dicts so the unit suite
drives it without a CLI round-trip; :func:`render_report` is what the
CLI subcommand prints.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.audit import summarize_events
from repro.stats.summary import percentile_sorted
from repro.stats.tables import format_table


def load_jsonl(path) -> List[Dict[str, Any]]:
    """Read a JSONL artifact (spans or audit events) into dicts.

    Raises :class:`ValueError` naming the path and 1-based line number
    when a line is not valid JSON (a truncated write leaves a partial
    final line), and when the file holds no records at all — both cases
    the CLI reports as a clear error with a nonzero exit.
    """
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: invalid JSONL (truncated write?): {exc.msg}"
                ) from exc
    if not records:
        raise ValueError(f"{path}: empty artifact — no JSONL records to report on")
    return records


def load_metrics(path) -> Dict[str, float]:
    """Read a metrics artifact: snapshot JSON or Prometheus text."""
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return json.loads(text)
    from repro.obs.promexport import parse_prometheus

    parsed = parse_prometheus(text)
    out: Dict[str, float] = {}
    for name, labels, value in parsed.samples:
        key = name if not labels else (
            name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
        )
        out[key] = value
    return out


def _flow_latencies(roots: Sequence[Dict[str, Any]]) -> Dict[int, Dict[str, float]]:
    """Per-flow packet counts and worst/total latency from root spans."""
    flows: Dict[int, Dict[str, float]] = {}
    for record in roots:
        args = record.get("args", {})
        fid = args.get("fid")
        if fid is None:
            continue
        latency = args.get("sim_latency_ns")
        if latency is None:
            latency = record.get("dur_ns", 0.0)
        entry = flows.get(fid)
        if entry is None:
            entry = flows[fid] = {"packets": 0, "worst_ns": 0.0, "total_ns": 0.0}
        entry["packets"] += 1
        entry["total_ns"] += latency
        if latency > entry["worst_ns"]:
            entry["worst_ns"] = latency
    return flows


def _span_roots(spans: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [record for record in spans if record.get("depth") == 0]


def render_top_flows(spans: Sequence[Dict[str, Any]], top: int = 5) -> str:
    """Top flows by worst observed latency, from sampled root spans."""
    flows = _flow_latencies(_span_roots(spans))
    if not flows:
        return "top flows\n(no spans recorded)"
    ranked = sorted(flows.items(), key=lambda item: -item[1]["worst_ns"])[:top]
    rows = [
        [
            f"flow:{fid}",
            int(entry["packets"]),
            f"{entry['worst_ns'] / 1000.0:.2f}",
            f"{entry['total_ns'] / entry['packets'] / 1000.0:.2f}",
        ]
        for fid, entry in ranked
    ]
    return format_table(
        ["flow", "packets", "worst us", "mean us"],
        rows,
        title=f"top {len(rows)} flows by latency",
    )


def render_slo(
    spans: Sequence[Dict[str, Any]],
    slo_us: Optional[float],
    percentile: float = 0.99,
) -> str:
    """SLO attainment for the sampled latency distribution."""
    latencies = []
    for record in _span_roots(spans):
        args = record.get("args", {})
        latency = args.get("sim_latency_ns")
        if latency is None:
            latency = record.get("dur_ns", 0.0)
        latencies.append(latency)
    if not latencies:
        return "SLO attainment\n(no spans recorded)"
    latencies.sort()
    target = percentile_sorted(latencies, percentile)
    lines = [
        "SLO attainment",
        f"  packets sampled : {len(latencies)}",
        f"  p{percentile * 100:g} latency    : {target / 1000.0:.2f} us",
    ]
    if slo_us is not None:
        slo_ns = slo_us * 1000.0
        inside = sum(1 for latency in latencies if latency <= slo_ns)
        attainment = inside / len(latencies)
        verdict = "PASS" if target <= slo_ns else "FAIL"
        lines.append(f"  objective       : {slo_us:.2f} us at p{percentile * 100:g}")
        lines.append(f"  attainment      : {100.0 * attainment:.2f}% of packets inside")
        lines.append(f"  verdict         : {verdict}")
    else:
        lines.append("  objective       : (none given — pass --slo-us to gate)")
    return "\n".join(lines)


def render_attribution_from_spans(spans: Sequence[Dict[str, Any]]) -> str:
    """Per-stage cycle budget recovered from depth-1 child spans."""
    stage_cycles: Dict[str, float] = {}
    order: List[str] = []
    packets = 0
    for record in spans:
        if record.get("depth") == 0:
            packets += 1
            continue
        if record.get("depth") != 1:
            continue
        args = record.get("args", {})
        stage = args.get("stage", "other")
        name = record.get("name", stage)
        key = name if stage in ("nf", "sf") else stage
        if key not in stage_cycles:
            stage_cycles[key] = 0.0
            order.append(key)
        stage_cycles[key] += args.get("cycles", 0.0)
    if not stage_cycles:
        return "cycle attribution\n(no spans recorded)"
    total = sum(stage_cycles.values())
    rows = [
        [
            key,
            f"{stage_cycles[key]:.0f}",
            f"{stage_cycles[key] / packets:.1f}" if packets else "-",
            f"{100.0 * stage_cycles[key] / total:.1f}%" if total else "-",
        ]
        for key in order
    ]
    rows.append(["total", f"{total:.0f}", f"{total / packets:.1f}" if packets else "-", "100.0%"])
    return format_table(
        ["stage", "cycles", "cycles/pkt", "share"],
        rows,
        title=f"cycle attribution ({packets} sampled packets)",
    )


def render_audit_summary(events: Sequence[Dict[str, Any]], last_n: int = 3) -> str:
    """Per-kind decision counts plus the tail of the log."""
    if not events:
        return "audit events\n(no events recorded)"
    counts = summarize_events(events)
    rows = [[kind, counts[kind]] for kind in sorted(counts)]
    table = format_table(
        ["event kind", "count"], rows, title=f"audit events ({len(events)} total)"
    )
    tail_lines = ["", "last events:"]
    for event in list(events)[-last_n:]:
        fields = {
            key: value
            for key, value in event.items()
            if key not in ("seq", "ts", "kind")
        }
        rendered = " ".join(f"{key}={value}" for key, value in sorted(fields.items()))
        tail_lines.append(f"  #{event.get('seq', '?')} {event.get('kind', '?')} {rendered}".rstrip())
    return table + "\n".join(tail_lines)


#: the per-failure FT audit trail, in choreography order
FT_TRAIL_KINDS = (
    "ft_checkpoint",
    "ft_kill",
    "ft_buffer",
    "ft_freeze_absorbed",
    "ft_restore",
    "ft_replay",
    "ft_failover_complete",
)
TXN_KINDS = ("txn_commit", "txn_abort")
HEALTH_KINDS = ("health_degraded", "health_critical", "health_recovered")
SLO_KINDS = ("slo_burn_alert",)


def render_ft_recovery(events: Sequence[Dict[str, Any]]) -> str:
    """Recovery trails and FT event counts from ``ft_*`` audit kinds.

    Implemented here (not imported from :mod:`repro.ft.report`, which
    itself imports this module) so the obs dashboard owns its sections.
    """
    ft_events = [e for e in events if str(e.get("kind", "")).startswith("ft_")]
    if not ft_events:
        return "fault tolerance\n(no ft_* events recorded)"
    counts: Dict[str, int] = {}
    for event in ft_events:
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    count_rows = [[kind, counts[kind]] for kind in FT_TRAIL_KINDS if kind in counts]
    for kind in sorted(counts):
        if kind not in FT_TRAIL_KINDS:
            count_rows.append([kind, counts[kind]])
    blocks = [
        format_table(
            ["ft event", "count"],
            count_rows,
            title=f"fault tolerance ({len(ft_events)} events)",
        )
    ]
    completions = [e for e in ft_events if e.get("kind") == "ft_failover_complete"]
    if completions:
        rows = []
        for event in completions:
            rows.append(
                [
                    event.get("replica", "?"),
                    event.get("flows_restored", 0),
                    event.get("flows_rebuilt", 0),
                    event.get("replayed", 0),
                    event.get("delivered", 0),
                    f"{event.get('duration_ms', 0.0):.2f}",
                ]
            )
        blocks.append(
            format_table(
                ["replica", "restored", "rebuilt", "replayed", "delivered", "ms"],
                rows,
                title=f"recoveries ({len(completions)})",
            )
        )
    return "\n\n".join(blocks)


def render_txn_summary(events: Sequence[Dict[str, Any]]) -> str:
    """Transactional shared-state activity from ``txn_*`` audit kinds."""
    txn_events = [e for e in events if str(e.get("kind", "")).startswith("txn_")]
    if not txn_events:
        return "transactions\n(no txn_* events recorded)"
    commits = sum(1 for e in txn_events if e.get("kind") == "txn_commit")
    aborts = [e for e in txn_events if e.get("kind") == "txn_abort"]
    by_key: Dict[str, int] = {}
    for event in aborts:
        key = str(event.get("key", "?"))
        by_key[key] = by_key.get(key, 0) + 1
    lines = [
        f"transactions ({len(txn_events)} events)",
        f"  commits audited : {commits}",
        f"  aborts          : {len(aborts)}",
    ]
    if by_key:
        hot = sorted(by_key.items(), key=lambda item: (-item[1], item[0]))[:5]
        lines.append("  hottest abort keys:")
        for key, count in hot:
            lines.append(f"    {count:>4}x {key}")
    return "\n".join(lines)


def render_health_slo(events: Sequence[Dict[str, Any]]) -> str:
    """Gen-3 health transitions and SLO burn alerts from the audit log."""
    health = [e for e in events if e.get("kind") in HEALTH_KINDS]
    alerts = [e for e in events if e.get("kind") in SLO_KINDS]
    if not health and not alerts:
        return "health & SLO\n(no health_*/slo_* events recorded)"
    lines = [f"health & SLO ({len(health)} transitions, {len(alerts)} alerts)"]
    for event in health:
        lines.append(
            f"  #{event.get('seq', '?')} {event.get('kind')} replica={event.get('replica')}"
            f" window={event.get('window')} score={event.get('score')}"
            f" reasons={event.get('reasons', '')}"
        )
    for event in alerts:
        lines.append(
            f"  #{event.get('seq', '?')} slo_burn_alert objective={event.get('objective')}"
            f" window={event.get('window')} burn={event.get('burn')}"
            f" bad={event.get('bad')}/{event.get('events')}"
        )
    return "\n".join(lines)


def render_metrics_summary(snapshot: Dict[str, float]) -> str:
    from repro.stats.metrics_view import render_metrics

    return render_metrics(snapshot, title=f"metrics ({len(snapshot)} series)")


def render_report(
    metrics: Optional[Dict[str, float]] = None,
    spans: Optional[Sequence[Dict[str, Any]]] = None,
    audit: Optional[Sequence[Dict[str, Any]]] = None,
    slo_us: Optional[float] = None,
    percentile: float = 0.99,
    top: int = 5,
    windows: Optional[Sequence[Dict[str, Any]]] = None,
    forensics: Optional[Dict[str, Any]] = None,
) -> str:
    """The full dashboard; sections appear for the artifacts provided."""
    blocks: List[str] = ["repro obs report\n================"]
    if spans is not None:
        blocks.append(render_top_flows(spans, top=top))
        blocks.append(render_slo(spans, slo_us, percentile=percentile))
        blocks.append(render_attribution_from_spans(spans))
    if audit is not None:
        blocks.append(render_audit_summary(audit))
        kinds = {event.get("kind") for event in audit}
        if any(str(kind).startswith("ft_") for kind in kinds):
            blocks.append(render_ft_recovery(audit))
        if any(str(kind).startswith("txn_") for kind in kinds):
            blocks.append(render_txn_summary(audit))
        if kinds & (set(HEALTH_KINDS) | set(SLO_KINDS)):
            blocks.append(render_health_slo(audit))
    if windows is not None:
        from repro.obs.timeseries import render_windows

        blocks.append(render_windows(windows, title=f"telemetry windows ({len(windows)})"))
    if forensics is not None:
        from repro.obs.forensics import render_forensics

        blocks.append(render_forensics(forensics, top=top))
    if metrics is not None:
        blocks.append(render_metrics_summary(metrics))
    if len(blocks) == 1:
        blocks.append("(no artifacts given — pass --spans / --audit / --metrics)")
    return "\n\n".join(blocks)
