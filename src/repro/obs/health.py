"""Cluster health scoring over telemetry windows (obs gen-3).

The FT coordinator only learns about a replica when the fault injector
declares it dead; the autoscaler only sees cluster-wide watermarks.
Neither sees the *degraded-before-dead* shape real failures have: p99
creeping up window over window, a drop burst, the fast-path hit ratio
collapsing, transaction aborts spiking.  :class:`HealthModel` watches
the per-replica sub-windows a :class:`~repro.obs.timeseries.TimeSeries`
closes and scores each replica each window:

- **healthy** — nothing notable;
- **degraded** — drop rate or latency trend above the degraded
  thresholds, fast-path hit ratio collapsed, or transaction retry rate
  high: the replica still serves, but something is wrong;
- **critical** — packets are being *buffered* to it (the FT layer
  believes it dead), or drop rate / latency passed the critical
  thresholds.

State transitions emit ``health_degraded`` / ``health_critical`` /
``health_recovered`` audit events and fan out to listeners — the FT
coordinator subscribes to checkpoint a degrading replica proactively
(:meth:`repro.ft.failover.FaultTolerance.on_health`), the autoscaler to
veto scale-in and add scale-out pressure
(``Autoscaler(health=...)``).

Latency trend uses a per-replica EWMA baseline of window p99 that only
learns from *healthy* windows, so a replica sliding into trouble is
judged against how it behaved when it was well — not against its own
decline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.audit import AuditLog, NULL_AUDIT
from repro.obs.timeseries import TimeSeries, Window

HEALTHY = "healthy"
DEGRADED = "degraded"
CRITICAL = "critical"
#: worst-first severity order
STATES = (CRITICAL, DEGRADED, HEALTHY)
_RANK = {state: rank for rank, state in enumerate(STATES)}


@dataclass(frozen=True)
class HealthThresholds:
    """Knobs of the per-window scoring rules."""

    #: window drop rate (drops / packets) boundaries
    drop_rate_degraded: float = 0.01
    drop_rate_critical: float = 0.10
    #: any buffered packet means the FT layer is holding traffic for a
    #: dead replica — that replica is critical by definition
    buffered_critical: int = 1
    #: window p99 over the healthy-baseline EWMA
    latency_factor_degraded: float = 2.0
    latency_factor_critical: float = 4.0
    #: fast-path hit ratio below this (once warm) is degraded
    fast_hit_degraded: float = 0.25
    #: transaction abort rate (aborts / attempts) in the window
    txn_retry_degraded: float = 0.05
    #: windows with fewer packets than this are not scored for ratio
    #: rules (tiny denominators make every ratio a cliff)
    min_packets: int = 8
    #: EWMA weight of the newest healthy p99
    baseline_alpha: float = 0.3


@dataclass(frozen=True)
class ReplicaHealth:
    """One replica's score for one window."""

    replica: Any
    state: str
    score: float
    reasons: Tuple[str, ...]
    window_index: int
    packets: int = 0
    drop_rate: float = 0.0
    buffered: int = 0
    p99_ns: Optional[float] = None
    baseline_p99_ns: Optional[float] = None
    fast_hit_ratio: Optional[float] = None
    txn_retry_rate: float = 0.0

    def describe(self) -> str:
        why = ", ".join(self.reasons) if self.reasons else "ok"
        return f"replica {self.replica}: {self.state} (score {self.score:.2f}; {why})"


@dataclass
class _ReplicaTrack:
    state: str = HEALTHY
    baseline_p99: Optional[float] = None
    windows_seen: int = 0
    last: Optional[ReplicaHealth] = None
    history: List[ReplicaHealth] = field(default_factory=list)


class HealthModel:
    """Score replicas from closed telemetry windows."""

    def __init__(
        self,
        timeseries: Optional[TimeSeries] = None,
        thresholds: Optional[HealthThresholds] = None,
        audit: AuditLog = NULL_AUDIT,
        txn_store=None,
        history: int = 64,
    ):
        self.thresholds = thresholds or HealthThresholds()
        self.audit = audit
        #: optional :class:`repro.ft.txstate.TransactionalStore`; its
        #: cumulative commit/abort counters are differenced per window
        self.txn_store = txn_store
        self.history = history
        self._tracks: Dict[Any, _ReplicaTrack] = {}
        self._listeners: List[Callable[[ReplicaHealth], None]] = []
        self._txn_prev = (0, 0)  # (commits, aborts)
        self.windows_scored = 0
        if timeseries is not None:
            timeseries.on_close(self.observe_window)

    # -- wiring -------------------------------------------------------------

    def add_listener(self, listener: Callable[[ReplicaHealth], None]) -> None:
        """Call ``listener(report)`` on every replica *state change*."""
        self._listeners.append(listener)

    # -- scoring ------------------------------------------------------------

    def observe_window(self, window: Window) -> List[ReplicaHealth]:
        """Score every replica present in a closed window."""
        self.windows_scored += 1
        txn_rate = self._txn_window_rate()
        reports = []
        for replica in sorted(window.replicas, key=str):
            reports.append(self._score(window, window.replicas[replica], txn_rate))
        return reports

    def _txn_window_rate(self) -> float:
        store = self.txn_store
        if store is None:
            return 0.0
        commits, aborts = store.commits, store.aborts
        prev_commits, prev_aborts = self._txn_prev
        self._txn_prev = (commits, aborts)
        d_commits = commits - prev_commits
        d_aborts = aborts - prev_aborts
        attempts = d_commits + d_aborts
        return d_aborts / attempts if attempts > 0 else 0.0

    def _score(self, window: Window, rw, txn_rate: float) -> ReplicaHealth:
        t = self.thresholds
        reasons: List[str] = []
        score = 1.0
        state = HEALTHY

        def flag(new_state: str, reason: str, penalty: float) -> None:
            nonlocal state, score
            reasons.append(reason)
            score = max(0.0, score - penalty)
            if _RANK[new_state] < _RANK[state]:
                state = new_state

        served = rw.packets - rw.buffered
        drop_rate = rw.drops / served if served > 0 else 0.0
        if rw.buffered >= t.buffered_critical:
            flag(CRITICAL, f"buffered={rw.buffered}", 0.6)
        if served >= t.min_packets:
            if drop_rate >= t.drop_rate_critical:
                flag(CRITICAL, f"drop_rate={drop_rate:.3f}", 0.5)
            elif drop_rate >= t.drop_rate_degraded:
                flag(DEGRADED, f"drop_rate={drop_rate:.3f}", 0.25)

        track = self._tracks.get(rw.replica)
        if track is None:
            track = self._tracks[rw.replica] = _ReplicaTrack()
        p99 = rw.percentile(0.99)
        baseline = track.baseline_p99
        if p99 is not None and baseline is not None and baseline > 0:
            factor = p99 / baseline
            if factor >= t.latency_factor_critical:
                flag(CRITICAL, f"p99_x{factor:.1f}", 0.5)
            elif factor >= t.latency_factor_degraded:
                flag(DEGRADED, f"p99_x{factor:.1f}", 0.25)

        fast_ratio: Optional[float] = None
        if served >= t.min_packets:
            fast_ratio = rw.fast_hits / served
            # only meaningful once the replica has warmed a fast path at
            # least once — a replica that never compiled is not "sick"
            if track.windows_seen > 0 and track.baseline_p99 is not None:
                if 0 < fast_ratio < t.fast_hit_degraded or (
                    fast_ratio == 0 and rw.fast_hits == 0 and self._ever_fast(track)
                ):
                    flag(DEGRADED, f"fast_hit={fast_ratio:.2f}", 0.15)
        if txn_rate >= t.txn_retry_degraded:
            flag(DEGRADED, f"txn_retry={txn_rate:.3f}", 0.15)

        report = ReplicaHealth(
            replica=rw.replica,
            state=state,
            score=score,
            reasons=tuple(reasons),
            window_index=window.index,
            packets=rw.packets,
            drop_rate=drop_rate,
            buffered=rw.buffered,
            p99_ns=p99,
            baseline_p99_ns=baseline,
            fast_hit_ratio=fast_ratio,
            txn_retry_rate=txn_rate,
        )
        self._finish(track, report)
        return report

    def _ever_fast(self, track: _ReplicaTrack) -> bool:
        return any(
            h.fast_hit_ratio is not None and h.fast_hit_ratio > 0
            for h in track.history
        )

    def _finish(self, track: _ReplicaTrack, report: ReplicaHealth) -> None:
        t = self.thresholds
        track.windows_seen += 1
        track.last = report
        track.history.append(report)
        if len(track.history) > self.history:
            del track.history[: len(track.history) - self.history]
        if report.state == HEALTHY and report.p99_ns is not None:
            if track.baseline_p99 is None:
                track.baseline_p99 = report.p99_ns
            else:
                alpha = t.baseline_alpha
                track.baseline_p99 = (
                    alpha * report.p99_ns + (1.0 - alpha) * track.baseline_p99
                )
        if report.state != track.state:
            previous, track.state = track.state, report.state
            kind = {
                DEGRADED: "health_degraded",
                CRITICAL: "health_critical",
                HEALTHY: "health_recovered",
            }[report.state]
            self.audit.emit(
                kind,
                replica=report.replica,
                window=report.window_index,
                score=round(report.score, 3),
                was=previous,
                reasons=",".join(report.reasons),
            )
            for listener in self._listeners:
                listener(report)

    # -- reads --------------------------------------------------------------

    def state_of(self, replica: Any) -> str:
        track = self._tracks.get(replica)
        return track.state if track is not None else HEALTHY

    def last_report(self, replica: Any) -> Optional[ReplicaHealth]:
        track = self._tracks.get(replica)
        return track.last if track is not None else None

    def worst_state(self) -> str:
        worst = HEALTHY
        for track in self._tracks.values():
            if _RANK[track.state] < _RANK[worst]:
                worst = track.state
        return worst

    def unhealthy_replicas(self) -> List[Any]:
        return sorted(
            (rid for rid, track in self._tracks.items() if track.state != HEALTHY),
            key=str,
        )

    def snapshot(self) -> Dict[str, Any]:
        return {
            str(rid): {
                "state": track.state,
                "baseline_p99_ns": track.baseline_p99,
                "windows": track.windows_seen,
                "score": track.last.score if track.last else 1.0,
            }
            for rid, track in sorted(self._tracks.items(), key=lambda kv: str(kv[0]))
        }

    def __repr__(self) -> str:
        states = ", ".join(
            f"{rid}:{track.state}" for rid, track in self._tracks.items()
        )
        return f"<HealthModel {self.windows_scored} windows; {states or 'no replicas'}>"
