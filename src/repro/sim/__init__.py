"""Discrete-event simulation engine.

This subpackage is a small, self-contained discrete-event simulator in the
style of SimPy: *processes* are Python generators that yield scheduling
primitives (:class:`Timeout`, :class:`Get`, :class:`Put`, :class:`Request`)
to an :class:`Engine` that advances a virtual clock.  It is the substrate
on which the NFV platform models (``repro.platform``) measure pipelined
throughput and latency.

The engine is deterministic: given the same processes and the same
scheduling order, every run produces identical timestamps.  Ties in event
time are broken by insertion order.
"""

from repro.sim.analytic import analytic_replay, plans_are_analytic
from repro.sim.engine import (
    Engine,
    Event,
    Get,
    Interrupt,
    Process,
    Put,
    Request,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Resource, Store

__all__ = [
    "Engine",
    "Event",
    "Get",
    "Interrupt",
    "Process",
    "Put",
    "Request",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "analytic_replay",
    "plans_are_analytic",
]
