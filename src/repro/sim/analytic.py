"""Closed-form temporal replay (the fast path of ``Platform.run_load``).

The generator-based DES in :mod:`repro.sim.engine` is fully general — it
handles shared core pools, interrupts and observer instrumentation — but
the common benchmark configuration needs none of that: every packet's
stage plan is fixed after the functional pass, every ring has a single
producer and a single consumer, and service times are deterministic.
Under those conditions the departure times obey a Lindley-style
recursion that a plain Python loop evaluates in O(total hops), roughly
an order of magnitude faster than driving the event loop.

For one stage ``s`` with worker-available time ``avail[s]``, ring
dequeue history ``gets[s]`` and ring capacity ``cap``, packet hops are
replayed in source order::

    enq   = ready                      if the ring has a free slot
          = max(ready, gets[s][c-cap]) if the c-th enqueue finds it full
    start = max(avail[s], enq)         # dequeue time at the consumer
    ready = start + service_ns         # departure from the stage

where ``ready`` starts as the packet's offered (arrival) time.  The
producer of the hop (the source or the previous stage) is occupied until
``enq`` — blocking-after-service, exactly like a full ``Put`` on a
bounded :class:`~repro.sim.resources.Store`.

The recursion is only valid when later packets can never influence
earlier ones.  :func:`plans_are_analytic` checks the sufficient
structural condition: every stage is fed by exactly one producer (the
source or one other stage), which makes every ring single-producer /
single-consumer and keeps enqueue order equal to source order.  Pure
delay hops (``stage_index=None``), empty plans and anything else the
recursion cannot express fall back to the DES.

Float arithmetic deliberately mirrors the DES event loop operation for
operation (the same additions and the same max-via-comparison), so the
analytic replay is numerically *identical* to the engine, not merely
close — the equivalence suite asserts exact equality.
"""

from __future__ import annotations

import operator
from typing import Dict, List, Optional, Sequence, Tuple

#: Pseudo stage index for the packet source in the producer-uniqueness map.
_SOURCE = -1


def plans_are_analytic(plans: Sequence[Sequence[Tuple[Optional[int], float]]]) -> bool:
    """Can these stage plans be replayed with the closed-form recursion?

    Requirements, checked in one pass over the hops:

    - every plan is non-empty (an empty plan would route the packet
      straight to the sink, a case only the DES models);
    - every hop names a real stage (``None`` marks free-running delay
      hops that spawn detached processes in the DES);
    - no plan visits the same stage twice in a row (a self-edge would
      make the stage its own producer);
    - every stage is entered from exactly one predecessor across *all*
      plans — the single-producer condition that keeps each ring FIFO in
      source order, so no later packet can delay an earlier one.
    """
    producer_of: Dict[int, int] = {}
    seen_plans: set = set()
    for plan in plans:
        # Steady-state plans are shared list objects (one per compiled
        # flow); re-walking an already-validated plan cannot change the
        # producer map, so identical plans are checked once.
        plan_id = id(plan)
        if plan_id in seen_plans:
            continue
        if not plan:
            return False
        seen_plans.add(plan_id)
        previous = _SOURCE
        for stage, __ in plan:
            if stage is None or stage == previous:
                return False
            known = producer_of.get(stage)
            if known is None:
                producer_of[stage] = previous
            elif known != previous:
                return False
            previous = stage
    return True


def analytic_replay(
    plans: Sequence[Sequence[Tuple[int, float]]],
    gaps: Sequence[float],
    stage_count: int,
    ring_capacity: Optional[int],
    index_latencies=None,
) -> Tuple[List[float], List[Tuple[int, float]]]:
    """Replay stage plans analytically; returns (arrival_at, completions).

    Both structures match what :meth:`Platform._spawn_pipeline` collects
    from the DES: ``arrival_at[index]`` is packet ``index``'s offered
    time (a list here, indexed identically to the DES's dict),
    ``completions`` pairs packet indices with their departure from the
    last hop, sorted by finish time like the DES sink observes them
    (engine time is monotone, so the done-store fills in finish order).
    Simultaneous finishes keep packet order — the one tie-break the DES
    does not guarantee, and invisible to every downstream consumer
    (latency lists are compared as populations, never positionally
    across replay engines at equal timestamps).

    ``index_latencies``, when given a mutable sequence (a list or an
    ``array('d')``), is extended with every packet's sojourn time
    ``finish - arrival`` in *packet-index* order — the order the sort
    below erases — in one C-level pass, so forensics consumers can
    window the run as contiguous slices without re-deriving the
    permutation from the sorted pairs.

    Callers must have validated the plans with :func:`plans_are_analytic`.
    """
    arrival_at: List[float] = []
    offered = arrival_at.append
    completions: List[Tuple[int, float]] = []
    avail = [0.0] * stage_count
    get_times: List[List[float]] = [[] for __ in range(stage_count)]
    enqueued = [0] * stage_count
    cap = ring_capacity
    source_ready = 0.0

    index = -1
    for plan, gap in zip(plans, gaps):
        index += 1
        offer = source_ready + gap if gap > 0 else source_ready
        offered(offer)
        ready = offer
        previous = _SOURCE
        for stage, service_ns in plan:
            gets = get_times[stage]
            count = enqueued[stage]
            enqueued[stage] = count + 1
            if cap is not None and count >= cap:
                # Ring full: the put blocks until the (count-cap)-th item
                # is dequeued, which frees the slot at that very instant.
                freed = gets[count - cap]
                enq = freed if freed > ready else ready
            else:
                enq = ready
            if previous < 0:
                source_ready = enq
            else:
                avail[previous] = enq
            stage_avail = avail[stage]
            start = stage_avail if stage_avail > enq else enq
            gets.append(start)
            ready = start + service_ns
            previous = stage
        # The final Put targets the unbounded done store: never blocks.
        avail[previous] = ready
        completions.append((index, ready))
    # Fast packets overtake slow ones on mixed-path pipelines; present
    # completions in finish order exactly as the DES sink records them.
    if index_latencies is not None:
        # itemgetter/sub keep the whole pass in C — a Python per-packet
        # callable here would cost more than the forensics budget allows
        index_latencies.extend(
            map(operator.sub, map(operator.itemgetter(1), completions), arrival_at)
        )
    completions.sort(key=_finish_time)
    return arrival_at, completions


def _finish_time(completion: Tuple[int, float]) -> float:
    return completion[1]


def analytic_replay_vector(
    table: Sequence[Sequence[Tuple[Optional[int], float]]],
    plan_ids,
    ring_capacity: Optional[int],
):
    """Whole-batch array evaluation of the saturation recursion, or ``None``.

    Applies only to the case the batch lane's hot benchmarks hit: numpy
    present, all-zero arrival gaps (saturation), and every plan in the
    deduplicated ``table`` a single hop on one common stage (the BESS
    topology; ONVM's no-wave fast path compresses to it too).  Under
    those conditions the scalar recursion collapses — with every gap
    zero, the stage's ready time is non-decreasing, so ``start_i`` always
    resolves to ``ready_{i-1}`` and the whole run is two cumulative
    passes::

        ready = cumsum(service)            # add.accumulate: the same
        start = [0, ready[:-1]]            #   left-fold of float adds
        enq   = [0]*cap + cummax(start[:n-cap])   # ring back-pressure
        latency[i] = ready[i] - enq[i-1]   # arrival is prior source-ready

    ``np.add.accumulate`` and ``np.maximum.accumulate`` are sequential
    left folds over float64, so every intermediate is bit-identical to
    the scalar loop's — the equivalence suite asserts exact equality.
    Anything outside this shape (heterogeneous gaps, multi-hop plans,
    several target stages) returns ``None``: float addition is not
    associative, so the general case cannot be re-bracketed into array
    passes without breaking exactness.

    Returns ``(latencies, makespan_ns)``; completions are in packet
    order, which equals finish order here (service times are
    non-negative, and the scalar replay's stable finish sort keeps
    packet order on ties).
    """
    from repro import vector as vec

    if not vec.HAVE_NUMPY:
        return None
    if not table:
        return [], 0.0
    stage: Optional[int] = None
    for plan in table:
        if len(plan) != 1:
            return None
        hop_stage, service_ns = plan[0]
        if hop_stage is None or service_ns < 0:
            return None
        if stage is None:
            stage = hop_stage
        elif hop_stage != stage:
            return None

    np = vec.np
    service_by_pid = np.array([plan[0][1] for plan in table], dtype=np.float64)
    service = service_by_pid[plan_ids]
    n = len(service)
    if n == 0:
        return [], 0.0
    ready = np.add.accumulate(service)
    start = np.empty(n, dtype=np.float64)
    start[0] = 0.0
    start[1:] = ready[:-1]
    # Ring back-pressure: enqueue c blocks until dequeue c-cap, i.e. on
    # max(start[:c-cap+1]) — a running maximum (comparison-exact).
    enq = np.zeros(n, dtype=np.float64)
    cap = ring_capacity
    if cap is not None and n > cap:
        enq[cap:] = np.maximum.accumulate(start[: n - cap])
    # Packet i's offered time is the source's ready time after packet
    # i-1, which is that packet's enqueue instant.
    arrival = np.empty(n, dtype=np.float64)
    arrival[0] = 0.0
    arrival[1:] = enq[:-1]
    latencies = (ready - arrival).tolist()
    return latencies, float(ready[-1])
