"""Shared resources for the discrete-event engine.

Two primitives cover everything the platform models need:

- :class:`Store` — a bounded FIFO queue (models the RX/TX ring buffers that
  OpenNetVM uses to hand packet descriptors between cores).
- :class:`Resource` — a counted semaphore (models a pool of worker cores
  used for SpeedyBox's parallel state-function execution).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple, TYPE_CHECKING

from repro.sim.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.engine import Engine, Process


class Store:
    """A FIFO queue with optional capacity.

    Producers yield ``Put(store, item)`` and block while the store is full;
    consumers yield ``Get(store)`` and block while it is empty.  FIFO order
    is preserved for both items and blocked processes.
    """

    __slots__ = (
        "engine",
        "capacity",
        "name",
        "_items",
        "_blocked_putters",
        "_blocked_getters",
        "total_put",
        "total_got",
        "high_watermark",
    )

    def __init__(self, engine: "Engine", capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity!r}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._blocked_putters: Deque[Tuple["Process", Any]] = deque()
        self._blocked_getters: Deque["Process"] = deque()
        self.total_put = 0
        self.total_got = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"<Store {self.name or id(self)} {len(self._items)}/{cap}>"

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def items_snapshot(self) -> List[Any]:
        """A copy of the queued items, oldest first (for inspection/tests)."""
        return list(self._items)

    # -- engine-facing plumbing -------------------------------------------

    def _put(self, process: "Process", item: Any) -> None:
        if self.full:
            self._blocked_putters.append((process, item))
            observer = self.engine.observer
            if observer is not None:
                observer.store_blocked(self, process, "put")
            return
        self._enqueue(item)
        self.engine._schedule_resume(process, None)
        self._feed_getters()

    def _get(self, process: "Process") -> None:
        if not self._items:
            self._blocked_getters.append(process)
            observer = self.engine.observer
            if observer is not None:
                observer.store_blocked(self, process, "get")
            return
        item = self._dequeue()
        self.engine._schedule_resume(process, item)
        self._admit_putters()

    def _enqueue(self, item: Any) -> None:
        items = self._items
        items.append(item)
        self.total_put += 1
        if len(items) > self.high_watermark:
            self.high_watermark = len(items)
        observer = self.engine.observer
        if observer is not None:
            observer.store_put(self, item)

    def _dequeue(self) -> Any:
        item = self._items.popleft()
        self.total_got += 1
        observer = self.engine.observer
        if observer is not None:
            observer.store_get(self, item)
        return item

    def _feed_getters(self) -> None:
        while self._blocked_getters and self._items:
            getter = self._blocked_getters.popleft()
            self.engine._schedule_resume(getter, self._dequeue())

    def _admit_putters(self) -> None:
        while self._blocked_putters and not self.full:
            putter, item = self._blocked_putters.popleft()
            self._enqueue(item)
            self.engine._schedule_resume(putter, None)
        self._feed_getters()


class Resource:
    """A counted semaphore with FIFO granting.

    A process acquires a slot with ``yield Request(resource)`` and must
    release it with ``yield resource.release()``.
    """

    __slots__ = ("engine", "capacity", "name", "in_use", "_waiting", "total_grants")

    def __init__(self, engine: "Engine", capacity: int = 1, name: str = ""):
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive, got {capacity!r}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiting: Deque["Process"] = deque()
        self.total_grants = 0

    def __repr__(self) -> str:
        return f"<Resource {self.name or id(self)} {self.in_use}/{self.capacity}>"

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def release(self):
        """Command to yield for releasing one previously acquired slot."""
        from repro.sim.engine import Release

        return Release(self)

    # -- engine-facing plumbing -------------------------------------------

    def _request(self, process: "Process") -> None:
        if self.in_use < self.capacity:
            self.in_use += 1
            self.total_grants += 1
            self.engine._schedule_resume(process, self)
            return
        self._waiting.append(process)

    def _release(self, process: "Process") -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self!r}")
        self.in_use -= 1
        self.engine._schedule_resume(process, None)
        if self._waiting and self.in_use < self.capacity:
            waiter = self._waiting.popleft()
            self.in_use += 1
            self.total_grants += 1
            self.engine._schedule_resume(waiter, self)
