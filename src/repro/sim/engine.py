"""Core of the discrete-event simulation engine.

Processes are plain Python generators.  A process yields *commands* —
:class:`Timeout`, :class:`Get`, :class:`Put` or :class:`Request` — and the
engine resumes it when the command completes, sending the command's result
back into the generator.  Example::

    def producer(engine, store):
        for i in range(3):
            yield Timeout(1.0)
            yield Put(store, i)

    engine = Engine()
    store = Store(engine)
    engine.add_process(producer(engine, store))
    engine.run()

Time is a float in arbitrary units; the platform models use nanoseconds.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple


class SimulationError(Exception):
    """Raised for invalid simulator usage (e.g. negative delays)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Command:
    """Base class for everything a process may yield to the engine."""

    __slots__ = ()


class Timeout(Command):
    """Suspend the yielding process for ``delay`` time units."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        self.delay = float(delay)

    def __repr__(self) -> str:
        return f"Timeout({self.delay})"


class Put(Command):
    """Put ``item`` into ``store``; blocks while the store is full."""

    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any):
        self.store = store
        self.item = item

    def __repr__(self) -> str:
        return f"Put({self.store!r}, {self.item!r})"


class Get(Command):
    """Take the oldest item from ``store``; blocks while it is empty."""

    __slots__ = ("store",)

    def __init__(self, store: "Store"):
        self.store = store

    def __repr__(self) -> str:
        return f"Get({self.store!r})"


class Request(Command):
    """Acquire one slot of ``resource``; blocks while it is saturated.

    The process must later yield ``resource.release()``.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource

    def __repr__(self) -> str:
        return f"Request({self.resource!r})"


class Release(Command):
    """Release one previously acquired slot of ``resource``."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.resource = resource

    def __repr__(self) -> str:
        return f"Release({self.resource!r})"


class Event:
    """A one-shot event processes can wait on (yield) and trigger."""

    __slots__ = ("engine", "triggered", "value", "_waiters")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking every waiting process at the current time."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.engine._schedule_resume(process, value)

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)


class Process:
    """A running generator inside the engine.

    ``finished`` flips to True when the generator returns; ``result`` holds
    its ``StopIteration`` value.  Other processes may ``yield`` a Process to
    join on it.
    """

    __slots__ = ("engine", "generator", "name", "finished", "result", "_joiners", "_pending_interrupt")

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        self.engine = engine
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self.result: Any = None
        self._joiners: List["Process"] = []
        self._pending_interrupt: Optional[Interrupt] = None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.finished:
            return
        self._pending_interrupt = Interrupt(cause)
        self.engine._schedule_resume(self, None)

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"<Process {self.name} ({state})>"


class Engine:
    """The event loop: a priority queue of (time, sequence, callback).

    ``observer`` is a nullable instrumentation hook: when set to an
    object with the :class:`repro.obs.hooks.EngineObserver` interface,
    the engine reports process lifecycle transitions (scheduled /
    resumed / finished) and stores report put / get / blocked.  The
    attribute defaults to ``None`` and every call site is guarded, so an
    untraced engine pays one ``is None`` test per event and nothing
    else.  The engine never imports the observer types — anything with
    the six methods qualifies.
    """

    __slots__ = ("_now", "_queue", "_sequence", "_active", "observer")

    def __init__(self):
        self._now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._active: int = 0  # number of unfinished processes
        self.observer: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def event(self) -> Event:
        """Create a fresh one-shot :class:`Event` bound to this engine."""
        return Event(self)

    def add_process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a process starting at the current time."""
        process = Process(self, generator, name=name)
        self._active += 1
        if self.observer is not None:
            self.observer.process_scheduled(process)
        self._schedule_resume(process, None)
        return process

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback()`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"negative schedule delay: {delay!r}")
        heapq.heappush(self._queue, (self._now + delay, next(self._sequence), callback))

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final simulation time.
        """
        queue = self._queue
        heappop = heapq.heappop
        if until is None:
            # Hot loop of every loaded run: no bound check, hoisted lookups.
            while queue:
                entry = heappop(queue)
                self._now = entry[0]
                entry[2]()
            return self._now
        while queue:
            time = queue[0][0]
            if time > until:
                self._now = until
                return self._now
            entry = heappop(queue)
            self._now = time
            entry[2]()
        self._now = max(self._now, until)
        return self._now

    # -- process machinery -------------------------------------------------

    def _schedule_resume(self, process: Process, value: Any, delay: float = 0.0) -> None:
        self.schedule(delay, lambda: self._resume(process, value))

    def _resume(self, process: Process, value: Any) -> None:
        if process.finished:
            return
        if self.observer is not None:
            self.observer.process_resumed(process)
        try:
            if process._pending_interrupt is not None:
                interrupt, process._pending_interrupt = process._pending_interrupt, None
                command = process.generator.throw(interrupt)
            else:
                command = process.generator.send(value)
        except StopIteration as stop:
            self._finish(process, stop.value)
            return
        except Interrupt:
            # Process chose not to catch its interrupt: treat as completion.
            self._finish(process, None)
            return
        self._dispatch(process, command)

    def _finish(self, process: Process, result: Any) -> None:
        process.finished = True
        process.result = result
        self._active -= 1
        if self.observer is not None:
            self.observer.process_finished(process)
        joiners, process._joiners = process._joiners, []
        for joiner in joiners:
            self._schedule_resume(joiner, result)

    def _dispatch(self, process: Process, command: Any) -> None:
        if isinstance(command, Timeout):
            self._schedule_resume(process, None, delay=command.delay)
        elif isinstance(command, Put):
            command.store._put(process, command.item)
        elif isinstance(command, Get):
            command.store._get(process)
        elif isinstance(command, Request):
            command.resource._request(process)
        elif isinstance(command, Release):
            command.resource._release(process)
        elif isinstance(command, Event):
            if command.triggered:
                self._schedule_resume(process, command.value)
            else:
                command._add_waiter(process)
        elif isinstance(command, Process):
            if command.finished:
                self._schedule_resume(process, command.result)
            else:
                command._joiners.append(process)
        else:
            raise SimulationError(f"process {process.name} yielded unsupported value: {command!r}")


def drain(iterable: Iterable) -> None:
    """Exhaust an iterable, discarding values (helper for tests)."""
    for __ in iterable:
        pass
