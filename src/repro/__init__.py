"""SpeedyBox reproduction: low-latency NFV service chains with cross-NF
runtime consolidation (Jiang et al., ICDCS 2019).

Quickstart::

    from repro import SpeedyBox, ServiceChain, BessPlatform
    from repro.nf import IPFilter, Monitor
    from repro.traffic import FlowSpec, TrafficGenerator

    chain = [IPFilter("fw"), Monitor("mon")]
    platform = BessPlatform(SpeedyBox(chain))
    for packet in TrafficGenerator([FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1234, 80, packets=10)]):
        platform.process(packet)
    print(platform.stats.summary())

Package layout: ``repro.core`` (Local/Global MAT, Event Table,
classifier - the paper's contribution), ``repro.nf`` (Snort, Maglev,
IPFilter, Monitor, MazuNAT, ...), ``repro.platform`` (BESS and OpenNetVM
models + cycle-cost model), ``repro.sim`` (discrete-event engine),
``repro.net`` (packets), ``repro.traffic`` (workloads), ``repro.stats``
(measurement), ``repro.obs`` (metrics registry + packet-path tracing —
see docs/observability.md).
"""

from repro.core import ServiceChain, SpeedyBox
from repro.obs import MetricsRegistry, PacketTracer
from repro.platform import BessPlatform, CostModel, OpenNetVMPlatform

__version__ = "1.4.0"

__all__ = [
    "BessPlatform",
    "CostModel",
    "MetricsRegistry",
    "OpenNetVMPlatform",
    "PacketTracer",
    "ServiceChain",
    "SpeedyBox",
    "__version__",
]
