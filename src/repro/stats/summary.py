"""Summary statistics: percentiles, means, CDFs.

Self-contained (no numpy dependency) so the core library stays pure; the
implementations use the standard nearest-rank percentile definition.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def percentile_sorted(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an *already sorted* sequence.

    The sort is the expensive part of a percentile query; callers that
    cache a sorted sample (e.g. ``LoadResult``) use this entry point to
    answer many percentile queries off one sort.
    """
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of range: {fraction}")
    if fraction == 0.0:
        return ordered[0]
    rank = math.ceil(fraction * len(ordered))
    return ordered[max(0, rank - 1)]


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile; ``fraction`` in [0, 1]."""
    return percentile_sorted(sorted(values), fraction)


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """The empirical CDF as (value, cumulative fraction) steps."""
    if not values:
        return []
    ordered = sorted(values)
    total = len(ordered)
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / total)
        else:
            points.append((value, index / total))
    return points


class Distribution:
    """An accumulating sample with summary accessors."""

    def __init__(self, values: Iterable[float] = ()):
        self._values: List[float] = list(values)

    def add(self, value: float) -> None:
        self._values.append(value)

    def extend(self, values: Iterable[float]) -> None:
        self._values.extend(values)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            raise ValueError("mean of empty distribution")
        return sum(self._values) / len(self._values)

    @property
    def minimum(self) -> float:
        return min(self._values)

    @property
    def maximum(self) -> float:
        return max(self._values)

    def p(self, fraction: float) -> float:
        return percentile(self._values, fraction)

    @property
    def p50(self) -> float:
        return self.p(0.50)

    @property
    def p90(self) -> float:
        return self.p(0.90)

    @property
    def p99(self) -> float:
        return self.p(0.99)

    def stdev(self) -> float:
        if len(self._values) < 2:
            return 0.0
        mean = self.mean
        variance = sum((v - mean) ** 2 for v in self._values) / (len(self._values) - 1)
        return math.sqrt(variance)

    def cdf(self) -> List[Tuple[float, float]]:
        return cdf_points(self._values)

    def histogram(self, bins: int = 10) -> List[Tuple[float, float, int]]:
        """Equal-width histogram: (bin_lo, bin_hi, count) triples.

        The final bin's upper edge is inclusive so the maximum lands in
        the last bucket.
        """
        if bins <= 0:
            raise ValueError(f"bins must be positive, got {bins!r}")
        if not self._values:
            return []
        lo, hi = self.minimum, self.maximum
        if lo == hi:
            return [(lo, hi, len(self._values))]
        width = (hi - lo) / bins
        counts = [0] * bins
        for value in self._values:
            index = min(bins - 1, int((value - lo) / width))
            counts[index] += 1
        return [
            (lo + i * width, lo + (i + 1) * width, counts[i]) for i in range(bins)
        ]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(len(self._values)),
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        if not self._values:
            return "<Distribution empty>"
        return f"<Distribution n={len(self)} p50={self.p50:.3g} mean={self.mean:.3g}>"
