"""Measurement utilities: distributions, CDFs, tables, LOC accounting."""

from repro.stats.comparison import Comparison, compare, comparison_rows
from repro.stats.loc import InstrumentationReport, count_instrumentation, integration_table
from repro.stats.metrics_view import render_families, render_metrics, snapshot_rows
from repro.stats.summary import Distribution, cdf_points, percentile, percentile_sorted
from repro.stats.tables import format_series, format_table

__all__ = [
    "Comparison",
    "Distribution",
    "InstrumentationReport",
    "cdf_points",
    "compare",
    "comparison_rows",
    "count_instrumentation",
    "format_series",
    "format_table",
    "integration_table",
    "percentile",
    "percentile_sorted",
    "render_families",
    "render_metrics",
    "snapshot_rows",
]
