"""Structured comparison of two latency/flow-time distributions.

The evaluation repeatedly answers one question: *by how much did
SpeedyBox improve this metric's distribution?*  :func:`compare` packages
the answer: per-percentile reductions, mean reduction, and a stochastic
dominance check (the variant is better everywhere, not just at p50 —
what Fig. 9's CDFs show visually).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.stats.summary import Distribution, percentile

DEFAULT_FRACTIONS = (0.10, 0.50, 0.90, 0.99)


@dataclass
class Comparison:
    """Baseline-vs-variant summary (positive reduction = variant wins)."""

    baseline_count: int
    variant_count: int
    reductions_pct: Dict[float, float] = field(default_factory=dict)
    mean_reduction_pct: float = 0.0
    #: variant's empirical CDF lies at-or-left of the baseline's at every
    #: checked percentile (first-order stochastic dominance, sampled)
    dominates: bool = False

    def reduction_at(self, fraction: float) -> float:
        return self.reductions_pct[fraction]

    def __str__(self) -> str:
        parts = [
            f"p{int(fraction * 100)}: -{reduction:.1f}%"
            for fraction, reduction in sorted(self.reductions_pct.items())
        ]
        dominance = "dominates" if self.dominates else "crosses baseline"
        return f"<Comparison {'  '.join(parts)}  mean: -{self.mean_reduction_pct:.1f}% ({dominance})>"


def compare(
    baseline: Distribution,
    variant: Distribution,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    dominance_grid: int = 50,
) -> Comparison:
    """Compare ``variant`` against ``baseline`` (lower is better)."""
    if not len(baseline) or not len(variant):
        raise ValueError("both distributions need samples")
    reductions: Dict[float, float] = {}
    for fraction in fractions:
        base_value = baseline.p(fraction)
        if base_value <= 0:
            raise ValueError(f"baseline percentile p{fraction} is non-positive")
        reductions[fraction] = 100.0 * (1.0 - variant.p(fraction) / base_value)

    mean_reduction = 100.0 * (1.0 - variant.mean / baseline.mean)

    base_values = baseline.values
    variant_values = variant.values
    dominates = all(
        percentile(variant_values, i / dominance_grid)
        <= percentile(base_values, i / dominance_grid) + 1e-12
        for i in range(1, dominance_grid + 1)
    )
    return Comparison(
        baseline_count=len(baseline),
        variant_count=len(variant),
        reductions_pct=reductions,
        mean_reduction_pct=mean_reduction,
        dominates=dominates,
    )


def comparison_rows(comparison: Comparison) -> Tuple[Tuple[str, str], ...]:
    """(metric, value) rows for table rendering."""
    rows = [
        (f"p{int(fraction * 100)} reduction", f"-{reduction:.1f}%")
        for fraction, reduction in sorted(comparison.reductions_pct.items())
    ]
    rows.append(("mean reduction", f"-{comparison.mean_reduction_pct:.1f}%"))
    rows.append(("stochastic dominance", "yes" if comparison.dominates else "no"))
    return tuple(rows)
