"""Table II accounting: lines of code added to integrate NFs.

The paper reports how many lines each NF needed to participate in
SpeedyBox (Snort: +27, Maglev: +23, ...).  Our NFs carry the same split:
their processing logic is ordinary NF code, and the integration consists
solely of calls into the instrumentation API (``api.add_header_action``,
``api.add_state_function``, ``api.register_event``, ``api.nf_extract_fid``).

This module measures that split honestly from the AST: *integration LOC*
is the number of source lines spanned by statements whose call graph
touches the ``api`` parameter, and *core LOC* is every other code line
(excluding blanks, comments and docstrings).
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass
from typing import List, Set, Tuple

_API_CALL_NAMES = {
    "add_header_action",
    "add_state_function",
    "register_event",
    "nf_extract_fid",
    "localmat_add_HA",
    "localmat_add_SF",
}


@dataclass
class InstrumentationReport:
    """LOC split of one NF source module."""

    name: str
    core_loc: int
    added_loc: int

    @property
    def overhead_percent(self) -> float:
        if self.core_loc == 0:
            return 0.0
        return 100.0 * self.added_loc / self.core_loc

    def as_row(self) -> Tuple[str, int, str]:
        return (self.name, self.core_loc, f"{self.added_loc} (+{self.overhead_percent:.1f}%)")


class _ApiCallCollector(ast.NodeVisitor):
    """Collect the line numbers of statements that call the api parameter."""

    def __init__(self):
        self.api_lines: Set[int] = set()

    @staticmethod
    def _is_api_call(node: ast.Call) -> bool:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr not in _API_CALL_NAMES:
            return False
        target = func.value
        return isinstance(target, ast.Name) and target.id == "api"

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_api_call(node):
            end = getattr(node, "end_lineno", node.lineno)
            self.api_lines.update(range(node.lineno, end + 1))
        self.generic_visit(node)


def _docstring_lines(tree: ast.AST) -> Set[int]:
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            body = getattr(node, "body", [])
            if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
                if isinstance(body[0].value.value, str):
                    end = getattr(body[0], "end_lineno", body[0].lineno)
                    lines.update(range(body[0].lineno, end + 1))
    return lines


def count_instrumentation(source: str, name: str = "") -> InstrumentationReport:
    """Split ``source`` into core vs instrumentation LOC."""
    tree = ast.parse(source)
    collector = _ApiCallCollector()
    collector.visit(tree)
    doc_lines = _docstring_lines(tree)

    code_lines: Set[int] = set()
    for number, text in enumerate(source.splitlines(), start=1):
        stripped = text.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if number in doc_lines:
            continue
        code_lines.add(number)

    added = len(code_lines & collector.api_lines)
    core = len(code_lines) - added
    return InstrumentationReport(name=name, core_loc=core, added_loc=added)


def count_instrumentation_of(obj, name: str = "") -> InstrumentationReport:
    """LOC split of the module defining ``obj`` (class or function)."""
    module = inspect.getmodule(obj)
    if module is None:
        raise ValueError(f"cannot locate module for {obj!r}")
    source = inspect.getsource(module)
    return count_instrumentation(source, name=name or obj.__name__)


def combine(name: str, reports: List[InstrumentationReport]) -> InstrumentationReport:
    """Aggregate the LOC split of an NF spread over several modules."""
    return InstrumentationReport(
        name=name,
        core_loc=sum(report.core_loc for report in reports),
        added_loc=sum(report.added_loc for report in reports),
    )


def integration_table() -> List[InstrumentationReport]:
    """The Table II rows for this repo's five paper NFs.

    Snort's core functionality spans four modules (rule parser, pattern
    engine, detection engine, NF wrapper); its instrumentation lives only
    in the wrapper — exactly the paper's structure, where 27 lines were
    added to the 1129-line Snort core.
    """
    from repro.nf import snort as snort_pkg
    from repro.nf.ipfilter import IPFilter
    from repro.nf.maglev import MaglevLoadBalancer
    from repro.nf.mazunat import MazuNAT
    from repro.nf.monitor import Monitor
    from repro.nf.snort import aho_corasick, engine, nf as snort_nf, rules

    snort_parts = [
        count_instrumentation(inspect.getsource(module), name=module.__name__)
        for module in (rules, aho_corasick, engine, snort_nf)
    ]
    subjects = [
        ("Maglev", MaglevLoadBalancer),
        ("IPFilter", IPFilter),
        ("Monitor", Monitor),
        ("MazuNAT", MazuNAT),
    ]
    table = [combine("Snort", snort_parts)]
    table.extend(count_instrumentation_of(cls, name) for name, cls in subjects)
    return table
