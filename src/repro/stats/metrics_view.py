"""Rendering metrics snapshots as text tables.

:meth:`repro.obs.MetricsRegistry.snapshot` produces a flat
``name{label=value} -> value`` dict; these helpers turn one into the
same aligned, diff-friendly text the benchmark tables use, optionally
grouped by metric family.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.stats.tables import format_table


def _family(key: str) -> str:
    return key.split("{", 1)[0]


def snapshot_rows(snapshot: Dict[str, float]) -> List[Tuple[str, float]]:
    """Snapshot entries sorted by family then full series name."""
    return sorted(snapshot.items(), key=lambda item: (_family(item[0]), item[0]))


def render_metrics(snapshot: Dict[str, float], title: str = "metrics") -> str:
    """A metrics snapshot as an aligned two-column text table."""
    if not snapshot:
        return f"{title}\n(no metrics recorded)"
    return format_table(["metric", "value"], snapshot_rows(snapshot), title=title)


def render_families(snapshot: Dict[str, float]) -> str:
    """One table per metric family, blank-line separated."""
    families: Dict[str, Dict[str, float]] = {}
    for key, value in snapshot.items():
        families.setdefault(_family(key), {})[key] = value
    blocks = [
        render_metrics(series, title=family)
        for family, series in sorted(families.items())
    ]
    return "\n\n".join(blocks)
