"""Plain-text rendering for the benchmark harness.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.3g}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = "") -> str:
    """A fixed-width table with a header rule."""
    rendered_rows: List[List[str]] = [[_render(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line([str(h) for h in headers]))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_series(
    name: str,
    points: Sequence[Tuple[Cell, Cell]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """One figure series as aligned (x, y) pairs."""
    return format_table([x_label, y_label], points, title=f"series: {name}")
