"""Optional numpy acceleration with a pure-Python fallback.

The core library has no hard dependencies (``pyproject.toml`` keeps
``dependencies = []``); numpy rides along as the ``[fast]`` extra.  Every
columnar consumer — the batch traffic generator, the batch fast-path
lane, the vectorized Lindley replay — imports ``np`` from here and
guards array-only code on :data:`HAVE_NUMPY`.  When numpy is absent the
same call sites fall back to ``array``-module columns and plain loops:
slower, never wrong (CI's test matrix runs without numpy on purpose).

Set ``REPRO_NO_NUMPY=1`` to force the fallback with numpy installed —
that is how the import-guard test exercises both halves on one machine.
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable, List, Sequence

if os.environ.get("REPRO_NO_NUMPY"):
    np = None
else:
    try:
        import numpy as np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
        np = None

HAVE_NUMPY = np is not None

#: typecodes for the array-module fallback columns
_I64 = "q"
_F64 = "d"
_U8 = "B"


def int_column(values: Iterable[int] = ()):
    """A growable signed-integer column (int64 either way)."""
    if HAVE_NUMPY:
        return np.fromiter(values, dtype=np.int64)
    return array(_I64, values)


def int_zeros(count: int):
    if HAVE_NUMPY:
        return np.zeros(count, dtype=np.int64)
    return array(_I64, bytes(8 * count))


def int_full(count: int, value: int):
    if HAVE_NUMPY:
        return np.full(count, value, dtype=np.int64)
    return array(_I64, [value]) * count


def float_column(values: Iterable[float] = ()):
    if HAVE_NUMPY:
        return np.fromiter(values, dtype=np.float64)
    return array(_F64, values)


def byte_column(values: Iterable[int] = ()):
    if HAVE_NUMPY:
        return np.fromiter(values, dtype=np.uint8)
    return array(_U8, values)


def byte_zeros(count: int):
    if HAVE_NUMPY:
        return np.zeros(count, dtype=np.uint8)
    return array(_U8, bytes(count))


def as_list(column) -> List:
    """Materialize any column as a plain Python list."""
    if HAVE_NUMPY and isinstance(column, np.ndarray):
        return column.tolist()
    return list(column)


def take(column, indices: Sequence[int]):
    """Gather ``column[indices]`` as a plain list (fallback-safe)."""
    if HAVE_NUMPY and isinstance(column, np.ndarray):
        return column[indices]
    return [column[i] for i in indices]
