"""Flow-aware packet generation.

A :class:`FlowSpec` declares one flow: its five-tuple, packet count,
payload policy and TCP lifecycle (SYN handshake, FIN teardown).
:class:`TrafficGenerator` expands specs into packet sequences —
sequentially flow-by-flow or interleaved round-robin, both
deterministic — standing in for the paper's DPDK packet generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Union

from repro.net.flow import FiveTuple, PROTO_TCP, PROTO_UDP
from repro.net.headers import TCP_ACK, TCP_FIN, TCP_SYN
from repro.net.packet import Packet

PayloadPolicy = Union[bytes, Callable[[int], bytes]]


@dataclass
class FlowSpec:
    """One flow's worth of traffic.

    ``packets`` counts *data* packets; the SYN and FIN packets implied by
    ``handshake``/``fin`` come on top.  ``payload`` is either a fixed
    byte string for every packet or a callable mapping the data-packet
    index (0-based) to that packet's payload.
    """

    five_tuple: FiveTuple
    packets: int = 1
    payload: PayloadPolicy = b""
    handshake: bool = False
    fin: bool = False

    @classmethod
    def tcp(
        cls,
        src_ip: str,
        dst_ip: str,
        src_port: int,
        dst_port: int,
        packets: int = 1,
        payload: PayloadPolicy = b"",
        handshake: bool = False,
        fin: bool = False,
    ) -> "FlowSpec":
        return cls(
            FiveTuple.make(src_ip, dst_ip, src_port, dst_port, PROTO_TCP),
            packets=packets,
            payload=payload,
            handshake=handshake,
            fin=fin,
        )

    @classmethod
    def udp(
        cls,
        src_ip: str,
        dst_ip: str,
        src_port: int,
        dst_port: int,
        packets: int = 1,
        payload: PayloadPolicy = b"",
    ) -> "FlowSpec":
        return cls(
            FiveTuple.make(src_ip, dst_ip, src_port, dst_port, PROTO_UDP),
            packets=packets,
            payload=payload,
        )

    def payload_for(self, index: int) -> bytes:
        if callable(self.payload):
            return self.payload(index)
        return self.payload

    @property
    def total_packets(self) -> int:
        extra = (1 if self.handshake else 0) + (1 if self.fin else 0)
        return self.packets + extra


def packets_for_flow(spec: FlowSpec) -> List[Packet]:
    """Expand one flow spec into its packet sequence."""
    if spec.packets < 0:
        raise ValueError(f"negative packet count: {spec.packets}")
    is_tcp = spec.five_tuple.protocol == PROTO_TCP
    packets: List[Packet] = []
    seq = 1000

    if spec.handshake:
        if not is_tcp:
            raise ValueError("handshake requested for a non-TCP flow")
        packets.append(
            Packet.from_five_tuple(spec.five_tuple, tcp_flags=TCP_SYN, seq=seq)
        )
        seq += 1

    for index in range(spec.packets):
        payload = spec.payload_for(index)
        flags = TCP_ACK
        packet = Packet.from_five_tuple(
            spec.five_tuple, payload=payload, tcp_flags=flags, seq=seq
        )
        packets.append(packet)
        seq += max(len(payload), 1)

    if spec.fin:
        if not is_tcp:
            raise ValueError("fin requested for a non-TCP flow")
        packets.append(
            Packet.from_five_tuple(spec.five_tuple, tcp_flags=TCP_FIN | TCP_ACK, seq=seq)
        )
    return packets


class TrafficGenerator:
    """Deterministic packet stream over a set of flow specs.

    Interleave modes: ``sequential`` (flow by flow), ``round_robin`` (one
    packet per live flow per turn), ``shuffled`` (seeded random merge —
    per-flow packet order always preserved, global order randomised).
    """

    def __init__(self, flows: Sequence[FlowSpec], interleave: str = "sequential", seed: int = 1):
        if interleave not in ("sequential", "round_robin", "shuffled"):
            raise ValueError(f"unknown interleave mode {interleave!r}")
        self.flows: List[FlowSpec] = list(flows)
        self.interleave = interleave
        self.seed = seed

    @property
    def total_packets(self) -> int:
        return sum(spec.total_packets for spec in self.flows)

    def __iter__(self) -> Iterator[Packet]:
        per_flow = [packets_for_flow(spec) for spec in self.flows]
        if self.interleave == "sequential":
            for sequence in per_flow:
                yield from sequence
            return
        if self.interleave == "shuffled":
            import random

            rng = random.Random(self.seed)
            cursors = [0] * len(per_flow)
            live = [i for i, seq in enumerate(per_flow) if seq]
            while live:
                flow_index = rng.choice(live)
                yield per_flow[flow_index][cursors[flow_index]]
                cursors[flow_index] += 1
                if cursors[flow_index] == len(per_flow[flow_index]):
                    live.remove(flow_index)
            return
        # Round-robin: one packet from each live flow per turn, preserving
        # per-flow order — the classic pktgen multi-flow pattern.
        cursors = [0] * len(per_flow)
        remaining = sum(len(sequence) for sequence in per_flow)
        while remaining:
            for flow_index, sequence in enumerate(per_flow):
                cursor = cursors[flow_index]
                if cursor < len(sequence):
                    yield sequence[cursor]
                    cursors[flow_index] = cursor + 1
                    remaining -= 1

    def packets(self) -> List[Packet]:
        return list(self)


def clone_packets(packets: Iterable[Packet]) -> List[Packet]:
    """Deep-copy a packet list so baseline and SpeedyBox runs can consume
    byte-identical but independent streams."""
    return [packet.clone() for packet in packets]
