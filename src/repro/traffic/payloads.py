"""Payload synthesis against a Snort rule set.

The paper replays an anonymised datacenter trace whose payloads are null,
so it "synthesizes the testing traffic with customized payloads according
to the inspection rules in Snort."  This module does the same: given a
rule set, it fabricates payloads that (a) fully match a chosen rule —
every ``content`` embedded in order, and the ``pcre`` satisfied when the
rule was authored content-first — or (b) are verifiably benign (no rule's
content set occurs).
"""

from __future__ import annotations

import random
import string
from typing import List, Optional, Sequence

from repro.nf.snort.rules import RuleAction, SnortRule

_FILLER_ALPHABET = (string.ascii_uppercase + string.digits).encode()


class PayloadSynthesizer:
    """Deterministic payload factory for a rule set."""

    def __init__(self, rules: Sequence[SnortRule], seed: int = 7):
        self.rules: List[SnortRule] = list(rules)
        self._random = random.Random(seed)

    def _filler(self, length: int) -> bytes:
        return bytes(self._random.choice(_FILLER_ALPHABET) for __ in range(length))

    def _is_benign(self, payload: bytes) -> bool:
        for rule in self.rules:
            if rule.contents and rule.payload_matches(payload):
                return False
        return True

    def benign(self, length: int = 64) -> bytes:
        """A payload no content-bearing rule matches.

        Filler is drawn from uppercase+digits while rule contents in
        practice contain lowercase/punctuation; a verification pass
        guarantees the property regardless, retrying on (unlikely)
        accidental hits.
        """
        for __ in range(64):
            payload = self._filler(length)
            if self._is_benign(payload):
                return payload
        raise RuntimeError(
            "could not synthesise a benign payload; rule contents overlap the filler alphabet"
        )

    def matching(self, rule: SnortRule, length: int = 64) -> bytes:
        """A payload that fully matches ``rule``'s payload options."""
        parts: List[bytes] = []
        for content in rule.contents:
            parts.append(content.pattern)
        body = b"-".join(parts) if parts else b""
        if len(body) < length:
            padding = self._filler(length - len(body) - (1 if body else 0))
            payload = body + (b"-" if body else b"") + padding
        else:
            payload = body
        if not rule.payload_matches(payload):
            raise ValueError(
                f"rule sid={rule.sid} cannot be satisfied by embedding its contents "
                "(pcre constrains beyond contents); craft the payload manually"
            )
        return payload

    def rule_with_action(self, action: RuleAction) -> SnortRule:
        """The first rule carrying ``action`` (for branch-coverage tests)."""
        for rule in self.rules:
            if rule.action is action:
                return rule
        raise LookupError(f"rule set has no {action.value} rule")

    def matching_action(self, action: RuleAction, length: int = 64) -> bytes:
        return self.matching(self.rule_with_action(action), length=length)

    def near_miss(self, rule: SnortRule, length: int = 64) -> bytes:
        """A payload one byte away from matching ``rule``.

        Embeds every content except the last, and the last with its
        final byte flipped — the hardest negative for a detection engine
        (everything matches except one byte).  Requires a rule with at
        least one content whose pattern is ≥ 2 bytes.
        """
        if not rule.contents:
            raise ValueError(f"rule sid={rule.sid} has no contents to near-miss")
        last = rule.contents[-1].pattern
        if len(last) < 2:
            raise ValueError("near-miss needs a final content of at least 2 bytes")
        corrupted = last[:-1] + bytes([last[-1] ^ 0x01])
        parts = [content.pattern for content in rule.contents[:-1]] + [corrupted]
        body = b"-".join(parts)
        if len(body) < length:
            body = body + b"-" + self._filler(length - len(body) - 1)
        if rule.payload_matches(body):
            raise RuntimeError(
                f"near-miss for sid={rule.sid} accidentally matches; "
                "the corrupted byte collided with another occurrence"
            )
        return body

    def mixed_stream(
        self,
        count: int,
        malicious_fraction: float = 0.2,
        length: int = 64,
        rule: Optional[SnortRule] = None,
    ) -> List[bytes]:
        """``count`` payloads with the given fraction matching a rule."""
        if not 0.0 <= malicious_fraction <= 1.0:
            raise ValueError(f"fraction out of range: {malicious_fraction}")
        if rule is None and self.rules:
            candidates = [r for r in self.rules if r.contents]
            rule = candidates[0] if candidates else None
        payloads = []
        for index in range(count):
            malicious = self._random.random() < malicious_fraction and rule is not None
            payloads.append(self.matching(rule, length) if malicious else self.benign(length))
        return payloads
