"""Workload generation.

- :mod:`repro.traffic.generator` — flow-aware packet generator (the
  substitution for the paper's DPDK pktgen): TCP handshake/FIN semantics,
  configurable payloads, deterministic interleavings.
- :mod:`repro.traffic.datacenter` — a synthetic model of the Benson et
  al. IMC'10 datacenter traces the paper replays for Fig. 9 (heavy-tailed
  flow sizes, mice/elephant mix), with payloads synthesised to exercise
  Snort rules exactly as the paper does ("since the payloads in the trace
  are null for anonymization, we synthesize the testing traffic with
  customized payloads according to the inspection rules in Snort").
- :mod:`repro.traffic.payloads` — the payload synthesiser.
"""

from repro.traffic.datacenter import DatacenterTraceConfig, DatacenterTraceGenerator
from repro.traffic.generator import FlowSpec, TrafficGenerator, packets_for_flow
from repro.traffic.payloads import PayloadSynthesizer

__all__ = [
    "DatacenterTraceConfig",
    "DatacenterTraceGenerator",
    "FlowSpec",
    "PayloadSynthesizer",
    "TrafficGenerator",
    "packets_for_flow",
]
