"""Workload generation.

- :mod:`repro.traffic.generator` — flow-aware packet generator (the
  substitution for the paper's DPDK pktgen): TCP handshake/FIN semantics,
  configurable payloads, deterministic interleavings.
- :mod:`repro.traffic.datacenter` — a synthetic model of the Benson et
  al. IMC'10 datacenter traces the paper replays for Fig. 9 (heavy-tailed
  flow sizes, mice/elephant mix), with payloads synthesised to exercise
  Snort rules exactly as the paper does ("since the payloads in the trace
  are null for anonymization, we synthesize the testing traffic with
  customized payloads according to the inspection rules in Snort").
- :mod:`repro.traffic.payloads` — the payload synthesiser.
- :mod:`repro.traffic.columnar` — struct-of-arrays :class:`PacketBatch`
  for the batch engine (five-tuple/size/timestamp columns, no per-packet
  objects), with :func:`uniform_batch` for vectorized million-flow
  workloads and :func:`batch_from_specs` mirroring the generator.
"""

from repro.traffic.columnar import (
    LazyPacketView,
    PacketBatch,
    batch_from_specs,
    uniform_batch,
)
from repro.traffic.datacenter import DatacenterTraceConfig, DatacenterTraceGenerator
from repro.traffic.generator import FlowSpec, TrafficGenerator, packets_for_flow
from repro.traffic.payloads import PayloadSynthesizer

__all__ = [
    "DatacenterTraceConfig",
    "DatacenterTraceGenerator",
    "FlowSpec",
    "LazyPacketView",
    "PacketBatch",
    "PayloadSynthesizer",
    "TrafficGenerator",
    "batch_from_specs",
    "packets_for_flow",
    "uniform_batch",
]
