"""Columnar traffic: struct-of-arrays packet batches (batch engine, part 1).

A :class:`PacketBatch` is the column-oriented counterpart of a
``TrafficGenerator`` packet list: per-flow five-tuple columns plus
per-packet (flow index, kind, ordinal, seq, size, timestamp) columns —
no :class:`~repro.net.packet.Packet` objects anywhere.  The batch
fast-path lane (``repro.core.fastpath.BatchLane``) consumes the columns
directly; any packet the lane must run through the interpreted runtime
(initial packets, FIN/RST, fast-path misses) is materialized on demand
by :meth:`PacketBatch.materialize`, byte-identical to what the per-packet
generator would have produced — that identity is what makes the legacy
per-packet path a valid equivalence oracle for batch runs.

Builders:

- :func:`uniform_batch` — vectorized synthesis of N identical-shape
  flows (the millions-of-flows benchmark path; no per-flow Python
  objects are created, so 1M flows cost three int64 columns);
- :func:`batch_from_specs` — expand :class:`~repro.traffic.generator.FlowSpec`
  lists with the same interleave modes as :class:`TrafficGenerator`
  (``sequential`` / ``round_robin`` / ``shuffled``), used by the
  equivalence and property tests.

Columns use numpy when available and ``array``-module storage otherwise
(see :mod:`repro.vector`); every consumer treats them as opaque
integer/float sequences.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Union

from repro import vector as vec
from repro.net.flow import FiveTuple, PROTO_TCP, PROTO_UDP
from repro.net.headers import TCP_ACK, TCP_FIN, TCP_SYN
from repro.net.packet import Packet
from repro.traffic.generator import FlowSpec, PayloadPolicy

#: per-packet kind column values
KIND_SYN = 0
KIND_DATA = 1
KIND_FIN = 2

_BASE_SEQ = 1000


class PacketBatch:
    """A struct-of-arrays batch of packets over a columnar flow table."""

    __slots__ = (
        "flow_src_ip",
        "flow_dst_ip",
        "flow_src_port",
        "flow_dst_port",
        "flow_proto",
        "flow_handshake",
        "_payloads",
        "_uniform_payload",
        "flow_index",
        "kind",
        "ordinal",
        "seq",
        "size",
        "timestamp_ns",
        "_five_tuples",
        "_ft_getters",
    )

    def __init__(
        self,
        flow_src_ip,
        flow_dst_ip,
        flow_src_port,
        flow_dst_port,
        flow_proto,
        flow_handshake,
        flow_index,
        kind,
        ordinal,
        seq,
        size,
        timestamp_ns=None,
        payloads: Optional[List[PayloadPolicy]] = None,
        uniform_payload: bytes = b"",
    ):
        self.flow_src_ip = flow_src_ip
        self.flow_dst_ip = flow_dst_ip
        self.flow_src_port = flow_src_port
        self.flow_dst_port = flow_dst_port
        self.flow_proto = flow_proto
        self.flow_handshake = flow_handshake
        self._payloads = payloads
        self._uniform_payload = uniform_payload
        self.flow_index = flow_index
        self.kind = kind
        self.ordinal = ordinal
        self.seq = seq
        self.size = size
        self.timestamp_ns = timestamp_ns
        #: lazily built FiveTuple cache for flows the scalar path touches
        self._five_tuples: dict = {}
        self._ft_getters = None

    # -- shape ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.flow_index)

    @property
    def flow_count(self) -> int:
        return len(self.flow_src_ip)

    def five_tuple_of(self, flow: int) -> FiveTuple:
        """The flow's five-tuple (interned per batch)."""
        cache = self._five_tuples
        cached = cache.get(flow)
        if cached is None:
            if len(cache) > 65536:
                # Bounded interning: at millions of scalar-touched flows
                # the cache would grow without limit; rebuilt tuples are
                # value-equal, which is all any consumer relies on.
                cache.clear()
            getters = self._ft_getters
            if getters is None:
                # ndarray.item(i) yields a Python scalar in one C call —
                # noticeably cheaper per admission than int(arr[i]); list
                # columns already hold Python ints.
                getters = self._ft_getters = tuple(
                    column.item if hasattr(column, "item") else column.__getitem__
                    for column in (
                        self.flow_src_ip,
                        self.flow_dst_ip,
                        self.flow_src_port,
                        self.flow_dst_port,
                        self.flow_proto,
                    )
                )
            cached = FiveTuple(
                getters[0](flow),
                getters[1](flow),
                getters[2](flow),
                getters[3](flow),
                getters[4](flow),
            )
            cache[flow] = cached
        return cached

    def payload_for(self, flow: int, data_index: int) -> bytes:
        if self._payloads is None:
            return self._uniform_payload
        policy = self._payloads[flow]
        if callable(policy):
            return policy(data_index)
        return policy

    # -- materialization -----------------------------------------------------

    def materialize(self, index: int) -> Packet:
        """Build packet ``index`` exactly as ``TrafficGenerator`` would."""
        flow = int(self.flow_index[index])
        five_tuple = self.five_tuple_of(flow)
        kind = self.kind[index]
        ts = 0.0 if self.timestamp_ns is None else float(self.timestamp_ns[index])
        if kind == KIND_SYN:
            packet = Packet.from_five_tuple(
                five_tuple, tcp_flags=TCP_SYN, seq=int(self.seq[index])
            )
        elif kind == KIND_FIN:
            packet = Packet.from_five_tuple(
                five_tuple, tcp_flags=TCP_FIN | TCP_ACK, seq=int(self.seq[index])
            )
        else:
            data_index = int(self.ordinal[index]) - int(self.flow_handshake[flow])
            packet = Packet.from_five_tuple(
                five_tuple,
                payload=self.payload_for(flow, data_index),
                tcp_flags=TCP_ACK,
                seq=int(self.seq[index]),
            )
        if ts:
            packet.timestamp_ns = ts
        return packet

    def to_packets(self) -> List[Packet]:
        """Materialize the whole batch (tests and small runs only)."""
        return [self.materialize(i) for i in range(len(self))]

    def packet_view(self) -> "LazyPacketView":
        """A sized, iterable view that materializes packets on the fly.

        This is how the legacy per-packet oracle consumes a batch without
        holding tens of millions of Packet objects at once: ``run_load``
        only needs ``len()`` and one forward iteration.
        """
        return LazyPacketView(self)

    # -- sharding (repro.scale) ----------------------------------------------

    def select_flows(self, flow_ids: Sequence[int]) -> "PacketBatch":
        """The sub-batch of the given flows, preserving packet order.

        Flow indices are remapped to the compacted flow table, so the
        result is a self-contained batch (cluster replicas each get one).
        """
        wanted = sorted(set(int(f) for f in flow_ids))
        remap = {flow: new for new, flow in enumerate(wanted)}
        keep = [i for i in range(len(self)) if int(self.flow_index[i]) in remap]
        sub_payloads = None
        if self._payloads is not None:
            sub_payloads = [self._payloads[f] for f in wanted]
        return PacketBatch(
            vec.int_column(int(self.flow_src_ip[f]) for f in wanted),
            vec.int_column(int(self.flow_dst_ip[f]) for f in wanted),
            vec.int_column(int(self.flow_src_port[f]) for f in wanted),
            vec.int_column(int(self.flow_dst_port[f]) for f in wanted),
            vec.byte_column(int(self.flow_proto[f]) for f in wanted),
            vec.byte_column(int(self.flow_handshake[f]) for f in wanted),
            vec.int_column(remap[int(self.flow_index[i])] for i in keep),
            vec.byte_column(int(self.kind[i]) for i in keep),
            vec.int_column(int(self.ordinal[i]) for i in keep),
            vec.int_column(int(self.seq[i]) for i in keep),
            vec.int_column(int(self.size[i]) for i in keep),
            timestamp_ns=(
                None
                if self.timestamp_ns is None
                else vec.float_column(float(self.timestamp_ns[i]) for i in keep)
            ),
            payloads=sub_payloads,
            uniform_payload=self._uniform_payload,
        )


class LazyPacketView:
    """Sized one-packet-at-a-time view over a :class:`PacketBatch`."""

    __slots__ = ("batch",)

    def __init__(self, batch: PacketBatch):
        self.batch = batch

    def __len__(self) -> int:
        return len(self.batch)

    def __getitem__(self, index: int) -> Packet:
        return self.batch.materialize(index)

    def __iter__(self) -> Iterator[Packet]:
        batch = self.batch
        for i in range(len(batch)):
            yield batch.materialize(i)


def _flow_order(specs: Sequence[FlowSpec], interleave: str, seed: int) -> List[int]:
    """Per-packet flow index sequence, mirroring ``TrafficGenerator``."""
    counts = [spec.total_packets for spec in specs]
    order: List[int] = []
    if interleave == "sequential":
        for flow, count in enumerate(counts):
            order.extend([flow] * count)
    elif interleave == "round_robin":
        remaining = list(counts)
        left = sum(remaining)
        while left:
            for flow in range(len(specs)):
                if remaining[flow]:
                    order.append(flow)
                    remaining[flow] -= 1
                    left -= 1
    elif interleave == "shuffled":
        rng = random.Random(seed)
        remaining = list(counts)
        live = [i for i, count in enumerate(remaining) if count]
        while live:
            flow = rng.choice(live)
            order.append(flow)
            remaining[flow] -= 1
            if not remaining[flow]:
                live.remove(flow)
    else:
        raise ValueError(f"unknown interleave mode {interleave!r}")
    return order


def batch_from_specs(
    specs: Sequence[FlowSpec],
    interleave: str = "sequential",
    seed: int = 1,
) -> PacketBatch:
    """Columnar expansion of flow specs (order-identical to the generator)."""
    for spec in specs:
        if spec.packets < 0:
            raise ValueError(f"negative packet count: {spec.packets}")
        is_tcp = spec.five_tuple.protocol == PROTO_TCP
        if spec.handshake and not is_tcp:
            raise ValueError("handshake requested for a non-TCP flow")
        if spec.fin and not is_tcp:
            raise ValueError("fin requested for a non-TCP flow")

    order = _flow_order(specs, interleave, seed)
    cursor = [0] * len(specs)
    kinds: List[int] = []
    ordinals: List[int] = []
    seqs: List[int] = []
    sizes: List[int] = []
    # Per-flow running seq, matching packets_for_flow: SYN consumes 1,
    # each data packet consumes max(len(payload), 1).
    next_seq = [_BASE_SEQ] * len(specs)
    for flow in order:
        spec = specs[flow]
        ordinal = cursor[flow]
        cursor[flow] = ordinal + 1
        handshake = 1 if spec.handshake else 0
        if spec.handshake and ordinal == 0:
            kinds.append(KIND_SYN)
            seqs.append(next_seq[flow])
            sizes.append(0)
            next_seq[flow] += 1
        elif spec.fin and ordinal == spec.total_packets - 1:
            kinds.append(KIND_FIN)
            seqs.append(next_seq[flow])
            sizes.append(0)
        else:
            payload = spec.payload_for(ordinal - handshake)
            kinds.append(KIND_DATA)
            seqs.append(next_seq[flow])
            sizes.append(len(payload))
            next_seq[flow] += max(len(payload), 1)
        ordinals.append(ordinal)

    return PacketBatch(
        vec.int_column(spec.five_tuple.src_ip for spec in specs),
        vec.int_column(spec.five_tuple.dst_ip for spec in specs),
        vec.int_column(spec.five_tuple.src_port for spec in specs),
        vec.int_column(spec.five_tuple.dst_port for spec in specs),
        vec.byte_column(spec.five_tuple.protocol for spec in specs),
        vec.byte_column(1 if spec.handshake else 0 for spec in specs),
        vec.int_column(order),
        vec.byte_column(kinds),
        vec.int_column(ordinals),
        vec.int_column(seqs),
        vec.int_column(sizes),
        payloads=[spec.payload for spec in specs],
    )


def uniform_batch(
    flows: int,
    packets_per_flow: int,
    payload: bytes = b"",
    protocol: Union[int, str] = "udp",
    handshake: bool = False,
    fin: bool = False,
    dst_ip: str = "20.0.0.1",
    dst_port: int = 80,
    src_ip_base: str = "10.0.0.0",
    src_port_base: int = 1024,
    interleave: str = "round_robin",
    block: Optional[int] = None,
) -> PacketBatch:
    """Vectorized synthesis of ``flows`` identical-shape flows.

    Flow ``f`` sends from ``src_ip_base + 1 + f`` (wrapping inside the
    /8) with source port ``src_port_base + f % 60000``; all flows share
    the destination, payload and lifecycle flags.  ``interleave`` is
    ``sequential`` or ``round_robin``; ``block`` limits round-robin
    interleaving to blocks of that many flows (blocks run back to back),
    which is how a bounded-table benchmark keeps its *concurrent* flow
    count at the block size while the *total* flow count scales to
    millions.

    With numpy this builds pure array columns — no per-flow or
    per-packet Python objects; the fallback loops.
    """
    if isinstance(protocol, str):
        protocol = {"udp": PROTO_UDP, "tcp": PROTO_TCP}[protocol]
    if protocol != PROTO_TCP and (handshake or fin):
        raise ValueError("handshake/fin require TCP")
    if interleave not in ("sequential", "round_robin"):
        raise ValueError(f"unknown interleave mode {interleave!r}")
    if block is None or block > flows:
        block = flows if interleave == "round_robin" else 1
    total_per_flow = packets_per_flow + (1 if handshake else 0) + (1 if fin else 0)
    step = max(len(payload), 1)

    from repro.net.addresses import ip_to_int

    src_base = ip_to_int(src_ip_base)
    dst = ip_to_int(dst_ip)

    if vec.HAVE_NUMPY:
        np = vec.np
        f = np.arange(flows, dtype=np.int64)
        # Keep clear of the all-zero host part; wrap inside the /8.
        flow_src_ip = src_base + 1 + (f % ((1 << 24) - 2))
        flow_src_port = src_port_base + (f % 60000)
        flow_dst_ip = np.full(flows, dst, dtype=np.int64)
        flow_dst_port = np.full(flows, dst_port, dtype=np.int64)
        flow_proto = np.full(flows, protocol, dtype=np.uint8)
        flow_handshake = np.full(flows, 1 if handshake else 0, dtype=np.uint8)

        chunks_fi = []
        chunks_ord = []
        for start in range(0, flows, block):
            width = min(block, flows - start)
            if interleave == "sequential" and block == 1:
                fi = np.repeat(np.arange(start, start + width), total_per_flow)
                oi = np.tile(np.arange(total_per_flow, dtype=np.int64), width)
            else:
                # round-robin inside the block: ordinal-major order.
                fi = np.tile(np.arange(start, start + width, dtype=np.int64), total_per_flow)
                oi = np.repeat(np.arange(total_per_flow, dtype=np.int64), width)
            chunks_fi.append(fi)
            chunks_ord.append(oi)
        flow_index = np.concatenate(chunks_fi)
        ordinal = np.concatenate(chunks_ord)

        kind = np.full(len(flow_index), KIND_DATA, dtype=np.uint8)
        data_index = ordinal.copy()
        if handshake:
            kind[ordinal == 0] = KIND_SYN
            data_index = ordinal - 1
        if fin:
            kind[ordinal == total_per_flow - 1] = KIND_FIN
        seq = np.full(len(flow_index), _BASE_SEQ, dtype=np.int64)
        data_mask = kind == KIND_DATA
        hs = 1 if handshake else 0
        seq[data_mask] = _BASE_SEQ + hs + data_index[data_mask] * step
        if fin:
            seq[kind == KIND_FIN] = _BASE_SEQ + hs + packets_per_flow * step
        size = np.where(data_mask, len(payload), 0).astype(np.int64)
        return PacketBatch(
            flow_src_ip,
            flow_dst_ip,
            flow_src_port,
            flow_dst_port,
            flow_proto,
            flow_handshake,
            flow_index,
            kind,
            ordinal,
            seq,
            size,
            uniform_payload=payload,
        )

    # -- pure-Python fallback -------------------------------------------------
    flow_src_ip = vec.int_column(src_base + 1 + (f % ((1 << 24) - 2)) for f in range(flows))
    flow_dst_ip = vec.int_full(flows, dst)
    flow_src_port = vec.int_column(src_port_base + (f % 60000) for f in range(flows))
    flow_dst_port = vec.int_full(flows, dst_port)
    flow_proto = vec.byte_column([protocol]) * flows
    flow_handshake = vec.byte_column([1 if handshake else 0]) * flows

    flow_index: List[int] = []
    ordinal: List[int] = []
    for start in range(0, flows, block):
        width = min(block, flows - start)
        if interleave == "sequential" and block == 1:
            for f in range(start, start + width):
                flow_index.extend([f] * total_per_flow)
                ordinal.extend(range(total_per_flow))
        else:
            for o in range(total_per_flow):
                flow_index.extend(range(start, start + width))
                ordinal.extend([o] * width)
    kinds: List[int] = []
    seqs: List[int] = []
    sizes: List[int] = []
    hs = 1 if handshake else 0
    for o in ordinal:
        if handshake and o == 0:
            kinds.append(KIND_SYN)
            seqs.append(_BASE_SEQ)
            sizes.append(0)
        elif fin and o == total_per_flow - 1:
            kinds.append(KIND_FIN)
            seqs.append(_BASE_SEQ + hs + packets_per_flow * step)
            sizes.append(0)
        else:
            kinds.append(KIND_DATA)
            seqs.append(_BASE_SEQ + hs + (o - hs) * step)
            sizes.append(len(payload))
    return PacketBatch(
        flow_src_ip,
        flow_dst_ip,
        flow_src_port,
        flow_dst_port,
        flow_proto,
        flow_handshake,
        vec.int_column(flow_index),
        vec.byte_column(kinds),
        vec.int_column(ordinal),
        vec.int_column(seqs),
        vec.int_column(sizes),
        uniform_payload=payload,
    )
