"""A synthetic Benson-et-al. datacenter trace (Fig. 9 workload).

The paper's real-world-chain experiment replays "the popular datacenter
trace" of Benson, Akella and Maltz (IMC'10).  That trace is not
redistributable, so this module generates a synthetic trace reproducing
the published characteristics the experiment depends on:

- **flow sizes are heavy-tailed**: most flows are mice (< 10 KB, a
  handful of packets); a small fraction are elephants.  We sample packet
  counts from a log-normal body with a Pareto tail, clipped to a
  configurable maximum.
- **packet sizes are bimodal**: concentrated around small (ACK-ish,
  40–100 B payloads here rendered as short payloads) and near-MTU sizes.
- **five-tuples**: intra-DC address pools with many clients talking to a
  small set of service ports.

Payloads are synthesised against the Snort rule set in play (see
:mod:`repro.traffic.payloads`), matching the paper's methodology.
Everything is seeded and deterministic.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.net.flow import FiveTuple, PROTO_TCP
from repro.nf.snort.rules import SnortRule
from repro.traffic.generator import FlowSpec
from repro.traffic.payloads import PayloadSynthesizer


@dataclass
class DatacenterTraceConfig:
    """Shape parameters of the synthetic trace."""

    flows: int = 200
    seed: int = 2019

    # Flow-size model: log-normal body + Pareto tail.
    lognormal_mu: float = 1.2      # median flow ≈ e^1.2 ≈ 3.3 packets
    lognormal_sigma: float = 0.9
    elephant_fraction: float = 0.05
    pareto_alpha: float = 1.3
    pareto_scale: float = 20.0
    max_packets_per_flow: int = 500

    # Packet-size model (payload bytes): bimodal mice/MTU mix.
    small_payload: int = 26        # 64 B frames end to end
    large_payload: int = 1400
    large_packet_fraction: float = 0.35

    # Address pools.
    client_subnet: str = "10.1"    # 10.1.x.y clients
    server_subnet: str = "10.2"    # 10.2.x.y servers
    server_count: int = 16
    service_ports: Sequence[int] = (80, 443, 8080, 11211)

    # Snort-facing payload mix.
    malicious_fraction: float = 0.2

    # TCP lifecycle.
    with_handshake: bool = True
    with_fin: bool = True


class DatacenterTraceGenerator:
    """Builds :class:`FlowSpec` lists with datacenter characteristics."""

    def __init__(
        self,
        config: Optional[DatacenterTraceConfig] = None,
        rules: Sequence[SnortRule] = (),
    ):
        self.config = config or DatacenterTraceConfig()
        self._random = random.Random(self.config.seed)
        self._payloads = PayloadSynthesizer(rules, seed=self.config.seed + 1)
        self._has_rules = any(rule.contents for rule in rules)

    # -- distribution sampling -------------------------------------------------

    def sample_flow_packets(self) -> int:
        """Packets in one flow: log-normal body, Pareto tail for elephants."""
        cfg = self.config
        if self._random.random() < cfg.elephant_fraction:
            size = cfg.pareto_scale * (1.0 - self._random.random()) ** (-1.0 / cfg.pareto_alpha)
        else:
            size = math.exp(self._random.gauss(cfg.lognormal_mu, cfg.lognormal_sigma))
        return max(1, min(cfg.max_packets_per_flow, int(round(size))))

    def sample_payload_length(self) -> int:
        cfg = self.config
        if self._random.random() < cfg.large_packet_fraction:
            return cfg.large_payload
        return cfg.small_payload

    def _sample_five_tuple(self, index: int) -> FiveTuple:
        cfg = self.config
        client_host = self._random.randrange(1, 250)
        client_net = self._random.randrange(1, 250)
        server = self._random.randrange(cfg.server_count)
        src_ip = f"{cfg.client_subnet}.{client_net}.{client_host}"
        dst_ip = f"{cfg.server_subnet}.0.{server + 1}"
        src_port = 20000 + (index % 40000)
        dst_port = self._random.choice(list(cfg.service_ports))
        return FiveTuple.make(src_ip, dst_ip, src_port, dst_port, PROTO_TCP)

    # -- trace construction ------------------------------------------------------

    def generate_flows(self) -> List[FlowSpec]:
        """The full trace as flow specs (seeded, reproducible)."""
        cfg = self.config
        flows: List[FlowSpec] = []
        seen = set()
        for index in range(cfg.flows):
            five_tuple = self._sample_five_tuple(index)
            while five_tuple in seen:
                five_tuple = self._sample_five_tuple(index + len(seen) * 101)
            seen.add(five_tuple)

            packets = self.sample_flow_packets()
            malicious = (
                self._has_rules and self._random.random() < cfg.malicious_fraction
            )
            payloads = self._flow_payloads(packets, malicious)
            flows.append(
                FlowSpec(
                    five_tuple=five_tuple,
                    packets=packets,
                    payload=self._payload_policy(payloads),
                    handshake=cfg.with_handshake,
                    fin=cfg.with_fin,
                )
            )
        return flows

    def _flow_payloads(self, packets: int, malicious: bool) -> List[bytes]:
        lengths = [self.sample_payload_length() for __ in range(packets)]
        if malicious:
            rule = next(rule for rule in self._payloads.rules if rule.contents)
            return [self._payloads.matching(rule, length) for length in lengths]
        return [self._payloads.benign(length) for length in lengths]

    @staticmethod
    def _payload_policy(payloads: List[bytes]):
        def policy(index: int) -> bytes:
            return payloads[index % len(payloads)]

        return policy

    def timestamped_packets(
        self,
        mean_flow_gap_ns: float = 20_000.0,
        burst_size: int = 4,
        intra_burst_gap_ns: float = 1_000.0,
        mean_off_gap_ns: float = 60_000.0,
    ) -> List["Packet"]:
        """Expand the trace to packets with ON/OFF arrival timestamps.

        Benson et al. characterise datacenter traffic as ON/OFF at packet
        granularity: flows start at (exponential) random offsets, send
        bursts of back-to-back packets, then pause.  The returned packets
        carry ``timestamp_ns`` and are globally time-ordered, ready for
        ``Platform.run_load(..., use_timestamps=True)`` replay.
        """
        from repro.traffic.generator import packets_for_flow

        all_packets = []
        flow_start = 0.0
        for spec in self.generate_flows():
            flow_start += self._random.expovariate(1.0 / mean_flow_gap_ns)
            timestamp = flow_start
            for index, packet in enumerate(packets_for_flow(spec)):
                if index:
                    if index % burst_size == 0:
                        timestamp += self._random.expovariate(1.0 / mean_off_gap_ns)
                    else:
                        timestamp += intra_burst_gap_ns
                packet.timestamp_ns = timestamp
                all_packets.append(packet)
        all_packets.sort(key=lambda packet: packet.timestamp_ns)
        return all_packets

    def flow_size_histogram(self, flows: Sequence[FlowSpec]) -> dict:
        """Bucketised flow sizes (sanity checks / docs)."""
        buckets = {"1-2": 0, "3-9": 0, "10-99": 0, "100+": 0}
        for spec in flows:
            if spec.packets <= 2:
                buckets["1-2"] += 1
            elif spec.packets <= 9:
                buckets["3-9"] += 1
            elif spec.packets <= 99:
                buckets["10-99"] += 1
            else:
                buckets["100+"] += 1
        return buckets
