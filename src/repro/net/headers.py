"""Wire-format protocol headers.

Each header packs to and parses from real network-byte-order bytes, so a
packet can be serialised, checksummed and re-parsed byte-exactly.  The set
covers what the paper's NFs touch: Ethernet, IPv4, TCP, UDP, plus two
encapsulation headers — the IPsec Authentication Header used by the VPN NF
(encap/decap actions, §IV-A1) and a simplified VXLAN header used by tunnel
gateways.
"""

from __future__ import annotations

import struct
from typing import ClassVar, Optional

from repro.net.addresses import MACAddress, ip_to_int, ip_to_str

TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10
TCP_URG = 0x20

ETHERTYPE_IPV4 = 0x0800

PROTO_TCP = 6
PROTO_UDP = 17
PROTO_AH = 51


#: Cache of ``!nH`` struct formats keyed by word count — checksums run per
#: packet on the fast path, and one bulk unpack beats iter_unpack by ~4x.
_CHECKSUM_STRUCTS: dict = {}


def internet_checksum(data: bytes) -> int:
    """RFC 1071 internet checksum over ``data`` (pad odd lengths with 0)."""
    if len(data) % 2:
        data += b"\x00"
    words = len(data) // 2
    unpacker = _CHECKSUM_STRUCTS.get(words)
    if unpacker is None:
        unpacker = _CHECKSUM_STRUCTS[words] = struct.Struct(f"!{words}H").unpack
    total = sum(unpacker(data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


class Header:
    """Base class for all protocol headers."""

    name: ClassVar[str] = "header"

    def byte_length(self) -> int:
        raise NotImplementedError

    def pack(self) -> bytes:
        raise NotImplementedError

    def clone(self) -> "Header":
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.pack() == other.pack()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.pack()))


class EthernetHeader(Header):
    """14-byte Ethernet II header."""

    name = "eth"
    LENGTH = 14

    __slots__ = ("dst_mac", "src_mac", "ethertype")

    def __init__(self, dst_mac: MACAddress, src_mac: MACAddress, ethertype: int = ETHERTYPE_IPV4):
        self.dst_mac = dst_mac
        self.src_mac = src_mac
        self.ethertype = ethertype

    def byte_length(self) -> int:
        return self.LENGTH

    def pack(self) -> bytes:
        return self.dst_mac.to_bytes() + self.src_mac.to_bytes() + struct.pack("!H", self.ethertype)

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        if len(data) < cls.LENGTH:
            raise ValueError("truncated Ethernet header")
        return cls(
            dst_mac=MACAddress.from_bytes(data[0:6]),
            src_mac=MACAddress.from_bytes(data[6:12]),
            ethertype=struct.unpack("!H", data[12:14])[0],
        )

    def clone(self) -> "EthernetHeader":
        return EthernetHeader(MACAddress(self.dst_mac.value), MACAddress(self.src_mac.value), self.ethertype)

    def __repr__(self) -> str:
        return f"EthernetHeader({self.src_mac} -> {self.dst_mac}, 0x{self.ethertype:04x})"


class IPv4Header(Header):
    """20-byte IPv4 header (no options)."""

    name = "ipv4"
    LENGTH = 20

    __slots__ = ("src_ip", "dst_ip", "protocol", "ttl", "dscp", "identification", "total_length", "checksum")

    def __init__(
        self,
        src_ip,
        dst_ip,
        protocol: int = PROTO_TCP,
        ttl: int = 64,
        dscp: int = 0,
        identification: int = 0,
        total_length: int = 0,
        checksum: Optional[int] = None,
    ):
        self.src_ip = ip_to_int(src_ip)
        self.dst_ip = ip_to_int(dst_ip)
        self.protocol = protocol
        self.ttl = ttl
        self.dscp = dscp
        self.identification = identification
        self.total_length = total_length
        self.checksum = checksum if checksum is not None else 0

    def byte_length(self) -> int:
        return self.LENGTH

    def refresh_checksum(self) -> None:
        """Recompute the header checksum from the current fields.

        Computed arithmetically over the header's eight non-checksum
        16-bit words — bit-identical to ``internet_checksum(self.pack())``
        with the checksum field zeroed, without the pack/unpack round
        trip (this runs once per packet via :meth:`Packet.finalize`).
        """
        total = (
            (((4 << 4) | 5) << 8 | (self.dscp << 2))
            + self.total_length
            + self.identification
            + ((self.ttl << 8) | self.protocol)
            + (self.src_ip >> 16)
            + (self.src_ip & 0xFFFF)
            + (self.dst_ip >> 16)
            + (self.dst_ip & 0xFFFF)
        )
        total = (total & 0xFFFF) + (total >> 16)
        total = (total & 0xFFFF) + (total >> 16)
        self.checksum = (~total) & 0xFFFF

    def checksum_valid(self) -> bool:
        return internet_checksum(self.pack()) == 0

    def pack(self) -> bytes:
        version_ihl = (4 << 4) | 5
        return struct.pack(
            "!BBHHHBBHII",
            version_ihl,
            self.dscp << 2,
            self.total_length,
            self.identification,
            0,  # flags + fragment offset
            self.ttl,
            self.protocol,
            self.checksum,
            self.src_ip,
            self.dst_ip,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        if len(data) < cls.LENGTH:
            raise ValueError("truncated IPv4 header")
        fields = struct.unpack("!BBHHHBBHII", data[: cls.LENGTH])
        version_ihl = fields[0]
        if version_ihl >> 4 != 4:
            raise ValueError(f"not an IPv4 header (version={version_ihl >> 4})")
        return cls(
            src_ip=fields[8],
            dst_ip=fields[9],
            protocol=fields[6],
            ttl=fields[5],
            dscp=fields[1] >> 2,
            identification=fields[3],
            total_length=fields[2],
            checksum=fields[7],
        )

    def clone(self) -> "IPv4Header":
        return IPv4Header(
            self.src_ip,
            self.dst_ip,
            protocol=self.protocol,
            ttl=self.ttl,
            dscp=self.dscp,
            identification=self.identification,
            total_length=self.total_length,
            checksum=self.checksum,
        )

    def __repr__(self) -> str:
        return (
            f"IPv4Header({ip_to_str(self.src_ip)} -> {ip_to_str(self.dst_ip)}, "
            f"proto={self.protocol}, ttl={self.ttl})"
        )


class TCPHeader(Header):
    """20-byte TCP header (no options)."""

    name = "tcp"
    LENGTH = 20

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "window", "checksum")

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = TCP_ACK,
        window: int = 65535,
        checksum: int = 0,
    ):
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window
        self.checksum = checksum

    def byte_length(self) -> int:
        return self.LENGTH

    def has_flag(self, flag: int) -> bool:
        return bool(self.flags & flag)

    def pack(self) -> bytes:
        data_offset = (5 << 4)
        return struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            data_offset,
            self.flags,
            self.window,
            self.checksum,
            0,  # urgent pointer
        )

    @classmethod
    def unpack(cls, data: bytes) -> "TCPHeader":
        if len(data) < cls.LENGTH:
            raise ValueError("truncated TCP header")
        fields = struct.unpack("!HHIIBBHHH", data[: cls.LENGTH])
        return cls(
            src_port=fields[0],
            dst_port=fields[1],
            seq=fields[2],
            ack=fields[3],
            flags=fields[5],
            window=fields[6],
            checksum=fields[7],
        )

    def clone(self) -> "TCPHeader":
        return TCPHeader(self.src_port, self.dst_port, self.seq, self.ack, self.flags, self.window, self.checksum)

    def __repr__(self) -> str:
        flag_names = []
        for bit, label in ((TCP_SYN, "SYN"), (TCP_ACK, "ACK"), (TCP_FIN, "FIN"), (TCP_RST, "RST"), (TCP_PSH, "PSH")):
            if self.flags & bit:
                flag_names.append(label)
        return f"TCPHeader({self.src_port} -> {self.dst_port}, [{'|'.join(flag_names)}])"


class UDPHeader(Header):
    """8-byte UDP header."""

    name = "udp"
    LENGTH = 8

    __slots__ = ("src_port", "dst_port", "length", "checksum")

    def __init__(self, src_port: int, dst_port: int, length: int = 8, checksum: int = 0):
        self.src_port = src_port
        self.dst_port = dst_port
        self.length = length
        self.checksum = checksum

    def byte_length(self) -> int:
        return self.LENGTH

    def pack(self) -> bytes:
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, self.checksum)

    @classmethod
    def unpack(cls, data: bytes) -> "UDPHeader":
        if len(data) < cls.LENGTH:
            raise ValueError("truncated UDP header")
        fields = struct.unpack("!HHHH", data[: cls.LENGTH])
        return cls(*fields)

    def clone(self) -> "UDPHeader":
        return UDPHeader(self.src_port, self.dst_port, self.length, self.checksum)

    def __repr__(self) -> str:
        return f"UDPHeader({self.src_port} -> {self.dst_port})"


class AuthenticationHeader(Header):
    """Simplified IPsec Authentication Header (RFC 4302, fixed 24 bytes).

    The VPN NF pushes this header on encap and pops it on decap — the
    paper's example of the ENCAP/DECAP header actions (§IV-A1).
    """

    name = "ah"
    LENGTH = 24

    __slots__ = ("next_header", "spi", "sequence", "icv")

    def __init__(self, next_header: int = PROTO_TCP, spi: int = 0, sequence: int = 0, icv: int = 0):
        self.next_header = next_header
        self.spi = spi
        self.sequence = sequence
        self.icv = icv

    def byte_length(self) -> int:
        return self.LENGTH

    def pack(self) -> bytes:
        payload_len = (self.LENGTH // 4) - 2
        return struct.pack("!BBHIIQI", self.next_header, payload_len, 0, self.spi, self.sequence, self.icv, 0)

    @classmethod
    def unpack(cls, data: bytes) -> "AuthenticationHeader":
        if len(data) < cls.LENGTH:
            raise ValueError("truncated Authentication Header")
        fields = struct.unpack("!BBHIIQI", data[: cls.LENGTH])
        return cls(next_header=fields[0], spi=fields[3], sequence=fields[4], icv=fields[5])

    def clone(self) -> "AuthenticationHeader":
        return AuthenticationHeader(self.next_header, self.spi, self.sequence, self.icv)

    def __repr__(self) -> str:
        return f"AuthenticationHeader(spi=0x{self.spi:08x}, seq={self.sequence})"


class VxlanHeader(Header):
    """8-byte VXLAN header (RFC 7348) used by tunnelling gateways."""

    name = "vxlan"
    LENGTH = 8

    __slots__ = ("vni",)

    def __init__(self, vni: int = 0):
        if not 0 <= vni <= 0xFFFFFF:
            raise ValueError(f"VNI out of 24-bit range: {vni!r}")
        self.vni = vni

    def byte_length(self) -> int:
        return self.LENGTH

    def pack(self) -> bytes:
        return struct.pack("!II", 0x08 << 24, self.vni << 8)

    @classmethod
    def unpack(cls, data: bytes) -> "VxlanHeader":
        if len(data) < cls.LENGTH:
            raise ValueError("truncated VXLAN header")
        __, vni_field = struct.unpack("!II", data[: cls.LENGTH])
        return cls(vni=vni_field >> 8)

    def clone(self) -> "VxlanHeader":
        return VxlanHeader(self.vni)

    def __repr__(self) -> str:
        return f"VxlanHeader(vni={self.vni})"
