"""The packet model.

A :class:`Packet` mirrors a DPDK mbuf + descriptor: Ethernet, IPv4, an
optional stack of encapsulation headers (AH/VXLAN, pushed between L3 and
L4 as the VPN/gateway NFs do), an L4 header (TCP or UDP), a payload, and a
metadata dict.  SpeedyBox attaches the FID as packet metadata (§VI-B);
dropping a packet sets the descriptor's ``dropped`` flag ("set the packet
descriptor to nil", §IV-A1).

:class:`PacketField` names the mutable header fields that MODIFY header
actions operate on; it provides uniform read/write accessors so the
consolidation engine can treat heterogeneous fields uniformly.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Union

from repro.net.addresses import MACAddress, ip_to_int
from repro.net.flow import FiveTuple
from repro.net.headers import (
    AuthenticationHeader,
    EthernetHeader,
    Header,
    IPv4Header,
    PROTO_AH,
    TCPHeader,
    UDPHeader,
    VxlanHeader,
)


class PacketField(enum.Enum):
    """Header fields addressable by MODIFY actions (§IV-A1, §V-B).

    The paper distinguishes "main" routing fields (IPs and ports, part of
    NF logic) from "remaining" fields fixed up at the end of consolidation
    (checksum, TTL, MAC addresses); ``is_finalisation_field`` captures
    that split.
    """

    SRC_MAC = "src_mac"
    DST_MAC = "dst_mac"
    SRC_IP = "src_ip"
    DST_IP = "dst_ip"
    TTL = "ttl"
    DSCP = "dscp"
    SRC_PORT = "src_port"
    DST_PORT = "dst_port"

    @property
    def is_finalisation_field(self) -> bool:
        """Fields the paper modifies "at the end of the consolidation" (§V-B)."""
        return self in (PacketField.SRC_MAC, PacketField.DST_MAC, PacketField.TTL, PacketField.DSCP)

    def read(self, packet: "Packet") -> int:
        return _FIELD_READERS[self](packet)

    def write(self, packet: "Packet", value: int) -> None:
        _FIELD_WRITERS[self](packet, value)


def _require_l4(packet: "Packet"):
    if packet.l4 is None:
        raise ValueError("packet has no L4 header")
    return packet.l4


_FIELD_READERS = {
    PacketField.SRC_MAC: lambda p: p.eth.src_mac.value,
    PacketField.DST_MAC: lambda p: p.eth.dst_mac.value,
    PacketField.SRC_IP: lambda p: p.ip.src_ip,
    PacketField.DST_IP: lambda p: p.ip.dst_ip,
    PacketField.TTL: lambda p: p.ip.ttl,
    PacketField.DSCP: lambda p: p.ip.dscp,
    PacketField.SRC_PORT: lambda p: _require_l4(p).src_port,
    PacketField.DST_PORT: lambda p: _require_l4(p).dst_port,
}


def _write_src_port(packet: "Packet", value: int) -> None:
    _require_l4(packet).src_port = value


def _write_dst_port(packet: "Packet", value: int) -> None:
    _require_l4(packet).dst_port = value


def _write_src_mac(packet: "Packet", value: int) -> None:
    packet.eth.src_mac = MACAddress(value)


def _write_dst_mac(packet: "Packet", value: int) -> None:
    packet.eth.dst_mac = MACAddress(value)


def _write_src_ip(packet: "Packet", value: int) -> None:
    packet.ip.src_ip = ip_to_int(value)


def _write_dst_ip(packet: "Packet", value: int) -> None:
    packet.ip.dst_ip = ip_to_int(value)


def _write_ttl(packet: "Packet", value: int) -> None:
    if not 0 <= value <= 255:
        raise ValueError(f"TTL out of range: {value!r}")
    packet.ip.ttl = value


def _write_dscp(packet: "Packet", value: int) -> None:
    if not 0 <= value <= 63:
        raise ValueError(f"DSCP out of range: {value!r}")
    packet.ip.dscp = value


_FIELD_WRITERS = {
    PacketField.SRC_MAC: _write_src_mac,
    PacketField.DST_MAC: _write_dst_mac,
    PacketField.SRC_IP: _write_src_ip,
    PacketField.DST_IP: _write_dst_ip,
    PacketField.TTL: _write_ttl,
    PacketField.DSCP: _write_dscp,
    PacketField.SRC_PORT: _write_src_port,
    PacketField.DST_PORT: _write_dst_port,
}


class Packet:
    """A packet descriptor plus its buffer.

    ``encaps`` is a LIFO stack of encapsulation headers: ``push_encap``
    appends, ``pop_encap`` removes the most recent — matching the stack
    model the consolidation algorithm uses for ENCAP/DECAP (§V-B).
    """

    __slots__ = ("eth", "ip", "l4", "encaps", "payload", "metadata", "dropped", "timestamp_ns")

    def __init__(
        self,
        eth: Optional[EthernetHeader] = None,
        ip: Optional[IPv4Header] = None,
        l4: Optional[Union[TCPHeader, UDPHeader]] = None,
        payload: bytes = b"",
        timestamp_ns: float = 0.0,
    ):
        if eth is None:
            eth = EthernetHeader(MACAddress("02:00:00:00:00:02"), MACAddress("02:00:00:00:00:01"))
        if ip is None:
            ip = IPv4Header("10.0.0.1", "10.0.0.2")
        self.eth = eth
        self.ip = ip
        self.l4 = l4
        self.encaps: List[Header] = []
        self.payload = payload
        self.metadata: Dict[str, Any] = {}
        self.dropped = False
        self.timestamp_ns = timestamp_ns

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_five_tuple(
        cls,
        five_tuple: FiveTuple,
        payload: bytes = b"",
        tcp_flags: int = 0x10,
        seq: int = 0,
        timestamp_ns: float = 0.0,
    ) -> "Packet":
        """Build a TCP or UDP packet whose headers realise ``five_tuple``."""
        from repro.net.flow import PROTO_TCP, PROTO_UDP

        ip = IPv4Header(five_tuple.src_ip, five_tuple.dst_ip, protocol=five_tuple.protocol)
        if five_tuple.protocol == PROTO_TCP:
            l4: Union[TCPHeader, UDPHeader] = TCPHeader(
                five_tuple.src_port, five_tuple.dst_port, seq=seq, flags=tcp_flags
            )
        elif five_tuple.protocol == PROTO_UDP:
            l4 = UDPHeader(five_tuple.src_port, five_tuple.dst_port, length=8 + len(payload))
        else:
            raise ValueError(f"unsupported protocol for packet synthesis: {five_tuple.protocol}")
        packet = cls(ip=ip, l4=l4, payload=payload, timestamp_ns=timestamp_ns)
        packet.finalize()
        return packet

    # -- flow identity -----------------------------------------------------

    def five_tuple(self) -> FiveTuple:
        """The current five-tuple (reflects any header rewrites so far)."""
        l4 = _require_l4(self)
        return FiveTuple(self.ip.src_ip, self.ip.dst_ip, l4.src_port, l4.dst_port, self.ip.protocol)

    # -- encapsulation -----------------------------------------------------

    def push_encap(self, header: Header) -> None:
        """Push an encapsulation header (innermost = most recently pushed)."""
        self.encaps.append(header)

    def pop_encap(self) -> Header:
        """Pop the most recently pushed encapsulation header."""
        if not self.encaps:
            raise ValueError("decap on a packet with no encapsulation headers")
        return self.encaps.pop()

    def peek_encap(self) -> Optional[Header]:
        return self.encaps[-1] if self.encaps else None

    # -- descriptor operations ----------------------------------------------

    def drop(self) -> None:
        """Mark the descriptor dropped (the §IV-A1 'set descriptor to nil')."""
        self.dropped = True

    def clone(self) -> "Packet":
        """Deep copy headers, payload and metadata (not shared with original)."""
        copy = Packet(
            eth=self.eth.clone(),
            ip=self.ip.clone(),
            l4=self.l4.clone() if self.l4 is not None else None,
            payload=self.payload,
            timestamp_ns=self.timestamp_ns,
        )
        copy.encaps = [header.clone() for header in self.encaps]
        copy.metadata = dict(self.metadata)
        copy.dropped = self.dropped
        return copy

    # -- sizes, serialisation -----------------------------------------------

    def byte_length(self) -> int:
        total = self.eth.byte_length() + self.ip.byte_length()
        total += sum(header.byte_length() for header in self.encaps)
        if self.l4 is not None:
            total += self.l4.byte_length()
        return total + len(self.payload)

    def finalize(self) -> None:
        """Fix up derived fields: IP total length, protocol chain, checksums."""
        inner_len = len(self.payload)
        l4 = self.l4
        if l4 is not None:
            inner_len += l4.byte_length()
            if isinstance(l4, UDPHeader):
                l4.length = l4.byte_length() + len(self.payload)
        ip = self.ip
        encaps = self.encaps
        if encaps:
            encap_len = sum(header.byte_length() for header in encaps)
            if isinstance(encaps[0], AuthenticationHeader):
                ip.protocol = PROTO_AH
        else:
            encap_len = 0
        ip.total_length = ip.byte_length() + encap_len + inner_len
        ip.refresh_checksum()

    def serialize(self) -> bytes:
        """Wire bytes: Ethernet | IPv4 | encaps (outermost first) | L4 | payload."""
        self.finalize()
        parts = [self.eth.pack(), self.ip.pack()]
        parts.extend(header.pack() for header in self.encaps)
        if self.l4 is not None:
            parts.append(self.l4.pack())
        parts.append(self.payload)
        return b"".join(parts)

    @classmethod
    def parse(cls, data: bytes) -> "Packet":
        """Parse wire bytes back into a packet (inverse of :meth:`serialize`).

        Encapsulation headers are recognised structurally: an AH directly
        after IPv4 (protocol 51), or a VXLAN header flagged by metadata is
        out of scope for raw parsing — only AH round-trips from bytes.
        """
        eth = EthernetHeader.unpack(data)
        offset = eth.byte_length()
        ip = IPv4Header.unpack(data[offset:])
        offset += ip.byte_length()
        packet = cls(eth=eth, ip=ip)
        protocol = ip.protocol
        while protocol == PROTO_AH:
            ah = AuthenticationHeader.unpack(data[offset:])
            offset += ah.byte_length()
            packet.push_encap(ah)
            protocol = ah.next_header
        from repro.net.flow import PROTO_TCP, PROTO_UDP

        if protocol == PROTO_TCP:
            packet.l4 = TCPHeader.unpack(data[offset:])
            offset += packet.l4.byte_length()
        elif protocol == PROTO_UDP:
            packet.l4 = UDPHeader.unpack(data[offset:])
            offset += packet.l4.byte_length()
        packet.payload = data[offset:]
        return packet

    def __repr__(self) -> str:
        state = " DROPPED" if self.dropped else ""
        encaps = f" +{len(self.encaps)} encap" if self.encaps else ""
        try:
            flow = str(self.five_tuple())
        except ValueError:
            flow = "<no L4>"
        return f"<Packet {flow} len={self.byte_length()}{encaps}{state}>"


__all__ = ["Packet", "PacketField", "VxlanHeader"]
