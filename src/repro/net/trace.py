"""A minimal binary packet-trace format ("pcap-lite").

Records packets with nanosecond timestamps so workloads can be captured
once and replayed byte-exactly — the role the anonymised datacenter
capture plays in the paper's Fig. 9 experiment.  The format is
deliberately simple and self-describing:

    file   := magic(4) version(u16) flags(u16) record*
    record := timestamp_ns(f64) length(u32) wire_bytes

All integers big-endian.  Reading validates magic, version and record
framing; a truncated final record raises :class:`TraceFormatError`.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, List, Tuple, Union

from repro.net.packet import Packet

MAGIC = b"SBTR"
VERSION = 1

_HEADER = struct.Struct("!4sHH")
_RECORD = struct.Struct("!dI")


class TraceFormatError(ValueError):
    """The byte stream is not a valid trace file."""


def write_trace(target: Union[str, Path, BinaryIO], packets: Iterable[Packet]) -> int:
    """Serialise ``packets`` (with timestamps) to ``target``.

    Returns the number of records written.  ``target`` may be a path or a
    writable binary stream.
    """
    own = isinstance(target, (str, Path))
    stream: BinaryIO = open(target, "wb") if own else target  # type: ignore[assignment]
    try:
        stream.write(_HEADER.pack(MAGIC, VERSION, 0))
        count = 0
        for packet in packets:
            wire = packet.serialize()
            stream.write(_RECORD.pack(packet.timestamp_ns, len(wire)))
            stream.write(wire)
            count += 1
        return count
    finally:
        if own:
            stream.close()


def read_trace(source: Union[str, Path, BinaryIO]) -> Iterator[Packet]:
    """Yield packets from a trace file, restoring timestamps."""
    own = isinstance(source, (str, Path))
    stream: BinaryIO = open(source, "rb") if own else source  # type: ignore[assignment]
    try:
        header = stream.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise TraceFormatError("truncated trace header")
        magic, version, __ = _HEADER.unpack(header)
        if magic != MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}; not a SpeedyBox trace")
        if version != VERSION:
            raise TraceFormatError(f"unsupported trace version {version}")
        while True:
            record_header = stream.read(_RECORD.size)
            if not record_header:
                return
            if len(record_header) < _RECORD.size:
                raise TraceFormatError("truncated record header")
            timestamp_ns, length = _RECORD.unpack(record_header)
            wire = stream.read(length)
            if len(wire) < length:
                raise TraceFormatError("truncated record body")
            packet = Packet.parse(wire)
            packet.timestamp_ns = timestamp_ns
            yield packet
    finally:
        if own:
            stream.close()


def load_trace(source: Union[str, Path, BinaryIO]) -> List[Packet]:
    """Eagerly read a whole trace into memory."""
    return list(read_trace(source))


def roundtrip_bytes(packets: Iterable[Packet]) -> List[Packet]:
    """Write + read through an in-memory buffer (testing helper)."""
    buffer = io.BytesIO()
    write_trace(buffer, packets)
    buffer.seek(0)
    return load_trace(buffer)
