"""Flow identity: the classic five-tuple.

The Packet Classifier (§VI-B) hashes the five-tuple of a packet into a
20-bit FID.  The five-tuple itself lives here; the hashing policy lives in
``repro.core.classifier`` because it is part of the SpeedyBox contribution.
"""

from __future__ import annotations

from functools import lru_cache
from typing import NamedTuple, Union

from repro.net.addresses import ip_to_int, ip_to_str

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_PROTO_NAMES = {PROTO_ICMP: "icmp", PROTO_TCP: "tcp", PROTO_UDP: "udp"}


class FiveTuple(NamedTuple):
    """(src_ip, dst_ip, src_port, dst_port, protocol), addresses as uint32."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int

    @classmethod
    def make(
        cls,
        src_ip: Union[str, int],
        dst_ip: Union[str, int],
        src_port: int,
        dst_port: int,
        protocol: int = PROTO_TCP,
    ) -> "FiveTuple":
        """Build a five-tuple, accepting dotted-quad strings for addresses."""
        if not 0 <= src_port <= 0xFFFF:
            raise ValueError(f"source port out of range: {src_port!r}")
        if not 0 <= dst_port <= 0xFFFF:
            raise ValueError(f"destination port out of range: {dst_port!r}")
        if not 0 <= protocol <= 0xFF:
            raise ValueError(f"protocol out of range: {protocol!r}")
        return cls(ip_to_int(src_ip), ip_to_int(dst_ip), src_port, dst_port, protocol)

    def reversed(self) -> "FiveTuple":
        """The five-tuple of the reverse direction of this flow."""
        return FiveTuple(self.dst_ip, self.src_ip, self.dst_port, self.src_port, self.protocol)

    def canonical(self) -> "FiveTuple":
        """A direction-independent key: the lexicographically smaller side first.

        Memoized: equal five-tuples share one *interned* canonical
        object, so the per-packet dict lookups keyed on canonical flow
        keys (sharder homes, freeze buffers) compare by identity first.
        """
        return _canonical_of(self)

    def __str__(self) -> str:
        proto = _PROTO_NAMES.get(self.protocol, str(self.protocol))
        return (
            f"{ip_to_str(self.src_ip)}:{self.src_port} -> "
            f"{ip_to_str(self.dst_ip)}:{self.dst_port}/{proto}"
        )


@lru_cache(maxsize=1 << 16)
def _canonical_of(five_tuple: FiveTuple) -> FiveTuple:
    forward = (five_tuple.src_ip, five_tuple.src_port)
    backward = (five_tuple.dst_ip, five_tuple.dst_port)
    if forward <= backward:
        return five_tuple
    return five_tuple.reversed()
