"""Packet substrate: addresses, headers, packets and flow keys.

The evaluation platforms of the paper (BESS, OpenNetVM) move DPDK packet
descriptors; this subpackage provides the equivalent in-memory model.
Headers serialise to real wire bytes (with internet checksums), so
"parsing" and "classification" are genuine operations the cost model can
charge for, and equivalence tests can compare byte-exact outputs.
"""

from repro.net.addresses import MACAddress, ip_to_int, ip_to_str, is_valid_ipv4
from repro.net.flow import FiveTuple, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.net.headers import (
    AuthenticationHeader,
    EthernetHeader,
    Header,
    IPv4Header,
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    TCPHeader,
    UDPHeader,
    VxlanHeader,
    internet_checksum,
)
from repro.net.packet import Packet, PacketField
from repro.net.trace import TraceFormatError, load_trace, read_trace, write_trace

__all__ = [
    "AuthenticationHeader",
    "EthernetHeader",
    "FiveTuple",
    "Header",
    "IPv4Header",
    "MACAddress",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "PacketField",
    "TCPHeader",
    "TCP_ACK",
    "TCP_FIN",
    "TCP_PSH",
    "TCP_RST",
    "TCP_SYN",
    "TraceFormatError",
    "UDPHeader",
    "VxlanHeader",
    "internet_checksum",
    "ip_to_int",
    "ip_to_str",
    "is_valid_ipv4",
    "load_trace",
    "read_trace",
    "write_trace",
]
