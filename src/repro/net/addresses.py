"""IPv4 and MAC address helpers.

Addresses are stored as integers internally (cheap to hash and compare,
like the fixed-width fields in a real packet descriptor) and converted to
dotted-quad / colon-hex strings only at the API surface.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Union

_IPV4_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


def is_valid_ipv4(text: str) -> bool:
    """True if ``text`` is a dotted-quad IPv4 address."""
    match = _IPV4_RE.match(text)
    if not match:
        return False
    return all(0 <= int(octet) <= 255 for octet in match.groups())


def ip_to_int(address: Union[str, int]) -> int:
    """Convert a dotted-quad string (or pass through an int) to a uint32."""
    if isinstance(address, int):
        if not 0 <= address <= 0xFFFFFFFF:
            raise ValueError(f"IPv4 integer out of range: {address!r}")
        return address
    if not is_valid_ipv4(address):
        raise ValueError(f"invalid IPv4 address: {address!r}")
    octets = [int(part) for part in address.split(".")]
    return (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]


def ip_to_str(value: int) -> str:
    """Convert a uint32 to a dotted-quad string."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@lru_cache(maxsize=1024)
def _mac_str_to_int(address: str) -> int:
    """Parse (and validate) a colon-hex MAC string, memoized.

    Packet descriptors construct their default Ethernet header from two
    constant MAC strings, so without the memo the regex validation
    dominates packet-materialization cost in million-packet runs.
    """
    parts = address.split(":")
    if len(parts) != 6 or not all(re.fullmatch(r"[0-9a-fA-F]{1,2}", p) for p in parts):
        raise ValueError(f"invalid MAC address: {address!r}")
    value = 0
    for part in parts:
        value = (value << 8) | int(part, 16)
    return value


class MACAddress:
    """A 48-bit MAC address, stored as an int, rendered as colon-hex."""

    __slots__ = ("value",)

    def __init__(self, address: Union[str, int]):
        if isinstance(address, int):
            if not 0 <= address <= 0xFFFFFFFFFFFF:
                raise ValueError(f"MAC integer out of range: {address!r}")
            self.value = address
            return
        self.value = _mac_str_to_int(address)

    def __str__(self) -> str:
        return ":".join(f"{(self.value >> shift) & 0xFF:02x}" for shift in range(40, -8, -8))

    def __repr__(self) -> str:
        return f"MACAddress('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MACAddress):
            return self.value == other.value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.value)

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(6, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "MACAddress":
        if len(data) != 6:
            raise ValueError(f"MAC address needs 6 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))


BROADCAST_MAC = MACAddress("ff:ff:ff:ff:ff:ff")
ZERO_MAC = MACAddress(0)
