"""Classic libpcap export/import.

Our packets serialise to real wire bytes, so they can be written as a
standard ``.pcap`` file (magic 0xa1b2c3d4, LINKTYPE_ETHERNET) and opened
in Wireshark/tcpdump — handy for eyeballing what a chain actually emitted
and for interoperating with external tooling.  Reading supports both
byte orders and both microsecond and nanosecond (0xa1b23c4d) flavours.

For the library's own capture/replay round trips prefer
:mod:`repro.net.trace` (it keeps float-ns timestamps exactly); pcap
timestamps are quantised to the format's tick.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, List, Tuple, Union

from repro.net.packet import Packet

MAGIC_US = 0xA1B2C3D4
MAGIC_NS = 0xA1B23C4D
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("IHHiIII")
_RECORD_HEADER = struct.Struct("IIII")


class PcapFormatError(ValueError):
    """Not a valid pcap byte stream."""


def write_pcap(
    target: Union[str, Path, BinaryIO],
    packets: Iterable[Packet],
    nanosecond: bool = True,
) -> int:
    """Write packets to a classic pcap file; returns the record count."""
    own = isinstance(target, (str, Path))
    stream: BinaryIO = open(target, "wb") if own else target  # type: ignore[assignment]
    magic = MAGIC_NS if nanosecond else MAGIC_US
    tick = 1.0 if nanosecond else 1000.0  # ns per sub-second unit
    try:
        stream.write(
            _GLOBAL_HEADER.pack(magic, 2, 4, 0, 0, 0xFFFF, LINKTYPE_ETHERNET)
        )
        count = 0
        for packet in packets:
            wire = packet.serialize()
            total_ns = int(packet.timestamp_ns)
            seconds, remainder_ns = divmod(total_ns, 1_000_000_000)
            subsec = int(remainder_ns / tick)
            stream.write(_RECORD_HEADER.pack(seconds, subsec, len(wire), len(wire)))
            stream.write(wire)
            count += 1
        return count
    finally:
        if own:
            stream.close()


def _open_header(data: bytes) -> Tuple[str, float]:
    """Returns (struct byte-order prefix, ns per sub-second unit)."""
    if len(data) < 4:
        raise PcapFormatError("truncated pcap global header")
    raw = struct.unpack("<I", data[:4])[0]
    for order in ("<", ">"):
        magic = struct.unpack(order + "I", data[:4])[0]
        if magic == MAGIC_US:
            return order, 1000.0
        if magic == MAGIC_NS:
            return order, 1.0
    raise PcapFormatError(f"bad pcap magic 0x{raw:08x}")


def read_pcap(source: Union[str, Path, BinaryIO]) -> Iterator[Packet]:
    """Yield packets from a pcap file (Ethernet linktype only)."""
    own = isinstance(source, (str, Path))
    stream: BinaryIO = open(source, "rb") if own else source  # type: ignore[assignment]
    try:
        header = stream.read(_GLOBAL_HEADER.size)
        order, tick = _open_header(header)
        fields = struct.unpack(order + "IHHiIII", header)
        linktype = fields[6]
        if linktype != LINKTYPE_ETHERNET:
            raise PcapFormatError(f"unsupported linktype {linktype}")
        record = struct.Struct(order + "IIII")
        while True:
            record_header = stream.read(record.size)
            if not record_header:
                return
            if len(record_header) < record.size:
                raise PcapFormatError("truncated pcap record header")
            seconds, subsec, included, original = record.unpack(record_header)
            if included != original:
                raise PcapFormatError("snap-length-truncated captures are not supported")
            wire = stream.read(included)
            if len(wire) < included:
                raise PcapFormatError("truncated pcap record body")
            packet = Packet.parse(wire)
            packet.timestamp_ns = seconds * 1_000_000_000.0 + subsec * tick
            yield packet
    finally:
        if own:
            stream.close()


def load_pcap(source: Union[str, Path, BinaryIO]) -> List[Packet]:
    return list(read_pcap(source))
