"""IPFilter: a Click-style firewall (§VI-C).

Parses flow headers and checks them against an ACL with linear scanning —
the paper's IPFilter "checks against a header blacklist with linear
scanning".  Matching flows get DROP actions, others FORWARD.  A per-flow
verdict cache makes subsequent packets cheap (hash lookup) while initial
packets pay the linear scan — exactly the initial/subsequent cost split
Fig. 4 shows.

An optional ``mark_dscp`` turns permitted traffic into a policer that
sets the DSCP field, giving the firewall a MODIFY action for benchmarks
that exercise modify-merging.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.actions import Drop, Forward, Modify
from repro.core.local_mat import InstrumentationAPI
from repro.net.addresses import ip_to_int
from repro.net.flow import FiveTuple
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.platform.costs import Operation


class Verdict(enum.Enum):
    FORWARD = "forward"
    DROP = "drop"


@dataclass(frozen=True)
class AclRule:
    """One blacklist/whitelist entry: prefixes, port ranges, protocol.

    ``None`` means wildcard.  Prefixes are (address, prefix_len) pairs;
    port ranges are inclusive (lo, hi) pairs.
    """

    src_prefix: Optional[Tuple[int, int]] = None
    dst_prefix: Optional[Tuple[int, int]] = None
    src_ports: Optional[Tuple[int, int]] = None
    dst_ports: Optional[Tuple[int, int]] = None
    protocol: Optional[int] = None
    verdict: Verdict = Verdict.DROP

    @staticmethod
    def _parse_prefix(text: Union[str, None]) -> Optional[Tuple[int, int]]:
        if text is None or text == "any":
            return None
        if "/" in text:
            address, __, length = text.partition("/")
            return ip_to_int(address), int(length)
        return ip_to_int(text), 32

    @classmethod
    def make(
        cls,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        src_ports: Optional[Tuple[int, int]] = None,
        dst_ports: Optional[Tuple[int, int]] = None,
        protocol: Optional[int] = None,
        verdict: Verdict = Verdict.DROP,
    ) -> "AclRule":
        """Build a rule from dotted-quad/CIDR strings, e.g. '10.0.0.0/8'."""
        return cls(
            src_prefix=cls._parse_prefix(src),
            dst_prefix=cls._parse_prefix(dst),
            src_ports=src_ports,
            dst_ports=dst_ports,
            protocol=protocol,
            verdict=verdict,
        )

    @staticmethod
    def _prefix_matches(prefix: Optional[Tuple[int, int]], address: int) -> bool:
        if prefix is None:
            return True
        base, length = prefix
        if length == 0:
            return True
        mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        return (address & mask) == (base & mask)

    @staticmethod
    def _range_matches(ports: Optional[Tuple[int, int]], port: int) -> bool:
        if ports is None:
            return True
        lo, hi = ports
        return lo <= port <= hi

    def matches(self, flow: FiveTuple) -> bool:
        if self.protocol is not None and flow.protocol != self.protocol:
            return False
        if not self._prefix_matches(self.src_prefix, flow.src_ip):
            return False
        if not self._prefix_matches(self.dst_prefix, flow.dst_ip):
            return False
        if not self._range_matches(self.src_ports, flow.src_port):
            return False
        return self._range_matches(self.dst_ports, flow.dst_port)


class IPFilter(NetworkFunction):
    """Linear-scan ACL firewall with a per-flow verdict cache."""

    def __init__(
        self,
        name: str = "ipfilter",
        rules: Sequence[AclRule] = (),
        default_verdict: Verdict = Verdict.FORWARD,
        mark_dscp: Optional[int] = None,
    ):
        super().__init__(name)
        self.rules: List[AclRule] = list(rules)
        self.default_verdict = default_verdict
        self.mark_dscp = mark_dscp
        self._verdict_cache: Dict[FiveTuple, Verdict] = {}
        self.dropped = 0
        self.forwarded = 0

    def lookup_verdict(self, flow: FiveTuple) -> Tuple[Verdict, int]:
        """Linear scan: returns (verdict, rules examined)."""
        for index, rule in enumerate(self.rules):
            if rule.matches(flow):
                return rule.verdict, index + 1
        return self.default_verdict, len(self.rules)

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        self.ingress(packet)
        flow = packet.five_tuple()
        fid = api.nf_extract_fid(packet)

        self.charge(Operation.EXACT_MATCH_LOOKUP)
        verdict = self._verdict_cache.get(flow)
        if verdict is None:
            verdict, scanned = self.lookup_verdict(flow)
            self.charge(Operation.ACL_RULE_SCAN, scanned)
            self._verdict_cache[flow] = verdict

        if verdict is Verdict.DROP:
            self.dropped += 1
            self.charge(Operation.DROP_FREE)
            packet.drop()
            api.add_header_action(fid, Drop())
            return

        self.forwarded += 1
        if self.mark_dscp is not None:
            action = Modify.set(dscp=self.mark_dscp)
            self.charge(Operation.FIELD_WRITE)
            self.charge(Operation.CHECKSUM_UPDATE)
            action.apply(packet)
            api.add_header_action(fid, action)
        else:
            api.add_header_action(fid, Forward())

    def handle_flow_close(self, packet: Packet) -> None:
        self._verdict_cache.pop(packet.five_tuple(), None)

    # -- migration hooks (repro.scale) ---------------------------------------

    def export_flow_state(self, flow: FiveTuple):
        return self._verdict_cache.pop(flow, None)

    def import_flow_state(self, flow: FiveTuple, state) -> None:
        self._verdict_cache[flow] = state

    def state_snapshot(self, flow: FiveTuple):
        return self._verdict_cache.get(flow)

    def reset(self) -> None:
        super().reset()
        self._verdict_cache.clear()
        self.dropped = 0
        self.forwarded = 0
