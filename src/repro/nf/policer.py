"""Token-bucket policer: per-flow rate limiting with oscillating events.

A policer is the hardest stateful NF for runtime consolidation: its
per-flow action *flip-flops* between FORWARD and DROP as the bucket
drains and refills — events are not rare, they are the steady state.
SpeedyBox still expresses it exactly, with two recurring Event Table
entries per flow:

- ``exhausted`` (tokens < 1)  → replace the action with DROP,
- ``replenished`` (tokens ≥ 1) → restore FORWARD.

To be packet-exact between the original path and the fast path, the NF
uses the same check-then-update ordering as the Fig. 3 DoS example: the
verdict for a packet is taken on the bucket state as of the *previous*
packet, then the state function refills the bucket (by the packet's
timestamp) and consumes a token if the packet was forwarded.

Buckets refill in virtual time (``packet.timestamp_ns``), so the policer
needs timestamped traffic (e.g. ``DatacenterTraceGenerator
.timestamped_packets()``); untimestamped packets all share t=0 and only
the initial burst passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.actions import Drop, Forward
from repro.core.local_mat import InstrumentationAPI
from repro.core.state_function import PayloadClass
from repro.net.flow import FiveTuple
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.platform.costs import Operation


@dataclass
class Bucket:
    tokens: float
    last_refill_ns: float


class TokenBucketPolicer(NetworkFunction):
    """Per-flow token bucket: ``rate_pps`` sustained, ``burst`` depth."""

    def __init__(self, name: str = "policer", rate_pps: float = 10_000.0, burst: float = 5.0):
        super().__init__(name)
        if rate_pps <= 0:
            raise ValueError(f"rate must be positive, got {rate_pps!r}")
        if burst < 1:
            raise ValueError(f"burst must be at least one packet, got {burst!r}")
        self.rate_pps = rate_pps
        self.burst = float(burst)
        self.buckets: Dict[FiveTuple, Bucket] = {}
        #: the verdict currently installed per flow ("forward" | "drop")
        self.mode: Dict[FiveTuple, str] = {}
        self.forwarded = 0
        self.policed = 0

    # -- bucket mechanics -----------------------------------------------------

    def _bucket(self, key: FiveTuple, now_ns: float) -> Bucket:
        bucket = self.buckets.get(key)
        if bucket is None:
            bucket = Bucket(tokens=self.burst, last_refill_ns=now_ns)
            self.buckets[key] = bucket
        return bucket

    def _refill(self, bucket: Bucket, now_ns: float) -> None:
        elapsed_s = max(0.0, now_ns - bucket.last_refill_ns) / 1e9
        bucket.tokens = min(self.burst, bucket.tokens + elapsed_s * self.rate_pps)
        bucket.last_refill_ns = max(bucket.last_refill_ns, now_ns)

    # -- the state function and event conditions -------------------------------

    def account(self, packet: Packet, key: FiveTuple) -> None:
        """State function (IGNORE payload): refill, then consume if the
        packet was forwarded (check-then-update ordering)."""
        self.charge(Operation.COUNTER_UPDATE)
        bucket = self._bucket(key, packet.timestamp_ns)
        self._refill(bucket, packet.timestamp_ns)
        if not packet.dropped:
            bucket.tokens = max(0.0, bucket.tokens - 1.0)
            self.forwarded += 1
        else:
            self.policed += 1

    def exhausted(self, key: FiveTuple) -> bool:
        bucket = self.buckets.get(key)
        return bucket is not None and bucket.tokens < 1.0

    def replenished(self, key: FiveTuple) -> bool:
        bucket = self.buckets.get(key)
        return bucket is not None and bucket.tokens >= 1.0

    # Edge-triggered event conditions: fire only when the bucket state
    # disagrees with the currently installed verdict, otherwise a healthy
    # flow would re-consolidate on every packet.

    def needs_drop(self, key: FiveTuple) -> bool:
        return self.exhausted(key) and self.mode.get(key, "forward") != "drop"

    def needs_forward(self, key: FiveTuple) -> bool:
        return self.replenished(key) and self.mode.get(key, "forward") == "drop"

    def flip_to_drop(self, key: FiveTuple) -> Drop:
        """Event update function: install DROP for the flow."""
        self.mode[key] = "drop"
        return Drop()

    def flip_to_forward(self, key: FiveTuple) -> Forward:
        """Event update function: restore FORWARD for the flow."""
        self.mode[key] = "forward"
        return Forward()

    # -- packet processing -------------------------------------------------------

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        self.ingress(packet)
        key = packet.five_tuple()
        fid = api.nf_extract_fid(packet)
        self.charge(Operation.EXACT_MATCH_LOOKUP)

        # Verdict on the bucket as of the previous packet (check first).
        if self.exhausted(key):
            self.mode[key] = "drop"
            self.charge(Operation.DROP_FREE)
            packet.drop()
            api.add_header_action(fid, Drop())
        else:
            self.mode[key] = "forward"
            api.add_header_action(fid, Forward())

        api.add_state_function(
            fid, self.account, PayloadClass.IGNORE, args=(key,), name="account"
        )
        # Two recurring, edge-triggered events flip the flow's action
        # whenever the bucket state disagrees with the installed verdict.
        api.register_event(
            fid,
            self.needs_drop,
            args=(key,),
            update_function_handler=self.flip_to_drop,
            one_shot=False,
        )
        api.register_event(
            fid,
            self.needs_forward,
            args=(key,),
            update_function_handler=self.flip_to_forward,
            one_shot=False,
        )
        self.account(packet, key)

    def handle_flow_close(self, packet: Packet) -> None:
        self.buckets.pop(packet.five_tuple(), None)
        self.mode.pop(packet.five_tuple(), None)

    def reset(self) -> None:
        super().reset()
        self.buckets.clear()
        self.mode.clear()
        self.forwarded = 0
        self.policed = 0
