"""Synthetic NFs for the microbenchmarks (§VII-A).

The paper's state-function parallelism benchmark (Fig. 5) uses "a chain
of 1-3 identical synthetic NFs ... no header action, and one state
function that is equivalent to the Snort packet inspection (does not
modify payload)".  :class:`SyntheticNF` realises that and generalises it:
a configurable header action plus a configurable state function with a
chosen payload class and work amount, so benchmarks can compose arbitrary
cost/dependency structures.
"""

from __future__ import annotations

from typing import Optional

from repro.core.actions import Forward, HeaderAction
from repro.core.local_mat import InstrumentationAPI
from repro.core.state_function import PayloadClass
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.platform.costs import Operation


class SyntheticNF(NetworkFunction):
    """A configurable NF for microbenchmarks.

    Parameters
    ----------
    action:
        Header action recorded (and applied) per flow; ``None`` = FORWARD.
    sf_payload_class:
        Payload class of the synthetic state function; ``None`` disables
        the state function entirely.
    sf_work_cycles:
        Fixed cycle cost charged per state-function invocation (models the
        Snort-equivalent inspection workload).
    sf_scans_payload:
        When True, additionally charges per-byte payload scan cost —
        latency then depends on packet size like a real DPI pass.
    """

    # First-packet behaviour is a pure function of packet shape: the
    # recorded action is a constructor argument, the state function (when
    # enabled) makes the recording dynamic and the batch lane's template
    # guards exclude it anyway, and the only per-flow side effect is the
    # ingress counter that admit_flows() replays.
    setup_flow_oblivious = True

    def __init__(
        self,
        name: str,
        action: Optional[HeaderAction] = None,
        sf_payload_class: Optional[PayloadClass] = PayloadClass.READ,
        sf_work_cycles: float = 1600.0,
        sf_scans_payload: bool = False,
    ):
        super().__init__(name)
        self.action = action
        self.sf_payload_class = sf_payload_class
        self.sf_work_cycles = sf_work_cycles
        self.sf_scans_payload = sf_scans_payload
        self.sf_invocations = 0
        self.payload_writes = 0

    def work(self, packet: Packet) -> None:
        """The synthetic state function."""
        self.sf_invocations += 1
        self.meter.charge_cycles(self.sf_work_cycles)
        if self.sf_scans_payload:
            self.charge(Operation.PAYLOAD_BYTE_SCAN, len(packet.payload))
        if self.sf_payload_class is PayloadClass.WRITE and packet.payload:
            # A deterministic, idempotence-free transform so equivalence
            # tests can detect ordering violations: rotate-add each byte.
            self.payload_writes += 1
            self.charge(Operation.PAYLOAD_BYTE_WRITE, len(packet.payload))
            packet.payload = bytes((b + 1) & 0xFF for b in packet.payload)

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        self.ingress(packet)
        fid = api.nf_extract_fid(packet)

        if self.action is not None:
            from repro.core.actions import Drop, Modify

            if isinstance(self.action, Modify):
                self.charge(Operation.FIELD_WRITE, len(self.action.ops))
                self.charge(Operation.CHECKSUM_UPDATE)
            elif isinstance(self.action, Drop):
                self.charge(Operation.DROP_FREE)
            self.action.apply(packet)
            api.add_header_action(fid, self.action)
            if packet.dropped:
                return
        else:
            api.add_header_action(fid, Forward())

        if self.sf_payload_class is not None:
            self.work(packet)
            api.add_state_function(
                fid,
                self.work,
                self.sf_payload_class,
                name="work",
            )

    def reset(self) -> None:
        super().reset()
        self.sf_invocations = 0
        self.payload_writes = 0
