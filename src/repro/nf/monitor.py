"""Monitor: per-flow packet and byte counters (§VI-C).

"Maintains packet counters for each flow, and sets each flow with a
forward action and a state function to maintain the associated counter."

The counting handler derives the flow key from the packet headers *at
invocation time*, exactly like a real monitor reading the live header.
On the fast path the consolidated header action is applied before the
state functions run, so the monitor observes the same (fully rewritten)
headers it would have seen sitting downstream of the rewriting NFs in
the original chain — including after a mid-stream Maglev reroute event.

Positional caveat (inherent to consolidation, §V-B): the fast path
applies *all* header actions before any state function, so a monitor
placed *upstream* of a header-modifying NF would observe post-rewrite
headers on the fast path.  The paper's chains (and ours) place monitors
at or after the last rewriting NF; composing otherwise is detected by
the equivalence suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.actions import Forward
from repro.core.local_mat import InstrumentationAPI
from repro.core.state_function import PayloadClass
from repro.net.flow import FiveTuple
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.platform.costs import Operation


@dataclass
class FlowCounters:
    packets: int = 0
    bytes: int = 0


class Monitor(NetworkFunction):
    """Per-flow traffic accounting."""

    def __init__(self, name: str = "monitor", aggregate=None):
        super().__init__(name)
        self.counters: Dict[FiveTuple, FlowCounters] = {}
        #: optional :class:`repro.ft.txstate.SharedAggregate` — when set,
        #: every counted packet also lands in a cluster-shared total via
        #: an idempotent transaction keyed by (flow, per-flow count), so
        #: recovery replay cannot double-count it
        self.aggregate = aggregate

    def count_packet(self, packet: Packet) -> None:
        """The state function: update the live flow's counters.

        This very handler is what gets recorded in the Local MAT; the
        original path calls it directly, the fast path invokes it from
        the Global MAT schedule.  IGNORE payload class: counters never
        touch payload bytes.
        """
        self.charge(Operation.EXACT_MATCH_LOOKUP)
        self.charge(Operation.COUNTER_UPDATE)
        key = packet.five_tuple()
        counters = self.counters.get(key)
        if counters is None:
            counters = FlowCounters()
            self.counters[key] = counters
        counters.packets += 1
        size = packet.byte_length()
        counters.bytes += size
        if self.aggregate is not None:
            # Txn id = (flow, per-flow sequence number): replayed packets
            # recompute the same id and dedupe, so the shared total stays
            # exactly-once across failover.
            self.aggregate.add((str(key), counters.packets), packets=1, bytes_=size)

    def process(self, packet: Packet, api: InstrumentationAPI) -> None:
        self.ingress(packet)
        fid = api.nf_extract_fid(packet)
        self.count_packet(packet)
        api.add_header_action(fid, Forward())
        api.add_state_function(
            fid,
            self.count_packet,
            PayloadClass.IGNORE,
            name="count_packet",
        )

    def flow_counters(self, key: FiveTuple) -> FlowCounters:
        """Counters for a flow (zeros if never seen)."""
        return self.counters.get(key, FlowCounters())

    # -- migration hooks (repro.scale) ---------------------------------------

    def export_flow_state(self, flow: FiveTuple):
        counters = self.counters.pop(flow, None)
        if counters is None:
            return None
        return (counters.packets, counters.bytes)

    def import_flow_state(self, flow: FiveTuple, state) -> None:
        packets, bytes_ = state
        counters = self.counters.setdefault(flow, FlowCounters())
        counters.packets += packets
        counters.bytes += bytes_

    def state_snapshot(self, flow: FiveTuple):
        counters = self.counters.get(flow)
        return None if counters is None else (counters.packets, counters.bytes)

    def total_packets(self) -> int:
        return sum(counter.packets for counter in self.counters.values())

    def reset(self) -> None:
        super().reset()
        self.counters.clear()
