"""Mini-Snort IDS (§VI-C).

A from-scratch reimplementation of the slice of Snort the paper
exercises: a rule-file parser for the classic rule syntax
(``alert tcp any any -> 10.0.0.0/24 80 (msg:...; content:...; sid:...)``),
an Aho–Corasick multi-pattern matching engine for ``content`` options,
``pcre`` regex support, and the three verdict branches (pass / alert /
log) that the paper's equivalence tests cover (§VII-C1).

Per Observation 1, Snort "assigns a rule matching function for each flow
as the initial packet arrives" and invokes the same function for
subsequent packets — :class:`SnortIDS` reproduces exactly that structure
and records the per-flow inspection function as its SpeedyBox state
function.
"""

from repro.nf.snort.aho_corasick import AhoCorasick
from repro.nf.snort.engine import DetectionEngine, FlowMatcher, InspectionResult
from repro.nf.snort.nf import SnortIDS
from repro.nf.snort.rules import RuleAction, RuleParseError, SnortRule, parse_rule, parse_rules

__all__ = [
    "AhoCorasick",
    "DetectionEngine",
    "FlowMatcher",
    "InspectionResult",
    "RuleAction",
    "RuleParseError",
    "SnortIDS",
    "SnortRule",
    "parse_rule",
    "parse_rules",
]
