"""Aho–Corasick multi-pattern string matching.

Snort's detection engine prescans payloads for every ``content`` pattern
of the active rule set in one pass; this module provides that machinery.
The automaton is built once per rule set (goto/fail/output construction)
and reused for every packet.

Patterns are byte strings; case-insensitive patterns are supported by
normalising both the pattern and the scanned text through a translation
table (ASCII lowercase), which matches Snort's ``nocase`` semantics.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

_LOWER = bytes(
    b + 32 if 0x41 <= b <= 0x5A else b
    for b in range(256)
)


def _normalise(data: bytes) -> bytes:
    return data.translate(_LOWER)


class _Node:
    __slots__ = ("children", "fail", "outputs")

    def __init__(self):
        self.children: Dict[int, "_Node"] = {}
        self.fail: Optional["_Node"] = None
        self.outputs: List[int] = []


class AhoCorasick:
    """An automaton over a set of byte patterns.

    Each added pattern gets an integer id (its insertion index) returned
    by :meth:`add`; :meth:`search` reports (pattern_id, end_offset) hits.
    Build lazily on first search or explicitly with :meth:`build`.
    """

    def __init__(self, case_sensitive: bool = True):
        self.case_sensitive = case_sensitive
        self._root = _Node()
        self._patterns: List[bytes] = []
        self._built = False

    def __len__(self) -> int:
        return len(self._patterns)

    def add(self, pattern: bytes) -> int:
        """Insert a pattern; returns its id.  Rejects empty patterns."""
        if not pattern:
            raise ValueError("empty pattern")
        if self._built:
            raise RuntimeError("cannot add patterns after the automaton is built")
        pattern_id = len(self._patterns)
        self._patterns.append(pattern)
        key = pattern if self.case_sensitive else _normalise(pattern)
        node = self._root
        for byte in key:
            node = node.children.setdefault(byte, _Node())
        node.outputs.append(pattern_id)
        return pattern_id

    def pattern(self, pattern_id: int) -> bytes:
        return self._patterns[pattern_id]

    def build(self) -> None:
        """BFS construction of failure links and output merging."""
        if self._built:
            return
        queue = deque()
        for child in self._root.children.values():
            child.fail = self._root
            queue.append(child)
        while queue:
            node = queue.popleft()
            for byte, child in node.children.items():
                queue.append(child)
                fail = node.fail
                while fail is not None and byte not in fail.children:
                    fail = fail.fail
                child.fail = fail.children[byte] if fail is not None else self._root
                if child.fail is child:
                    child.fail = self._root
                child.outputs.extend(child.fail.outputs)
        self._built = True

    def search(self, text: bytes) -> List[Tuple[int, int]]:
        """All matches as (pattern_id, end_offset) pairs, in text order."""
        if not self._built:
            self.build()
        if not self._patterns:
            return []
        if not self.case_sensitive:
            text = _normalise(text)
        matches: List[Tuple[int, int]] = []
        node = self._root
        for offset, byte in enumerate(text):
            while node is not self._root and byte not in node.children:
                node = node.fail
            node = node.children.get(byte, self._root)
            for pattern_id in node.outputs:
                matches.append((pattern_id, offset + 1))
        return matches

    def matched_ids(self, text: bytes) -> Set[int]:
        """The set of pattern ids occurring anywhere in ``text``."""
        return {pattern_id for pattern_id, __ in self.search(text)}

    def contains(self, text: bytes, pattern_id: int) -> bool:
        return pattern_id in self.matched_ids(text)


class MultiPatternIndex:
    """Two automatons — case-sensitive and nocase — behind one interface.

    Snort rule sets mix case-sensitive and ``nocase`` contents; each goes
    to the matching automaton and search results are merged back to the
    caller's opaque pattern keys.
    """

    def __init__(self):
        self._sensitive = AhoCorasick(case_sensitive=True)
        self._insensitive = AhoCorasick(case_sensitive=False)
        self._keys: List[Tuple[bool, int]] = []

    def add(self, pattern: bytes, nocase: bool = False) -> int:
        """Register a pattern; returns a stable key for match lookups."""
        automaton = self._insensitive if nocase else self._sensitive
        inner_id = automaton.add(pattern)
        self._keys.append((nocase, inner_id))
        return len(self._keys) - 1

    def __len__(self) -> int:
        return len(self._keys)

    def build(self) -> None:
        self._sensitive.build()
        self._insensitive.build()

    def matched_keys(self, text: bytes) -> Set[int]:
        sensitive_hits = self._sensitive.matched_ids(text)
        insensitive_hits = self._insensitive.matched_ids(text)
        matched: Set[int] = set()
        for key, (nocase, inner_id) in enumerate(self._keys):
            hits = insensitive_hits if nocase else sensitive_hits
            if inner_id in hits:
                matched.add(key)
        return matched
