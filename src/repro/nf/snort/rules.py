"""Snort rule parsing.

Supports the classic rule grammar the paper's evaluation needs::

    alert tcp any any -> 10.0.0.0/24 80 (msg:"web attack"; \\
        content:"evil"; nocase; pcre:"/ev[i1]l/"; sid:1001; rev:2;)

Header part: action (``alert``/``log``/``pass``), protocol (``tcp``/
``udp``/``ip``), source address/port, direction (``->`` or ``<>``),
destination address/port.  Addresses are ``any``, a dotted quad, or CIDR;
ports are ``any``, a number, or an inclusive range ``lo:hi`` (either end
may be omitted).  Negation with a leading ``!`` is supported for
addresses and ports.

Options: ``msg``, ``content`` (repeatable; each may be followed by
``nocase``), ``pcre`` (Python ``re`` syntax between slashes, flag ``i``),
``sid``, ``rev``, ``priority``.  Unknown options raise, so rule files
stay honest.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Pattern, Tuple

from repro.net.addresses import ip_to_int
from repro.net.flow import FiveTuple, PROTO_TCP, PROTO_UDP


class RuleParseError(ValueError):
    """A rule line could not be parsed."""


class RuleAction(enum.Enum):
    """Rule verdict class: the three branches §VII-C1's tests cover."""

    ALERT = "alert"
    LOG = "log"
    PASS = "pass"


_PROTOCOLS = {"tcp": PROTO_TCP, "udp": PROTO_UDP, "ip": None}


@dataclass(frozen=True)
class AddressSpec:
    """``any``, an address, or a CIDR prefix — possibly negated."""

    base: Optional[int] = None  # None means any
    prefix_len: int = 32
    negated: bool = False

    @classmethod
    def parse(cls, text: str) -> "AddressSpec":
        negated = text.startswith("!")
        if negated:
            text = text[1:]
        if text == "any":
            if negated:
                raise RuleParseError("'!any' matches nothing")
            return cls()
        if "/" in text:
            address, __, length_text = text.partition("/")
            try:
                length = int(length_text)
            except ValueError as exc:
                raise RuleParseError(f"bad prefix length in {text!r}") from exc
            if not 0 <= length <= 32:
                raise RuleParseError(f"prefix length out of range in {text!r}")
            try:
                return cls(base=ip_to_int(address), prefix_len=length, negated=negated)
            except ValueError as exc:
                raise RuleParseError(str(exc)) from exc
        try:
            return cls(base=ip_to_int(text), negated=negated)
        except ValueError as exc:
            raise RuleParseError(str(exc)) from exc

    def matches(self, address: int) -> bool:
        if self.base is None:
            return True
        if self.prefix_len == 0:
            hit = True
        else:
            mask = (0xFFFFFFFF << (32 - self.prefix_len)) & 0xFFFFFFFF
            hit = (address & mask) == (self.base & mask)
        return hit != self.negated


@dataclass(frozen=True)
class PortSpec:
    """``any``, a port, or an inclusive range — possibly negated."""

    lo: int = 0
    hi: int = 65535
    negated: bool = False
    is_any: bool = True

    @classmethod
    def parse(cls, text: str) -> "PortSpec":
        negated = text.startswith("!")
        if negated:
            text = text[1:]
        if text == "any":
            if negated:
                raise RuleParseError("'!any' matches nothing")
            return cls()
        try:
            if ":" in text:
                lo_text, __, hi_text = text.partition(":")
                lo = int(lo_text) if lo_text else 0
                hi = int(hi_text) if hi_text else 65535
            else:
                lo = hi = int(text)
        except ValueError as exc:
            raise RuleParseError(f"bad port spec {text!r}") from exc
        if not (0 <= lo <= 65535 and 0 <= hi <= 65535 and lo <= hi):
            raise RuleParseError(f"port range out of order or range in {text!r}")
        return cls(lo=lo, hi=hi, negated=negated, is_any=False)

    def matches(self, port: int) -> bool:
        if self.is_any:
            return True
        hit = self.lo <= port <= self.hi
        return hit != self.negated


@dataclass(frozen=True)
class ContentOption:
    """One ``content`` with its modifiers.

    Absolute modifiers: ``offset`` skips that many payload bytes before
    searching; ``depth`` bounds how many bytes (from the offset) are
    searched.  Relative modifiers (to the END of the previous content's
    match): ``distance`` requires the match to start at least that many
    bytes later; ``within`` requires it to start no more than
    ``distance + within`` bytes later.  Matching is greedy-first (no
    backtracking), like Snort's common case.
    """

    pattern: bytes
    nocase: bool = False
    offset: int = 0
    depth: Optional[int] = None
    distance: Optional[int] = None
    within: Optional[int] = None

    @property
    def is_relative(self) -> bool:
        return self.distance is not None or self.within is not None

    def _find(self, payload: bytes, start: int, end_limit: Optional[int]) -> int:
        """First match index in payload[start:], respecting case; -1 if none."""
        haystack = payload
        needle = self.pattern
        if self.nocase:
            haystack = haystack.lower()
            needle = needle.lower()
        index = haystack.find(needle, max(0, start))
        if index < 0:
            return -1
        if end_limit is not None and index > end_limit:
            return -1
        return index

    def match_end(self, payload: bytes, previous_end: int) -> int:
        """The end offset of this content's match, or -1.

        ``previous_end`` anchors relative modifiers (end of the previous
        content's match; 0 for the first content).
        """
        if self.is_relative:
            start = previous_end + (self.distance or 0)
            limit = None
            if self.within is not None:
                limit = previous_end + (self.distance or 0) + self.within
            index = self._find(payload, start, limit)
        else:
            start = self.offset
            limit = None
            if self.depth is not None:
                # The whole pattern must fit inside [offset, offset+depth).
                limit = self.offset + self.depth - len(self.pattern)
                if limit < start:
                    return -1
            index = self._find(payload, start, limit)
        if index < 0:
            return -1
        return index + len(self.pattern)

    def found_in(self, payload: bytes) -> bool:
        """Standalone check (absolute modifiers only; used by prescan
        verification)."""
        return self.match_end(payload, 0) >= 0


@dataclass(frozen=True)
class FlowbitOp:
    """One ``flowbits`` option: cross-packet per-flow state.

    ``set``/``unset`` mutate the flow's bit set when the rule matches;
    ``isset``/``isnotset`` gate the rule on the current bits; ``noalert``
    suppresses the rule's output (classic two-stage detection: a setter
    rule with ``noalert`` arms a later alerting rule).
    """

    verb: str  # set | unset | isset | isnotset | noalert
    name: str = ""

    VERBS = ("set", "unset", "isset", "isnotset", "noalert")

    def __post_init__(self):
        if self.verb not in self.VERBS:
            raise RuleParseError(f"unsupported flowbits verb {self.verb!r}")
        if self.verb != "noalert" and not self.name:
            raise RuleParseError(f"flowbits {self.verb} needs a bit name")


@dataclass
class SnortRule:
    """One parsed rule."""

    action: RuleAction
    protocol: Optional[int]  # None = any IP protocol
    src: AddressSpec
    src_ports: PortSpec
    dst: AddressSpec
    dst_ports: PortSpec
    bidirectional: bool = False
    msg: str = ""
    contents: List[ContentOption] = field(default_factory=list)
    pcre: Optional[Pattern[bytes]] = None
    flowbits: List[FlowbitOp] = field(default_factory=list)
    sid: int = 0
    rev: int = 1
    priority: int = 3

    @property
    def suppresses_output(self) -> bool:
        return any(op.verb == "noalert" for op in self.flowbits)

    def flowbits_allow(self, bits: frozenset) -> bool:
        """Do the flow's current bits satisfy the isset/isnotset gates?"""
        for op in self.flowbits:
            if op.verb == "isset" and op.name not in bits:
                return False
            if op.verb == "isnotset" and op.name in bits:
                return False
        return True

    def flowbits_apply(self, bits: set) -> None:
        """Mutate the flow's bit set for a matching packet."""
        for op in self.flowbits:
            if op.verb == "set":
                bits.add(op.name)
            elif op.verb == "unset":
                bits.discard(op.name)

    def header_matches(self, flow: FiveTuple) -> bool:
        """Does the rule header cover this flow (either direction for <>)?"""
        if self.protocol is not None and flow.protocol != self.protocol:
            return False
        forward = (
            self.src.matches(flow.src_ip)
            and self.src_ports.matches(flow.src_port)
            and self.dst.matches(flow.dst_ip)
            and self.dst_ports.matches(flow.dst_port)
        )
        if forward:
            return True
        if not self.bidirectional:
            return False
        return (
            self.src.matches(flow.dst_ip)
            and self.src_ports.matches(flow.dst_port)
            and self.dst.matches(flow.src_ip)
            and self.dst_ports.matches(flow.src_port)
        )

    def payload_matches(self, payload: bytes) -> bool:
        """All contents match in order (absolute and relative modifiers
        honoured, greedy-first) and the pcre matches."""
        previous_end = 0
        for content in self.contents:
            end = content.match_end(payload, previous_end)
            if end < 0:
                return False
            previous_end = end
        if self.pcre is not None and self.pcre.search(payload) is None:
            return False
        return True

    def __repr__(self) -> str:
        return f"<SnortRule sid={self.sid} {self.action.value} '{self.msg}'>"


_HEADER_RE = re.compile(
    r"^(?P<action>\w+)\s+(?P<proto>\w+)\s+(?P<src>\S+)\s+(?P<sports>\S+)\s+"
    r"(?P<dir>->|<>)\s+(?P<dst>\S+)\s+(?P<dports>\S+)\s*\((?P<options>.*)\)\s*$"
)


def _split_options(text: str) -> List[str]:
    """Split the option block on ';' outside of quoted strings."""
    options: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in text:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == ";" and not in_quotes:
            options.append("".join(current).strip())
            current = []
            continue
        current.append(char)
    tail = "".join(current).strip()
    if tail:
        options.append(tail)
    return [option for option in options if option]


def _unquote(value: str) -> str:
    value = value.strip()
    if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
        value = value[1:-1]
    return value.replace('\\"', '"').replace("\\\\", "\\")


def _decode_content(value: str) -> bytes:
    """Decode a content string with Snort's |hex| escapes."""
    text = _unquote(value)
    parts: List[bytes] = []
    in_hex = False
    buffer: List[str] = []
    for char in text:
        if char == "|":
            if in_hex:
                hex_text = "".join(buffer).replace(" ", "")
                if len(hex_text) % 2:
                    raise RuleParseError(f"odd-length hex in content: {value!r}")
                try:
                    parts.append(bytes.fromhex(hex_text))
                except ValueError as exc:
                    raise RuleParseError(f"bad hex in content: {value!r}") from exc
            elif buffer:
                parts.append("".join(buffer).encode("latin-1"))
            buffer = []
            in_hex = not in_hex
            continue
        buffer.append(char)
    if in_hex:
        raise RuleParseError(f"unterminated |hex| section in content: {value!r}")
    if buffer:
        parts.append("".join(buffer).encode("latin-1"))
    result = b"".join(parts)
    if not result:
        raise RuleParseError(f"empty content pattern: {value!r}")
    return result


def _compile_pcre(value: str) -> Pattern[bytes]:
    text = _unquote(value)
    if not text.startswith("/"):
        raise RuleParseError(f"pcre must be /re/flags, got {value!r}")
    closing = text.rfind("/")
    if closing == 0:
        raise RuleParseError(f"unterminated pcre: {value!r}")
    body, flags_text = text[1:closing], text[closing + 1 :]
    flags = 0
    for flag in flags_text:
        if flag == "i":
            flags |= re.IGNORECASE
        elif flag == "s":
            flags |= re.DOTALL
        elif flag == "m":
            flags |= re.MULTILINE
        else:
            raise RuleParseError(f"unsupported pcre flag {flag!r} in {value!r}")
    try:
        return re.compile(body.encode("latin-1"), flags)
    except re.error as exc:
        raise RuleParseError(f"bad pcre {value!r}: {exc}") from exc


def parse_rule(line: str) -> SnortRule:
    """Parse one rule line (comments/blank lines are the caller's concern)."""
    match = _HEADER_RE.match(line.strip())
    if match is None:
        raise RuleParseError(f"unparseable rule header: {line!r}")

    action_text = match.group("action").lower()
    try:
        action = RuleAction(action_text)
    except ValueError as exc:
        raise RuleParseError(f"unsupported rule action {action_text!r}") from exc

    proto_text = match.group("proto").lower()
    if proto_text not in _PROTOCOLS:
        raise RuleParseError(f"unsupported protocol {proto_text!r}")

    rule = SnortRule(
        action=action,
        protocol=_PROTOCOLS[proto_text],
        src=AddressSpec.parse(match.group("src")),
        src_ports=PortSpec.parse(match.group("sports")),
        dst=AddressSpec.parse(match.group("dst")),
        dst_ports=PortSpec.parse(match.group("dports")),
        bidirectional=match.group("dir") == "<>",
    )

    def modify_last_content(**changes) -> None:
        if not rule.contents:
            raise RuleParseError("content modifier without a preceding content")
        import dataclasses

        rule.contents[-1] = dataclasses.replace(rule.contents[-1], **changes)

    for option in _split_options(match.group("options")):
        name, separator, value = option.partition(":")
        name = name.strip().lower()
        if name == "nocase" and not separator:
            modify_last_content(nocase=True)
            continue
        if name == "offset":
            modify_last_content(offset=int(value.strip()))
            continue
        if name == "depth":
            depth = int(value.strip())
            if depth <= 0:
                raise RuleParseError(f"depth must be positive, got {depth}")
            modify_last_content(depth=depth)
            continue
        if name == "distance":
            modify_last_content(distance=int(value.strip()))
            continue
        if name == "within":
            within = int(value.strip())
            if within < 0:
                raise RuleParseError(f"within must be non-negative, got {within}")
            modify_last_content(within=within)
            continue
        if name == "flowbits":
            parts = [part.strip() for part in _unquote(value).split(",")]
            verb = parts[0].lower()
            bit_name = parts[1] if len(parts) > 1 else ""
            rule.flowbits.append(FlowbitOp(verb, bit_name))
            continue
        if name == "msg":
            rule.msg = _unquote(value)
        elif name == "content":
            rule.contents.append(ContentOption(_decode_content(value)))
        elif name == "pcre":
            rule.pcre = _compile_pcre(value)
        elif name == "sid":
            rule.sid = int(value.strip())
        elif name == "rev":
            rule.rev = int(value.strip())
        elif name == "priority":
            rule.priority = int(value.strip())
        else:
            raise RuleParseError(f"unsupported rule option {name!r}")
    return rule


_VAR_RE = re.compile(r"^var\s+(\w+)\s+(\S+)\s*$", re.IGNORECASE)
_VAR_REF_RE = re.compile(r"\$(\w+)")


def _substitute_vars(line: str, variables: dict) -> str:
    """Replace ``$NAME`` references with their ``var`` definitions."""

    def replace(match: "re.Match[str]") -> str:
        name = match.group(1)
        if name not in variables:
            raise RuleParseError(f"undefined variable ${name}")
        return variables[name]

    return _VAR_REF_RE.sub(replace, line)


def parse_rules(text: str) -> List[SnortRule]:
    """Parse a rule file body.

    One rule per line; ``#`` comments and blank lines are skipped.
    ``var NAME value`` lines define variables referenced as ``$NAME`` in
    later rule headers (the classic ``var HOME_NET 10.0.0.0/8`` pattern);
    definitions may themselves reference earlier variables.
    """
    rules: List[SnortRule] = []
    variables: dict = {}
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            var_match = _VAR_RE.match(line)
            if var_match:
                name, value = var_match.groups()
                variables[name] = _substitute_vars(value, variables)
                continue
            rules.append(parse_rule(_substitute_vars(line, variables)))
        except RuleParseError as exc:
            raise RuleParseError(f"line {line_number}: {exc}") from exc
    return rules
