"""The Snort detection engine.

Mirrors the structure the paper relies on (Observation 1): when a flow's
initial packet arrives, the engine *assigns a rule-matching function* for
the flow — the subset of rules whose header part covers the five-tuple,
compiled into a :class:`FlowMatcher` — and the same matcher is invoked
for every subsequent packet.

Payload evaluation uses an Aho–Corasick prescan shared across all rules:
one pass over the payload yields the set of content patterns present;
a rule fully matches when all of its contents were found and its pcre
(if any) matches.  ``pass`` rules suppress ``alert``/``log`` verdicts for
packets they match, covering the three conditional branches of §VII-C1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.net.flow import FiveTuple
from repro.nf.snort.aho_corasick import MultiPatternIndex
from repro.nf.snort.rules import RuleAction, SnortRule


@dataclass
class InspectionResult:
    """Outcome of inspecting one payload for one flow."""

    alerts: List[SnortRule] = field(default_factory=list)
    logs: List[SnortRule] = field(default_factory=list)
    passed: bool = False  # a pass rule matched and suppressed the rest

    @property
    def verdict(self) -> str:
        if self.passed:
            return "pass"
        if self.alerts:
            return "alert"
        if self.logs:
            return "log"
        return "clean"


class FlowMatcher:
    """The per-flow rule-matching function Snort assigns on flow setup.

    Holds the flow's *flowbits* — per-flow cross-packet state mutated by
    matching rules — which is exactly the "packet processing updates
    states and states decide packet data path" coupling of the paper's
    Challenge 2: the matcher is stateful, and SpeedyBox carries it to the
    fast path as a recorded state function.
    """

    __slots__ = ("flow", "candidates", "flowbits", "_engine")

    def __init__(self, flow: FiveTuple, candidates: Sequence[SnortRule], engine: "DetectionEngine"):
        self.flow = flow
        self.candidates: Tuple[SnortRule, ...] = tuple(candidates)
        self.flowbits: set = set()
        self._engine = engine

    def __len__(self) -> int:
        return len(self.candidates)

    def inspect(self, payload: bytes) -> InspectionResult:
        """Evaluate all candidate rules against one payload, in rule order.

        A matching rule's flowbits mutations apply immediately, so later
        rules in the same packet observe them.  A matching ``pass`` rule
        short-circuits the packet entirely (Snort's pass precedence).
        """
        matched_keys = self._engine.index.matched_keys(payload) if payload else set()
        result = InspectionResult()

        # Pass precedence: a pass rule matching this packet exempts it.
        for rule in self.candidates:
            if rule.action is not RuleAction.PASS:
                continue
            if rule.flowbits_allow(frozenset(self.flowbits)) and self._engine.rule_payload_matches(
                rule, payload, matched_keys
            ):
                result.passed = True
                return result

        for rule in self.candidates:
            if rule.action is RuleAction.PASS:
                continue
            if not rule.flowbits_allow(frozenset(self.flowbits)):
                continue
            if not self._engine.rule_payload_matches(rule, payload, matched_keys):
                continue
            rule.flowbits_apply(self.flowbits)
            if rule.suppresses_output:
                continue
            if rule.action is RuleAction.ALERT:
                result.alerts.append(rule)
            elif rule.action is RuleAction.LOG:
                result.logs.append(rule)
        return result

    def __repr__(self) -> str:
        return f"<FlowMatcher {self.flow} ({len(self.candidates)} rules)>"


class DetectionEngine:
    """Rule set + shared multi-pattern index + per-flow matcher factory."""

    def __init__(self, rules: Sequence[SnortRule]):
        self.rules: List[SnortRule] = list(rules)
        self.index = MultiPatternIndex()
        #: rule id -> keys of its content patterns in the shared index
        self._content_keys: Dict[int, Set[int]] = {}
        for rule_id, rule in enumerate(self.rules):
            keys = {
                self.index.add(content.pattern, nocase=content.nocase)
                for content in rule.contents
            }
            self._content_keys[rule_id] = keys
        self.index.build()

    def __len__(self) -> int:
        return len(self.rules)

    def rule_payload_matches(self, rule: SnortRule, payload: bytes, matched_keys: Set[int]) -> bool:
        """Full payload evaluation given the prescan results.

        The Aho-Corasick prescan is a necessary condition (pattern occurs
        *somewhere*); contents with offset/depth modifiers are then
        verified positionally, exactly like Snort's own fast-pattern +
        rule-evaluation split.
        """
        keys = self._keys_for(rule)
        if not keys.issubset(matched_keys):
            return False
        if any(
            content.offset or content.depth is not None or content.is_relative
            for content in rule.contents
        ):
            # Positional/relative constraints: full in-order evaluation.
            return rule.payload_matches(payload)
        if rule.pcre is not None and rule.pcre.search(payload) is None:
            return False
        return True

    def _keys_for(self, rule: SnortRule) -> Set[int]:
        cache = getattr(self, "_id_cache", None)
        if cache is None:
            cache = {id(r): self._content_keys[i] for i, r in enumerate(self.rules)}
            self._id_cache = cache
        return cache[id(rule)]

    def assign_flow_matcher(self, flow: FiveTuple) -> FlowMatcher:
        """Header-match every rule once; compile the flow's matcher."""
        candidates = [rule for rule in self.rules if rule.header_matches(flow)]
        return FlowMatcher(flow, candidates, self)
